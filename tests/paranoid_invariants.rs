//! Paranoid-mode integration tests: randomized schedules of updates,
//! anti-entropy pulls, out-of-bound copies, crash/recovery, and LWW
//! conflict resolution, with per-step invariant auditing on at every
//! replica. Any drift from the DESIGN §4/§7 invariants panics immediately
//! with the structured protocol trace naming the offending step.
//!
//! Also the acceptance check for the auditor itself: a deliberately
//! injected DBVV corruption must be caught at the very next protocol step,
//! and the panic must carry the trace dump.

use std::panic::{catch_unwind, AssertUnwindSafe};

use epidb::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Borrow two distinct replicas mutably.
fn pair_mut(replicas: &mut [Replica], a: usize, b: usize) -> (&mut Replica, &mut Replica) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = replicas.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

fn paranoid_cluster(n_nodes: usize, n_items: usize, policy: ConflictPolicy) -> Vec<Replica> {
    let mut replicas: Vec<Replica> = (0..n_nodes)
        .map(|i| Replica::with_policy(NodeId::from_index(i), n_nodes, n_items, policy))
        .collect();
    for r in &mut replicas {
        r.set_paranoid(true);
    }
    replicas
}

/// One randomized schedule. `conflict_prone` lets any node update any item;
/// otherwise items are single-writer partitioned. `with_crashes` mixes in
/// snapshot/restore cycles (the paranoid flag is ephemeral, so recovery
/// re-enables it — exactly what a paranoid deployment would do).
fn run_schedule(
    policy: ConflictPolicy,
    seed: u64,
    conflict_prone: bool,
    with_crashes: bool,
) -> Vec<Replica> {
    const N_NODES: usize = 4;
    const N_ITEMS: usize = 12;
    const STEPS: usize = 400;

    let mut replicas = paranoid_cluster(N_NODES, N_ITEMS, policy);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut payload_counter: u64 = 0;

    for _ in 0..STEPS {
        let kind = rng.gen_range(0u32..100);
        match kind {
            // Local update.
            0..=44 => {
                let item = ItemId::from_index(rng.gen_range(0..N_ITEMS));
                let node =
                    if conflict_prone { rng.gen_range(0..N_NODES) } else { item.index() % N_NODES };
                payload_counter += 1;
                let mut payload = payload_counter.to_le_bytes().to_vec();
                payload.push(b';');
                replicas[node].update(item, UpdateOp::append(payload)).unwrap();
            }
            // Anti-entropy pull between a random pair.
            45..=74 => {
                let r = rng.gen_range(0..N_NODES);
                let s = (r + rng.gen_range(1..N_NODES)) % N_NODES;
                let (recipient, source) = pair_mut(&mut replicas, r, s);
                pull(recipient, source).unwrap();
                recipient.drain_conflicts();
            }
            // Out-of-bound copy of a random item.
            75..=84 => {
                let r = rng.gen_range(0..N_NODES);
                let s = (r + rng.gen_range(1..N_NODES)) % N_NODES;
                let item = ItemId::from_index(rng.gen_range(0..N_ITEMS));
                let (recipient, source) = pair_mut(&mut replicas, r, s);
                oob_copy(recipient, source, item).unwrap();
                recipient.drain_conflicts();
            }
            // Delta-mode pull (update-record shipping).
            85..=92 => {
                let r = rng.gen_range(0..N_NODES);
                let s = (r + rng.gen_range(1..N_NODES)) % N_NODES;
                let (recipient, source) = pair_mut(&mut replicas, r, s);
                pull_delta(recipient, source).unwrap();
                recipient.drain_conflicts();
            }
            // Crash + recovery: snapshot, drop, restore, re-arm paranoia.
            _ => {
                if !with_crashes {
                    continue;
                }
                let victim = rng.gen_range(0..N_NODES);
                let snapshot = replicas[victim].to_snapshot();
                let mut revived = Replica::from_snapshot(&snapshot).unwrap();
                revived.set_paranoid(true);
                replicas[victim] = revived;
            }
        }
    }

    // Quiescence: all-pairs sweeps so everything propagates transitively.
    for _sweep in 0..(2 * N_NODES + 2) {
        for r in 0..N_NODES {
            for s in 0..N_NODES {
                if r != s {
                    let (recipient, source) = pair_mut(&mut replicas, r, s);
                    pull(recipient, source).unwrap();
                    recipient.drain_conflicts();
                }
            }
        }
    }
    replicas
}

fn assert_audited_and_clean(replicas: &[Replica]) {
    for r in replicas {
        // Every step was audited live (a violation would have panicked)...
        assert!(r.audits_run() > 0, "{}: paranoid mode ran no audits", r.id());
        assert!(!r.trace().is_empty(), "{}: no protocol trace recorded", r.id());
        // ...and a final explicit audit agrees.
        let report = r.audit();
        assert!(report.is_clean(), "{}", report.summary());
    }
}

#[test]
fn conflict_free_schedules_hold_invariants_and_converge() {
    for seed in [1, 42, 1996] {
        let replicas = run_schedule(ConflictPolicy::Report, seed, false, false);
        assert_audited_and_clean(&replicas);
        // Single-writer workload: no conflicts, full convergence.
        for r in &replicas {
            assert_eq!(r.costs().conflicts_detected, 0, "seed {seed}");
            assert_eq!(
                r.dbvv().compare(replicas[0].dbvv()),
                VvOrd::Equal,
                "seed {seed}: {} did not converge",
                r.id()
            );
        }
    }
}

#[test]
fn crash_recovery_schedules_hold_invariants() {
    for seed in [7, 2024] {
        let replicas = run_schedule(ConflictPolicy::Report, seed, false, true);
        assert_audited_and_clean(&replicas);
        for r in &replicas {
            assert_eq!(
                r.dbvv().compare(replicas[0].dbvv()),
                VvOrd::Equal,
                "seed {seed}: {} did not converge after crashes",
                r.id()
            );
        }
    }
}

#[test]
fn conflict_prone_report_schedules_hold_invariants() {
    // Concurrent writers with the report-only policy: conflicts are
    // declared and left frozen, but every per-replica invariant must hold
    // at every step regardless.
    for seed in [5, 99] {
        let replicas = run_schedule(ConflictPolicy::Report, seed, true, true);
        assert_audited_and_clean(&replicas);
    }
}

#[test]
fn lww_schedules_hold_invariants_through_resolutions() {
    // Concurrent writers with last-writer-wins: resolutions are logged as
    // fresh local updates and must keep DBVV == Σ IVV like any other step.
    for seed in [3, 77] {
        let replicas = run_schedule(ConflictPolicy::ResolveLww, seed, true, true);
        assert_audited_and_clean(&replicas);
        let resolutions: u64 = replicas.iter().map(|r| r.counters().lww_resolutions).sum();
        assert!(resolutions > 0, "seed {seed}: conflict-prone LWW run resolved nothing");
    }
}

#[test]
fn injected_dbvv_corruption_is_caught_with_trace() {
    let mut r = Replica::new(NodeId(0), 3, 8);
    r.set_paranoid(true);
    r.update(ItemId(1), UpdateOp::set(&b"healthy"[..])).unwrap();

    // Corrupt the DBVV behind the protocol's back (rule-3 bookkeeping
    // drifts from the item IVVs), then take one normal protocol step.
    r.debug_corrupt_dbvv();
    let panic = catch_unwind(AssertUnwindSafe(|| {
        r.update(ItemId(2), UpdateOp::set(&b"next step"[..])).unwrap();
    }))
    .expect_err("paranoid mode must catch the corrupted DBVV");

    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(msg.contains("paranoid: invariant violation"), "message: {msg}");
    // The violated invariant is named...
    assert!(msg.contains("dbvv-sum"), "message: {msg}");
    // ...the offending step is named...
    assert!(msg.contains("local-update"), "message: {msg}");
    // ...and the structured trace dump rides along.
    assert!(msg.contains("protocol trace"), "message: {msg}");
}

#[test]
fn paranoid_off_is_inert_but_explicit_audit_still_reports() {
    let mut r = Replica::new(NodeId(0), 3, 8);
    r.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
    r.debug_corrupt_dbvv();
    // No paranoia: the corruption goes unnoticed by normal operation.
    r.update(ItemId(2), UpdateOp::set(&b"w"[..])).unwrap();
    assert_eq!(r.audits_run(), 0);
    // But an on-demand audit still finds it.
    let report = r.audit();
    assert!(!report.is_clean());
    assert!(report.summary().contains("dbvv-sum"));
}
