//! Cross-protocol integration: the paper's protocol and the correct
//! baseline (per-item version vectors) must agree on final states under
//! identical workloads, while their overheads separate exactly as §6/§8
//! predict.

use epidb::baselines::{LotusCluster, PerItemVvCluster, SyncProtocol, WuuBernsteinCluster};
use epidb::prelude::*;
use epidb::sim::{Driver, DriverConfig, EpidbCluster, Schedule, Workload, WorkloadKind};

const N_NODES: usize = 5;
const N_ITEMS: usize = 300;

fn drive<P: SyncProtocol>(proto: &mut P, seed: u64) -> Option<usize> {
    let mut wl = Workload::new(WorkloadKind::SingleWriter, N_NODES, N_ITEMS, 24, seed);
    let updates = wl.take(150);
    let mut driver = Driver::new(
        proto,
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 77,
            max_rounds: 200,
            ..DriverConfig::default()
        },
    );
    driver.apply_updates(&updates).expect("updates");
    driver.run_to_convergence().expect("run")
}

#[test]
fn all_pull_protocols_reach_identical_final_states() {
    let mut epidb = EpidbCluster::new(N_NODES, N_ITEMS);
    let mut pivv = PerItemVvCluster::new(N_NODES, N_ITEMS);
    let mut lotus = LotusCluster::new(N_NODES, N_ITEMS);
    let mut wb = WuuBernsteinCluster::new(N_NODES, N_ITEMS);

    assert!(drive(&mut epidb, 9).is_some());
    assert!(drive(&mut pivv, 9).is_some());
    assert!(drive(&mut lotus, 9).is_some());
    assert!(drive(&mut wb, 9).is_some());

    // Same deterministic workload => same converged values, protocol by
    // protocol, item by item.
    for x in ItemId::all(N_ITEMS) {
        let reference = epidb.value(NodeId(0), x);
        assert_eq!(pivv.value(NodeId(0), x), reference, "per-item-vv differs at {x}");
        assert_eq!(lotus.value(NodeId(0), x), reference, "lotus differs at {x}");
        assert_eq!(wb.value(NodeId(0), x), reference, "wuu-bernstein differs at {x}");
    }
    epidb.assert_invariants();
    assert_eq!(epidb.conflicts_declared(), 0);
}

#[test]
fn epidb_total_overhead_is_smallest_once_database_is_large() {
    // Same convergence run over a larger database: total comparison work
    // to convergence must rank epidb far below the O(N)-per-round
    // baselines.
    let n_items = 3_000;
    let seed = 4;
    let measure = |proto: &mut dyn SyncProtocol| -> u64 {
        let mut wl = Workload::new(WorkloadKind::SingleWriter, N_NODES, n_items, 24, seed);
        let updates = wl.take(100);
        let mut driver = Driver::new(
            proto,
            DriverConfig {
                schedule: Schedule::RandomPairwise,
                seed: 77,
                max_rounds: 200,
                ..DriverConfig::default()
            },
        );
        driver.apply_updates(&updates).expect("updates");
        driver.run_to_convergence().expect("run").expect("converged");
        proto.costs().comparison_work()
    };

    let mut epidb = EpidbCluster::new(N_NODES, n_items);
    let mut pivv = PerItemVvCluster::new(N_NODES, n_items);
    let mut lotus = LotusCluster::new(N_NODES, n_items);
    let epidb_work = measure(&mut epidb);
    let pivv_work = measure(&mut pivv);
    let lotus_work = measure(&mut lotus);

    assert!(epidb_work * 10 < pivv_work, "epidb {epidb_work} not ≪ per-item-vv {pivv_work}");
    assert!(epidb_work * 10 < lotus_work, "epidb {epidb_work} not ≪ lotus {lotus_work}");
}

#[test]
fn hotspot_workload_converges_everywhere() {
    let mut epidb = EpidbCluster::new(N_NODES, N_ITEMS);
    let mut wl = Workload::new(
        WorkloadKind::Hotspot { hot_fraction: 0.05, hot_probability: 0.8 },
        N_NODES,
        N_ITEMS,
        24,
        31,
    );
    let updates = wl.take(400);
    let mut driver = Driver::new(
        &mut epidb,
        DriverConfig {
            schedule: Schedule::Ring,
            seed: 5,
            max_rounds: 300,
            ..DriverConfig::default()
        },
    );
    driver.apply_updates(&updates).expect("updates");
    assert!(driver.run_to_convergence().expect("run").is_some());
    epidb.assert_invariants();
}

#[test]
fn star_schedule_converges_too() {
    let mut epidb = EpidbCluster::new(N_NODES, N_ITEMS);
    let mut wl = Workload::new(WorkloadKind::SingleWriter, N_NODES, N_ITEMS, 24, 8);
    let updates = wl.take(100);
    let mut driver = Driver::new(
        &mut epidb,
        DriverConfig {
            schedule: Schedule::Star { hub: NodeId(0) },
            seed: 6,
            max_rounds: 300,
            ..DriverConfig::default()
        },
    );
    driver.apply_updates(&updates).expect("updates");
    assert!(driver.run_to_convergence().expect("run").is_some());
}
