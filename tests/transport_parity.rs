//! Cost parity across runtimes: the same protocol schedule, driven through
//! the in-process engine, the threaded channel runtime, and the TCP socket
//! runtime, must charge byte-for-byte identical [`Costs`] at every node —
//! the engine is the single place costs are accounted, so no runtime can
//! drift.

use epidb::common::Costs;
use epidb::net::{
    AsyncTcpCluster, AsyncTcpConfig, ClusterConfig, ShardedConfig, ShardedTcpCluster,
    ShardedThreadedCluster, TcpCluster, TcpConfig, ThreadedCluster,
};
use epidb::prelude::*;
use epidb::sim::{EpidbCluster, ShardedSimCluster};
use std::time::Duration;

const N_NODES: usize = 3;
const N_ITEMS: usize = 20;
const DELTA_BUDGET: usize = 1 << 20;

/// The deterministic schedule: local updates, whole-item pulls, delta
/// pulls, and an out-of-bound fetch — every exchange kind the engine
/// serves.
trait Runtime {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp);
    fn pull(&mut self, recipient: u16, source: u16);
    fn pull_delta(&mut self, recipient: u16, source: u16);
    fn pull_recon(&mut self, recipient: u16, source: u16);
    fn set_log_retention(&mut self, node: u16, keep: usize);
    fn oob(&mut self, recipient: u16, source: u16, item: u32);
    fn node_costs(&self, node: u16) -> Costs;
    fn value(&self, node: u16, item: u32) -> Vec<u8>;
}

fn run_schedule<R: Runtime>(rt: &mut R) -> Vec<Costs> {
    rt.update(0, 0, UpdateOp::set(&b"alpha-value-at-node-zero"[..]));
    rt.update(1, 1, UpdateOp::set(vec![0x11; 300]));
    rt.pull(1, 0);
    rt.pull(2, 1);
    rt.update(0, 0, UpdateOp::append(&b"-amended"[..]));
    rt.update(0, 2, UpdateOp::set(vec![0x22; 64]));
    rt.pull_delta(1, 0);
    rt.pull_delta(2, 1);
    rt.update(1, 5, UpdateOp::set(&b"hot item"[..]));
    rt.oob(2, 1, 5);
    rt.pull(0, 1);
    // Everyone agrees on the values the schedule propagated.
    for node in 0..N_NODES as u16 {
        assert_eq!(rt.value(node, 0), b"alpha-value-at-node-zero-amended");
    }
    assert_eq!(rt.value(2, 5), b"hot item");
    (0..N_NODES as u16).map(|n| rt.node_costs(n)).collect()
}

/// The recon schedule: seed a divergent pair, compact the source's log so
/// a plain pull can no longer cover the recipient, then reconcile — first
/// explicitly, then via a plain pull that must degrade to recon on its
/// own (the ladder's bottom rung).
fn run_recon_schedule<R: Runtime>(rt: &mut R) -> Vec<Costs> {
    for item in 0..N_ITEMS as u32 {
        rt.update(0, item, UpdateOp::set(vec![item as u8 ^ 0x5a; 24]));
    }
    rt.pull(1, 0);
    rt.update(0, 3, UpdateOp::set(&b"recon-three"[..]));
    rt.update(0, 11, UpdateOp::append(&b"-tail"[..]));
    rt.set_log_retention(0, 1);
    rt.pull_recon(1, 0);
    assert_eq!(rt.value(1, 3), b"recon-three");
    // A second recipient that never synced: plain pull degrades to recon.
    rt.update(0, 7, UpdateOp::set(&b"recon-seven"[..]));
    rt.pull(2, 0);
    assert_eq!(rt.value(2, 7), b"recon-seven");
    (0..N_NODES as u16).map(|n| rt.node_costs(n)).collect()
}

struct InProcess(EpidbCluster);

impl Runtime for InProcess {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        SyncProtocol::update(&mut self.0, NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull(&mut self, recipient: u16, source: u16) {
        self.0.pull_pair(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_delta(&mut self, recipient: u16, source: u16) {
        self.0.pull_delta_pair(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_recon(&mut self, recipient: u16, source: u16) {
        self.0.pull_recon_pair(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep);
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        SyncProtocol::node_costs(&self.0, NodeId(node))
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.replica(NodeId(node)).read(ItemId(item)).unwrap().as_bytes().to_vec()
    }
}

struct Threaded(ThreadedCluster);

impl Runtime for Threaded {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull(&mut self, recipient: u16, source: u16) {
        self.0.pull_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_delta(&mut self, recipient: u16, source: u16) {
        self.0.pull_delta_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_recon(&mut self, recipient: u16, source: u16) {
        self.0.pull_recon_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep).unwrap();
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob_fetch(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.with_replica(NodeId(node), |r| r.costs())
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

struct Tcp(TcpCluster);

impl Runtime for Tcp {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull(&mut self, recipient: u16, source: u16) {
        self.0.pull_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_delta(&mut self, recipient: u16, source: u16) {
        self.0.pull_delta_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_recon(&mut self, recipient: u16, source: u16) {
        self.0.pull_recon_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep).unwrap();
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob_fetch(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.with_replica(NodeId(node), |r| r.costs())
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

struct AsyncTcp(AsyncTcpCluster);

impl Runtime for AsyncTcp {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull(&mut self, recipient: u16, source: u16) {
        self.0.pull_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_delta(&mut self, recipient: u16, source: u16) {
        self.0.pull_delta_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn pull_recon(&mut self, recipient: u16, source: u16) {
        self.0.pull_recon_now(NodeId(recipient), NodeId(source)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep).unwrap();
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob_fetch(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.with_replica(NodeId(node), |r| r.costs())
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

/// Gossip disabled (one-minute interval) so the explicit schedule is the
/// only protocol traffic.
fn quiet_threaded() -> ThreadedCluster {
    ThreadedCluster::spawn(
        N_NODES,
        N_ITEMS,
        ClusterConfig {
            gossip_interval: Duration::from_secs(60),
            delta_budget: DELTA_BUDGET,
            ..ClusterConfig::default()
        },
    )
}

fn quiet_tcp() -> TcpCluster {
    TcpCluster::spawn(
        N_NODES,
        N_ITEMS,
        TcpConfig {
            gossip_interval: Duration::from_secs(60),
            delta_budget: DELTA_BUDGET,
            ..TcpConfig::default()
        },
    )
    .unwrap()
}

fn quiet_async() -> AsyncTcpCluster {
    AsyncTcpCluster::spawn(
        N_NODES,
        N_ITEMS,
        AsyncTcpConfig {
            base: TcpConfig {
                gossip_interval: Duration::from_secs(60),
                delta_budget: DELTA_BUDGET,
                ..TcpConfig::default()
            },
            worker_threads: 2,
        },
    )
    .unwrap()
}

#[test]
fn identical_schedule_charges_identical_costs_everywhere() {
    let mut in_process = EpidbCluster::new(N_NODES, N_ITEMS);
    in_process.enable_delta(DELTA_BUDGET);
    let local = run_schedule(&mut InProcess(in_process));

    let threaded = run_schedule(&mut Threaded(quiet_threaded()));
    let tcp = run_schedule(&mut Tcp(quiet_tcp()));
    let async_tcp = run_schedule(&mut AsyncTcp(quiet_async()));

    for node in 0..N_NODES {
        assert_eq!(
            local[node], threaded[node],
            "node {node}: in-process vs threaded costs diverge"
        );
        assert_eq!(local[node], tcp[node], "node {node}: in-process vs TCP costs diverge");
        assert_eq!(
            local[node], async_tcp[node],
            "node {node}: in-process vs async-TCP costs diverge"
        );
    }
    // The schedule actually moved bytes — parity over zeros proves nothing.
    assert!(local.iter().any(|c| c.bytes_sent > 0 && c.messages_sent > 0));
}

#[test]
fn recon_schedule_charges_identical_costs_everywhere() {
    let mut in_process = EpidbCluster::new(N_NODES, N_ITEMS);
    in_process.enable_delta(DELTA_BUDGET);
    let local = run_recon_schedule(&mut InProcess(in_process));

    let threaded = run_recon_schedule(&mut Threaded(quiet_threaded()));
    let tcp = run_recon_schedule(&mut Tcp(quiet_tcp()));
    let async_tcp = run_recon_schedule(&mut AsyncTcp(quiet_async()));

    for node in 0..N_NODES {
        assert_eq!(
            local[node], threaded[node],
            "node {node}: recon in-process vs threaded costs diverge"
        );
        assert_eq!(local[node], tcp[node], "node {node}: recon in-process vs TCP costs diverge");
        assert_eq!(
            local[node], async_tcp[node],
            "node {node}: recon in-process vs async-TCP costs diverge"
        );
    }
    // The schedule really exercised recon: the source walked its digest
    // tree (items_scanned) rather than just shipping records.
    assert!(local.iter().any(|c| c.items_scanned > 0));
    assert!(local.iter().any(|c| c.bytes_sent > 0 && c.messages_sent > 0));
}

// ---------------------------------------------------------------------------
// Sharded parity: the same per-shard schedule on a 2-groups × 2-nodes
// cluster, across the in-process sharded simulator and both sharded live
// runtimes.
// ---------------------------------------------------------------------------

const SHARDED_NODES: usize = 4;
const ITEMS_PER_SHARD: usize = 8;

fn sharded_map() -> ShardMap {
    ShardMap::new(ITEMS_PER_SHARD, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
}

/// The sharded schedule surface: per-shard pulls (whole and delta) and a
/// cross-group out-of-bound fetch.
trait ShardedRuntime {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp);
    fn pull_shard(&mut self, recipient: u16, source: u16, shard: u16);
    fn pull_delta_shard(&mut self, recipient: u16, source: u16, shard: u16);
    fn pull_recon_shard(&mut self, recipient: u16, source: u16, shard: u16);
    fn set_log_retention(&mut self, node: u16, keep: usize);
    fn oob(&mut self, recipient: u16, source: u16, item: u32);
    fn node_costs(&self, node: u16) -> Costs;
    fn value(&self, node: u16, item: u32) -> Vec<u8>;
}

fn run_sharded_schedule<R: ShardedRuntime>(rt: &mut R) -> Vec<Costs> {
    // Group {0,1} owns shard 0 (items 0..8); group {2,3} owns shard 1
    // (items 8..16). Updates land at owners, propagate within groups, and
    // one hot item crosses groups out-of-bound.
    rt.update(0, 1, UpdateOp::set(&b"shard-zero-value"[..]));
    rt.update(2, 9, UpdateOp::set(vec![0x33; 200]));
    rt.pull_shard(1, 0, 0);
    rt.pull_shard(3, 2, 1);
    rt.update(1, 1, UpdateOp::append(&b"-amended"[..]));
    rt.update(3, 12, UpdateOp::set(vec![0x44; 48]));
    rt.pull_delta_shard(0, 1, 0);
    rt.pull_delta_shard(2, 3, 1);
    rt.oob(0, 2, 9); // cross-group: node 0 fetches a shard-1 item
    assert_eq!(rt.value(0, 1), b"shard-zero-value-amended");
    assert_eq!(rt.value(2, 12), vec![0x44; 48]);
    // Recon rung: compact node 0's shard logs, advance an item, and let
    // node 1 reconcile shard 0 via the digest tree.
    rt.update(0, 2, UpdateOp::set(&b"recon-two"[..]));
    rt.set_log_retention(0, 1);
    rt.pull_recon_shard(1, 0, 0);
    assert_eq!(rt.value(1, 2), b"recon-two");
    (0..SHARDED_NODES as u16).map(|n| rt.node_costs(n)).collect()
}

struct ShardedInProcess(ShardedSimCluster);

impl ShardedRuntime for ShardedInProcess {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_shard(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_delta_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_delta_shard(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_recon_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_recon_shard(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep);
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.node_costs(NodeId(node))
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

struct ShardedThreaded(ShardedThreadedCluster);

impl ShardedRuntime for ShardedThreaded {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_delta_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_delta_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_recon_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_recon_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep).unwrap();
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob_fetch(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.node_costs(NodeId(node))
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

struct ShardedTcp(ShardedTcpCluster);

impl ShardedRuntime for ShardedTcp {
    fn update(&mut self, node: u16, item: u32, op: UpdateOp) {
        self.0.update(NodeId(node), ItemId(item), op).unwrap();
    }
    fn pull_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_delta_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_delta_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn pull_recon_shard(&mut self, recipient: u16, source: u16, shard: u16) {
        self.0.pull_recon_shard_now(NodeId(recipient), NodeId(source), ShardId(shard)).unwrap();
    }
    fn set_log_retention(&mut self, node: u16, keep: usize) {
        self.0.set_log_retention(NodeId(node), keep).unwrap();
    }
    fn oob(&mut self, recipient: u16, source: u16, item: u32) {
        self.0.oob_fetch(NodeId(recipient), NodeId(source), ItemId(item)).unwrap();
    }
    fn node_costs(&self, node: u16) -> Costs {
        self.0.node_costs(NodeId(node))
    }
    fn value(&self, node: u16, item: u32) -> Vec<u8> {
        self.0.read(NodeId(node), ItemId(item)).unwrap()
    }
}

fn quiet_sharded() -> ShardedConfig {
    ShardedConfig {
        gossip_interval: Duration::from_secs(60),
        delta_budget: DELTA_BUDGET,
        ..ShardedConfig::default()
    }
}

#[test]
fn sharded_schedule_charges_identical_costs_everywhere() {
    let mut in_process = ShardedSimCluster::new(sharded_map(), SHARDED_NODES);
    in_process.enable_delta(DELTA_BUDGET);
    let local = run_sharded_schedule(&mut ShardedInProcess(in_process));

    let threaded = run_sharded_schedule(&mut ShardedThreaded(ShardedThreadedCluster::spawn(
        sharded_map(),
        SHARDED_NODES,
        quiet_sharded(),
    )));
    let tcp = run_sharded_schedule(&mut ShardedTcp(
        ShardedTcpCluster::spawn(sharded_map(), SHARDED_NODES, quiet_sharded()).unwrap(),
    ));

    for node in 0..SHARDED_NODES {
        assert_eq!(
            local[node], threaded[node],
            "node {node}: sharded in-process vs threaded costs diverge"
        );
        assert_eq!(local[node], tcp[node], "node {node}: sharded in-process vs TCP costs diverge");
    }
    assert!(local.iter().any(|c| c.bytes_sent > 0 && c.messages_sent > 0));
}
