//! Integration tests of the threaded runtime: concurrency, loss, crashes,
//! out-of-bound fetches, and invariant preservation under real threads.

use epidb::net::{ClusterConfig, ThreadedCluster};
use epidb::prelude::*;
use std::time::Duration;

fn fast() -> ClusterConfig {
    ClusterConfig { gossip_interval: Duration::from_millis(1), ..ClusterConfig::default() }
}

#[test]
fn concurrent_writers_converge_under_loss_and_latency() {
    let cluster = ThreadedCluster::spawn(
        5,
        200,
        ClusterConfig {
            gossip_interval: Duration::from_millis(1),
            loss_probability: 0.2,
            latency: Duration::from_micros(50),
            ..ClusterConfig::default()
        },
    );
    // Single-writer partition: node = item mod 5.
    for i in 0..100u32 {
        let node = NodeId((i % 5) as u16);
        cluster.update(node, ItemId(i), UpdateOp::set(format!("v{i}").into_bytes())).unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(60)), "no quiescence under loss");
    for i in (0..100u32).step_by(13) {
        for node in 0..5u16 {
            assert_eq!(
                cluster.read(NodeId(node), ItemId(i)).unwrap(),
                format!("v{i}").into_bytes()
            );
        }
    }
    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().unwrap();
        assert_eq!(r.costs().conflicts_detected, 0);
        assert_eq!(r.counters().equal_receipts, 0);
        assert_eq!(r.counters().stale_receipts, 0);
    }
}

#[test]
fn oob_fetch_reconciles_under_live_gossip() {
    let cluster = ThreadedCluster::spawn(3, 50, fast());
    cluster.update(NodeId(0), ItemId(9), UpdateOp::set(&b"hot"[..])).unwrap();
    // Fetch out-of-bound while gossip runs concurrently.
    let _ = cluster.oob_fetch(NodeId(1), NodeId(0), ItemId(9)).unwrap();
    assert_eq!(cluster.read(NodeId(1), ItemId(9)).unwrap(), b"hot");
    // Quiescence requires all auxiliary state to drain.
    assert!(cluster.quiesce(Duration::from_secs(30)));
    cluster.with_replica(NodeId(1), |r| {
        assert_eq!(r.aux_item_count(), 0);
        assert_eq!(r.read_regular(ItemId(9)).unwrap().as_bytes(), b"hot");
    });
    cluster.shutdown();
}

#[test]
fn repeated_crash_revive_cycles_stay_consistent() {
    let cluster = ThreadedCluster::spawn(4, 50, fast());
    for cycle in 0..3u8 {
        let victim = NodeId((cycle % 4) as u16);
        cluster.crash(victim);
        // Updates continue at a surviving node.
        let writer = NodeId(((cycle + 1) % 4) as u16);
        cluster.update(writer, ItemId(cycle as u32), UpdateOp::set(vec![cycle + 1])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)));
        cluster.revive(victim);
        assert!(cluster.quiesce(Duration::from_secs(30)));
        assert_eq!(cluster.read(victim, ItemId(cycle as u32)).unwrap(), vec![cycle + 1]);
    }
    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().unwrap();
    }
}

#[test]
fn update_on_downed_node_is_rejected_and_state_preserved() {
    let cluster = ThreadedCluster::spawn(2, 10, fast());
    cluster.update(NodeId(1), ItemId(0), UpdateOp::set(&b"pre-crash"[..])).unwrap();
    assert!(cluster.quiesce(Duration::from_secs(20)));
    cluster.crash(NodeId(1));
    assert!(matches!(
        cluster.update(NodeId(1), ItemId(0), UpdateOp::set(&b"x"[..])),
        Err(Error::NodeDown(NodeId(1)))
    ));
    // Durable state survives the crash.
    cluster.with_replica(NodeId(1), |r| {
        assert_eq!(r.read(ItemId(0)).unwrap().as_bytes(), b"pre-crash");
    });
    cluster.shutdown();
}
