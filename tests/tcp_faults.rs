//! Fault injection over real sockets: the TCP runtime must converge under
//! message loss combined with a crash/recovery, with paranoid per-step
//! audits running at every replica throughout.

use epidb::net::{TcpCluster, TcpConfig};
use epidb::prelude::*;
use std::time::Duration;

#[test]
fn tcp_cluster_converges_under_loss_and_crash() {
    let cluster = TcpCluster::spawn(
        3,
        30,
        TcpConfig {
            gossip_interval: Duration::from_millis(2),
            loss_probability: 0.25,
            paranoid: true,
            ..TcpConfig::default()
        },
    )
    .unwrap();

    for i in 0..8u32 {
        cluster
            .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8 + 1; 40]))
            .unwrap();
    }

    // Crash a node mid-stream; updates keep landing elsewhere.
    cluster.crash(NodeId(1));
    assert!(matches!(
        cluster.update(NodeId(1), ItemId(9), UpdateOp::set(&b"x"[..])),
        Err(Error::NodeDown(NodeId(1)))
    ));
    cluster.update(NodeId(0), ItemId(9), UpdateOp::set(&b"while-down"[..])).unwrap();
    cluster.update(NodeId(2), ItemId(10), UpdateOp::append(&b"tail"[..])).unwrap();
    assert!(cluster.quiesce(Duration::from_secs(60)), "survivors did not converge under loss");

    // The crashed node recovers its durable state and catches up through
    // ordinary anti-entropy.
    cluster.revive(NodeId(1));
    assert!(cluster.quiesce(Duration::from_secs(60)), "revived node did not catch up");

    for i in 0..8u32 {
        for node in 0..3u16 {
            assert_eq!(cluster.read(NodeId(node), ItemId(i)).unwrap(), vec![i as u8 + 1; 40]);
        }
    }
    assert_eq!(cluster.read(NodeId(1), ItemId(9)).unwrap(), b"while-down");
    assert_eq!(cluster.read(NodeId(1), ItemId(10)).unwrap(), b"tail");

    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().unwrap_or_else(|e| panic!("invariant violated at {}: {e}", r.id()));
        assert!(r.audits_run() > 0, "paranoid audits never ran at {}", r.id());
        assert_eq!(r.costs().conflicts_detected, 0);
    }
}

#[test]
fn tcp_delta_gossip_converges_under_loss() {
    let cluster = TcpCluster::spawn(
        3,
        20,
        TcpConfig {
            gossip_interval: Duration::from_millis(2),
            loss_probability: 0.2,
            delta_budget: 1 << 20,
            paranoid: true,
            ..TcpConfig::default()
        },
    )
    .unwrap();
    for i in 0..6u32 {
        cluster
            .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 50]))
            .unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(60)), "delta gossip did not converge under loss");
    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().unwrap();
        assert!(r.audits_run() > 0);
    }
}

/// A transport wrapper that kills the TCP connection on one chosen
/// exchange: the frame never goes out, the socket is dropped, and the
/// caller sees a network error — a connection dying between the delta
/// offer and the fetch.
struct KillNthExchange {
    inner: epidb::net::TcpTransport,
    n: usize,
    count: usize,
}

impl epidb::core::Transport for KillNthExchange {
    fn peer(&self) -> NodeId {
        self.inner.peer()
    }

    fn exchange(
        &mut self,
        req: epidb::core::ProtocolRequest,
    ) -> Result<epidb::core::ProtocolResponse> {
        self.count += 1;
        if self.count == self.n {
            self.inner.reset();
            return Err(Error::Network("connection killed mid-exchange".into()));
        }
        self.inner.exchange(req)
    }
}

/// Kill the connection between the delta offer and the delta fetch: the
/// recipient saw the offer, the responder never got the fetch. The retry
/// policy must ride through — the next attempt restarts the round from
/// the current DBVV, reconnects, and converges — and the responder's
/// invariants must hold throughout (serving an offer changes nothing).
#[test]
fn tcp_kill_between_delta_offer_and_fetch_retries_cleanly() {
    use epidb::core::RetryPolicy;

    let cluster = TcpCluster::spawn(
        2,
        10,
        TcpConfig {
            // The harness drives the only pulls.
            gossip_interval: Duration::from_secs(3600),
            delta_budget: 1 << 20,
            paranoid: true,
            ..TcpConfig::default()
        },
    )
    .unwrap();

    for i in 0..4u32 {
        cluster.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8 + 1; 40])).unwrap();
    }

    // Exchange 1 is DeltaPull -> DeltaOffer; exchange 2 is the fetch.
    let mut transport = KillNthExchange { inner: cluster.transport_to(NodeId(0)), n: 2, count: 0 };

    // Without retries the round fails where the connection died...
    let policy = RetryPolicy::none();
    assert!(cluster.pull_delta_now_via(NodeId(1), &mut transport, &policy).is_err());

    // ...and with retries the next attempt completes the round.
    let mut transport = KillNthExchange { inner: cluster.transport_to(NodeId(0)), n: 2, count: 0 };
    let policy = RetryPolicy::attempts(4);
    let outcome = cluster.pull_delta_now_via(NodeId(1), &mut transport, &policy).unwrap();
    assert!(!outcome.copied().is_empty(), "retry must complete the interrupted round");

    for i in 0..4u32 {
        assert_eq!(cluster.read(NodeId(1), ItemId(i)).unwrap(), vec![i as u8 + 1; 40]);
    }
    cluster.with_replica(NodeId(1), |r| {
        assert!(r.costs().retries > 0, "the killed exchange must be counted as a retry");
    });

    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().unwrap_or_else(|e| panic!("invariant violated at {}: {e}", r.id()));
        assert_eq!(r.costs().conflicts_detected, 0);
    }
}
