//! Property-based convergence tests: random single-writer operation
//! schedules, random pull orders, and random out-of-bound copies must
//! always leave the cluster convergent with intact invariants — the §7
//! theorem, falsification-tested.

use epidb::prelude::*;
use epidb::sim::EpidbCluster;
use proptest::prelude::*;

/// One scripted action in a randomized run.
#[derive(Clone, Debug)]
enum Action {
    /// Update item `x` (at its single writer, `x mod n`).
    Update { x: u8 },
    /// Pull: `r` from `s`.
    Pull { r: u8, s: u8 },
    /// Out-of-bound copy of `x`: `r` from `s`.
    Oob { r: u8, s: u8, x: u8 },
}

const N_NODES: usize = 4;
const N_ITEMS: usize = 12;

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..N_ITEMS as u8).prop_map(|x| Action::Update { x }),
        3 => (0u8..N_NODES as u8, 0u8..N_NODES as u8).prop_map(|(r, s)| Action::Pull { r, s }),
        1 => (0u8..N_NODES as u8, 0u8..N_NODES as u8, 0u8..N_ITEMS as u8)
            .prop_map(|(r, s, x)| Action::Oob { r, s, x }),
    ]
}

fn run_script(script: &[Action]) -> EpidbCluster {
    let mut cluster = EpidbCluster::new(N_NODES, N_ITEMS);
    let mut counter: u64 = 0;
    for action in script {
        match action {
            Action::Update { x } => {
                counter += 1;
                let item = ItemId(*x as u32);
                let node = NodeId((item.index() % N_NODES) as u16);
                let mut payload = counter.to_le_bytes().to_vec();
                payload.push(b'.');
                cluster.replica_mut(node).update(item, UpdateOp::append(payload)).expect("update");
            }
            Action::Pull { r, s } => {
                if r != s {
                    cluster.pull_pair(NodeId(*r as u16), NodeId(*s as u16)).expect("pull");
                }
            }
            Action::Oob { r, s, x } => {
                if r != s {
                    cluster
                        .oob(NodeId(*r as u16), NodeId(*s as u16), ItemId(*x as u32))
                        .expect("oob");
                }
            }
        }
        cluster.assert_invariants();
    }
    cluster
}

fn quiesce(cluster: &mut EpidbCluster) {
    for _ in 0..(2 * N_NODES + 2) {
        for r in 0..N_NODES {
            for s in 0..N_NODES {
                if r != s {
                    cluster.pull_pair(NodeId::from_index(r), NodeId::from_index(s)).expect("pull");
                }
            }
        }
        if cluster.fully_converged() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Single-writer runs: zero conflicts, full convergence, invariants
    /// intact — regardless of the schedule.
    #[test]
    fn random_schedules_converge(script in prop::collection::vec(arb_action(), 1..120)) {
        let mut cluster = run_script(&script);
        quiesce(&mut cluster);
        prop_assert_eq!(cluster.conflicts_declared(), 0);
        prop_assert!(cluster.fully_converged(), "cluster failed to converge");
        cluster.assert_invariants();
        // No rare-path counters fired.
        for node in 0..N_NODES {
            let c = cluster.replica(NodeId::from_index(node)).counters();
            prop_assert_eq!(c.equal_receipts, 0);
            prop_assert_eq!(c.stale_receipts, 0);
        }
    }

    /// Every replica's user-visible value is always a prefix chain member:
    /// after quiescing, all replicas agree exactly.
    #[test]
    fn values_identical_after_quiesce(script in prop::collection::vec(arb_action(), 1..80)) {
        let mut cluster = run_script(&script);
        quiesce(&mut cluster);
        for x in 0..N_ITEMS {
            let x = ItemId::from_index(x);
            let v0 = cluster.replica(NodeId(0)).read(x).unwrap().clone();
            for node in 1..N_NODES {
                let v = cluster.replica(NodeId::from_index(node)).read(x).unwrap();
                prop_assert_eq!(v, &v0);
            }
        }
    }
}
