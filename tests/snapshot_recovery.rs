//! Integration: snapshot persistence composed with live runtimes — a node
//! crashes, its state is restored from a snapshot, and it rejoins a
//! running cluster via ordinary anti-entropy.

use epidb::prelude::*;
use epidb::sim::EpidbCluster;

#[test]
fn restored_replica_rejoins_simulated_cluster() {
    let mut cluster = EpidbCluster::new(3, 100);
    for i in 0..30u32 {
        cluster
            .update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8; 16]))
            .unwrap();
    }
    for _ in 0..3 {
        for r in 0..3 {
            for s in 0..3 {
                if r != s {
                    cluster.pull_pair(NodeId(r), NodeId(s)).unwrap();
                }
            }
        }
    }
    assert!(cluster.fully_converged());

    // "Crash" node 2: persist, replace its state with a blank replica (as
    // if the disk were the snapshot and memory was lost)...
    let snapshot = cluster.replica(NodeId(2)).to_snapshot();
    *cluster.replica_mut(NodeId(2)) = Replica::from_snapshot(&snapshot).unwrap();

    // ...updates continue elsewhere while it was down...
    cluster.update(NodeId(0), ItemId(99), UpdateOp::set(&b"while-down"[..])).unwrap();

    // ...and ordinary anti-entropy completes the recovery.
    let out = cluster.pull_pair(NodeId(2), NodeId(0)).unwrap();
    assert_eq!(out.copied(), &[ItemId(99)]);
    assert_eq!(cluster.replica(NodeId(2)).read(ItemId(99)).unwrap().as_bytes(), b"while-down");
    cluster.assert_invariants();
}

#[test]
fn snapshot_sizes_scale_with_content_not_history() {
    // Thousands of updates to few items: the snapshot holds current state
    // + bounded logs, not the update history.
    let mut a = Replica::new(NodeId(0), 2, 50);
    for k in 0..5_000u64 {
        a.update(ItemId((k % 5) as u32), UpdateOp::set(k.to_le_bytes().to_vec())).unwrap();
    }
    let buf = a.to_snapshot();
    // 50 items x (8B value + vv) + 5 log records + headers: well under
    // 8 KiB despite 5_000 updates.
    assert!(buf.len() < 8_192, "snapshot unexpectedly large: {} bytes", buf.len());
    let restored = Replica::from_snapshot(&buf).unwrap();
    assert_eq!(restored.dbvv().total(), 5_000);
    assert_eq!(restored.log().total_len(), 5);
}

#[test]
fn server_snapshot_survives_multi_database_recovery() {
    use epidb::core::{pull_server, Server};
    let mut a = Server::new(NodeId(0), 2);
    let mut b = Server::new(NodeId(1), 2);
    for s in [&mut a, &mut b] {
        s.create_database("alpha", 20, ConflictPolicy::Report).unwrap();
        s.create_database("beta", 20, ConflictPolicy::Report).unwrap();
    }
    a.update("alpha", ItemId(0), UpdateOp::set(&b"1"[..])).unwrap();
    b.update("beta", ItemId(1), UpdateOp::set(&b"2"[..])).unwrap();
    pull_server(&mut b, &mut a).unwrap();
    pull_server(&mut a, &mut b).unwrap();

    let restored = Server::from_snapshot(&b.to_snapshot()).unwrap();
    let mut restored = restored;
    a.update("alpha", ItemId(5), UpdateOp::set(&b"new"[..])).unwrap();
    pull_server(&mut restored, &mut a).unwrap();
    assert_eq!(restored.read("alpha", ItemId(5)).unwrap().as_bytes(), b"new");
    assert_eq!(restored.read("beta", ItemId(1)).unwrap().as_bytes(), b"2");
    restored.check_invariants().unwrap();
}
