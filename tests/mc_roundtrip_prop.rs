//! Property test for the model checker's state surface: across random
//! op/pull/delta/OOB/crash schedules, `mc_restore(mc_snapshot(r))` is
//! observationally equal to `r` and fingerprints are stable —
//!
//! * the restored replica has the same canonical fingerprint,
//! * it reads every item identically, carries the same DBVV and the same
//!   conflict/cost accounting, and passes the full invariant battery,
//! * snapshotting it again yields a byte-identical [`McSnapshot`], and
//! * fingerprinting is a pure function (two calls agree).
//!
//! This is what makes exploration sound: the checker forks and dedups
//! worlds through exactly this surface, so a round-trip that lost or
//! reordered state would make "visited" fingerprints lie.
//!
//! [`McSnapshot`]: epidb::core::McSnapshot

use epidb::prelude::*;
use proptest::prelude::*;

const N_NODES: usize = 3;
const N_ITEMS: usize = 6;

/// Borrow two distinct replicas mutably.
fn pair_mut(replicas: &mut [Replica], a: usize, b: usize) -> (&mut Replica, &mut Replica) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = replicas.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `steps` is a random schedule: (kind, node, item, payload byte).
    /// Kinds 0–1 are updates (double weight), 2 pull, 3 out-of-bound
    /// copy, 4 delta pull, 5 crash/recovery through the durable snapshot
    /// codec.
    #[test]
    fn mc_snapshot_round_trip_preserves_observable_state(
        steps in prop::collection::vec(
            (0u8..6, 0usize..N_NODES, 0usize..N_ITEMS, any::<u8>()),
            1..80,
        ),
        lww in any::<bool>(),
    ) {
        let policy = if lww { ConflictPolicy::ResolveLww } else { ConflictPolicy::Report };
        let mut replicas: Vec<Replica> = (0..N_NODES)
            .map(|i| {
                let mut r = Replica::with_policy(NodeId::from_index(i), N_NODES, N_ITEMS, policy);
                r.enable_delta(1 << 16);
                r
            })
            .collect();

        for (i, &(kind, node, item, byte)) in steps.iter().enumerate() {
            let peer = (node + 1 + (byte as usize) % (N_NODES - 1)) % N_NODES;
            match kind {
                0 | 1 => {
                    replicas[node]
                        .update(ItemId::from_index(item), UpdateOp::append(vec![byte, b';']))
                        .unwrap();
                }
                2 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    pull(r, s).unwrap();
                }
                3 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    oob_copy(r, s, ItemId::from_index(item)).unwrap();
                }
                4 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    pull_delta(r, s).unwrap();
                }
                _ => {
                    let snapshot = replicas[node].to_snapshot();
                    let mut revived = Replica::from_snapshot(&snapshot).unwrap();
                    revived.enable_delta(1 << 16);
                    replicas[node] = revived;
                }
            }

            for r in &replicas {
                let fp = r.fingerprint();
                prop_assert_eq!(fp, r.fingerprint(), "fingerprint is pure (step {})", i);

                let snap = r.mc_snapshot();
                let restored = Replica::mc_restore(&snap).unwrap();

                // Same canonical identity...
                prop_assert_eq!(restored.fingerprint(), fp, "round-trip fingerprint (step {})", i);
                // ...same observable state...
                prop_assert_eq!(restored.dbvv(), r.dbvv(), "DBVV (step {})", i);
                for x in 0..N_ITEMS {
                    let x = ItemId::from_index(x);
                    prop_assert_eq!(restored.read(x).unwrap(), r.read(x).unwrap());
                    prop_assert_eq!(restored.item_ivv(x).unwrap(), r.item_ivv(x).unwrap());
                }
                prop_assert_eq!(restored.costs(), r.costs(), "cost accounting (step {})", i);
                prop_assert_eq!(
                    restored.conflicts().len(), r.conflicts().len(),
                    "conflict queue (step {})", i
                );
                // ...still invariant-clean, and stable under a second
                // round-trip: same durable image, same fingerprint.
                restored.check_invariants().unwrap();
                let again = restored.mc_snapshot();
                prop_assert_eq!(
                    again.durable_bytes(), snap.durable_bytes(),
                    "durable image stability (step {})", i
                );
                prop_assert_eq!(
                    Replica::mc_restore(&again).unwrap().fingerprint(), fp,
                    "double round-trip fingerprint (step {})", i
                );
            }
        }
    }
}
