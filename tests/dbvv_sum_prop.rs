//! Property test for the central bookkeeping invariant (DESIGN §7): after
//! *every* protocol step — local update, anti-entropy pull, out-of-bound
//! copy, delta-mode pull, intra-node replay, crash/recovery — each
//! replica's DBVV equals the component-wise sum of its regular item IVVs
//! (the defining property of maintenance rules 1–3, §4.1).
//!
//! The whole invariant battery is one line per step thanks to the
//! [`ReplicaAuditor`](epidb::core::ReplicaAuditor) behind `Replica::audit`.

use epidb::prelude::*;
use proptest::prelude::*;

const N_NODES: usize = 3;
const N_ITEMS: usize = 6;

/// Borrow two distinct replicas mutably.
fn pair_mut(replicas: &mut [Replica], a: usize, b: usize) -> (&mut Replica, &mut Replica) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = replicas.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `steps` is a random schedule: (kind, node, item, payload byte).
    /// Kinds 0–1 are updates (double weight), 2 pull, 3 out-of-bound copy,
    /// 4 delta pull, 5 crash/recovery.
    #[test]
    fn dbvv_equals_ivv_sum_after_every_step(
        steps in prop::collection::vec(
            (0u8..6, 0usize..N_NODES, 0usize..N_ITEMS, any::<u8>()),
            1..100,
        ),
        lww in any::<bool>(),
    ) {
        let policy = if lww { ConflictPolicy::ResolveLww } else { ConflictPolicy::Report };
        let mut replicas: Vec<Replica> = (0..N_NODES)
            .map(|i| Replica::with_policy(NodeId::from_index(i), N_NODES, N_ITEMS, policy))
            .collect();

        for (i, &(kind, node, item, byte)) in steps.iter().enumerate() {
            let peer = (node + 1 + (byte as usize) % (N_NODES - 1)) % N_NODES;
            match kind {
                0 | 1 => {
                    let payload = vec![byte, b';'];
                    replicas[node].update(ItemId::from_index(item), UpdateOp::append(payload)).unwrap();
                }
                2 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    pull(r, s).unwrap();
                    r.drain_conflicts();
                }
                3 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    oob_copy(r, s, ItemId::from_index(item)).unwrap();
                    r.drain_conflicts();
                }
                4 => {
                    let (r, s) = pair_mut(&mut replicas, node, peer);
                    pull_delta(r, s).unwrap();
                    r.drain_conflicts();
                }
                _ => {
                    let snapshot = replicas[node].to_snapshot();
                    replicas[node] = Replica::from_snapshot(&snapshot).unwrap();
                }
            }
            for r in &replicas {
                let report = r.audit();
                prop_assert!(report.is_clean(), "after step {i} ({kind}): {}", report.summary());
            }
        }
    }
}
