//! The zero-copy payload path ships *views* of live store buffers, so the
//! dangerous case is mutate-after-ship: once a value has been handed to a
//! message (and possibly adopted by another replica's store), any later
//! in-place mutation must go through copy-on-write and leave every
//! outstanding alias byte-for-byte intact.

use epidb::prelude::*;
use proptest::prelude::*;

const N_ITEMS: usize = 16;
const X: ItemId = ItemId(3);

fn pair() -> (Replica, Replica) {
    (Replica::new(NodeId(0), 2, N_ITEMS), Replica::new(NodeId(1), 2, N_ITEMS))
}

/// After a pull through the in-process transport, the recipient's copy
/// aliases the source's buffer (adoption is a refcount bump); a later
/// byte-range write at the source must diverge the storage, not the
/// shipped bytes.
#[test]
fn write_after_ship_leaves_recipient_bytes_intact() {
    let (mut a, mut b) = pair();
    let original = vec![0xABu8; 4096];
    a.update(X, UpdateOp::set(original.clone())).unwrap();
    pull(&mut b, &mut a).unwrap();

    // Zero memcpys source store → recipient store: same allocation.
    let a_ptr = a.read(X).unwrap().as_bytes().as_ptr();
    let b_ptr = b.read(X).unwrap().as_bytes().as_ptr();
    assert_eq!(a_ptr, b_ptr, "adoption must alias the source's buffer");

    a.update(X, UpdateOp::write_range(0, &b"CLOBBER"[..])).unwrap();
    assert_eq!(a.read(X).unwrap().as_bytes()[..7], b"CLOBBER"[..]);
    assert_eq!(b.read(X).unwrap().as_bytes(), &original[..], "recipient copy must not move");
    assert_ne!(
        a.read(X).unwrap().as_bytes().as_ptr(),
        b.read(X).unwrap().as_bytes().as_ptr(),
        "copy-on-write must have diverged the storage"
    );
    a.check_invariants().unwrap();
    b.check_invariants().unwrap();
}

/// The reverse direction: the *recipient* mutating its adopted (aliased)
/// copy must not write through into the source's store.
#[test]
fn recipient_mutation_does_not_write_through() {
    let (mut a, mut b) = pair();
    a.update(X, UpdateOp::set(vec![0x55u8; 1024])).unwrap();
    pull(&mut b, &mut a).unwrap();
    b.update(X, UpdateOp::append(&b"-extended"[..])).unwrap();
    assert_eq!(a.read(X).unwrap().as_bytes(), &[0x55u8; 1024][..]);
    assert_eq!(b.read(X).unwrap().len(), 1024 + 9);
}

/// Out-of-bound replies alias the source buffer too: the adopted auxiliary
/// copy must survive a later source-side overwrite.
#[test]
fn oob_reply_survives_source_overwrite() {
    let (mut a, mut b) = pair();
    let original = vec![0x77u8; 2048];
    a.update(X, UpdateOp::set(original.clone())).unwrap();
    let out = oob_copy(&mut b, &mut a, X).unwrap();
    assert_eq!(out, OobOutcome::Adopted { from_aux: false });
    a.update(X, UpdateOp::set(vec![0x99u8; 8])).unwrap();
    let aux = b.aux_item(X).expect("oob adopted an aux copy");
    assert_eq!(aux.value.as_bytes(), &original[..]);
}

/// An LWW conflict resolution that overwrites the local value must not
/// disturb a copy shipped (and adopted elsewhere) before the conflict.
#[test]
fn lww_overwrite_after_ship_leaves_shipped_bytes_intact() {
    let n = 3;
    let mut a = Replica::with_policy(NodeId(0), n, N_ITEMS, ConflictPolicy::ResolveLww);
    let mut b = Replica::with_policy(NodeId(1), n, N_ITEMS, ConflictPolicy::ResolveLww);
    let mut c = Replica::with_policy(NodeId(2), n, N_ITEMS, ConflictPolicy::ResolveLww);

    let a_value = vec![0x10u8; 512];
    a.update(X, UpdateOp::set(a_value.clone())).unwrap();
    // Ship a's copy to c *before* the conflict exists; c now aliases it.
    pull(&mut c, &mut a).unwrap();
    assert_eq!(c.read(X).unwrap().as_bytes(), &a_value[..]);

    // Concurrent update at b, then a pulls from b → concurrent IVVs → LWW
    // resolution overwrites a's copy in place (or adopts b's).
    b.update(X, UpdateOp::set(vec![0xF0u8; 512])).unwrap();
    let out = pull(&mut a, &mut b).unwrap();
    assert!(matches!(out, PullOutcome::Propagated(ref o) if o.conflicts == 1));

    assert_eq!(c.read(X).unwrap().as_bytes(), &a_value[..], "pre-conflict shipment moved");
    a.check_invariants().unwrap();
    c.check_invariants().unwrap();
}

proptest! {
    /// Any chain of post-ship mutations at either end never alters what
    /// the other replica holds from the shipment.
    #[test]
    fn arbitrary_post_ship_mutations_never_alias(
        seed in prop::collection::vec(any::<u8>(), 129..512),
        ops in prop::collection::vec(
            prop_oneof![
                (any::<u8>(), prop::collection::vec(any::<u8>(), 1..32))
                    .prop_map(|(o, d)| UpdateOp::write_range(o as usize, d)),
                prop::collection::vec(any::<u8>(), 1..32).prop_map(UpdateOp::append),
                prop::collection::vec(any::<u8>(), 0..64).prop_map(UpdateOp::set),
            ],
            1..6,
        ),
    ) {
        let (mut a, mut b) = pair();
        a.update(X, UpdateOp::set(seed.clone())).unwrap();
        pull(&mut b, &mut a).unwrap();
        for op in ops {
            a.update(X, op).unwrap();
        }
        prop_assert_eq!(b.read(X).unwrap().as_bytes(), &seed[..]);
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }
}
