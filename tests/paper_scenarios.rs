//! Scenario tests transcribed directly from the paper's text: each test's
//! comment cites the passage it encodes.

use epidb::baselines::SyncProtocol;
use epidb::prelude::*;
use epidb::sim::EpidbCluster;

/// §3, Theorem 3 corollary 1, lifted to databases (§4.1): "If two copies
/// ... have component-wise identical version vectors, then these copies
/// are identical" — equal DBVVs really do mean byte-identical databases.
#[test]
fn equal_dbvvs_imply_identical_databases() {
    let mut c = EpidbCluster::new(3, 100);
    for i in 0..30u32 {
        c.update(NodeId((i % 3) as u16), ItemId(i), UpdateOp::set(vec![i as u8])).unwrap();
    }
    // Full mesh until DBVVs agree.
    for _ in 0..4 {
        for r in 0..3 {
            for s in 0..3 {
                if r != s {
                    c.pull_pair(NodeId(r), NodeId(s)).unwrap();
                }
            }
        }
    }
    let dbvv0 = c.replica(NodeId(0)).dbvv().clone();
    assert_eq!(c.replica(NodeId(1)).dbvv().compare(&dbvv0), VvOrd::Equal);
    assert_eq!(c.replica(NodeId(2)).dbvv().compare(&dbvv0), VvOrd::Equal);
    for x in ItemId::all(100) {
        let v = c.value(NodeId(0), x);
        assert_eq!(c.value(NodeId(1), x), v);
        assert_eq!(c.value(NodeId(2), x), v);
    }
}

/// §1: "multiple updates can often be bundled together and propagated in a
/// single transfer" — and §4.2: only the latest record per item is
/// retained, so the bundle size is the item count, not the update count.
#[test]
fn updates_bundle_into_single_transfer() {
    let mut a = Replica::new(NodeId(0), 2, 1000);
    let mut b = Replica::new(NodeId(1), 2, 1000);
    for k in 0..500 {
        a.update(ItemId(k % 5), UpdateOp::set(vec![(k % 251) as u8; 16])).unwrap();
    }
    let before = a.costs();
    let out = pull(&mut b, &mut a).unwrap();
    assert_eq!(out.copied().len(), 5);
    let d = a.costs() - before;
    assert_eq!(d.messages_sent, 1, "one transfer");
    // Constant control info per item: 5 records + 5 (id + IVV) entries,
    // plus the message envelope.
    assert_eq!(d.control_bytes, 16 + 5 * 12 + 5 * (4 + 16));
}

/// §5.1 footnote 2: "out-of-bound copying never reduces the amount of work
/// done during update propagation" — the item is copied again even though
/// the recipient already fetched it out-of-bound.
#[test]
fn oob_does_not_reduce_scheduled_propagation_work() {
    let mut a = Replica::new(NodeId(0), 2, 10);
    let mut b = Replica::new(NodeId(1), 2, 10);
    a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
    oob_copy(&mut b, &mut a, ItemId(1)).unwrap();
    assert_eq!(b.read(ItemId(1)).unwrap().as_bytes(), b"v");
    // Scheduled propagation still ships the item.
    let out = pull(&mut b, &mut a).unwrap();
    assert_eq!(out.copied(), &[ItemId(1)]);
}

/// §5.2: "Auxiliary copies are preferred not for correctness but as an
/// optimization: the auxiliary copy of a data item (if exists) is never
/// older than the regular copy."
#[test]
fn aux_copy_is_never_older_than_regular() {
    let mut a = Replica::new(NodeId(0), 3, 10);
    let mut b = Replica::new(NodeId(1), 3, 10);
    a.update(ItemId(0), UpdateOp::set(&b"v1"[..])).unwrap();
    oob_copy(&mut b, &mut a, ItemId(0)).unwrap();
    b.update(ItemId(0), UpdateOp::append(&b"+b"[..])).unwrap();
    // b's aux vv must dominate or equal its regular vv.
    let aux_ivv = b.aux_item(ItemId(0)).unwrap().ivv.clone();
    let reg_ivv = b.item_ivv(ItemId(0)).unwrap();
    assert_eq!(aux_ivv.compare(reg_ivv), VvOrd::Dominates);
}

/// §4.1 rule 3's intuition paragraph: copying a newer item advances the
/// recipient's DBVV by exactly the number of extra updates the incoming
/// copy has seen, per origin.
#[test]
fn dbvv_rule3_advances_by_exact_update_difference() {
    let mut a = Replica::new(NodeId(0), 2, 10);
    let mut b = Replica::new(NodeId(1), 2, 10);
    for _ in 0..7 {
        a.update(ItemId(3), UpdateOp::append(&b"x"[..])).unwrap();
    }
    assert_eq!(b.dbvv().get(NodeId(0)), 0);
    pull(&mut b, &mut a).unwrap();
    assert_eq!(b.dbvv().get(NodeId(0)), 7);
    assert_eq!(b.dbvv().get(NodeId(1)), 0);
}

/// §2: "a server may obtain a newer replica of a particular data item at
/// any time (out-of-bound), for example, on demand from the user" — and
/// reads at that server see it immediately.
#[test]
fn oob_makes_new_version_immediately_visible() {
    let mut c = EpidbCluster::new(4, 50);
    c.update(NodeId(0), ItemId(10), UpdateOp::set(&b"breaking news"[..])).unwrap();
    c.oob(NodeId(3), NodeId(0), ItemId(10)).unwrap();
    assert_eq!(c.replica(NodeId(3)).read(ItemId(10)).unwrap().as_bytes(), b"breaking news");
    // Other replicas are unaffected until scheduled propagation.
    assert_eq!(c.replica(NodeId(1)).read(ItemId(10)).unwrap().as_bytes(), b"");
}

/// §6: "the message sent from the source ... includes data items being
/// propagated plus constant amount of information per data item" —
/// growing the *database* must not grow the message.
#[test]
fn message_size_independent_of_database_size() {
    let bytes_for = |n_items: usize| -> u64 {
        let mut a = Replica::new(NodeId(0), 2, n_items);
        let mut b = Replica::new(NodeId(1), 2, n_items);
        for i in 0..10 {
            a.update(ItemId(i), UpdateOp::set(vec![7; 32])).unwrap();
        }
        pull(&mut b, &mut a).unwrap();
        a.costs().bytes_sent
    };
    assert_eq!(bytes_for(100), bytes_for(100_000));
}

/// §7 / Definition 4: transitive propagation through a long chain delivers
/// updates end-to-end, and every intermediate hop attributes log records
/// to the true origin.
#[test]
fn long_chain_transitive_propagation() {
    let n = 8;
    let mut c = EpidbCluster::new(n, 20);
    c.update(NodeId(0), ItemId(5), UpdateOp::set(&b"chain"[..])).unwrap();
    for hop in 1..n {
        c.pull_pair(NodeId::from_index(hop), NodeId::from_index(hop - 1)).unwrap();
    }
    let last = NodeId::from_index(n - 1);
    assert_eq!(c.replica(last).read(ItemId(5)).unwrap().as_bytes(), b"chain");
    // The record at the last hop is attributed to origin 0.
    assert!(c.replica(last).log().retained(NodeId(0), ItemId(5)).is_some());
    c.assert_invariants();
}
