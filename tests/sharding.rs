//! Integration tests for sharded partial replication: per-shard
//! convergence under chaos, ownership-scoped costs, typed routing errors,
//! and the durable shard-handoff flow (snapshot-ship + WAL-tail catch-up)
//! with §2.1 invariants verified at every step.

use epidb::core::{ChaosLink, FaultPlan, RetryPolicy};
use epidb::durable::{DurabilityConfig, NodeDurability, ShardedDurability};
use epidb::prelude::*;
use epidb::sim::ShardedSimCluster;

/// 4 nodes, 2 groups × 2 nodes, disjoint shard sets (2 shards × 4 items).
fn two_group_map() -> ShardMap {
    ShardMap::new(4, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
}

#[test]
fn sharded_cluster_converges_per_shard_under_chaos_with_audits_on() {
    let mut cluster = ShardedSimCluster::new(two_group_map(), 4);
    cluster.set_paranoid(true);

    // Single-writer-per-item workload across both groups.
    for i in 0..4u32 {
        cluster.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8; 32])).unwrap();
        cluster.update(NodeId(2), ItemId(4 + i), UpdateOp::set(vec![0x40 + i as u8; 32])).unwrap();
    }

    // Lossy, duplicating, corrupting links; retries absorb the chaos.
    let policy = RetryPolicy::attempts(48);
    let mut links: Vec<ChaosLink> =
        (0..4).map(|i| ChaosLink::new(0xC0FFEE + i as u64, FaultPlan::lossy(0.25))).collect();
    let pairs = [
        (NodeId(1), NodeId(0), ShardId(0)),
        (NodeId(0), NodeId(1), ShardId(0)),
        (NodeId(3), NodeId(2), ShardId(1)),
        (NodeId(2), NodeId(3), ShardId(1)),
    ];
    for sweep in 0..12 {
        for (k, &(r, s, shard)) in pairs.iter().enumerate() {
            let _ = cluster.pull_shard_chaos(r, s, shard, &mut links[k], &policy);
        }
        if cluster.converged() {
            assert!(sweep < 12);
            break;
        }
    }
    assert!(cluster.converged(), "sharded cluster did not converge under chaos");
    cluster.assert_invariants();
    assert!(cluster.paranoid_audits_total() > 0, "paranoid audits must have run");
    for i in 0..4u32 {
        assert_eq!(cluster.read(NodeId(1), ItemId(i)).unwrap(), vec![i as u8; 32]);
        assert_eq!(cluster.read(NodeId(3), ItemId(4 + i)).unwrap(), vec![0x40 + i as u8; 32]);
    }
}

#[test]
fn node_costs_cover_only_owned_shards() {
    let mut cluster = ShardedSimCluster::new(two_group_map(), 4);

    // Group 0 does one small sync; record its nodes' costs.
    cluster.update(NodeId(0), ItemId(0), UpdateOp::set(&b"g0"[..])).unwrap();
    cluster.pull_shard(NodeId(1), NodeId(0), ShardId(0)).unwrap();
    let n0_before = cluster.node_costs(NodeId(0));
    let n1_before = cluster.node_costs(NodeId(1));

    // Group 1 then runs a much heavier workload on its own shard.
    for round in 0..20u32 {
        for i in 4..8u32 {
            cluster.update(NodeId(2), ItemId(i), UpdateOp::set(vec![round as u8; 128])).unwrap();
        }
        cluster.pull_shard(NodeId(3), NodeId(2), ShardId(1)).unwrap();
    }

    // Partial replication: the other group's traffic costs group 0 nothing.
    assert_eq!(cluster.node_costs(NodeId(0)), n0_before);
    assert_eq!(cluster.node_costs(NodeId(1)), n1_before);
    assert!(cluster.node_costs(NodeId(3)).bytes_sent > n1_before.bytes_sent);

    // And each node's total is exactly the sum of its owned shards (no
    // cross-group meta-traffic ran here).
    let n3 = cluster.node(NodeId(3));
    let owned_sum = n3
        .owned_shards()
        .into_iter()
        .map(|s| n3.shard_costs(s).unwrap())
        .fold(Costs::default(), |a, b| a + b);
    assert_eq!(n3.costs(), owned_sum);
}

#[test]
fn routing_errors_are_typed() {
    let mut cluster = ShardedSimCluster::new(two_group_map(), 4);
    // Unknown-shard routing: non-retryable, carries the owning group.
    match cluster.update(NodeId(0), ItemId(5), UpdateOp::set(&b"x"[..])) {
        Err(e @ Error::NotServedHere { .. }) => {
            assert!(!e.is_retryable());
            if let Error::NotServedHere { target, owners } = e {
                assert_eq!(target, RouteTarget::Shard(ShardId(1)));
                assert_eq!(owners, vec![NodeId(2), NodeId(3)]);
            }
        }
        other => panic!("expected NotServedHere, got {other:?}"),
    }
    // Mid-handoff: retryable.
    cluster.node_mut(NodeId(0)).freeze_shard(ShardId(0)).unwrap();
    match cluster.read(NodeId(0), ItemId(0)) {
        Err(e @ Error::ShardMoving(_)) => assert!(e.is_retryable()),
        other => panic!("expected ShardMoving, got {other:?}"),
    }
    // Items outside the universe are unknown, not misrouted.
    assert!(matches!(cluster.read(NodeId(0), ItemId(99)), Err(Error::UnknownItem(ItemId(99)))));
}

/// The dedicated durable-handoff test: shard 0 moves from group {0,1} to
/// node 2 by shipping a *real* durable snapshot plus the WAL records
/// written after it, with reads refused during the cutover window and the
/// §2.1 invariants checked on the moved replica — then the target's own
/// durability recovers the moved shard from disk.
#[test]
fn durable_handoff_ships_snapshot_plus_wal_tail() {
    let tmp = epidb::durable::testdir::TempDir::new("sharded-handoff");
    // Large checkpoint interval: the WAL tail must stay in the current
    // generation between the snapshot and the cutover.
    let source_cfg = DurabilityConfig {
        checkpoint_every: 10_000,
        ..DurabilityConfig::new(tmp.path().join("source"))
    };

    let mut n0 = ShardedNode::new(NodeId(0), 4, two_group_map(), ConflictPolicy::Report);
    let (source_dur, reports) =
        ShardedDurability::open(&source_cfg, &mut n0, ConflictPolicy::Report).unwrap();
    assert!(reports.contains_key(&ShardId(0)));
    n0.set_paranoid(true);

    // Pre-snapshot history, journaled per shard.
    n0.update(ItemId(0), UpdateOp::set(&b"pre-snapshot"[..])).unwrap();
    n0.update(ItemId(1), UpdateOp::set(&b"also-pre"[..])).unwrap();

    // Snapshot point: remember how many WAL records it covers.
    let shard0_dur = source_dur.shard(ShardId(0)).unwrap();
    let skip = shard0_dur.wal_records();
    assert_eq!(skip, 2);
    let snapshot = n0.shard_snapshot(ShardId(0)).unwrap();

    // Post-snapshot history — the tail the handoff must not lose.
    n0.update(ItemId(1), UpdateOp::append(&b"+tail"[..])).unwrap();
    n0.update(ItemId(2), UpdateOp::set(&b"tail-only"[..])).unwrap();

    // Cutover: freeze, read the durable tail, ship.
    n0.freeze_shard(ShardId(0)).unwrap();
    let tail = shard0_dur.read_wal_tail(skip).unwrap();
    assert_eq!(tail.len(), 2, "exactly the post-snapshot records ship");
    match n0.update(ItemId(0), UpdateOp::set(&b"late"[..])) {
        Err(e @ Error::ShardMoving(_)) => assert!(e.is_retryable()),
        other => panic!("the cutover window must refuse retryably, got {other:?}"),
    }

    // Install at the target; the window stays closed until completion.
    let mut n2 = ShardedNode::new(NodeId(2), 4, two_group_map(), ConflictPolicy::Report);
    n2.install_shard(ShardId(0), &snapshot, &tail).unwrap();
    assert!(matches!(n2.read(ItemId(0)), Err(Error::ShardMoving(ShardId(0)))));

    // Map reassignment + completion on both sides.
    for n in [&mut n0, &mut n2] {
        n.reassign(ShardId(0), vec![NodeId(2)]);
    }
    n0.remove_shard(ShardId(0));
    n2.complete_handoff(ShardId(0));

    // Full history serves at the new home, §2.1 intact.
    assert_eq!(n2.read(ItemId(0)).unwrap().as_bytes(), b"pre-snapshot");
    assert_eq!(n2.read(ItemId(1)).unwrap().as_bytes(), b"also-pre+tail");
    assert_eq!(n2.read(ItemId(2)).unwrap().as_bytes(), b"tail-only");
    n2.check_invariants_clean().unwrap();
    match n0.read(ItemId(0)) {
        Err(Error::NotServedHere { owners, .. }) => assert_eq!(owners, vec![NodeId(2)]),
        other => panic!("the old owner must redirect, got {other:?}"),
    }

    // The target now owns the shard durably: checkpoint the moved replica
    // into its own per-shard directory, then prove a cold restart
    // recovers the full (snapshot + tail) history from the target's disk.
    let target_cfg = DurabilityConfig {
        checkpoint_every: 10_000,
        ..DurabilityConfig::new(tmp.path().join("target"))
    };
    let shard_cfg = target_cfg.shard_config(ShardId(0));
    {
        let (target_dur, _, _) =
            NodeDurability::open(&shard_cfg, NodeId(2), 4, 4, ConflictPolicy::Report).unwrap();
        let moved = n2.shard_state_mut(ShardId(0)).unwrap();
        target_dur.checkpoint(moved).unwrap();
        target_dur.attach(moved);
        moved.update(ItemId(3), UpdateOp::set(&b"post-handoff"[..])).unwrap();
    }
    let (_, recovered, report) =
        NodeDurability::open(&shard_cfg, NodeId(2), 4, 4, ConflictPolicy::Report).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(recovered.read(ItemId(0)).unwrap().as_bytes(), b"pre-snapshot");
    assert_eq!(recovered.read(ItemId(1)).unwrap().as_bytes(), b"also-pre+tail");
    assert_eq!(recovered.read(ItemId(3)).unwrap().as_bytes(), b"post-handoff");
    recovered.check_invariants().unwrap();
}
