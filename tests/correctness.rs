//! T7 — the paper's correctness criteria (§2.1), checked by the auditor
//! over randomized executions (multiple seeds, with and without
//! out-of-bound copying, conflict-free and conflict-prone).
//!
//! Criterion 1: inconsistent replicas are eventually detected.
//! Criterion 2: propagation never introduces new inconsistency (a replica
//!   only acquires updates from a strictly newer replica).
//! Criterion 3: when update activity stops, every obsolete replica
//!   eventually catches up (and auxiliary state drains).

use epidb::sim::{run_audit, AuditConfig};

#[test]
fn conflict_free_runs_satisfy_all_criteria_across_seeds() {
    for seed in [1, 7, 42, 1996, 0xDEAD] {
        let report = run_audit(AuditConfig { seed, ..AuditConfig::default() });
        assert_eq!(report.adoption_violations, 0, "criterion 2 violated (seed {seed})");
        assert!(
            report.conflicted_items.is_empty(),
            "single-writer workload produced conflicts (seed {seed})"
        );
        assert!(report.undetected_divergences.is_empty(), "criterion 1 violated (seed {seed})");
        assert!(report.converged_clean, "criterion 3 violated (seed {seed}): {report:?}");
        assert_eq!(report.aux_leftovers, 0, "auxiliary state leaked (seed {seed})");
    }
}

#[test]
fn heavy_oob_traffic_still_satisfies_criteria() {
    let report =
        run_audit(AuditConfig { oob_per_round: 8, rounds: 40, seed: 12, ..AuditConfig::default() });
    assert!(report.all_criteria_hold(), "{report:?}");
    assert_eq!(report.aux_leftovers, 0);
}

#[test]
fn larger_cluster_satisfies_criteria() {
    let report = run_audit(AuditConfig {
        n_nodes: 8,
        n_items: 60,
        updates_per_round: 16,
        rounds: 25,
        oob_per_round: 4,
        seed: 3,
        ..AuditConfig::default()
    });
    assert!(report.all_criteria_hold(), "{report:?}");
}

#[test]
fn crash_window_does_not_break_criteria() {
    // One node is down for the middle third of the run; after revival and
    // transitive propagation every criterion must still hold — the
    // recovery property the §8.2 comparison turns on.
    for seed in [2, 44] {
        let report = run_audit(AuditConfig {
            crash_window: true,
            rounds: 36,
            seed,
            ..AuditConfig::default()
        });
        assert!(report.all_criteria_hold(), "seed {seed}: {report:?}");
        assert_eq!(report.aux_leftovers, 0);
    }
}

#[test]
fn conflict_prone_runs_detect_every_divergence() {
    for seed in [5, 99, 12345] {
        let report = run_audit(AuditConfig {
            conflict_prone: true,
            oob_per_round: 0,
            rounds: 25,
            seed,
            ..AuditConfig::default()
        });
        assert_eq!(report.adoption_violations, 0, "criterion 2 violated (seed {seed})");
        assert!(
            !report.conflicted_items.is_empty(),
            "conflict-prone workload produced no conflicts (seed {seed})"
        );
        // Criterion 1: every divergence that survived was declared.
        assert!(
            report.undetected_divergences.is_empty(),
            "undetected divergence (seed {seed}): {report:?}"
        );
    }
}
