//! Property test: whole-item and delta (update-record) propagation are
//! observationally equivalent — the same random schedule of updates,
//! out-of-bound copies, and pulls yields byte-identical replicas and equal
//! DBVVs in both modes (the paper's §2 claim that its ideas apply to both
//! shipping methods, falsification-tested).

use epidb::prelude::*;
use epidb::sim::EpidbCluster;
use epidb::vv::VvOrd;
use proptest::prelude::*;

const N_NODES: usize = 3;
const N_ITEMS: usize = 10;

#[derive(Clone, Debug)]
enum Action {
    Update { x: u8, append: bool },
    Pull { r: u8, s: u8 },
    Oob { r: u8, s: u8, x: u8 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..N_ITEMS as u8, any::<bool>()).prop_map(|(x, append)| Action::Update { x, append }),
        3 => (0u8..N_NODES as u8, 0u8..N_NODES as u8).prop_map(|(r, s)| Action::Pull { r, s }),
        1 => (0u8..N_NODES as u8, 0u8..N_NODES as u8, 0u8..N_ITEMS as u8)
            .prop_map(|(r, s, x)| Action::Oob { r, s, x }),
    ]
}

fn run(script: &[Action], use_delta: bool) -> EpidbCluster {
    let mut cluster = EpidbCluster::new(N_NODES, N_ITEMS);
    cluster.enable_delta(1 << 16);
    let mut counter: u64 = 0;
    for action in script {
        match action {
            Action::Update { x, append } => {
                counter += 1;
                let item = ItemId(*x as u32);
                let node = NodeId((item.index() % N_NODES) as u16); // single-writer
                let payload = counter.to_le_bytes().to_vec();
                let op = if *append { UpdateOp::append(payload) } else { UpdateOp::set(payload) };
                cluster.replica_mut(node).update(item, op).expect("update");
            }
            Action::Pull { r, s } => {
                if r != s {
                    let (r, s) = (NodeId(*r as u16), NodeId(*s as u16));
                    if use_delta {
                        cluster.pull_delta_pair(r, s).expect("pull_delta");
                    } else {
                        cluster.pull_pair(r, s).expect("pull");
                    }
                }
            }
            Action::Oob { r, s, x } => {
                if r != s {
                    cluster
                        .oob(NodeId(*r as u16), NodeId(*s as u16), ItemId(*x as u32))
                        .expect("oob");
                }
            }
        }
        cluster.assert_invariants();
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn whole_and_delta_modes_are_equivalent(script in prop::collection::vec(arb_action(), 1..80)) {
        let whole = run(&script, false);
        let delta = run(&script, true);
        for node in 0..N_NODES {
            let node = NodeId::from_index(node);
            prop_assert_eq!(
                whole.replica(node).dbvv().compare(delta.replica(node).dbvv()),
                VvOrd::Equal,
                "DBVV diverged at {}", node
            );
            for x in 0..N_ITEMS {
                let x = ItemId::from_index(x);
                prop_assert_eq!(
                    whole.replica(node).read(x).unwrap(),
                    delta.replica(node).read(x).unwrap(),
                    "value diverged at {} {}", node, x
                );
                prop_assert_eq!(
                    whole.replica(node).item_ivv(x).unwrap(),
                    delta.replica(node).item_ivv(x).unwrap()
                );
            }
            prop_assert_eq!(
                whole.replica(node).aux_item_count(),
                delta.replica(node).aux_item_count()
            );
        }
        prop_assert_eq!(whole.conflicts_declared(), delta.conflicts_declared());
    }
}
