//! Property tests for the baselines: under single-writer workloads every
//! pull-based baseline must converge to the same final state as the
//! paper's protocol (they are all *correct* there — the paper's case
//! against them is cost and conflict handling, not safety), and Oracle
//! push must converge whenever the originators stay up.

use epidb::baselines::{
    LotusCluster, OracleCluster, PerItemVvCluster, SyncProtocol, WuuBernsteinCluster,
};
use epidb::prelude::*;
use epidb::sim::EpidbCluster;
use proptest::prelude::*;

const N_NODES: usize = 3;
const N_ITEMS: usize = 8;

#[derive(Clone, Debug)]
enum Step {
    Update { x: u8 },
    Sync { r: u8, s: u8 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => (0u8..N_ITEMS as u8).prop_map(|x| Step::Update { x }),
        3 => (0u8..N_NODES as u8, 0u8..N_NODES as u8).prop_map(|(r, s)| Step::Sync { r, s }),
    ]
}

fn run_steps<P: SyncProtocol>(proto: &mut P, steps: &[Step]) {
    let mut counter = 0u64;
    for step in steps {
        match step {
            Step::Update { x } => {
                counter += 1;
                let item = ItemId(*x as u32);
                let node = NodeId((item.index() % N_NODES) as u16);
                proto
                    .update(node, item, UpdateOp::set(counter.to_le_bytes().to_vec()))
                    .expect("update");
            }
            Step::Sync { r, s } => {
                if r != s {
                    proto.sync(NodeId(*r as u16), NodeId(*s as u16)).expect("sync");
                }
            }
        }
    }
    // Quiesce: full mesh sweeps.
    for _ in 0..N_NODES + 1 {
        for r in 0..N_NODES {
            for s in 0..N_NODES {
                if r != s {
                    proto.sync(NodeId::from_index(r), NodeId::from_index(s)).expect("sync");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_pull_baselines_match_epidb_final_state(
        steps in prop::collection::vec(arb_step(), 1..60)
    ) {
        let mut epidb = EpidbCluster::new(N_NODES, N_ITEMS);
        let mut pivv = PerItemVvCluster::new(N_NODES, N_ITEMS);
        let mut lotus = LotusCluster::new(N_NODES, N_ITEMS);
        let mut wb = WuuBernsteinCluster::new(N_NODES, N_ITEMS);
        run_steps(&mut epidb, &steps);
        run_steps(&mut pivv, &steps);
        run_steps(&mut lotus, &steps);
        run_steps(&mut wb, &steps);

        prop_assert!(epidb.converged());
        for x in ItemId::all(N_ITEMS) {
            let reference = epidb.value(NodeId(0), x);
            prop_assert_eq!(&pivv.value(NodeId(0), x), &reference, "per-item-vv at {}", x);
            prop_assert_eq!(&lotus.value(NodeId(0), x), &reference, "lotus at {}", x);
            prop_assert_eq!(&wb.value(NodeId(0), x), &reference, "wuu-bernstein at {}", x);
            prop_assert!(pivv.converged() && lotus.converged() && wb.converged());
        }
        // No conflicts and nothing lost under single-writer.
        prop_assert_eq!(epidb.conflicts_declared(), 0);
        prop_assert_eq!(lotus.costs().lost_updates, 0);
        epidb.assert_invariants();
    }

    #[test]
    fn oracle_push_converges_without_failures(
        updates in prop::collection::vec((0u8..N_ITEMS as u8, 0u8..N_NODES as u8), 1..40)
    ) {
        let mut oracle = OracleCluster::new(N_NODES, N_ITEMS);
        let alive = vec![true; N_NODES];
        let mut counter = 0u64;
        for (x, node) in &updates {
            counter += 1;
            oracle
                .update(
                    NodeId(*node as u16),
                    ItemId(*x as u32),
                    UpdateOp::set(counter.to_le_bytes().to_vec()),
                )
                .expect("update");
            // Occasional pushes interleaved with updates.
            if counter.is_multiple_of(3) {
                oracle.push(NodeId(*node as u16), &alive).expect("push");
            }
        }
        for origin in NodeId::all(N_NODES) {
            oracle.push(origin, &alive).expect("push");
        }
        // Single-writer per (item, last writer)? Not guaranteed here; with
        // multiple writers Oracle can diverge (its documented weakness), so
        // only assert convergence when each item had a single writer.
        let mut single_writer = true;
        let mut writer_of = [None::<u8>; N_ITEMS];
        for (x, node) in &updates {
            match writer_of[*x as usize] {
                None => writer_of[*x as usize] = Some(*node),
                Some(w) if w == *node => {}
                Some(_) => single_writer = false,
            }
        }
        if single_writer {
            prop_assert!(oracle.converged(), "divergent: {:?}", oracle.divergent_items());
        }
    }
}
