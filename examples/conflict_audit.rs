//! Conflict detection and the correctness criteria (§2.1): concurrent
//! updates without tokens, detection at every site, the Lotus contrast,
//! and the token-based pessimistic mode that avoids conflicts entirely.
//!
//! Run with: `cargo run --example conflict_audit`

use epidb::baselines::{LotusCluster, SyncProtocol};
use epidb::prelude::*;

const DOC: ItemId = ItemId(3);

fn main() -> Result<()> {
    println!("--- optimistic mode: concurrent edits collide, epidb detects ---");
    let mut a = Replica::new(NodeId(0), 2, 100);
    let mut b = Replica::new(NodeId(1), 2, 100);
    // The paper's Lotus example (§8.1): a makes TWO updates, b makes ONE
    // conflicting update.
    a.update(DOC, UpdateOp::set(&b"a-draft-1"[..]))?;
    a.update(DOC, UpdateOp::set(&b"a-draft-2"[..]))?;
    b.update(DOC, UpdateOp::set(&b"b-draft-1"[..]))?;

    let outcome = pull(&mut b, &mut a)?;
    if let PullOutcome::Propagated(o) = outcome {
        println!("b <- a: conflicts detected = {}", o.conflicts);
        assert_eq!(o.conflicts, 1);
    }
    let ev = &b.conflicts()[0];
    println!("  declared: {ev}");
    // b's local work is preserved, pending resolution.
    assert_eq!(b.read(DOC)?.as_bytes(), b"b-draft-1");

    println!("\n--- the same history under Lotus: silent data loss ---");
    let mut lotus = LotusCluster::new(2, 100);
    lotus.update(NodeId(0), DOC, UpdateOp::set(&b"a-draft-1"[..]))?;
    lotus.update(NodeId(0), DOC, UpdateOp::set(&b"a-draft-2"[..]))?;
    lotus.update(NodeId(1), DOC, UpdateOp::set(&b"b-draft-1"[..]))?;
    lotus.sync(NodeId(1), NodeId(0))?;
    println!(
        "  b's document is now {:?}; lost updates = {}, conflicts reported = {}",
        String::from_utf8_lossy(&lotus.value(NodeId(1), DOC)),
        lotus.costs().lost_updates,
        lotus.costs().conflicts_detected,
    );
    assert_eq!(lotus.value(NodeId(1), DOC), b"a-draft-2"); // seqno 2 beats 1
    assert_eq!(lotus.costs().lost_updates, 1);
    assert_eq!(lotus.costs().conflicts_detected, 0);

    println!("\n--- automatic resolution: the ResolveLww policy ---");
    let mut a = Replica::with_policy(NodeId(0), 2, 100, ConflictPolicy::ResolveLww);
    let mut b = Replica::with_policy(NodeId(1), 2, 100, ConflictPolicy::ResolveLww);
    a.update(DOC, UpdateOp::set(&b"alpha"[..]))?;
    b.update(DOC, UpdateOp::set(&b"bravo"[..]))?;
    pull(&mut b, &mut a)?;
    pull(&mut a, &mut b)?;
    println!(
        "  resolved to {:?} on both sides (conflict was detected, then merged)",
        String::from_utf8_lossy(a.read(DOC)?.as_bytes())
    );
    assert_eq!(a.read(DOC)?, b.read(DOC)?);
    assert_eq!(b.counters().lww_resolutions, 1);

    println!("\n--- pessimistic mode: tokens prevent the conflict upfront ---");
    let mut a = Replica::new(NodeId(0), 2, 100);
    let mut b = Replica::new(NodeId(1), 2, 100);
    let mut tokens = TokenManager::new(100, NodeId(0));
    // a holds the token and edits.
    tokens.check(DOC, a.id())?;
    a.update(DOC, UpdateOp::set(&b"tokened edit"[..]))?;
    // b must acquire the token first; the transfer pairs with an
    // out-of-bound copy so b starts from the newest version.
    assert!(matches!(tokens.check(DOC, b.id()), Err(Error::TokenNotHeld { .. })));
    oob_copy(&mut b, &mut a, DOC)?;
    tokens.transfer(DOC, b.id())?;
    tokens.check(DOC, b.id())?;
    b.update(DOC, UpdateOp::append(&b" + b's turn"[..]))?;
    // Scheduled propagation reconciles with zero conflicts.
    pull(&mut b, &mut a)?;
    pull(&mut a, &mut b)?;
    assert_eq!(a.read(DOC)?.as_bytes(), b"tokened edit + b's turn");
    assert_eq!(a.costs().conflicts_detected + b.costs().conflicts_detected, 0);
    println!(
        "  serialized through the token: {:?}",
        String::from_utf8_lossy(a.read(DOC)?.as_bytes())
    );
    Ok(())
}
