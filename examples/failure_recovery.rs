//! The originator-failure scenario of §8.2, live: an originating server
//! crashes mid-propagation, and the epidemic protocol's forwarding lets the
//! survivors converge anyway — the property Oracle-style push lacks.
//!
//! Run with: `cargo run --example failure_recovery`

use epidb::baselines::{OracleCluster, SyncProtocol};
use epidb::prelude::*;
use epidb::sim::{Driver, DriverConfig, EpidbCluster, Schedule};

const N_NODES: usize = 6;
const DOC: ItemId = ItemId(0);

fn main() -> Result<()> {
    println!("--- epidemic protocol (forwards) ---");
    let mut cluster = EpidbCluster::new(N_NODES, 100);
    cluster.update(NodeId(0), DOC, UpdateOp::set(&b"critical patch"[..]))?;
    // The originator reaches only node 1, then crashes.
    cluster.pull_pair(NodeId(1), NodeId(0))?;
    let mut driver = Driver::new(
        &mut cluster,
        DriverConfig {
            schedule: Schedule::RandomPairwise,
            seed: 7,
            max_rounds: 100,
            ..DriverConfig::default()
        },
    );
    driver.crash(NodeId(0));
    println!("originator crashed after reaching 1 of {} peers", N_NODES - 1);
    let rounds = driver.run_to_convergence()?.expect("survivors converge");
    println!("survivors converged after {rounds} gossip rounds (no originator)");
    for node in 1..N_NODES {
        assert_eq!(driver.protocol().value(NodeId::from_index(node), DOC), b"critical patch");
    }

    println!("\n--- Oracle-style push (no forwarding) ---");
    let mut oracle = OracleCluster::new(N_NODES, 100);
    oracle.update(NodeId(0), DOC, UpdateOp::set(&b"critical patch"[..]))?;
    oracle.push_to(NodeId(0), NodeId(1))?; // reaches one peer, then crashes
    let alive: Vec<bool> = (0..N_NODES).map(|i| i != 0).collect();
    // Survivors push for 10 "rounds" — but only originators ship their own
    // updates, so nothing moves.
    for _ in 0..10 {
        for origin in 1..N_NODES {
            oracle.push(NodeId::from_index(origin), &alive)?;
        }
    }
    let stale = (1..N_NODES)
        .filter(|&i| oracle.value(NodeId::from_index(i), DOC) != b"critical patch")
        .count();
    println!(
        "after 10 rounds without the originator: {stale} of {} peers still stale",
        N_NODES - 1
    );
    assert_eq!(stale, N_NODES - 2);

    // Only the originator's recovery completes propagation.
    let all_alive = vec![true; N_NODES];
    oracle.push(NodeId(0), &all_alive)?;
    println!("originator recovered and completed the push; converged = {}", oracle.converged());
    assert!(oracle.converged());
    Ok(())
}
