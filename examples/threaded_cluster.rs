//! A live multi-threaded cluster: replicas on OS threads, asynchronous
//! gossip over channels, message loss, a crash, and recovery — the paper's
//! deployment picture running for real.
//!
//! Run with: `cargo run --example threaded_cluster`

use epidb::net::{ClusterConfig, ThreadedCluster};
use epidb::prelude::*;
use std::time::Duration;

fn main() {
    let n_nodes = 5;
    let cluster = ThreadedCluster::spawn(
        n_nodes,
        1_000,
        ClusterConfig {
            gossip_interval: Duration::from_millis(2),
            loss_probability: 0.10, // a lossy network
            ..ClusterConfig::default()
        },
    );
    println!("spawned {n_nodes} replica threads (gossip every 2ms, 10% message loss)");

    // Concurrent writers on different items.
    for i in 0..40u32 {
        let node = NodeId((i % n_nodes as u32) as u16);
        cluster
            .update(node, ItemId(i), UpdateOp::set(format!("value-{i}").into_bytes()))
            .expect("update");
    }
    println!("applied 40 updates across {n_nodes} nodes");

    assert!(cluster.quiesce(Duration::from_secs(30)), "cluster failed to quiesce");
    println!("quiesced: all DBVVs equal");
    assert_eq!(cluster.read(NodeId(4), ItemId(0)).unwrap(), b"value-0");

    // Crash a node; the rest keep going.
    cluster.crash(NodeId(2));
    cluster.update(NodeId(0), ItemId(500), UpdateOp::set(&b"while n2 down"[..])).unwrap();
    assert!(cluster.quiesce(Duration::from_secs(30)));
    println!("n2 crashed; survivors converged without it");
    assert_eq!(cluster.read(NodeId(2), ItemId(500)).unwrap(), b""); // still stale

    // Recovery: anti-entropy catches the returning node up automatically.
    cluster.revive(NodeId(2));
    assert!(cluster.quiesce(Duration::from_secs(30)));
    assert_eq!(cluster.read(NodeId(2), ItemId(500)).unwrap(), b"while n2 down");
    println!("n2 revived and caught up via anti-entropy");

    let replicas = cluster.shutdown();
    for r in &replicas {
        r.check_invariants().expect("invariants");
        assert_eq!(r.costs().conflicts_detected, 0);
    }
    let total: Costs = replicas.iter().map(|r| r.costs()).fold(Costs::ZERO, |a, b| a + b);
    println!(
        "clean shutdown; cluster totals: {} messages, {} bytes, {} items copied",
        total.messages_sent, total.bytes_sent, total.items_copied
    );
}
