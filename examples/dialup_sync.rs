//! The dial-up scenario from the paper's introduction: update propagation
//! "can be done at a convenient time (i.e., during the next dial-up
//! session)", and multiple updates are bundled into a single transfer.
//!
//! A laptop replica works offline all day, accumulating edits; the office
//! server also changes. One evening pull-in-each-direction reconciles the
//! pair, shipping exactly the changed items, once each, no matter how many
//! edits they received.
//!
//! Run with: `cargo run --example dialup_sync`

use epidb::prelude::*;

fn main() -> Result<()> {
    const N_ITEMS: usize = 50_000;
    let mut office = Replica::new(NodeId(0), 2, N_ITEMS);
    let mut laptop = Replica::new(NodeId(1), 2, N_ITEMS);

    // Overnight baseline: both replicas identical.
    office.update(ItemId(100), UpdateOp::set(&b"report skeleton"[..]))?;
    pull(&mut laptop, &mut office)?;
    println!("morning sync done; laptop goes offline");

    // A day of offline work: the laptop edits 3 documents, many times.
    // (Items are partitioned by agreement — no conflicts in this scenario.)
    for round in 0..50 {
        laptop.update(ItemId(1001), UpdateOp::append(format!("edit{round};").into_bytes()))?;
        laptop.update(ItemId(1002), UpdateOp::append(&b"fig;"[..]))?;
        if round % 10 == 0 {
            laptop.update(ItemId(1003), UpdateOp::append(&b"bib;"[..]))?;
        }
    }
    // Meanwhile the office server receives updates to other items.
    for i in 0..20u32 {
        office.update(ItemId(2000 + i), UpdateOp::set(vec![i as u8; 128]))?;
    }
    println!(
        "day's work: laptop made {} updates to 3 items; office changed 20 items",
        laptop.dbvv().get(NodeId(1))
    );

    // Evening dial-up: two pulls. The log vector compacted the laptop's
    // 105 updates into 3 records, so only 3 items travel up and 20 down.
    let office_before = office.costs();
    let up = pull(&mut office, &mut laptop)?;
    println!(
        "office <- laptop: {} items copied (105 updates bundled), {} bytes up",
        up.copied().len(),
        (laptop.costs()).bytes_sent
    );
    assert_eq!(up.copied().len(), 3);

    let down = pull(&mut laptop, &mut office)?;
    println!(
        "laptop <- office: {} items copied, {} bytes down",
        down.copied().len(),
        (office.costs() - office_before).bytes_sent
    );
    assert_eq!(down.copied().len(), 20);

    // Replicas identical again; tomorrow's first check costs 2 comparisons.
    assert!(matches!(pull(&mut laptop, &mut office)?, PullOutcome::UpToDate));
    assert_eq!(office.dbvv().compare(laptop.dbvv()), VvOrd::Equal);
    office.check_invariants().expect("invariants");
    laptop.check_invariants().expect("invariants");
    println!("replicas reconciled: DBVV = {}", laptop.dbvv());
    Ok(())
}
