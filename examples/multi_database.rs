//! Multiple databases per server (§2): "a separate instance of the
//! protocol runs for each database." One anti-entropy session between two
//! servers reconciles every database they share, each with its own DBVV.
//!
//! Run with: `cargo run --example multi_database`

use epidb::core::{pull_server, Server};
use epidb::prelude::*;

fn main() -> Result<()> {
    let mut hq = Server::new(NodeId(0), 2);
    let mut branch = Server::new(NodeId(1), 2);
    for s in [&mut hq, &mut branch] {
        s.create_database("mail", 10_000, ConflictPolicy::Report)?;
        s.create_database("docs", 2_000, ConflictPolicy::Report)?;
    }
    // HQ also keeps a database the branch does not replicate.
    hq.create_database("payroll", 500, ConflictPolicy::Report)?;

    hq.update("mail", ItemId(42), UpdateOp::set(&b"welcome aboard"[..]))?;
    hq.update("docs", ItemId(7), UpdateOp::set(&b"handbook v3"[..]))?;
    hq.update("payroll", ItemId(1), UpdateOp::set(&b"confidential"[..]))?;
    branch.update("mail", ItemId(99), UpdateOp::set(&b"branch news"[..]))?;

    // One session, one protocol instance per shared database.
    let out = pull_server(&mut branch, &mut hq)?;
    for (db, o) in &out.per_database {
        println!("{db}: copied {:?}", o.copied());
    }
    println!("not replicated here: {:?}", out.missing_at_recipient);

    assert_eq!(branch.read("mail", ItemId(42))?.as_bytes(), b"welcome aboard");
    assert_eq!(branch.read("docs", ItemId(7))?.as_bytes(), b"handbook v3");
    assert!(branch.database("payroll").is_err());

    // The reverse direction carries the branch's mail item.
    let out = pull_server(&mut hq, &mut branch)?;
    let mail = out.per_database.iter().find(|(db, _)| db == "mail").unwrap();
    assert_eq!(mail.1.copied(), &[ItemId(99)]);

    // Per-database DBVVs: mail has 2 updates total, docs 1.
    println!("hq DBVVs: mail {} docs {}", hq.database("mail")?.dbvv(), hq.database("docs")?.dbvv());
    assert_eq!(hq.database("mail")?.dbvv().total(), 2);
    assert_eq!(hq.database("docs")?.dbvv().total(), 1);
    hq.check_invariants().expect("invariants");
    branch.check_invariants().expect("invariants");
    println!("both servers consistent across all shared databases");
    Ok(())
}
