//! Out-of-bound copying (§5.2): a key data item is fetched on demand,
//! ahead of the normal propagation schedule, and the auxiliary machinery
//! later reconciles everything without breaking the protocol's ordering.
//!
//! Scenario: a shared "release checklist" document is updated at the
//! coordinator; a release engineer needs it *now*, fetches it out-of-bound,
//! ticks a box (updating the auxiliary copy), and the next scheduled
//! propagation folds everything back together.
//!
//! Run with: `cargo run --example hot_item_oob`

use epidb::prelude::*;

const CHECKLIST: ItemId = ItemId(7);

fn main() -> Result<()> {
    let mut coordinator = Replica::new(NodeId(0), 3, 1_000);
    let mut engineer = Replica::new(NodeId(1), 3, 1_000);
    let mut mirror = Replica::new(NodeId(2), 3, 1_000);

    coordinator.update(CHECKLIST, UpdateOp::set(&b"[ ] build [ ] sign "[..]))?;
    println!("coordinator wrote the checklist");

    // The engineer can't wait for the nightly sync: out-of-bound fetch.
    let outcome = oob_copy(&mut engineer, &mut coordinator, CHECKLIST)?;
    println!("engineer OOB-fetched the checklist: {outcome:?}");
    assert_eq!(outcome, OobOutcome::Adopted { from_aux: false });

    // The engineer sees (and edits) the auxiliary copy; the regular copy
    // and the DBVV are untouched, so scheduled propagation stays sound.
    engineer.update(CHECKLIST, UpdateOp::append(&b"[x] tests "[..]))?;
    println!(
        "engineer reads: {:?} (regular copy still {:?}, {} aux log records)",
        String::from_utf8_lossy(engineer.read(CHECKLIST)?.as_bytes()),
        String::from_utf8_lossy(engineer.read_regular(CHECKLIST)?.as_bytes()),
        engineer.aux_log().len(),
    );
    assert_eq!(engineer.dbvv().total(), 0);

    // The mirror can get the newest version too — the OOB server prefers
    // its auxiliary copy ("never older than the regular copy").
    let outcome = oob_copy(&mut mirror, &mut engineer, CHECKLIST)?;
    assert_eq!(outcome, OobOutcome::Adopted { from_aux: true });
    println!("mirror OOB-fetched from the engineer (served from aux)");

    // Nightly propagation: the engineer's regular copy catches up with the
    // coordinator's, intra-node propagation replays the aux edit as a
    // regular update, and the auxiliary copy is discarded.
    let outcome = pull(&mut engineer, &mut coordinator)?;
    if let PullOutcome::Propagated(o) = &outcome {
        println!(
            "engineer <- coordinator: copied {:?}, replayed {} aux updates, discarded aux {:?}",
            o.copied, o.replayed, o.aux_discarded
        );
        assert_eq!(o.replayed, 1);
        assert_eq!(o.aux_discarded, vec![CHECKLIST]);
    }
    assert_eq!(engineer.aux_item_count(), 0);
    assert_eq!(engineer.read(CHECKLIST)?.as_bytes(), b"[ ] build [ ] sign [x] tests ");

    // The replayed edit is now a regular update and propagates everywhere.
    pull(&mut coordinator, &mut engineer)?;
    pull(&mut mirror, &mut coordinator)?;
    assert_eq!(mirror.aux_item_count(), 0, "mirror's aux reconciled too");
    assert_eq!(coordinator.read(CHECKLIST)?, mirror.read(CHECKLIST)?);
    for r in [&coordinator, &engineer, &mirror] {
        r.check_invariants().expect("invariants");
        assert_eq!(r.costs().conflicts_detected, 0);
    }
    println!(
        "everyone converged on: {:?}",
        String::from_utf8_lossy(mirror.read(CHECKLIST)?.as_bytes())
    );
    Ok(())
}
