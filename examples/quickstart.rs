//! Quickstart: three replicas, a few updates, anti-entropy, and the
//! constant-time "nothing to do" check.
//!
//! Run with: `cargo run --example quickstart`

use epidb::prelude::*;

fn main() -> Result<()> {
    const N_NODES: usize = 3;
    const N_ITEMS: usize = 10_000;

    // Three servers replicating a 10_000-item database. Every replica
    // starts empty and identical.
    let mut alice = Replica::new(NodeId(0), N_NODES, N_ITEMS);
    let mut bob = Replica::new(NodeId(1), N_NODES, N_ITEMS);
    let mut carol = Replica::new(NodeId(2), N_NODES, N_ITEMS);
    println!("cluster: {N_NODES} servers, {N_ITEMS} items");

    // User operations execute at a single replica (the epidemic model).
    alice.update(ItemId(17), UpdateOp::set(&b"meeting notes v1"[..]))?;
    alice.update(ItemId(17), UpdateOp::append(&b" +agenda"[..]))?;
    alice.update(ItemId(42), UpdateOp::set(&b"budget.xls"[..]))?;
    println!("alice applied 3 updates to 2 items; DBVV = {}", alice.dbvv());

    // Anti-entropy: bob pulls from alice. Only the 2 changed items move —
    // the other 9_998 are never examined.
    let outcome = pull(&mut bob, &mut alice)?;
    println!(
        "bob <- alice: copied {:?} ({} vv entry cmps, {} bytes)",
        outcome.copied(),
        bob.costs().vv_entry_cmps,
        alice.costs().bytes_sent,
    );
    assert_eq!(bob.read(ItemId(17))?.as_bytes(), b"meeting notes v1 +agenda");

    // Transitive propagation: carol gets alice's updates from bob.
    let outcome = pull(&mut carol, &mut bob)?;
    println!("carol <- bob: copied {:?} (forwarding, no alice involved)", outcome.copied());
    assert_eq!(carol.read(ItemId(42))?.as_bytes(), b"budget.xls");

    // All replicas identical now: one DBVV comparison (3 entries) decides
    // there is nothing to do, no matter how many items the database holds.
    let before = bob.costs();
    assert!(matches!(pull(&mut carol, &mut bob)?, PullOutcome::UpToDate));
    let delta = bob.costs() - before;
    println!(
        "carol <- bob again: up-to-date, detected with {} entry comparisons",
        delta.vv_entry_cmps
    );

    for r in [&alice, &bob, &carol] {
        r.check_invariants().expect("invariants");
    }
    println!("all invariants hold; DBVVs: {} {} {}", alice.dbvv(), bob.dbvv(), carol.dbvv());
    Ok(())
}
