//! Delta (update-record) propagation — the paper's §2 alternative shipping
//! mode, implemented as an extension: small edits to large documents
//! travel as operation chains instead of whole values.
//!
//! Run with: `cargo run --example delta_sync`

use epidb::core::pull_delta;
use epidb::prelude::*;

fn main() -> Result<()> {
    let mut cms = Replica::new(NodeId(0), 2, 1_000);
    let mut edge = Replica::new(NodeId(1), 2, 1_000);
    // Both sides keep an operation cache so chains can be served/relayed.
    cms.enable_delta(4 << 20);
    edge.enable_delta(4 << 20);

    // A 64 KiB document, synced once the normal way.
    let doc = ItemId(7);
    cms.update(doc, UpdateOp::set(vec![b'.'; 64 * 1024]))?;
    pull(&mut edge, &mut cms)?;
    println!("base document (64 KiB) replicated once");

    // The editor fixes a few typos.
    cms.update(doc, UpdateOp::write_range(1_000, &b"TYPO-FIX-A"[..]))?;
    cms.update(doc, UpdateOp::write_range(9_000, &b"TYPO-FIX-B"[..]))?;
    cms.update(doc, UpdateOp::write_range(63_000, &b"TYPO-FIX-C"[..]))?;

    // Whole-item sync would re-ship 64 KiB; delta mode ships 30 bytes of
    // edits (plus control).
    let before = cms.costs();
    let outcome = pull_delta(&mut edge, &mut cms)?;
    let d = cms.costs() - before;
    println!(
        "delta sync: copied {:?}; payload {} B, control {} B, {} messages",
        outcome.copied(),
        d.bytes_sent - d.control_bytes,
        d.control_bytes,
        d.messages_sent,
    );
    assert_eq!(d.bytes_sent - d.control_bytes, 30);
    assert_eq!(edge.read(doc)?, cms.read(doc)?);

    // Contrast with a whole-item pull of the same situation.
    cms.update(doc, UpdateOp::write_range(2_000, &b"TYPO-FIX-D"[..]))?;
    let before = cms.costs();
    pull(&mut edge, &mut cms)?;
    let d = cms.costs() - before;
    println!(
        "whole-item sync of the next edit: payload {} B (the full document again)",
        d.bytes_sent - d.control_bytes
    );
    assert!(d.bytes_sent - d.control_bytes >= 64 * 1024);

    // Identical end states either way; the modes interoperate freely.
    assert_eq!(edge.read(doc)?, cms.read(doc)?);
    assert_eq!(edge.dbvv().compare(cms.dbvv()), VvOrd::Equal);
    cms.check_invariants().expect("invariants");
    edge.check_invariants().expect("invariants");
    println!("modes interoperate; replicas identical");
    Ok(())
}
