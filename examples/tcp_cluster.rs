//! The protocol over real TCP sockets: framed binary codec, gossip
//! threads, out-of-bound RPC, crash and recovery — everything crossing
//! 127.0.0.1 for real.
//!
//! Run with: `cargo run --example tcp_cluster`

use epidb::net::{TcpCluster, TcpConfig};
use epidb::prelude::*;
use std::time::Duration;

fn main() -> Result<()> {
    let cluster = TcpCluster::spawn(
        4,
        500,
        TcpConfig { gossip_interval: Duration::from_millis(3), ..TcpConfig::default() },
    )?;
    for node in NodeId::all(4) {
        println!("{node} listening on {}", cluster.addr(node));
    }

    for i in 0..20u32 {
        let node = NodeId((i % 4) as u16);
        cluster.update(node, ItemId(i), UpdateOp::set(format!("doc-{i}").into_bytes()))?;
    }
    assert!(cluster.quiesce(Duration::from_secs(30)));
    println!("20 updates converged across 4 nodes via TCP gossip");
    assert_eq!(cluster.read(NodeId(3), ItemId(0))?, b"doc-0");

    // An urgent fetch is one request/response connection.
    cluster.update(NodeId(0), ItemId(100), UpdateOp::set(&b"urgent"[..]))?;
    let out = cluster.oob_fetch(NodeId(2), NodeId(0), ItemId(100))?;
    println!("out-of-bound fetch over TCP: {out:?}");

    // Crash + recovery.
    cluster.crash(NodeId(1));
    cluster.update(NodeId(0), ItemId(200), UpdateOp::set(&b"missed"[..]))?;
    assert!(cluster.quiesce(Duration::from_secs(30)));
    cluster.revive(NodeId(1));
    assert!(cluster.quiesce(Duration::from_secs(30)));
    assert_eq!(cluster.read(NodeId(1), ItemId(200))?, b"missed");
    println!("node 1 crashed, missed an update, recovered via anti-entropy");

    let replicas = cluster.shutdown();
    let total: Costs = replicas.iter().map(|r| r.costs()).fold(Costs::ZERO, |a, b| a + b);
    println!(
        "shutdown clean; {} messages, {} bytes crossed the sockets",
        total.messages_sent, total.bytes_sent
    );
    for r in &replicas {
        r.check_invariants().expect("invariants");
    }
    Ok(())
}
