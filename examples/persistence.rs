//! Durable state and recovery: a replica snapshots its state, crashes,
//! restores from the snapshot, and catches up through ordinary
//! anti-entropy — including a pending out-of-bound edit that survives the
//! crash in the auxiliary log.
//!
//! Run with: `cargo run --example persistence`

use epidb::prelude::*;

fn main() -> Result<()> {
    let mut server = Replica::new(NodeId(0), 2, 1_000);
    let mut laptop = Replica::new(NodeId(1), 2, 1_000);

    // Normal operation.
    server.update(ItemId(1), UpdateOp::set(&b"chapter one"[..]))?;
    pull(&mut laptop, &mut server)?;

    // The laptop urgently grabs a newer version and edits it offline.
    server.update(ItemId(1), UpdateOp::append(&b", revised"[..]))?;
    oob_copy(&mut laptop, &mut server, ItemId(1))?;
    laptop.update(ItemId(1), UpdateOp::append(&b" + margin note"[..]))?;
    println!(
        "laptop working copy: {:?} ({} pending aux record)",
        String::from_utf8_lossy(laptop.read(ItemId(1))?.as_bytes()),
        laptop.aux_log().len()
    );

    // Persist and "crash".
    let snapshot = laptop.to_snapshot();
    println!("snapshot: {} bytes written to disk", snapshot.len());
    drop(laptop);

    // Recovery: restore and resume anti-entropy as if nothing happened.
    let mut laptop = Replica::from_snapshot(&snapshot)?;
    println!(
        "restored: working copy {:?}, {} aux record pending",
        String::from_utf8_lossy(laptop.read(ItemId(1))?.as_bytes()),
        laptop.aux_log().len()
    );
    server.update(ItemId(2), UpdateOp::set(&b"chapter two"[..]))?;

    let outcome = pull(&mut laptop, &mut server)?;
    if let PullOutcome::Propagated(o) = outcome {
        println!(
            "post-recovery sync: copied {:?}, replayed {} pending edit(s)",
            o.copied, o.replayed
        );
    }
    assert_eq!(laptop.read(ItemId(1))?.as_bytes(), b"chapter one, revised + margin note");
    assert_eq!(laptop.read(ItemId(2))?.as_bytes(), b"chapter two");
    assert_eq!(laptop.aux_item_count(), 0);

    // The margin note propagates back to the server.
    pull(&mut server, &mut laptop)?;
    assert_eq!(server.read(ItemId(1))?, laptop.read(ItemId(1))?);
    server.check_invariants().expect("invariants");
    laptop.check_invariants().expect("invariants");
    println!(
        "server and laptop reconciled: {:?}",
        String::from_utf8_lossy(server.read(ItemId(1))?.as_bytes())
    );
    Ok(())
}
