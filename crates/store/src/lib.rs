#![warn(missing_docs)]

//! In-memory replicated-database storage substrate.
//!
//! The paper's system model (§2) treats a database as a collection of data
//! items replicated, as a whole, on a fixed set of servers. User operations
//! execute against a single replica; propagation copies whole data items
//! (the presentation context the paper chose — §2 notes the ideas also work
//! for log-record shipping, which the auxiliary log in fact uses).
//!
//! This crate provides:
//!
//! * [`UpdateOp`] — a *re-doable* update operation. Auxiliary-log records
//!   must "contain information sufficient to re-do the update (e.g., the
//!   byte range of the update and the new value of data in the range)"
//!   (§4.4), so operations carry their payload.
//! * [`ItemValue`] — a data item's value: an owned byte buffer.
//! * [`StoredItem`] — value plus its item version vector (IVV).
//! * [`ItemStore`] — the dense collection of a replica's regular item
//!   copies.

pub mod op;
pub mod store;
pub mod value;

pub use op::UpdateOp;
pub use store::{ItemStore, StoredItem};
pub use value::ItemValue;
