//! Data item values.

use std::fmt;

use bytes::Bytes;

/// The value of a data item.
///
/// Whole-item copying (the paper's presentation context, §2) *shares* this
/// buffer: [`ItemValue::share`] hands out a refcounted [`Bytes`] view, so
/// shipping a value is a refcount bump, never a memcpy. Byte-range updates
/// mutate in place when the buffer is unshared and copy-on-write exactly
/// once when an in-flight shipment still aliases it — the mutate-after-ship
/// case is explicit, not accidental.
#[derive(Clone, Debug)]
enum Repr {
    /// Refcounted storage, possibly aliased by in-flight messages or other
    /// replicas' stores. Read-only until promoted to `Owned`.
    Shared(Bytes),
    /// Exclusively owned storage; mutates in place.
    Owned(Vec<u8>),
}

/// The value of a data item: refcounted for shipping, copy-on-write for
/// mutation. See the module docs for the sharing discipline.
#[derive(Clone, Debug)]
pub struct ItemValue {
    repr: Repr,
}

impl Default for ItemValue {
    fn default() -> ItemValue {
        ItemValue { repr: Repr::Owned(Vec::new()) }
    }
}

impl ItemValue {
    /// An empty value (all items start empty at initialization).
    pub fn new() -> ItemValue {
        ItemValue::default()
    }

    /// Build from a byte slice (copies once, into owned storage).
    pub fn from_slice(data: &[u8]) -> ItemValue {
        ItemValue { repr: Repr::Owned(data.to_vec()) }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// True if the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }

    /// Read access to the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(b) => b,
            Repr::Owned(v) => v,
        }
    }

    /// Replace the whole value, adopting the buffer as-is — zero-copy; the
    /// value becomes (or stays) shared storage.
    pub fn set(&mut self, data: Bytes) {
        self.repr = Repr::Shared(data);
    }

    /// A refcounted handle to the current contents — the ship operation.
    ///
    /// Owned storage is promoted to shared in place (moving the `Vec`
    /// behind an `Arc`, no copy); thereafter clones are refcount bumps and
    /// any later mutation of `self` goes through the copy-on-write path,
    /// leaving every outstanding handle untouched.
    pub fn share(&mut self) -> Bytes {
        match &mut self.repr {
            Repr::Shared(b) => b.clone(),
            Repr::Owned(v) => {
                let shared = Bytes::from(std::mem::take(v));
                self.repr = Repr::Shared(shared.clone());
                shared
            }
        }
    }

    /// Make the storage exclusively owned, copying only when an in-flight
    /// shipment (or another store) still aliases it — the copy-on-write
    /// step behind every in-place mutation.
    fn make_owned(&mut self) -> &mut Vec<u8> {
        if let Repr::Shared(b) = &mut self.repr {
            let owned = match std::mem::take(b).try_into_vec() {
                Ok(v) => v,           // sole owner: reclaim the allocation
                Err(b) => b.to_vec(), // aliased: the one copy-on-write memcpy
            };
            self.repr = Repr::Owned(owned);
        }
        match &mut self.repr {
            Repr::Owned(v) => v,
            Repr::Shared(_) => unreachable!("just promoted to owned"),
        }
    }

    /// Overwrite bytes at `offset`, zero-filling any gap.
    pub fn write_range(&mut self, offset: usize, data: &[u8]) {
        let bytes = self.make_owned();
        let end = offset + data.len();
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[offset..end].copy_from_slice(data);
    }

    /// Append bytes at the end.
    pub fn append(&mut self, data: &[u8]) {
        self.make_owned().extend_from_slice(data);
    }

    /// Copy the value into a freshly shared buffer. Prefer
    /// [`ItemValue::share`] (zero-copy) when `&mut self` is available; this
    /// remains for read-only contexts.
    pub fn to_bytes(&self) -> Bytes {
        match &self.repr {
            Repr::Shared(b) => b.clone(),
            Repr::Owned(v) => Bytes::copy_from_slice(v),
        }
    }
}

impl PartialEq for ItemValue {
    fn eq(&self, other: &ItemValue) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for ItemValue {}

impl fmt::Display for ItemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) if s.len() <= 64 => write!(f, "{s:?}"),
            _ => write!(f, "[{} bytes]", self.len()),
        }
    }
}

impl From<&[u8]> for ItemValue {
    fn from(data: &[u8]) -> Self {
        ItemValue::from_slice(data)
    }
}

impl From<Vec<u8>> for ItemValue {
    fn from(bytes: Vec<u8>) -> Self {
        ItemValue { repr: Repr::Owned(bytes) }
    }
}

impl From<Bytes> for ItemValue {
    fn from(bytes: Bytes) -> Self {
        ItemValue { repr: Repr::Shared(bytes) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let v = ItemValue::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn set_replaces() {
        let mut v = ItemValue::from_slice(b"aaaa");
        v.set(Bytes::from_static(b"bb"));
        assert_eq!(v.as_bytes(), b"bb");
    }

    #[test]
    fn set_adopts_buffer_without_copy() {
        let mut v = ItemValue::new();
        let data = Bytes::from(vec![3; 64]);
        v.set(data.clone());
        assert!(v.share().shares_storage_with(&data));
    }

    #[test]
    fn write_range_in_bounds_and_extending() {
        let mut v = ItemValue::from_slice(b"0123456789");
        v.write_range(2, b"AB");
        assert_eq!(v.as_bytes(), b"01AB456789");
        v.write_range(12, b"Z");
        assert_eq!(v.as_bytes(), b"01AB456789\0\0Z");
    }

    #[test]
    fn share_is_zero_copy_and_stable() {
        let mut v = ItemValue::from_slice(b"payload");
        let ptr = v.as_bytes().as_ptr();
        let shipped = v.share();
        assert_eq!(shipped.as_ref().as_ptr(), ptr, "owned->shared moves, not copies");
        assert!(v.share().shares_storage_with(&shipped), "second share is a refcount bump");
    }

    #[test]
    fn mutate_after_share_copies_on_write() {
        let mut v = ItemValue::from_slice(b"hello world");
        let shipped = v.share();
        v.write_range(0, b"HELLO");
        assert_eq!(v.as_bytes(), b"HELLO world");
        assert_eq!(&shipped[..], b"hello world", "in-flight copy unaffected");
        assert!(!v.share().shares_storage_with(&shipped), "storage diverged");
    }

    #[test]
    fn mutate_unaliased_shared_reclaims_allocation() {
        let mut v = ItemValue::new();
        v.set(Bytes::from(vec![7; 256]));
        let ptr = v.as_bytes().as_ptr();
        v.append(&[8]); // sole owner: must reuse the same allocation
        assert_eq!(v.as_bytes().as_ptr(), ptr);
        assert_eq!(v.len(), 257);
    }

    #[test]
    fn equality_is_content_based_across_reprs() {
        let owned = ItemValue::from_slice(b"same");
        let shared: ItemValue = Bytes::from_static(b"same").into();
        assert_eq!(owned, shared);
        assert_ne!(owned, ItemValue::from_slice(b"diff"));
    }

    #[test]
    fn to_bytes_round_trips() {
        let v = ItemValue::from_slice(b"payload");
        assert_eq!(&v.to_bytes()[..], b"payload");
    }

    #[test]
    fn display_short_utf8_and_binary() {
        assert_eq!(ItemValue::from_slice(b"hi").to_string(), "\"hi\"");
        let big = ItemValue::from(vec![0u8; 100]);
        assert_eq!(big.to_string(), "[100 bytes]");
    }
}
