//! Data item values.

use std::fmt;

use bytes::Bytes;

/// The value of a data item: an owned, growable byte buffer.
///
/// Whole-item copying (the paper's presentation context, §2) clones this
/// buffer; byte-range updates mutate it in place.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct ItemValue {
    bytes: Vec<u8>,
}

impl ItemValue {
    /// An empty value (all items start empty at initialization).
    pub fn new() -> ItemValue {
        ItemValue::default()
    }

    /// Build from a byte slice.
    pub fn from_slice(data: &[u8]) -> ItemValue {
        ItemValue { bytes: data.to_vec() }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read access to the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Replace the whole value.
    pub fn set(&mut self, data: Bytes) {
        self.bytes.clear();
        self.bytes.extend_from_slice(&data);
    }

    /// Overwrite bytes at `offset`, zero-filling any gap.
    pub fn write_range(&mut self, offset: usize, data: &[u8]) {
        let end = offset + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset..end].copy_from_slice(data);
    }

    /// Append bytes at the end.
    pub fn append(&mut self, data: &[u8]) {
        self.bytes.extend_from_slice(data);
    }

    /// Copy the value into a freshly shared buffer (what goes on the wire
    /// when a whole item is shipped).
    pub fn to_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.bytes)
    }
}

impl fmt::Display for ItemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.bytes) {
            Ok(s) if s.len() <= 64 => write!(f, "{s:?}"),
            _ => write!(f, "[{} bytes]", self.bytes.len()),
        }
    }
}

impl From<&[u8]> for ItemValue {
    fn from(data: &[u8]) -> Self {
        ItemValue::from_slice(data)
    }
}

impl From<Vec<u8>> for ItemValue {
    fn from(bytes: Vec<u8>) -> Self {
        ItemValue { bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let v = ItemValue::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn set_replaces() {
        let mut v = ItemValue::from_slice(b"aaaa");
        v.set(Bytes::from_static(b"bb"));
        assert_eq!(v.as_bytes(), b"bb");
    }

    #[test]
    fn write_range_in_bounds_and_extending() {
        let mut v = ItemValue::from_slice(b"0123456789");
        v.write_range(2, b"AB");
        assert_eq!(v.as_bytes(), b"01AB456789");
        v.write_range(12, b"Z");
        assert_eq!(v.as_bytes(), b"01AB456789\0\0Z");
    }

    #[test]
    fn to_bytes_round_trips() {
        let v = ItemValue::from_slice(b"payload");
        assert_eq!(&v.to_bytes()[..], b"payload");
    }

    #[test]
    fn display_short_utf8_and_binary() {
        assert_eq!(ItemValue::from_slice(b"hi").to_string(), "\"hi\"");
        let big = ItemValue::from(vec![0u8; 100]);
        assert_eq!(big.to_string(), "[100 bytes]");
    }
}
