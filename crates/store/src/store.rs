//! The dense store of a replica's regular item copies.

use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_vv::VersionVector;

use crate::op::UpdateOp;
use crate::value::ItemValue;

/// One regular item copy: its value and its item version vector (IVV).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoredItem {
    /// The item's current value at this replica.
    pub value: ItemValue,
    /// The item version vector: entry `j` counts `j`-originated updates
    /// reflected in this copy (§3).
    pub ivv: VersionVector,
}

impl StoredItem {
    /// A fresh, empty item for a system of `n` servers.
    pub fn new(n_nodes: usize) -> StoredItem {
        StoredItem { value: ItemValue::new(), ivv: VersionVector::zero(n_nodes) }
    }
}

/// All regular item copies of one database replica, indexed densely by
/// [`ItemId`].
///
/// The item universe is fixed at construction, mirroring the paper's fixed
/// server set assumption (§2); the protocol's complexity arguments never
/// depend on item creation/deletion.
#[derive(Clone, Debug)]
pub struct ItemStore {
    n_nodes: usize,
    items: Vec<StoredItem>,
}

impl ItemStore {
    /// Create a store of `n_items` empty items for `n_nodes` servers.
    pub fn new(n_nodes: usize, n_items: usize) -> ItemStore {
        ItemStore { n_nodes, items: (0..n_items).map(|_| StoredItem::new(n_nodes)).collect() }
    }

    /// Number of items in the database.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of servers replicas are sized for.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Shared access to an item.
    pub fn get(&self, x: ItemId) -> Result<&StoredItem> {
        self.items.get(x.index()).ok_or(Error::UnknownItem(x))
    }

    /// Mutable access to an item.
    pub fn get_mut(&mut self, x: ItemId) -> Result<&mut StoredItem> {
        self.items.get_mut(x.index()).ok_or(Error::UnknownItem(x))
    }

    /// Apply a local update to item `x` on behalf of server `i`:
    /// apply the operation and bump `v_ii(x)`. Returns the update's
    /// per-item sequence number at `i` (the new `v_ii(x)`).
    pub fn apply_local_update(&mut self, i: NodeId, x: ItemId, op: &UpdateOp) -> Result<u64> {
        let item = self.get_mut(x)?;
        op.apply(&mut item.value);
        Ok(item.ivv.bump(i))
    }

    /// Adopt a received copy wholesale (value and IVV), as
    /// `AcceptPropagation` does once domination is verified (Fig. 3).
    pub fn adopt(&mut self, x: ItemId, value: ItemValue, ivv: VersionVector) -> Result<()> {
        let item = self.get_mut(x)?;
        item.value = value;
        item.ivv = ivv;
        Ok(())
    }

    /// Iterate all items with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &StoredItem)> {
        self.items.iter().enumerate().map(|(i, it)| (ItemId::from_index(i), it))
    }

    /// Component-wise sum of all IVVs — the quantity the DBVV must equal at
    /// all times (the workspace's central invariant; see `epidb-vv`).
    pub fn ivv_sum(&self) -> VersionVector {
        let mut sum = vec![0u64; self.n_nodes];
        for item in &self.items {
            for (l, s) in sum.iter_mut().enumerate() {
                *s += item.ivv.get(NodeId::from_index(l));
            }
        }
        VersionVector::from_entries(sum)
    }

    /// Total bytes stored across all item values.
    pub fn total_value_bytes(&self) -> usize {
        self.items.iter().map(|it| it.value.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_store_is_all_empty() {
        let s = ItemStore::new(3, 5);
        assert_eq!(s.n_items(), 5);
        assert_eq!(s.n_nodes(), 3);
        for (_, item) in s.iter() {
            assert!(item.value.is_empty());
            assert_eq!(item.ivv.total(), 0);
        }
    }

    #[test]
    fn unknown_item_is_an_error() {
        let mut s = ItemStore::new(2, 1);
        assert!(matches!(s.get(ItemId(1)), Err(Error::UnknownItem(ItemId(1)))));
        assert!(s.get_mut(ItemId(9)).is_err());
    }

    #[test]
    fn local_update_applies_and_bumps() {
        let mut s = ItemStore::new(2, 2);
        let seq = s.apply_local_update(NodeId(1), ItemId(0), &UpdateOp::set(&b"v1"[..])).unwrap();
        assert_eq!(seq, 1);
        let item = s.get(ItemId(0)).unwrap();
        assert_eq!(item.value.as_bytes(), b"v1");
        assert_eq!(item.ivv.get(NodeId(1)), 1);
        assert_eq!(item.ivv.get(NodeId(0)), 0);
        // Untouched item unchanged.
        assert_eq!(s.get(ItemId(1)).unwrap().ivv.total(), 0);
    }

    #[test]
    fn adopt_replaces_value_and_ivv() {
        let mut s = ItemStore::new(2, 1);
        let ivv = VersionVector::from_entries(vec![0, 3]);
        s.adopt(ItemId(0), ItemValue::from_slice(b"remote"), ivv.clone()).unwrap();
        let item = s.get(ItemId(0)).unwrap();
        assert_eq!(item.value.as_bytes(), b"remote");
        assert_eq!(&item.ivv, &ivv);
    }

    #[test]
    fn ivv_sum_adds_componentwise() {
        let mut s = ItemStore::new(2, 3);
        s.apply_local_update(NodeId(0), ItemId(0), &UpdateOp::set(&b"a"[..])).unwrap();
        s.apply_local_update(NodeId(0), ItemId(1), &UpdateOp::set(&b"b"[..])).unwrap();
        s.apply_local_update(NodeId(1), ItemId(1), &UpdateOp::set(&b"c"[..])).unwrap();
        let sum = s.ivv_sum();
        assert_eq!(sum.entries(), &[2, 1]);
    }

    #[test]
    fn total_value_bytes_sums_lengths() {
        let mut s = ItemStore::new(1, 2);
        s.apply_local_update(NodeId(0), ItemId(0), &UpdateOp::set(&b"1234"[..])).unwrap();
        s.apply_local_update(NodeId(0), ItemId(1), &UpdateOp::set(&b"56"[..])).unwrap();
        assert_eq!(s.total_value_bytes(), 6);
    }
}
