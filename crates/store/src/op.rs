//! Re-doable update operations (§4.4).

use std::fmt;

use bytes::Bytes;

use crate::value::ItemValue;

/// An update operation applied to a single data item.
///
/// Operations carry the data needed to re-execute them, because the
/// auxiliary log replays them onto the regular copy during intra-node
/// propagation (§5.1 step 3). The paper's example is a byte-range write;
/// `Set` (full overwrite) and `Append` round out a realistic document-store
/// update vocabulary (Lotus Notes-style documents).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UpdateOp {
    /// Replace the whole value.
    Set(Bytes),
    /// Overwrite `data.len()` bytes starting at `offset`, extending the
    /// value with zero-fill if it is shorter than `offset`.
    WriteRange {
        /// Byte offset the write starts at.
        offset: usize,
        /// The bytes written.
        data: Bytes,
    },
    /// Append bytes at the end of the value.
    Append(Bytes),
}

impl UpdateOp {
    /// Apply the operation to a value in place.
    pub fn apply(&self, value: &mut ItemValue) {
        match self {
            UpdateOp::Set(data) => value.set(data.clone()),
            UpdateOp::WriteRange { offset, data } => value.write_range(*offset, data),
            UpdateOp::Append(data) => value.append(data),
        }
    }

    /// Payload bytes this operation carries (for wire accounting when
    /// operations are shipped, as the Oracle baseline and the auxiliary
    /// machinery do).
    pub fn payload_len(&self) -> usize {
        match self {
            UpdateOp::Set(d) | UpdateOp::Append(d) => d.len(),
            UpdateOp::WriteRange { data, .. } => data.len(),
        }
    }

    /// Convenience constructor: full overwrite from a slice.
    pub fn set(data: impl Into<Bytes>) -> UpdateOp {
        UpdateOp::Set(data.into())
    }

    /// Convenience constructor: byte-range write.
    pub fn write_range(offset: usize, data: impl Into<Bytes>) -> UpdateOp {
        UpdateOp::WriteRange { offset, data: data.into() }
    }

    /// Convenience constructor: append.
    pub fn append(data: impl Into<Bytes>) -> UpdateOp {
        UpdateOp::Append(data.into())
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOp::Set(d) => write!(f, "set[{}B]", d.len()),
            UpdateOp::WriteRange { offset, data } => {
                write!(f, "write[{}..+{}B]", offset, data.len())
            }
            UpdateOp::Append(d) => write!(f, "append[{}B]", d.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_value() {
        let mut v = ItemValue::from_slice(b"old");
        UpdateOp::set(&b"new value"[..]).apply(&mut v);
        assert_eq!(v.as_bytes(), b"new value");
    }

    #[test]
    fn write_range_overwrites_middle() {
        let mut v = ItemValue::from_slice(b"hello world");
        UpdateOp::write_range(6, &b"earth"[..]).apply(&mut v);
        assert_eq!(v.as_bytes(), b"hello earth");
    }

    #[test]
    fn write_range_extends_with_zero_fill() {
        let mut v = ItemValue::from_slice(b"ab");
        UpdateOp::write_range(4, &b"cd"[..]).apply(&mut v);
        assert_eq!(v.as_bytes(), b"ab\0\0cd");
    }

    #[test]
    fn append_extends() {
        let mut v = ItemValue::from_slice(b"log:");
        UpdateOp::append(&b" entry"[..]).apply(&mut v);
        assert_eq!(v.as_bytes(), b"log: entry");
    }

    #[test]
    fn payload_len_counts_data() {
        assert_eq!(UpdateOp::set(&b"abc"[..]).payload_len(), 3);
        assert_eq!(UpdateOp::write_range(9, &b"ab"[..]).payload_len(), 2);
        assert_eq!(UpdateOp::append(&b""[..]).payload_len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(UpdateOp::set(&b"abc"[..]).to_string(), "set[3B]");
        assert_eq!(UpdateOp::write_range(5, &b"xy"[..]).to_string(), "write[5..+2B]");
        assert_eq!(UpdateOp::append(&b"x"[..]).to_string(), "append[1B]");
    }
}
