//! Property tests for update-operation semantics — the substrate the
//! auxiliary log's replay correctness rests on: applying the same operation
//! sequence to equal values yields equal values (determinism), and
//! whole-value copying commutes with replay.

use bytes::Bytes;
use epidb_store::{ItemValue, UpdateOp};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..32).prop_map(|d| UpdateOp::Set(Bytes::from(d))),
        (0usize..64, prop::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(offset, d)| { UpdateOp::WriteRange { offset, data: Bytes::from(d) } }),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(|d| UpdateOp::Append(Bytes::from(d))),
    ]
}

proptest! {
    /// Determinism: the same op sequence on equal starting values produces
    /// equal results.
    #[test]
    fn application_is_deterministic(
        start in prop::collection::vec(any::<u8>(), 0..64),
        ops in prop::collection::vec(arb_op(), 0..20),
    ) {
        let mut a = ItemValue::from_slice(&start);
        let mut b = ItemValue::from_slice(&start);
        for op in &ops {
            op.apply(&mut a);
            op.apply(&mut b);
        }
        prop_assert_eq!(a, b);
    }

    /// Copy-then-replay equals replay-then-copy: adopting a whole value and
    /// then applying pending ops gives the same result as applying the ops
    /// at the source and copying — the fact that makes whole-item shipping
    /// and delta shipping interchangeable.
    #[test]
    fn copy_commutes_with_replay(
        base in prop::collection::vec(any::<u8>(), 0..64),
        ops in prop::collection::vec(arb_op(), 0..12),
    ) {
        // Path 1: apply at the source, then copy.
        let mut source = ItemValue::from_slice(&base);
        for op in &ops {
            op.apply(&mut source);
        }
        let copied_after = ItemValue::from_slice(source.as_bytes());

        // Path 2: copy the base, then replay.
        let mut replayed = ItemValue::from_slice(&base);
        for op in &ops {
            op.apply(&mut replayed);
        }
        prop_assert_eq!(copied_after, replayed);
    }

    /// Set is absorbing: anything before the last Set is irrelevant.
    #[test]
    fn set_absorbs_history(
        prefix in prop::collection::vec(arb_op(), 0..8),
        data in prop::collection::vec(any::<u8>(), 0..32),
        suffix in prop::collection::vec(arb_op(), 0..8),
    ) {
        let run = |with_prefix: bool| {
            let mut v = ItemValue::new();
            if with_prefix {
                for op in &prefix {
                    op.apply(&mut v);
                }
            }
            UpdateOp::Set(Bytes::from(data.clone())).apply(&mut v);
            for op in &suffix {
                op.apply(&mut v);
            }
            v
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// WriteRange leaves bytes outside the range intact and installs the
    /// data inside it.
    #[test]
    fn write_range_is_surgical(
        base in prop::collection::vec(any::<u8>(), 1..64),
        offset in 0usize..80,
        data in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut v = ItemValue::from_slice(&base);
        UpdateOp::WriteRange { offset, data: Bytes::from(data.clone()) }.apply(&mut v);
        let out = v.as_bytes();
        // Written region.
        prop_assert_eq!(&out[offset..offset + data.len()], &data[..]);
        // Prefix intact (up to the original length).
        let keep = offset.min(base.len());
        prop_assert_eq!(&out[..keep], &base[..keep]);
        // Suffix intact where the original extended beyond the write.
        if base.len() > offset + data.len() {
            prop_assert_eq!(&out[offset + data.len()..base.len()], &base[offset + data.len()..]);
        }
        // Gap (if any) zero-filled.
        for &b in &out[keep..offset.min(out.len())] {
            prop_assert_eq!(b, 0);
        }
    }

    /// Append preserves the old value as a strict prefix — the property the
    /// correctness auditor's history encoding relies on.
    #[test]
    fn append_extends_prefix(
        base in prop::collection::vec(any::<u8>(), 0..64),
        data in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut v = ItemValue::from_slice(&base);
        UpdateOp::Append(Bytes::from(data.clone())).apply(&mut v);
        prop_assert_eq!(&v.as_bytes()[..base.len()], &base[..]);
        prop_assert_eq!(v.len(), base.len() + data.len());
    }

    /// payload_len matches the data the op carries.
    #[test]
    fn payload_len_is_exact(op in arb_op()) {
        let expected = match &op {
            UpdateOp::Set(d) | UpdateOp::Append(d) => d.len(),
            UpdateOp::WriteRange { data, .. } => data.len(),
        };
        prop_assert_eq!(op.payload_len(), expected);
    }
}
