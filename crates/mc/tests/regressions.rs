//! Regression corpus: historical protocol bugs encoded as fixed minimal
//! schedules the checker explores green today.
//!
//! Two bugs shipped (and were fixed) before the model checker existed:
//!
//! * **Delta-LWW conflict double-count** (fixed in the durability PR):
//!   under `ResolveLww`, a concurrent item arriving through a delta pull
//!   was counted once by `evaluate_delta_offer` and again when the
//!   `Whole` fallback re-detected the pair in `accept_propagation` —
//!   `conflicts_detected` drifted to 2 per conflict while whole-item
//!   pulls counted 1.
//! * **Retry double-budget** (fixed in the small-path PR): the delta →
//!   whole-item degradation ladder ran the degraded pull under a *fresh*
//!   retry budget, so one failing round could spend up to twice its
//!   configured attempts.
//!
//! The checker would have caught both. The double-count: every schedule
//! of a conflict-free scenario must pass the strict-clean §2.1 check
//! (zero conflicts counted), and the fixed schedules below pin the exact
//! once-only count on a genuine conflict. The double-budget: the checker
//! models every attempt as an explicit event — a delta round aborted by
//! loss, then *one* whole-item round — so a second whole-item attempt
//! materializes as an extra in-flight round and a different (wrong)
//! event schedule; the corpus pins the single-degraded-attempt schedule
//! converging with exact accounting.
//!
//! Each test (a) replays the minimal schedule through [`System`] and
//! asserts the once-fixed observable, and (b) explores the containing
//! scenario exhaustively, asserting no interleaving violates anything
//! today.

use epidb_core::ConflictPolicy;
use epidb_mc::{explore, Action, Expectation, Scenario, Strategy, System, Topology};
use epidb_mc::{Event, Limits};

/// Drive round `rid`'s messages to completion (the fault-free delivery
/// schedule for that round).
fn deliver_round(sys: &mut System, sc: &Scenario, rid: u32) {
    while sys.enabled_events(sc).contains(&Event::Deliver(rid)) {
        sys.apply(sc, Event::Deliver(rid)).unwrap();
        assert_eq!(sys.first_violation(), None, "invariants hold at every step");
    }
}

#[test]
fn pr5_delta_lww_conflict_counted_exactly_once() {
    // The minimal trigger for the old double-count: two concurrent writes
    // to the same item, one delta pull, LWW policy.
    let sc = Scenario::two_node_lww_conflict();
    let mut sys = System::new(&sc).unwrap();

    sys.apply(&sc, Event::Fire(0)).unwrap(); // n0 writes x0
    sys.apply(&sc, Event::Fire(1)).unwrap(); // n1 writes x0 (concurrent)
    sys.apply(&sc, Event::Fire(2)).unwrap(); // n1 starts delta pull from n0
    deliver_round(&mut sys, &sc, 2);

    let puller = sys.replica(1).unwrap();
    assert_eq!(
        puller.costs().conflicts_detected,
        1,
        "one concurrent pair, counted once (the old bug counted 2 in delta mode)"
    );
    assert_eq!(puller.counters().lww_resolutions, 1, "and resolved once");

    // The back-propagating whole pull sees the *resolved* value — LWW
    // resolution absorbed both writes into n1's IVV, so n1's state now
    // dominates n0's and no second conflict is (or ever was) detected.
    sys.apply(&sc, Event::Fire(3)).unwrap();
    deliver_round(&mut sys, &sc, 3);
    let other = sys.replica(0).unwrap();
    assert_eq!(other.costs().conflicts_detected, 0, "resolution already absorbed the pair");
    assert_eq!(
        sys.replica(0).unwrap().read(epidb_common::ItemId(0)).unwrap(),
        sys.replica(1).unwrap().read(epidb_common::ItemId(0)).unwrap(),
        "both replicas converged on the LWW winner"
    );

    // And no interleaving of the scenario violates anything today.
    let report = explore(&sc, Strategy::Bfs, &sc.smoke_limits()).unwrap();
    assert!(report.is_clean(), "{}", report.counterexample.unwrap().rendered);
}

/// The PR 6 world as a bounded scenario: a delta pull that the scheduler
/// may fail (loss budget 1) plus the single degraded whole-item pull.
fn degradation_scenario() -> Scenario {
    Scenario {
        name: "pr6-degradation-budget",
        topology: Topology::Full { n_nodes: 2, n_items: 2 },
        policy: ConflictPolicy::Report,
        delta_budget: 4096,
        frame_items: 0,
        crash_budget: 0,
        loss_budget: 1,
        log_retention: 0,
        mutant: None,
        actions: vec![
            Action::Update { node: 0, item: 0, value: b"payload".to_vec() },
            Action::Delta { node: 1, peer: 0 },
            Action::Pull { node: 1, peer: 0 },
        ],
        expectation: Expectation::ConflictFree,
    }
}

#[test]
fn pr6_degraded_round_is_exactly_one_whole_pull() {
    // The fixed minimal schedule of the degradation ladder: the delta
    // round's first message is lost (the transport failure that used to
    // start a fresh retry budget), then exactly ONE whole-item attempt
    // completes the sync. With the old double budget, the failing round
    // would have kept further attempts in flight; here the aborted delta
    // leaves nothing behind and the single pull finishes the job.
    let sc = degradation_scenario();
    let mut sys = System::new(&sc).unwrap();

    sys.apply(&sc, Event::Fire(0)).unwrap(); // n0 writes x0
    sys.apply(&sc, Event::Fire(1)).unwrap(); // n1 starts delta pull
    let applied = sys.apply(&sc, Event::Drop(1)).unwrap(); // the attempt fails
    assert_eq!(applied.aborted_rounds, 1, "a lost exchange aborts the round");
    assert!(
        !sys.enabled_events(&sc).iter().any(|e| matches!(e, Event::Deliver(1))),
        "the failed delta round left no messages in flight"
    );

    sys.apply(&sc, Event::Fire(2)).unwrap(); // the one degraded whole pull
    deliver_round(&mut sys, &sc, 2);

    assert!(sys.is_goal(), "schedule quiesces after the single degraded attempt");
    assert_eq!(sys.first_violation(), None);
    let puller = sys.replica(1).unwrap();
    assert_eq!(puller.read(epidb_common::ItemId(0)).unwrap().as_bytes(), b"payload");

    // Exhaustively: every interleaving — including losing the pull
    // instead, or losing nothing — satisfies the invariants, and every
    // quiescent schedule satisfies §2.1 with exact update accounting.
    let report = explore(&sc, Strategy::Bfs, &sc.smoke_limits()).unwrap();
    assert!(report.is_clean(), "{}", report.counterexample.unwrap().rendered);
    assert!(!report.stats.state_cap_hit);
    assert!(report.stats.max_depth_seen < sc.smoke_limits().max_depth, "space exhausted");
}

#[test]
fn corpus_schedules_are_within_default_smoke_limits() {
    // The corpus must stay explorable inside the generic smoke budget so
    // the CI leg can afford it forever.
    let sc = degradation_scenario();
    let limits = Limits::smoke();
    let report = explore(&sc, Strategy::Bfs, &limits).unwrap();
    assert!(report.is_clean());
}
