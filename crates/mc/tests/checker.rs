//! End-to-end checker tests: every built-in clean scenario explores
//! violation-free within the smoke limits, and the seeded mutant is
//! caught with a minimized, replayable counterexample.

use epidb_mc::{explore, Limits, Scenario, Strategy, System};

#[test]
fn all_clean_scenarios_hold_every_invariant() {
    for sc in Scenario::all_clean() {
        let limits = sc.smoke_limits();
        let report = explore(&sc, Strategy::Bfs, &limits).unwrap();
        assert!(
            report.is_clean(),
            "scenario '{}' produced a counterexample:\n{}",
            sc.name,
            report.counterexample.unwrap().rendered
        );
        assert!(report.stats.states_explored > 100, "'{}' barely explored", sc.name);
        assert!(report.stats.goals_checked > 0, "'{}' never reached quiescence", sc.name);
        assert!(report.stats.deduped > 0, "'{}' fingerprint dedup never fired", sc.name);
        // The smoke depth bound sits *above* the deepest reachable schedule
        // and the state cap was never hit, so this is a complete
        // exploration of the scenario's reachable space, not a truncation.
        assert!(
            report.stats.max_depth_seen < limits.max_depth,
            "'{}' hit the depth bound (saw {} of {}) — space not exhausted",
            sc.name,
            report.stats.max_depth_seen,
            limits.max_depth
        );
        assert!(!report.stats.state_cap_hit, "'{}' hit the state cap", sc.name);
    }
}

#[test]
fn seeded_mutant_is_caught_and_minimized() {
    let sc = Scenario::seeded_mutant();
    let report = explore(&sc, Strategy::Bfs, &Limits::smoke()).unwrap();
    let cx = report.counterexample.expect("the dbvv-sum mutant must be caught");
    assert_eq!(cx.check, "dbvv-sum");
    // The shortest trigger is exactly five events: both concurrent writes,
    // firing the pull, delivering its request, and delivering the response
    // (the buggy adopt happens when the response lands). Minimization must
    // shrink the found schedule to that.
    assert_eq!(
        cx.events.len(),
        5,
        "counterexample not minimal: {} events\n{}",
        cx.events.len(),
        cx.rendered
    );
    assert!(cx.rendered.contains("dbvv-sum"), "rendered report names the check");
    assert!(cx.rendered.contains("schedule"), "rendered report shows the schedule");

    // The minimized schedule is replayable: applying its events to a fresh
    // system reproduces the violation.
    let mut sys = System::new(&sc).unwrap();
    let mut tripped = false;
    for &ev in &cx.events {
        if !sys.enabled_events(&sc).contains(&ev) {
            continue;
        }
        sys.apply(&sc, ev).unwrap();
        if let Some(v) = sys.first_violation() {
            assert_eq!(v.check, "dbvv-sum");
            tripped = true;
            break;
        }
    }
    assert!(tripped, "replaying the minimized schedule must reproduce the violation");
}

#[test]
fn dfs_also_catches_the_mutant() {
    let report = explore(&Scenario::seeded_mutant(), Strategy::Dfs, &Limits::smoke()).unwrap();
    let cx = report.counterexample.expect("DFS must catch the mutant too");
    assert_eq!(cx.check, "dbvv-sum");
}

#[test]
fn stats_are_reported_and_displayable() {
    let sc = Scenario::two_node_lww_conflict();
    let report = explore(&sc, Strategy::Bfs, &sc.smoke_limits()).unwrap();
    assert!(report.is_clean());
    let line = report.stats.to_string();
    assert!(line.contains("states"), "display summarizes counters: {line}");
}
