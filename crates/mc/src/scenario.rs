//! Scenario definitions: the bounded worlds the checker explores.
//!
//! A [`Scenario`] fixes everything *except* the schedule — topology,
//! conflict policy, a finite set of [`Action`]s (local updates and
//! protocol-round starts, each fired at most once), and fault budgets for
//! crashes and message losses. The explorer then enumerates every
//! interleaving of action firings, message deliveries, losses, crashes,
//! and revivals the budgets allow.
//!
//! The [`Expectation`] states what §2.1 eventual consistency means for
//! this scenario once the system quiesces (all actions fired, no rounds in
//! flight): conflict-free runs must converge byte-for-byte with exact
//! DBVV accounting, LWW runs must converge after resolution, and
//! `Report`-policy runs with genuine concurrent writes are allowed to hold
//! stable divergence on the conflicted items — but nothing else.

use epidb_core::ConflictPolicy;

use crate::explore::Limits;

/// How nodes replicate.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Every node holds a full replica of the same `n_items`-item database.
    Full {
        /// Number of servers.
        n_nodes: usize,
        /// Database size in items.
        n_items: usize,
    },
    /// Sharded partial replication: shard `s` covers
    /// `items_per_shard` global items and is replicated by the nodes of
    /// `groups[s]` (indices into the node vector).
    Sharded {
        /// Number of servers.
        n_nodes: usize,
        /// Items per shard.
        items_per_shard: usize,
        /// One owner list per shard.
        groups: Vec<Vec<usize>>,
    },
}

impl Topology {
    /// Number of servers in the deployment.
    pub fn n_nodes(&self) -> usize {
        match self {
            Topology::Full { n_nodes, .. } | Topology::Sharded { n_nodes, .. } => *n_nodes,
        }
    }
}

/// One thing that can happen exactly once per run, at any point the
/// scheduler chooses (provided the acting node is up).
#[derive(Clone, Debug)]
pub enum Action {
    /// A local write at `node`.
    Update {
        /// Acting node index.
        node: usize,
        /// Item written (global id).
        item: u32,
        /// The value set.
        value: Vec<u8>,
    },
    /// `node` starts a whole-item anti-entropy pull from `peer` (§5.1).
    Pull {
        /// Initiating (recipient) node index.
        node: usize,
        /// Source node index.
        peer: usize,
    },
    /// `node` starts a delta-mode pull from `peer`.
    Delta {
        /// Initiating node index.
        node: usize,
        /// Source node index.
        peer: usize,
    },
    /// `node` starts a digest-tree set-reconciliation pull from `peer` —
    /// the cold-start rung below whole-pull (§15).
    ReconPull {
        /// Initiating (recipient) node index.
        node: usize,
        /// Source node index.
        peer: usize,
    },
    /// `node` requests an out-of-bound copy of `item` from `peer` (§5.2).
    Oob {
        /// Initiating node index.
        node: usize,
        /// Source node index.
        peer: usize,
        /// Item fetched (global id; for sharded topologies both nodes must
        /// own its shard).
        item: u32,
    },
    /// Sharded only: `node` starts a pull of one owned shard from a
    /// co-owner `peer`.
    ShardPull {
        /// Initiating node index.
        node: usize,
        /// Source node index (must co-own the shard).
        peer: usize,
        /// The shard pulled.
        shard: u32,
    },
    /// Sharded only: `node` fetches `item` from a shard it does *not* own,
    /// via `peer` (a remote-group owner) — the cross-group out-of-bound
    /// read. Charged to node meta-costs; adopts no local state.
    CrossOob {
        /// Initiating node index.
        node: usize,
        /// Remote-group owner serving the fetch.
        peer: usize,
        /// Item fetched (global id).
        item: u32,
    },
}

impl Action {
    /// The node that initiates this action.
    pub fn actor(&self) -> usize {
        match self {
            Action::Update { node, .. }
            | Action::Pull { node, .. }
            | Action::Delta { node, .. }
            | Action::ReconPull { node, .. }
            | Action::Oob { node, .. }
            | Action::ShardPull { node, .. }
            | Action::CrossOob { node, .. } => *node,
        }
    }
}

/// What §2.1 eventual consistency means for a scenario, checked at every
/// quiescent (goal) state after reviving crashed nodes and running healing
/// anti-entropy sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// No concurrent writes to the same item anywhere in the action set:
    /// replicas must converge byte-for-byte, report zero conflicts, shed
    /// all auxiliary copies, and each DBVV component `j` must equal the
    /// number of updates originated at `j` — no lost, no duplicated
    /// updates.
    ConflictFree,
    /// Concurrent writes exist but the policy is
    /// [`ConflictPolicy::ResolveLww`]: replicas must still converge
    /// byte-for-byte (conflicts are allowed and expected).
    Lww,
    /// Concurrent writes under [`ConflictPolicy::Report`]: conflicted
    /// items may hold stable divergence, but healing must reach a fixpoint
    /// where further pulls copy nothing, and every invariant must hold.
    ReportTolerated,
}

/// A bounded world for the explorer. See the module docs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name (also used in reports).
    pub name: &'static str,
    /// Replication layout.
    pub topology: Topology,
    /// Conflict policy of every replica.
    pub policy: ConflictPolicy,
    /// Op-cache budget in bytes; 0 disables delta shipping.
    pub delta_budget: usize,
    /// Max wanted items per `DeltaFetch` frame; 0 means unbounded.
    pub frame_items: usize,
    /// How many crash events the scheduler may inject.
    pub crash_budget: u32,
    /// How many in-flight messages the scheduler may lose.
    pub loss_budget: u32,
    /// Log-vector retention bound applied to every replica at start
    /// (records kept per (origin, item) component); 0 means unbounded.
    /// With a bound, compaction raises coverage floors and pulls against
    /// stale recipients degrade to set reconciliation.
    pub log_retention: usize,
    /// Node index whose replica runs with the seeded protocol mutation
    /// (adopt-concurrent-without-absorb; see
    /// `Replica::debug_break_conflict_adopt`) — the checker's self-test.
    pub mutant: Option<usize>,
    /// The finite action set.
    pub actions: Vec<Action>,
    /// The §2.1 statement to check at quiescent states.
    pub expectation: Expectation,
}

impl Scenario {
    /// Two full replicas, no conflicting writes: updates at both sides, a
    /// pull each way, a delta pull, and an OOB copy — with one crash and
    /// one message loss available to the scheduler. The canonical
    /// correctness scenario: every interleaving must preserve all six
    /// state invariants and converge exactly.
    pub fn two_node_full() -> Scenario {
        Scenario {
            name: "two-node-full",
            topology: Topology::Full { n_nodes: 2, n_items: 4 },
            policy: ConflictPolicy::Report,
            delta_budget: 4096,
            frame_items: 1,
            crash_budget: 1,
            loss_budget: 1,
            log_retention: 0,
            mutant: None,
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"a0".to_vec() },
                Action::Update { node: 1, item: 1, value: b"b1".to_vec() },
                Action::Delta { node: 1, peer: 0 },
                Action::Pull { node: 0, peer: 1 },
                Action::Oob { node: 0, peer: 1, item: 1 },
            ],
            expectation: Expectation::ConflictFree,
        }
    }

    /// Three full replicas relaying an update (0 → 1 → 2) with a second
    /// write landing mid-relay, one crash and one loss. Exercises
    /// propagation through an intermediary under faults.
    pub fn three_node_relay() -> Scenario {
        Scenario {
            name: "three-node-relay",
            topology: Topology::Full { n_nodes: 3, n_items: 3 },
            policy: ConflictPolicy::Report,
            delta_budget: 4096,
            frame_items: 0,
            crash_budget: 1,
            loss_budget: 1,
            log_retention: 0,
            mutant: None,
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"x".to_vec() },
                Action::Delta { node: 1, peer: 0 },
                Action::Update { node: 2, item: 2, value: b"y".to_vec() },
                Action::Pull { node: 2, peer: 1 },
                Action::Pull { node: 1, peer: 2 },
            ],
            expectation: Expectation::ConflictFree,
        }
    }

    /// Two full replicas writing the same item concurrently under the LWW
    /// policy, syncing both ways: every schedule must still converge
    /// byte-for-byte after resolution.
    pub fn two_node_lww_conflict() -> Scenario {
        Scenario {
            name: "two-node-lww-conflict",
            topology: Topology::Full { n_nodes: 2, n_items: 2 },
            policy: ConflictPolicy::ResolveLww,
            delta_budget: 4096,
            frame_items: 0,
            crash_budget: 1,
            loss_budget: 0,
            log_retention: 0,
            mutant: None,
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"from-a".to_vec() },
                Action::Update { node: 1, item: 0, value: b"from-b".to_vec() },
                Action::Delta { node: 1, peer: 0 },
                Action::Pull { node: 0, peer: 1 },
            ],
            expectation: Expectation::Lww,
        }
    }

    /// Same concurrent write, `Report` policy: the conflicted item may
    /// diverge stably, everything else must quiesce and every invariant
    /// must hold in every schedule.
    pub fn two_node_report_conflict() -> Scenario {
        Scenario {
            name: "two-node-report-conflict",
            policy: ConflictPolicy::Report,
            expectation: Expectation::ReportTolerated,
            ..Scenario::two_node_lww_conflict()
        }
    }

    /// Four sharded nodes in two groups of two (shard 0 → nodes 0,1;
    /// shard 1 → nodes 2,3): intra-group pulls plus a cross-group
    /// out-of-bound read, with one crash. Checks that shard routing and
    /// cross-group fetches preserve every per-shard invariant under
    /// arbitrary interleaving.
    pub fn sharded_two_group() -> Scenario {
        Scenario {
            name: "sharded-two-group",
            topology: Topology::Sharded {
                n_nodes: 4,
                items_per_shard: 2,
                groups: vec![vec![0, 1], vec![2, 3]],
            },
            policy: ConflictPolicy::Report,
            delta_budget: 4096,
            frame_items: 0,
            crash_budget: 1,
            loss_budget: 0,
            log_retention: 0,
            mutant: None,
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"g0".to_vec() },
                Action::Update { node: 2, item: 2, value: b"g1".to_vec() },
                Action::ShardPull { node: 1, peer: 0, shard: 0 },
                Action::ShardPull { node: 3, peer: 2, shard: 1 },
                Action::CrossOob { node: 0, peer: 2, item: 2 },
            ],
            expectation: Expectation::ConflictFree,
        }
    }

    /// Cold-start reconciliation: node 0 accumulates writes (two to the
    /// same item, so retention-1 compaction prunes a record and raises its
    /// coverage floor), node 1 holds one write of its own, and node 1
    /// reconciles from node 0 via the digest tree — under one crash and
    /// one loss. Healing pulls against the compacted node must degrade to
    /// recon on their own, so every schedule still converges exactly.
    pub fn cold_start_recon() -> Scenario {
        Scenario {
            name: "cold-start-recon",
            topology: Topology::Full { n_nodes: 2, n_items: 4 },
            policy: ConflictPolicy::Report,
            delta_budget: 0,
            frame_items: 0,
            crash_budget: 1,
            loss_budget: 1,
            log_retention: 1,
            mutant: None,
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"r0".to_vec() },
                Action::Update { node: 0, item: 0, value: b"r0-again".to_vec() },
                Action::Update { node: 0, item: 1, value: b"r1".to_vec() },
                Action::Update { node: 1, item: 2, value: b"s2".to_vec() },
                Action::ReconPull { node: 1, peer: 0 },
            ],
            expectation: Expectation::ConflictFree,
        }
    }

    /// The self-test: node 0 runs the seeded mutant (adopts concurrent
    /// copies without absorbing into the DBVV, breaking maintenance
    /// rule 3). The checker must find a schedule tripping the `dbvv-sum`
    /// invariant and minimize it.
    pub fn seeded_mutant() -> Scenario {
        Scenario {
            name: "seeded-mutant",
            topology: Topology::Full { n_nodes: 2, n_items: 2 },
            policy: ConflictPolicy::Report,
            delta_budget: 0,
            frame_items: 0,
            crash_budget: 0,
            loss_budget: 0,
            log_retention: 0,
            mutant: Some(0),
            actions: vec![
                Action::Update { node: 0, item: 0, value: b"mine".to_vec() },
                Action::Update { node: 1, item: 0, value: b"theirs".to_vec() },
                Action::Pull { node: 0, peer: 1 },
            ],
            expectation: Expectation::ReportTolerated,
        }
    }

    /// The depth every schedule needs to run all actions to completion
    /// with no faults: one ply per update, three per protocol round
    /// (fire, deliver request, deliver response) — plus extra plies for
    /// rounds that take multiple exchanges (delta frames, item fetches).
    fn full_completion_depth(&self) -> usize {
        let mut depth = 0usize;
        for a in &self.actions {
            depth += match a {
                Action::Update { .. } => 1,
                // Whole-item and shard pulls exchange VVs, then fetch; delta
                // pulls may ship several frames (frame_items bounds each).
                Action::Pull { .. } | Action::ShardPull { .. } | Action::Delta { .. } => 5,
                // Recon descends the digest tree level by level: fire plus
                // one request/response exchange per level, plus the leaf
                // fetch — bounded by the small worlds checked here.
                Action::ReconPull { .. } => 9,
                Action::Oob { .. } | Action::CrossOob { .. } => 3,
            };
        }
        depth
    }

    /// CI-sized exploration limits for this scenario: deep enough that
    /// every schedule can run to quiescence (so §2.1 goal checks fire on
    /// fault-free completions, not only on crash-truncated ones), with a
    /// couple of spare plies for fault injection.
    pub fn smoke_limits(&self) -> Limits {
        Limits { max_depth: self.full_completion_depth() + 2, max_states: 400_000 }
    }

    /// Deeper limits for local runs: more spare plies for faults and a
    /// larger state budget.
    pub fn thorough_limits(&self) -> Limits {
        Limits { max_depth: self.full_completion_depth() + 4, max_states: 4_000_000 }
    }

    /// Every built-in scenario that must pass (the seeded mutant is the
    /// deliberate failure and is excluded — see [`Scenario::seeded_mutant`]).
    pub fn all_clean() -> Vec<Scenario> {
        vec![
            Scenario::two_node_full(),
            Scenario::three_node_relay(),
            Scenario::two_node_lww_conflict(),
            Scenario::two_node_report_conflict(),
            Scenario::sharded_two_group(),
            Scenario::cold_start_recon(),
        ]
    }
}
