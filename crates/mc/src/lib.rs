#![warn(missing_docs)]

//! `epidb-mc` — an exhaustive protocol model checker for the epidemic
//! update-propagation protocol.
//!
//! The simulator and chaos harness sample schedules; this crate
//! *enumerates* them. A [`Scenario`] fixes a bounded world — topology,
//! conflict policy, a finite set of actions (writes and protocol-round
//! starts), and fault budgets for crashes and message losses — and
//! [`explore`] walks **every** interleaving of action firings, message
//! deliveries, message losses, node crashes, and revivals up to a depth
//! bound, deduplicating states by canonical fingerprint
//! ([`epidb_core::mc_state`]).
//!
//! Three layers of the workspace make this possible:
//!
//! * **Step-wise rounds** ([`epidb_core::rounds`]): the initiator state
//!   machine with the blocking loop turned inside out, byte-identical in
//!   costs and state to the blocking engine (pinned by parity tests) — so
//!   the checker can park a round between messages, fork the system, and
//!   interleave everything.
//! * **Snapshot/fingerprint surface** ([`epidb_core::mc_state`]): cheap
//!   forking and a canonical 64-bit digest of behaviorally relevant state.
//! * **Grounded crash semantics** (`epidb_durable::crash_recovered_twin`,
//!   [`epidb_core::ShardedNode::crash_recovered`]): a crash replaces a
//!   node with exactly the state real disk recovery would rebuild, pinned
//!   against an actual crash-and-reopen by the durable crate's tests.
//!
//! Every explored state is checked against the six protocol invariants
//! (the pure predicates of [`epidb_core::paranoid`]); every *quiescent*
//! state — all actions fired, nothing in flight — is additionally checked
//! against the paper's §2.1 eventual-consistency statement, by reviving
//! crashed nodes and running healing anti-entropy sweeps on a copy. A
//! violation stops the search; the offending schedule is shrunk by greedy
//! event-drop minimization and rendered as a replayable counterexample
//! with per-replica protocol traces.
//!
//! # Quick start
//!
//! ```
//! use epidb_mc::{explore, Limits, Scenario, Strategy};
//!
//! // Every interleaving of the 2-node scenario (updates, pulls, a delta
//! // round, an OOB copy, one crash, one loss) preserves every invariant:
//! let report = explore(
//!     &Scenario::two_node_full(),
//!     Strategy::Bfs,
//!     &Limits { max_depth: 6, max_states: 50_000 },
//! )
//! .unwrap();
//! assert!(report.is_clean());
//!
//! // And the checker proves it can catch bugs: a seeded mutant that
//! // adopts concurrent copies without DBVV absorption is found and
//! // minimized.
//! let caught = explore(&Scenario::seeded_mutant(), Strategy::Bfs, &Limits::smoke()).unwrap();
//! let cx = caught.counterexample.expect("mutant must be caught");
//! assert_eq!(cx.check, "dbvv-sum");
//! ```

mod consistency;
mod explore;
mod report;
mod scenario;
mod system;

pub use explore::{explore, Limits, McReport, McStats, Strategy};
pub use report::CounterExample;
pub use scenario::{Action, Expectation, Scenario, Topology};
pub use system::{Applied, Event, System};
