//! The explored state: every node's full protocol state plus the set of
//! in-flight protocol rounds, with deterministic event enumeration,
//! transition application, and canonical fingerprinting.
//!
//! A [`System`] is one vertex of the state graph. Its transitions are
//! [`Event`]s:
//!
//! * **Fire** — perform one scenario [`Action`](crate::Action): a local
//!   write applies immediately; a protocol action starts a step-wise
//!   [`Round`] and puts message 1 in flight.
//! * **Deliver** — hand a round's pending message to its target. A pending
//!   request runs [`Engine::handle`] (or the shard-routed variant) at the
//!   responder and puts the response in flight; a pending response feeds
//!   [`Round::on_response`] at the initiator, which either emits the next
//!   request or completes the round. Delivery to a crashed node loses the
//!   message and aborts the round. A protocol error aborts the round —
//!   never the exploration: refusals and no-progress errors are legal
//!   outcomes the checker must reach.
//! * **Drop** — lose the pending message outright (bounded by the
//!   scenario's loss budget); the round aborts, exactly as a transport
//!   failure aborts the blocking engine's exchange.
//! * **Crash** — replace a node by its crash image: the state
//!   `epidb-durable` recovery would rebuild, via
//!   [`crash_recovered_twin`] / [`ShardedNode::crash_recovered`] (grounded
//!   against real disk recovery by the durable crate's tests). Rounds the
//!   node *initiated* die with it — their state machine lived in its
//!   memory. Rounds it was only serving survive: a request in flight can
//!   be delivered after a revival, and an already-emitted response is
//!   independent of the responder's fate.
//! * **Revive** — bring a crashed node back up from its crash image.
//!
//! Fingerprints cover exactly the state a future schedule can observe:
//! every node's [`Replica::fingerprint`] (crash images included), every
//! round's machine state and pending message bytes (via the deterministic
//! wire codec), the fired-action set, and the remaining fault budgets.
//! Cross-group out-of-bound fetches charge node meta-costs in production;
//! meta-costs are pure diagnostics (excluded from fingerprints), so the
//! checker does not model them.

use std::collections::BTreeMap;

use epidb_common::{InvariantViolation, ItemId, NodeId, Result, ShardId};
use epidb_core::codec::{encode_request, encode_response};
use epidb_core::{
    AuditCheck, Engine, FnvHasher, GossipBudget, ProtocolRequest, ProtocolResponse, Replica, Round,
    RoundStep, ShardMap, ShardedNode,
};
use epidb_durable::crash_recovered_twin;
use epidb_store::UpdateOp;

use crate::scenario::{Action, Scenario, Topology};

/// One schedulable transition. The `u32` payloads are scenario action
/// indices (`Fire`, and round ids — a round is named by the action that
/// started it) or node indices (`Crash`/`Revive`), so an [`Event`]
/// sequence is replayable against a fresh [`System`] of the same scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Fire scenario action `i`.
    Fire(u32),
    /// Deliver the pending message of round `i`.
    Deliver(u32),
    /// Lose the pending message of round `i` (consumes loss budget).
    Drop(u32),
    /// Crash node `i` (consumes crash budget).
    Crash(u32),
    /// Revive crashed node `i` from its crash image.
    Revive(u32),
}

/// A node's protocol state: one full replica, or one replica per owned
/// shard.
// Not boxed: a fork clones the replicas' heap state anyway, so the inline
// variant size is noise next to the per-clone cost the explorer pays.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub(crate) enum Node {
    Full(Replica),
    Sharded(ShardedNode),
}

impl Node {
    fn fingerprint(&self) -> u64 {
        match self {
            Node::Full(r) => r.fingerprint(),
            Node::Sharded(n) => n.fingerprint(),
        }
    }

    fn update(&mut self, item: ItemId, op: UpdateOp) -> Result<()> {
        match self {
            Node::Full(r) => r.update(item, op),
            Node::Sharded(n) => n.update(item, op),
        }
    }

    /// Run all six state-invariant predicates on every replica this node
    /// holds; first violation wins.
    fn first_violation(&self) -> Option<InvariantViolation> {
        let audit = |r: &Replica| AuditCheck::ALL.iter().find_map(|c| c.run(r).err());
        match self {
            Node::Full(r) => audit(r),
            Node::Sharded(n) => n.owned_shards().into_iter().find_map(|s| audit(n.shard_state(s)?)),
        }
    }
}

#[derive(Clone)]
pub(crate) enum Slot {
    Up(Node),
    /// Holds the crash image: the durable-only recovery twin, built at
    /// crash time (with scenario runtime config reapplied), that a revive
    /// installs.
    Crashed(Node),
}

impl Slot {
    pub(crate) fn node(&self) -> &Node {
        match self {
            Slot::Up(n) | Slot::Crashed(n) => n,
        }
    }

    pub(crate) fn is_up(&self) -> bool {
        matches!(self, Slot::Up(_))
    }
}

/// What a round's in-flight message is.
#[derive(Clone)]
pub(crate) enum Pending {
    Request(ProtocolRequest),
    Response(ProtocolResponse),
}

#[derive(Clone)]
pub(crate) enum RoundKind {
    /// A replica-level round (pull / delta / OOB), possibly shard-routed.
    /// Boxed: the recon driver's staging buffers make `Round` large, and
    /// most contexts are `CrossFetch`-sized.
    Replica(Box<Round>),
    /// A cross-group OOB fetch: the response completes the read without
    /// touching the initiator's replica state.
    CrossFetch,
}

/// One in-flight protocol round: who talks to whom, over which shard
/// envelope, where the state machine stands, and the message in flight.
#[derive(Clone)]
pub(crate) struct RoundCtx {
    pub initiator: usize,
    pub responder: usize,
    /// `Some` ⇒ messages travel in a `Shard` routing envelope.
    pub shard: Option<ShardId>,
    pub kind: RoundKind,
    pub pending: Pending,
}

/// Bookkeeping returned by [`System::apply`].
#[derive(Default)]
pub struct Applied {
    /// Rounds aborted by this event (loss, crash, delivery to a crashed
    /// node, or a protocol error).
    pub aborted_rounds: u32,
}

/// One vertex of the explored state graph. See the module docs.
#[derive(Clone)]
pub struct System {
    nodes: Vec<Slot>,
    /// In-flight rounds, keyed by the index of the action that started
    /// them (each action fires once, so the key is stable and replayable).
    rounds: BTreeMap<u32, RoundCtx>,
    fired: Vec<bool>,
    crash_budget: u32,
    loss_budget: u32,
}

fn gossip_budget(sc: &Scenario) -> GossipBudget {
    if sc.frame_items == 0 {
        GossipBudget::UNBOUNDED
    } else {
        GossipBudget::per_frame(sc.frame_items)
    }
}

impl System {
    /// The scenario's initial state: all nodes up, nothing fired, nothing
    /// in flight.
    pub fn new(sc: &Scenario) -> Result<System> {
        let nodes = match &sc.topology {
            Topology::Full { n_nodes, n_items } => (0..*n_nodes)
                .map(|i| {
                    let mut r =
                        Replica::with_policy(NodeId::from_index(i), *n_nodes, *n_items, sc.policy);
                    if sc.delta_budget > 0 {
                        r.enable_delta(sc.delta_budget);
                    }
                    if sc.log_retention > 0 {
                        r.set_log_retention(sc.log_retention);
                    }
                    if sc.mutant == Some(i) {
                        r.debug_break_conflict_adopt(true);
                    }
                    Slot::Up(Node::Full(r))
                })
                .collect(),
            Topology::Sharded { n_nodes, items_per_shard, groups } => {
                let owner_ids = groups
                    .iter()
                    .map(|g| g.iter().map(|&i| NodeId::from_index(i)).collect())
                    .collect();
                let map = ShardMap::new(*items_per_shard, owner_ids);
                (0..*n_nodes)
                    .map(|i| {
                        let mut n = ShardedNode::new(
                            NodeId::from_index(i),
                            *n_nodes,
                            map.clone(),
                            sc.policy,
                        );
                        if sc.delta_budget > 0 {
                            n.enable_delta(sc.delta_budget);
                        }
                        if sc.log_retention > 0 {
                            n.set_log_retention(sc.log_retention);
                        }
                        Slot::Up(Node::Sharded(n))
                    })
                    .collect()
            }
        };
        Ok(System {
            nodes,
            rounds: BTreeMap::new(),
            fired: vec![false; sc.actions.len()],
            crash_budget: sc.crash_budget,
            loss_budget: sc.loss_budget,
        })
    }

    /// All actions fired and nothing in flight: the quiescent states where
    /// the §2.1 consistency statement is checked.
    pub fn is_goal(&self) -> bool {
        self.fired.iter().all(|&f| f) && self.rounds.is_empty()
    }

    /// Run the six invariant predicates on every replica of every node —
    /// crash images included, since a revive installs them verbatim.
    pub fn first_violation(&self) -> Option<InvariantViolation> {
        self.nodes.iter().find_map(|slot| slot.node().first_violation())
    }

    /// The enabled transitions of this state, in a fixed deterministic
    /// order (action firings, deliveries, losses, crashes, revivals).
    pub fn enabled_events(&self, sc: &Scenario) -> Vec<Event> {
        let mut evs = Vec::new();
        for (i, action) in sc.actions.iter().enumerate() {
            if !self.fired[i] && self.nodes[action.actor()].is_up() {
                evs.push(Event::Fire(i as u32));
            }
        }
        for &rid in self.rounds.keys() {
            evs.push(Event::Deliver(rid));
        }
        if self.loss_budget > 0 {
            for &rid in self.rounds.keys() {
                evs.push(Event::Drop(rid));
            }
        }
        if self.crash_budget > 0 {
            for (i, slot) in self.nodes.iter().enumerate() {
                if slot.is_up() {
                    evs.push(Event::Crash(i as u32));
                }
            }
        }
        for (i, slot) in self.nodes.iter().enumerate() {
            if !slot.is_up() {
                evs.push(Event::Revive(i as u32));
            }
        }
        evs
    }

    fn up_node_mut(&mut self, i: usize) -> &mut Node {
        match &mut self.nodes[i] {
            Slot::Up(n) => n,
            Slot::Crashed(_) => unreachable!("event enabled against a crashed node"),
        }
    }

    /// Apply one enabled event. Protocol errors abort the affected round
    /// and are *not* propagated — they are outcomes the checker explores;
    /// an `Err` here means the scenario itself is malformed (e.g. an
    /// update addressed to an unowned shard).
    pub fn apply(&mut self, sc: &Scenario, ev: Event) -> Result<Applied> {
        let mut applied = Applied::default();
        match ev {
            Event::Fire(i) => self.fire(sc, i as usize)?,
            Event::Deliver(rid) => self.deliver(rid, &mut applied),
            Event::Drop(rid) => {
                self.rounds.remove(&rid);
                self.loss_budget -= 1;
                applied.aborted_rounds += 1;
            }
            Event::Crash(i) => {
                let i = i as usize;
                let image = match self.nodes[i].node() {
                    Node::Full(r) => {
                        let mut twin = crash_recovered_twin(r, sc.delta_budget)?;
                        if sc.mutant == Some(i) {
                            // The mutant models buggy node *software*; a
                            // restart does not fix it.
                            twin.debug_break_conflict_adopt(true);
                        }
                        Node::Full(twin)
                    }
                    Node::Sharded(n) => Node::Sharded(n.crash_recovered(sc.delta_budget)?),
                };
                self.nodes[i] = Slot::Crashed(image);
                self.crash_budget -= 1;
                // Rounds this node initiated lived in its memory.
                let before = self.rounds.len();
                self.rounds.retain(|_, ctx| ctx.initiator != i);
                applied.aborted_rounds += (before - self.rounds.len()) as u32;
            }
            Event::Revive(i) => {
                let i = i as usize;
                let slot = std::mem::replace(&mut self.nodes[i], Slot::Crashed(placeholder()));
                let Slot::Crashed(image) = slot else {
                    unreachable!("revive enabled against an up node")
                };
                self.nodes[i] = Slot::Up(image);
            }
        }
        Ok(applied)
    }

    fn fire(&mut self, sc: &Scenario, i: usize) -> Result<()> {
        self.fired[i] = true;
        match &sc.actions[i] {
            Action::Update { node, item, value } => {
                self.up_node_mut(*node).update(ItemId(*item), UpdateOp::set(value.clone()))?;
            }
            Action::Pull { node, peer } => {
                let peer_id = NodeId::from_index(*peer);
                let Node::Full(r) = self.up_node_mut(*node) else {
                    unreachable!("Pull action in a sharded scenario")
                };
                let (round, req) = Round::start_pull(r, peer_id);
                self.insert_round(i, *node, *peer, None, round, req);
            }
            Action::Delta { node, peer } => {
                let peer_id = NodeId::from_index(*peer);
                let budget = gossip_budget(sc);
                let Node::Full(r) = self.up_node_mut(*node) else {
                    unreachable!("Delta action in a sharded scenario")
                };
                let (round, req) = Round::start_delta(r, peer_id, &budget);
                self.insert_round(i, *node, *peer, None, round, req);
            }
            Action::ReconPull { node, peer } => {
                let peer_id = NodeId::from_index(*peer);
                let budget = gossip_budget(sc);
                let Node::Full(r) = self.up_node_mut(*node) else {
                    unreachable!("ReconPull action in a sharded scenario")
                };
                let (round, req) = Round::start_recon(r, peer_id, &budget);
                self.insert_round(i, *node, *peer, None, round, req);
            }
            Action::Oob { node, peer, item } => {
                let peer_id = NodeId::from_index(*peer);
                match self.up_node_mut(*node) {
                    Node::Full(r) => {
                        let (round, req) = Round::start_oob(r, peer_id, ItemId(*item));
                        self.insert_round(i, *node, *peer, None, round, req);
                    }
                    Node::Sharded(n) => {
                        let shard = n.map().shard_of(ItemId(*item))?;
                        let local = n.map().local_item(ItemId(*item));
                        let r = n.shard_mut(shard)?;
                        let (round, req) = Round::start_oob(r, peer_id, local);
                        self.insert_round(i, *node, *peer, Some(shard), round, req);
                    }
                }
            }
            Action::ShardPull { node, peer, shard } => {
                let peer_id = NodeId::from_index(*peer);
                let shard = ShardId(*shard as u16);
                let Node::Sharded(n) = self.up_node_mut(*node) else {
                    unreachable!("ShardPull action in a full-replication scenario")
                };
                let r = n.shard_mut(shard)?;
                let (round, req) = Round::start_pull(r, peer_id);
                self.insert_round(i, *node, *peer, Some(shard), round, req);
            }
            Action::CrossOob { node, peer, item } => {
                let Node::Sharded(n) = self.up_node_mut(*node) else {
                    unreachable!("CrossOob action in a full-replication scenario")
                };
                let shard = n.map().shard_of(ItemId(*item))?;
                let local = n.map().local_item(ItemId(*item));
                let req = ProtocolRequest::Oob { from: n.id(), item: local };
                self.rounds.insert(
                    i as u32,
                    RoundCtx {
                        initiator: *node,
                        responder: *peer,
                        shard: Some(shard),
                        kind: RoundKind::CrossFetch,
                        pending: Pending::Request(req),
                    },
                );
            }
        }
        Ok(())
    }

    fn insert_round(
        &mut self,
        action: usize,
        initiator: usize,
        responder: usize,
        shard: Option<ShardId>,
        round: Round,
        req: ProtocolRequest,
    ) {
        self.rounds.insert(
            action as u32,
            RoundCtx {
                initiator,
                responder,
                shard,
                kind: RoundKind::Replica(Box::new(round)),
                pending: Pending::Request(req),
            },
        );
    }

    fn deliver(&mut self, rid: u32, applied: &mut Applied) {
        let mut ctx = self.rounds.remove(&rid).expect("deliver of a live round");
        match ctx.pending {
            Pending::Request(req) => {
                if !self.nodes[ctx.responder].is_up() {
                    applied.aborted_rounds += 1;
                    return; // lost at a dead host; the round is gone
                }
                let resp = match (self.up_node_mut(ctx.responder), ctx.shard) {
                    (Node::Full(r), _) => Engine::handle(r, req),
                    (Node::Sharded(n), Some(shard)) => Engine::handle_sharded(
                        n,
                        ProtocolRequest::Shard { shard, req: Box::new(req) },
                    )
                    .map(|resp| match resp {
                        ProtocolResponse::Shard { resp, .. } => *resp,
                        other => other,
                    }),
                    (Node::Sharded(_), None) => {
                        unreachable!("unrouted request at a sharded node")
                    }
                };
                match resp {
                    Ok(resp) => {
                        ctx.pending = Pending::Response(resp);
                        self.rounds.insert(rid, ctx);
                    }
                    // Refusals and handler errors abort the round; the
                    // responder charged nothing (refusals return before
                    // accounting).
                    Err(_) => applied.aborted_rounds += 1,
                }
            }
            Pending::Response(resp) => {
                // Initiator liveness is structural: its crash killed the
                // round already.
                let step = match &mut ctx.kind {
                    RoundKind::CrossFetch => return, // fetch completed; nothing to apply
                    RoundKind::Replica(round) => {
                        let shard = ctx.shard;
                        let r: &mut Replica = match (self.up_node_mut(ctx.initiator), shard) {
                            (Node::Full(r), _) => r,
                            (Node::Sharded(n), Some(s)) => {
                                n.shard_state_mut(s).expect("round runs on an owned shard")
                            }
                            (Node::Sharded(_), None) => {
                                unreachable!("unrouted round at a sharded node")
                            }
                        };
                        round.on_response(r, resp)
                    }
                };
                match step {
                    Ok(RoundStep::Send(req)) => {
                        ctx.pending = Pending::Request(req);
                        self.rounds.insert(rid, ctx);
                    }
                    Ok(RoundStep::Done(_)) => {}
                    // Same contract as the blocking engine surfacing the
                    // error to its driver: the round is over.
                    Err(_) => applied.aborted_rounds += 1,
                }
            }
        }
    }

    /// Canonical digest of everything a future schedule can observe.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FnvHasher::new();
        for slot in &self.nodes {
            h.write_u8(u8::from(slot.is_up()));
            h.write_u64(slot.node().fingerprint());
        }
        h.write_u64(self.rounds.len() as u64);
        for (&rid, ctx) in &self.rounds {
            h.write_u64(u64::from(rid));
            h.write_u64(ctx.initiator as u64);
            h.write_u64(ctx.responder as u64);
            match ctx.shard {
                None => h.write_u8(0),
                Some(s) => {
                    h.write_u8(1);
                    h.write_u64(s.index() as u64);
                }
            }
            match &ctx.kind {
                RoundKind::CrossFetch => h.write_u8(0),
                RoundKind::Replica(round) => {
                    h.write_u8(1);
                    round.mc_fingerprint(&mut h);
                }
            }
            match &ctx.pending {
                Pending::Request(req) => {
                    h.write_u8(0);
                    h.write(&encode_request(req));
                }
                Pending::Response(resp) => {
                    h.write_u8(1);
                    h.write(&encode_response(resp));
                }
            }
        }
        for &f in &self.fired {
            h.write_u8(u8::from(f));
        }
        h.write_u64(u64::from(self.crash_budget));
        h.write_u64(u64::from(self.loss_budget));
        h.finish()
    }

    /// Read-only view of node `i`'s replica in a full-replication
    /// topology (`None` for sharded nodes or out-of-range indices): the
    /// diagnostics surface for regression tests that pin cost accounting
    /// along a fixed schedule.
    pub fn replica(&self, node: usize) -> Option<&Replica> {
        match self.nodes.get(node)?.node() {
            Node::Full(r) => Some(r),
            Node::Sharded(_) => None,
        }
    }

    /// Enable tracing on every replica (used when rendering a
    /// counterexample replay).
    pub fn enable_tracing(&mut self, capacity: usize) {
        for slot in &mut self.nodes {
            let node = match slot {
                Slot::Up(n) | Slot::Crashed(n) => n,
            };
            match node {
                Node::Full(r) => r.enable_tracing(capacity),
                Node::Sharded(n) => {
                    for s in n.owned_shards() {
                        if let Some(r) = n.shard_state_mut(s) {
                            r.enable_tracing(capacity);
                        }
                    }
                }
            }
        }
    }

    /// Per-replica trace dumps, labeled, for counterexample rendering.
    pub fn trace_dumps(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            match slot.node() {
                Node::Full(r) => out.push((format!("n{i}"), r.trace().dump())),
                Node::Sharded(n) => {
                    for s in n.owned_shards() {
                        if let Some(r) = n.shard_state(s) {
                            out.push((format!("n{i}/{s}"), r.trace().dump()));
                        }
                    }
                }
            }
        }
        out
    }

    /// Human description of `ev` against this (pre-application) state.
    pub fn describe(&self, sc: &Scenario, ev: Event) -> String {
        match ev {
            Event::Fire(i) => {
                let desc = match &sc.actions[i as usize] {
                    Action::Update { node, item, value } => {
                        format!("n{node} writes x{item} ({} bytes)", value.len())
                    }
                    Action::Pull { node, peer } => format!("n{node} starts pull from n{peer}"),
                    Action::Delta { node, peer } => {
                        format!("n{node} starts delta pull from n{peer}")
                    }
                    Action::ReconPull { node, peer } => {
                        format!("n{node} starts recon pull from n{peer}")
                    }
                    Action::Oob { node, peer, item } => {
                        format!("n{node} requests OOB copy of x{item} from n{peer}")
                    }
                    Action::ShardPull { node, peer, shard } => {
                        format!("n{node} starts pull of s{shard} from n{peer}")
                    }
                    Action::CrossOob { node, peer, item } => {
                        format!("n{node} requests cross-group OOB read of x{item} from n{peer}")
                    }
                };
                format!("fire action #{i}: {desc}")
            }
            Event::Deliver(rid) | Event::Drop(rid) => {
                let verb = if matches!(ev, Event::Deliver(_)) { "deliver" } else { "lose" };
                match self.rounds.get(&rid) {
                    Some(ctx) => {
                        let (what, to) = match &ctx.pending {
                            Pending::Request(req) => {
                                (format!("{} request", req.kind()), ctx.responder)
                            }
                            Pending::Response(resp) => {
                                (format!("{} response", resp.kind()), ctx.initiator)
                            }
                        };
                        format!("{verb} {what} of round #{rid} to n{to}")
                    }
                    None => format!("{verb} message of round #{rid}"),
                }
            }
            Event::Crash(i) => format!("crash n{i} (recover to durable state)"),
            Event::Revive(i) => format!("revive n{i}"),
        }
    }

    pub(crate) fn nodes(&self) -> &[Slot] {
        &self.nodes
    }

    /// Disjoint mutable access to two *up* nodes (for healing pulls).
    pub(crate) fn two_up_nodes_mut(&mut self, a: usize, b: usize) -> (&mut Node, &mut Node) {
        assert_ne!(a, b);
        let (lo, hi, swap) = if a < b { (a, b, false) } else { (b, a, true) };
        let (left, right) = self.nodes.split_at_mut(hi);
        let (x, y) = (&mut left[lo], &mut right[0]);
        let (x, y) = match (x, y) {
            (Slot::Up(x), Slot::Up(y)) => (x, y),
            _ => unreachable!("healing runs with every node revived"),
        };
        if swap {
            (y, x)
        } else {
            (x, y)
        }
    }

    pub(crate) fn revive_all(&mut self) {
        for slot in &mut self.nodes {
            if !slot.is_up() {
                let old = std::mem::replace(slot, Slot::Crashed(placeholder()));
                let Slot::Crashed(image) = old else { unreachable!() };
                *slot = Slot::Up(image);
            }
        }
    }
}

/// A throwaway slot value for `std::mem::replace`; never observed.
fn placeholder() -> Node {
    Node::Full(Replica::new(NodeId(0), 1, 1))
}
