//! Counterexample minimization and rendering.
//!
//! A raw violating schedule found by the explorer usually carries
//! bystander events (unrelated updates, pulls that completed harmlessly,
//! a crash that never mattered). The minimizer shrinks it by **greedy
//! event-drop to a fixpoint**: repeatedly try removing one event and
//! replay the remainder against a fresh system — skipping events the
//! shortened prefix makes inapplicable — keeping the shorter schedule
//! whenever the *same* check still trips. Replay is deterministic (same
//! events ⇒ same states, pinned by the step-wise/blocking parity tests in
//! `epidb-core::rounds`), so an accepted candidate is a genuine
//! counterexample, not a flake.
//!
//! The final render replays the minimized schedule once more with replica
//! tracing enabled, producing a human-readable report: the numbered event
//! schedule, the violation, and each replica's protocol trace.

use epidb_common::{InvariantViolation, Result};

use crate::consistency::check_goal;
use crate::scenario::Scenario;
use crate::system::{Event, System};

/// A minimized, replayable violating schedule.
#[derive(Debug)]
pub struct CounterExample {
    /// The check that trips: one of the six invariant names, or a
    /// consistency check name (`eventual-consistency`, `no-lost-updates`,
    /// `quiescence`, `healing`).
    pub check: &'static str,
    /// Violation detail at the end of the minimized replay.
    pub detail: String,
    /// The minimized schedule.
    pub events: Vec<Event>,
    /// Human-readable report: schedule, violation, replica traces.
    pub rendered: String,
}

/// Replay `events` from the scenario's initial state, skipping events the
/// current state does not enable. Invariants are checked after every
/// applied event; the goal consistency check runs after the last. Returns
/// the final system, the first violation (if any), and — when `narrate` —
/// one description line per applied event.
fn replay(
    sc: &Scenario,
    events: &[Event],
    narrate: bool,
    tracing: bool,
) -> Result<(System, Option<InvariantViolation>, Vec<String>)> {
    let mut sys = System::new(sc)?;
    if tracing {
        sys.enable_tracing(64);
    }
    let mut lines = Vec::new();
    for &ev in events {
        if !sys.enabled_events(sc).contains(&ev) {
            continue;
        }
        if narrate {
            lines.push(sys.describe(sc, ev));
        }
        sys.apply(sc, ev)?;
        if let Some(v) = sys.first_violation() {
            return Ok((sys, Some(v), lines));
        }
    }
    let v = if sys.is_goal() { check_goal(&sys, sc) } else { None };
    Ok((sys, v, lines))
}

/// Does replaying `events` trip the named check?
fn trips(sc: &Scenario, events: &[Event], check: &str) -> bool {
    matches!(replay(sc, events, false, false), Ok((_, Some(v), _)) if v.check == check)
}

/// Greedy event-drop minimization to a fixpoint: the result is 1-minimal
/// (no single event can be removed and still trip the same check).
pub(crate) fn minimize(sc: &Scenario, mut path: Vec<Event>, v: &InvariantViolation) -> Vec<Event> {
    loop {
        let mut improved = false;
        for i in 0..path.len() {
            let mut candidate = path.clone();
            candidate.remove(i);
            if trips(sc, &candidate, v.check) {
                path = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return path;
        }
    }
}

/// Replay the minimized schedule with tracing and build the report.
pub(crate) fn render(
    sc: &Scenario,
    events: Vec<Event>,
    fallback: &InvariantViolation,
) -> Result<CounterExample> {
    let (sys, found, lines) = replay(sc, &events, true, true)?;
    // The minimizer verified the schedule trips; `fallback` covers the
    // (theoretically unreachable) case of a replay discrepancy so the
    // report never loses the original finding.
    let v = found.unwrap_or_else(|| fallback.clone());

    let mut out = String::new();
    out.push_str(&format!(
        "counterexample for scenario '{}': check '{}' violated\n",
        sc.name, v.check
    ));
    out.push_str(&format!("schedule ({} events, minimized):\n", lines.len()));
    for (i, line) in lines.iter().enumerate() {
        out.push_str(&format!("  {:>2}. {line}\n", i + 1));
    }
    out.push_str(&format!("violation: {v}\n"));
    out.push_str("replica traces:\n");
    for (label, dump) in sys.trace_dumps() {
        if dump.trim().is_empty() {
            continue;
        }
        out.push_str(&format!("--- {label} ---\n{dump}"));
        if !dump.ends_with('\n') {
            out.push('\n');
        }
    }

    Ok(CounterExample { check: v.check, detail: v.detail.clone(), events, rendered: out })
}
