//! Bounded exhaustive exploration of a scenario's state graph.
//!
//! Classic explicit-state model checking: starting from the scenario's
//! initial [`System`], expand every enabled [`Event`] of every reachable
//! state, deduplicate states by canonical fingerprint, and bound the walk
//! by depth and state count. Every state is checked against the six
//! protocol invariants; every *goal* (quiescent) state is additionally
//! checked against the scenario's §2.1 consistency expectation. The first
//! violation stops the search and is handed to the minimizer
//! ([`crate::report`]), which shrinks the offending schedule and renders a
//! replayable counterexample.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use epidb_common::{InvariantViolation, Result};

use crate::consistency::check_goal;
use crate::report::{minimize, render, CounterExample};
use crate::scenario::Scenario;
use crate::system::{Event, System};

/// Search order. Both are exhaustive within the limits; BFS finds a
/// *shortest* counterexample first (minimizer input quality), DFS reaches
/// deep schedules with a smaller frontier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: shortest counterexamples, larger frontier.
    Bfs,
    /// Depth-first: deep schedules early, smaller frontier.
    Dfs,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Bfs => "bfs",
            Strategy::Dfs => "dfs",
        })
    }
}

/// Exploration bounds. Exploration is exhaustive *within* these: every
/// schedule of at most `max_depth` events is covered unless the state cap
/// trips first (reported via [`McStats::state_cap_hit`]).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum schedule length explored.
    pub max_depth: usize,
    /// Maximum distinct states retained (dedup set size).
    pub max_states: usize,
}

impl Limits {
    /// CI-smoke bounds: deep enough to cover every scenario's full action
    /// set plus faults, small enough for seconds-scale runs.
    pub fn smoke() -> Limits {
        Limits { max_depth: 12, max_states: 200_000 }
    }

    /// Deeper bounds for offline soaks.
    pub fn thorough() -> Limits {
        Limits { max_depth: 16, max_states: 2_000_000 }
    }
}

/// Exploration counters, reported alongside any counterexample.
#[derive(Clone, Copy, Debug, Default)]
pub struct McStats {
    /// Distinct states visited (after dedup).
    pub states_explored: u64,
    /// Transitions applied (including ones leading to known states).
    pub transitions: u64,
    /// Transitions that landed on an already-visited state.
    pub deduped: u64,
    /// States not expanded because they sat at the depth bound.
    pub depth_pruned: u64,
    /// Quiescent states on which the §2.1 check ran.
    pub goals_checked: u64,
    /// Rounds aborted by losses, crashes, or protocol errors.
    pub rounds_aborted: u64,
    /// Longest schedule reached.
    pub max_depth_seen: usize,
    /// True if the state cap stopped the walk before exhaustion.
    pub state_cap_hit: bool,
}

impl fmt::Display for McStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({} deduped), {} goals checked, \
             {} rounds aborted, depth ≤ {}{}{}",
            self.states_explored,
            self.transitions,
            self.deduped,
            self.goals_checked,
            self.rounds_aborted,
            self.max_depth_seen,
            if self.depth_pruned > 0 { ", depth-pruned" } else { "" },
            if self.state_cap_hit { ", state cap hit" } else { "" },
        )
    }
}

/// The result of exploring one scenario.
#[derive(Debug)]
pub struct McReport {
    /// Scenario name.
    pub scenario: String,
    /// Search order used.
    pub strategy: Strategy,
    /// Exploration counters.
    pub stats: McStats,
    /// The first violation found, minimized and rendered — `None` means
    /// every explored schedule satisfied every invariant and expectation.
    pub counterexample: Option<CounterExample>,
}

impl McReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Invariant check plus (at goals) the §2.1 consistency check.
fn check_state(sys: &System, sc: &Scenario, stats: &mut McStats) -> Option<InvariantViolation> {
    if let Some(v) = sys.first_violation() {
        return Some(v);
    }
    if sys.is_goal() {
        stats.goals_checked += 1;
        return check_goal(sys, sc);
    }
    None
}

/// Exhaustively explore `sc` within `limits`. Returns the report; `Err`
/// only for malformed scenarios (events that cannot apply at all).
pub fn explore(sc: &Scenario, strategy: Strategy, limits: &Limits) -> Result<McReport> {
    let mut stats = McStats::default();
    let init = System::new(sc)?;
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(init.fingerprint());
    stats.states_explored = 1;

    if let Some(v) = check_state(&init, sc, &mut stats) {
        let events = minimize(sc, Vec::new(), &v);
        let counterexample = render(sc, events, &v)?;
        return Ok(McReport {
            scenario: sc.name.into(),
            strategy,
            stats,
            counterexample: Some(counterexample),
        });
    }

    let mut frontier: VecDeque<(System, Vec<Event>)> = VecDeque::new();
    frontier.push_back((init, Vec::new()));

    'walk: while let Some((sys, path)) = match strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        if path.len() >= limits.max_depth {
            stats.depth_pruned += 1;
            continue;
        }
        for ev in sys.enabled_events(sc) {
            let mut next = sys.clone();
            let applied = next.apply(sc, ev)?;
            stats.transitions += 1;
            stats.rounds_aborted += u64::from(applied.aborted_rounds);
            if !visited.insert(next.fingerprint()) {
                stats.deduped += 1;
                continue;
            }
            let mut next_path = path.clone();
            next_path.push(ev);
            stats.states_explored += 1;
            stats.max_depth_seen = stats.max_depth_seen.max(next_path.len());
            if let Some(v) = check_state(&next, sc, &mut stats) {
                let events = minimize(sc, next_path, &v);
                let counterexample = render(sc, events, &v)?;
                return Ok(McReport {
                    scenario: sc.name.into(),
                    strategy,
                    stats,
                    counterexample: Some(counterexample),
                });
            }
            if visited.len() >= limits.max_states {
                stats.state_cap_hit = true;
                break 'walk;
            }
            frontier.push_back((next, next_path));
        }
    }

    Ok(McReport { scenario: sc.name.into(), strategy, stats, counterexample: None })
}
