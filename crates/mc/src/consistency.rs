//! The §2.1 correctness statement, checked at quiescent (goal) states.
//!
//! The paper's criterion is *eventual mutual consistency*: if updates
//! cease, replicas converge to identical contents with no lost and no
//! duplicated updates. A goal state has fired every action and has no
//! round in flight — but nodes may be crashed and replicas may legally
//! differ (a lost message is allowed to delay propagation forever; only
//! *future* anti-entropy must heal it). So the check runs on a **copy** of
//! the goal state:
//!
//! 1. revive every crashed node from its crash image;
//! 2. run healing anti-entropy sweeps — every ordered node pair (every
//!    ordered co-owner pair per shard, for sharded topologies) performs a
//!    whole-item pull — until a sweep reports "up to date" everywhere,
//!    reaches a fixpoint (no copies, no replays, no aux discards), or the
//!    sweep cap trips;
//! 3. re-check every state invariant on the healed copy;
//! 4. apply the scenario's [`Expectation`]: conflict-free runs must have
//!    converged byte-for-byte with zero conflicts, no residual auxiliary
//!    copies, and per-origin DBVV components equal to the number of
//!    updates each origin fired (no lost, no duplicated updates); LWW runs
//!    must have converged byte-for-byte; `Report` runs may hold stable
//!    divergence on conflicted items but must have reached the fixpoint.
//!
//! Failures are reported as [`InvariantViolation`]s with synthetic check
//! names (`eventual-consistency`, `no-lost-updates`, `quiescence`,
//! `healing`) so the minimizer treats them exactly like state-invariant
//! violations.

use epidb_common::{InvariantViolation, ItemId, NodeId, Result, ShardId};
use epidb_core::{
    Engine, ProtocolRequest, ProtocolResponse, PullOutcome, Replica, Round, RoundOutcome, RoundStep,
};

use crate::scenario::{Action, Scenario, Topology};
use crate::system::{Node, System};

/// Healing-sweep cap. Each sweep pulls across every ordered pair, so
/// information needs at most `n_nodes - 1` sweeps to reach everyone;
/// 8 leaves generous slack for aux replay/discard cascades.
const MAX_SWEEPS: usize = 8;

fn violation(node: usize, check: &'static str, detail: String) -> InvariantViolation {
    InvariantViolation { node: NodeId::from_index(node), check, detail }
}

/// The (initiator, responder, shard) pull pairs of one healing sweep.
fn sweep_pairs(sc: &Scenario) -> Vec<(usize, usize, Option<ShardId>)> {
    let mut pairs = Vec::new();
    match &sc.topology {
        Topology::Full { n_nodes, .. } => {
            for i in 0..*n_nodes {
                for j in 0..*n_nodes {
                    if i != j {
                        pairs.push((i, j, None));
                    }
                }
            }
        }
        Topology::Sharded { groups, .. } => {
            for (s, owners) in groups.iter().enumerate() {
                for &i in owners {
                    for &j in owners {
                        if i != j {
                            pairs.push((i, j, Some(ShardId(s as u16))));
                        }
                    }
                }
            }
        }
    }
    pairs
}

/// Drive one whole-item pull to completion, initiator ← responder,
/// optionally shard-routed. Whole-item pulls (not delta) so healing never
/// depends on op-cache warmth.
fn heal_pull(
    initiator: &mut Node,
    responder: &mut Node,
    shard: Option<ShardId>,
) -> Result<PullOutcome> {
    let peer = match &*responder {
        Node::Full(r) => r.id(),
        Node::Sharded(n) => n.id(),
    };
    let ir: &mut Replica = match (initiator, shard) {
        (Node::Full(r), _) => r,
        (Node::Sharded(n), Some(s)) => n.shard_state_mut(s).expect("sweep pairs are owners"),
        (Node::Sharded(_), None) => unreachable!("unrouted heal at a sharded node"),
    };
    let (mut round, mut req) = Round::start_pull(ir, peer);
    loop {
        let resp = match (&mut *responder, shard) {
            (Node::Full(r), _) => Engine::handle(r, req)?,
            (Node::Sharded(n), Some(s)) => {
                match Engine::handle_sharded(
                    n,
                    ProtocolRequest::Shard { shard: s, req: Box::new(req) },
                )? {
                    ProtocolResponse::Shard { resp, .. } => *resp,
                    other => other,
                }
            }
            (Node::Sharded(_), None) => unreachable!(),
        };
        match round.on_response(ir, resp)? {
            RoundStep::Send(next) => req = next,
            RoundStep::Done(RoundOutcome::Pull(out)) => return Ok(out),
            RoundStep::Done(RoundOutcome::Oob(_)) => unreachable!("pull round"),
        }
    }
}

fn replica_of(node: &Node, shard: Option<ShardId>) -> &Replica {
    match (node, shard) {
        (Node::Full(r), _) => r,
        (Node::Sharded(n), Some(s)) => n.shard_state(s).expect("owner"),
        (Node::Sharded(_), None) => unreachable!(),
    }
}

/// The replica groups to compare for convergence: every node over the
/// whole database (full), or each shard's owners over that shard.
fn compare_groups(sc: &Scenario) -> Vec<(Vec<usize>, Option<ShardId>)> {
    match &sc.topology {
        Topology::Full { n_nodes, .. } => vec![((0..*n_nodes).collect(), None)],
        Topology::Sharded { groups, .. } => groups
            .iter()
            .enumerate()
            .map(|(s, owners)| (owners.clone(), Some(ShardId(s as u16))))
            .collect(),
    }
}

/// Updates fired per origin node, restricted to `shard` when given.
fn updates_per_origin(sc: &Scenario, shard: Option<ShardId>) -> Vec<u64> {
    let mut counts = vec![0u64; sc.topology.n_nodes()];
    for action in &sc.actions {
        if let Action::Update { node, item, .. } = action {
            let in_scope = match (shard, &sc.topology) {
                (None, _) => true,
                (Some(s), Topology::Sharded { items_per_shard, .. }) => {
                    (*item as usize) / items_per_shard == s.index()
                }
                (Some(_), Topology::Full { .. }) => unreachable!(),
            };
            if in_scope {
                counts[*node] += 1;
            }
        }
    }
    counts
}

/// Check the scenario's §2.1 statement against a goal state. `None` means
/// consistent; `Some` carries the violation for minimization/reporting.
pub(crate) fn check_goal(sys: &System, sc: &Scenario) -> Option<InvariantViolation> {
    let mut healed = sys.clone();
    healed.revive_all();
    let pairs = sweep_pairs(sc);

    // Healing sweeps until convergence or fixpoint.
    let mut converged = false;
    let mut quiesced = false;
    for _ in 0..MAX_SWEEPS {
        let mut all_current = true;
        let mut progress = false;
        for &(i, j, shard) in &pairs {
            let (init, resp) = healed.two_up_nodes_mut(i, j);
            match heal_pull(init, resp, shard) {
                Err(e) => {
                    return Some(violation(i, "healing", format!("pull n{i} ← n{j} failed: {e}")))
                }
                Ok(PullOutcome::UpToDate) => {}
                Ok(PullOutcome::Propagated(out)) => {
                    all_current = false;
                    if !out.copied.is_empty() || out.replayed > 0 || !out.aux_discarded.is_empty() {
                        progress = true;
                    }
                }
            }
        }
        if all_current {
            converged = true;
            quiesced = true;
            break;
        }
        if !progress {
            // Fixpoint short of convergence: stable divergence (legal only
            // under `Report` with real conflicts).
            quiesced = true;
            break;
        }
    }
    if !quiesced {
        return Some(violation(
            0,
            "quiescence",
            format!("healing made progress for {MAX_SWEEPS} sweeps without converging"),
        ));
    }

    // Invariants must hold on the healed copy too.
    if let Some(v) = healed.first_violation() {
        return Some(v);
    }

    match sc.expectation {
        crate::Expectation::ConflictFree => {
            check_converged(&healed, sc, converged, true).or_else(|| check_accounting(&healed, sc))
        }
        crate::Expectation::Lww => check_converged(&healed, sc, converged, false),
        crate::Expectation::ReportTolerated => None, // fixpoint + invariants suffice
    }
}

/// Byte-for-byte convergence across every compare group; with
/// `strict_clean`, additionally no conflicts anywhere and no residual
/// auxiliary copies.
fn check_converged(
    healed: &System,
    sc: &Scenario,
    converged: bool,
    strict_clean: bool,
) -> Option<InvariantViolation> {
    if !converged {
        return Some(violation(
            0,
            "eventual-consistency",
            "healing reached a fixpoint without converging (residual divergence)".into(),
        ));
    }
    for (owners, shard) in compare_groups(sc) {
        let reference = replica_of(healed.nodes()[owners[0]].node(), shard);
        for &o in &owners[1..] {
            let r = replica_of(healed.nodes()[o].node(), shard);
            if reference.dbvv() != r.dbvv() {
                return Some(violation(
                    o,
                    "eventual-consistency",
                    format!(
                        "DBVV of n{o} differs from n{}{}",
                        owners[0],
                        shard.map(|s| format!(" on {s}")).unwrap_or_default()
                    ),
                ));
            }
            for x in ItemId::all(reference.n_items()) {
                let a = reference.read(x).expect("dense in-range item");
                let b = r.read(x).expect("dense in-range item");
                let (ia, ib) = (
                    reference.item_ivv(x).expect("dense in-range item"),
                    r.item_ivv(x).expect("dense in-range item"),
                );
                if a != b || ia != ib {
                    return Some(violation(
                        o,
                        "eventual-consistency",
                        format!("{x} differs between n{} and n{o}", owners[0]),
                    ));
                }
            }
        }
        if strict_clean {
            for &o in &owners {
                let r = replica_of(healed.nodes()[o].node(), shard);
                if r.costs().conflicts_detected != 0 {
                    return Some(violation(
                        o,
                        "eventual-consistency",
                        format!(
                            "conflict-free scenario declared {} conflicts at n{o}",
                            r.costs().conflicts_detected
                        ),
                    ));
                }
                if r.aux_item_count() != 0 {
                    return Some(violation(
                        o,
                        "eventual-consistency",
                        format!(
                            "{} auxiliary copies not shed at n{o} after convergence",
                            r.aux_item_count()
                        ),
                    ));
                }
            }
        }
    }
    None
}

/// No lost, no duplicated updates: each DBVV component `j` equals the
/// number of updates origin `j` fired.
fn check_accounting(healed: &System, sc: &Scenario) -> Option<InvariantViolation> {
    for (owners, shard) in compare_groups(sc) {
        let expected = updates_per_origin(sc, shard);
        for &o in &owners {
            let r = replica_of(healed.nodes()[o].node(), shard);
            for (j, &want) in expected.iter().enumerate() {
                let got = r.dbvv().get(NodeId::from_index(j));
                if got != want {
                    return Some(violation(
                        o,
                        "no-lost-updates",
                        format!(
                            "DBVV[n{j}] = {got} at n{o}{}, but n{j} fired {want} updates",
                            shard.map(|s| format!(" on {s}")).unwrap_or_default()
                        ),
                    ));
                }
            }
        }
    }
    None
}
