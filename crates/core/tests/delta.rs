//! Tests of the delta (update-record) propagation extension: equivalence
//! with whole-item pulls, byte savings for small edits on large items,
//! fallback behaviour, conflicts, and out-of-bound interplay.

use epidb_common::{ItemId, NodeId};
use epidb_core::{oob_copy, pull, pull_delta, PullOutcome, Replica};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;

fn pair(n_items: usize, delta_budget: usize) -> (Replica, Replica) {
    let mut a = Replica::new(NodeId(0), 2, n_items);
    let mut b = Replica::new(NodeId(1), 2, n_items);
    if delta_budget > 0 {
        a.enable_delta(delta_budget);
        b.enable_delta(delta_budget);
    }
    (a, b)
}

#[test]
fn delta_pull_matches_whole_pull_state() {
    // Run the same history through both modes; final states must agree.
    let run = |use_delta: bool| -> (Vec<u8>, Vec<u8>) {
        let (mut a, mut b) = pair(100, 1 << 20);
        a.update(ItemId(0), UpdateOp::set(vec![7u8; 512])).unwrap();
        a.update(ItemId(0), UpdateOp::write_range(10, &b"patch"[..])).unwrap();
        a.update(ItemId(1), UpdateOp::set(&b"second"[..])).unwrap();
        if use_delta {
            pull_delta(&mut b, &mut a).unwrap();
        } else {
            pull(&mut b, &mut a).unwrap();
        }
        b.check_invariants().unwrap();
        (
            b.read(ItemId(0)).unwrap().as_bytes().to_vec(),
            b.read(ItemId(1)).unwrap().as_bytes().to_vec(),
        )
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn cold_cache_falls_back_to_whole_item() {
    // Source never enabled delta: every item ships whole, still correct.
    let (mut a, mut b) = pair(50, 0);
    a.update(ItemId(3), UpdateOp::set(&b"no cache"[..])).unwrap();
    let out = pull_delta(&mut b, &mut a).unwrap();
    assert_eq!(out.copied(), &[ItemId(3)]);
    assert_eq!(b.read(ItemId(3)).unwrap().as_bytes(), b"no cache");
    b.check_invariants().unwrap();
}

#[test]
fn warm_chain_ships_ops_and_saves_bytes() {
    // Large value, then small edits; the recipient already has the large
    // base, so delta mode ships only the edits.
    let (mut a, mut b) = pair(50, 1 << 20);
    a.update(ItemId(0), UpdateOp::set(vec![1u8; 8192])).unwrap();
    pull(&mut b, &mut a).unwrap(); // base synced (8 KiB travels once)

    a.update(ItemId(0), UpdateOp::write_range(100, &b"tiny edit 1"[..])).unwrap();
    a.update(ItemId(0), UpdateOp::write_range(200, &b"tiny edit 2"[..])).unwrap();

    let before = a.costs();
    let out = pull_delta(&mut b, &mut a).unwrap();
    let d = a.costs() - before;
    assert_eq!(out.copied(), &[ItemId(0)]);
    let payload = d.bytes_sent - d.control_bytes;
    assert!(payload < 100, "delta payload should be the edits, got {payload}");
    assert_eq!(b.read(ItemId(0)).unwrap(), a.read(ItemId(0)).unwrap());
    assert_eq!(b.dbvv().compare(a.dbvv()), VvOrd::Equal);
    b.check_invariants().unwrap();

    // Contrast: the same situation via whole-item pull re-ships 8 KiB.
    let (mut a2, mut b2) = pair(50, 1 << 20);
    a2.update(ItemId(0), UpdateOp::set(vec![1u8; 8192])).unwrap();
    pull(&mut b2, &mut a2).unwrap();
    a2.update(ItemId(0), UpdateOp::write_range(100, &b"tiny edit 1"[..])).unwrap();
    a2.update(ItemId(0), UpdateOp::write_range(200, &b"tiny edit 2"[..])).unwrap();
    let before = a2.costs();
    pull(&mut b2, &mut a2).unwrap();
    let d2 = a2.costs() - before;
    assert!(d2.bytes_sent - d2.control_bytes >= 8192);
}

#[test]
fn delta_recipient_can_relay_the_chain() {
    // a -> b via delta, then b -> c via delta: b's cache must have
    // extended so the relay also ships ops.
    let mut a = Replica::new(NodeId(0), 3, 20);
    let mut b = Replica::new(NodeId(1), 3, 20);
    let mut c = Replica::new(NodeId(2), 3, 20);
    for r in [&mut a, &mut b, &mut c] {
        r.enable_delta(1 << 20);
    }
    a.update(ItemId(0), UpdateOp::set(vec![9u8; 4096])).unwrap();
    pull(&mut b, &mut a).unwrap();
    pull(&mut c, &mut b).unwrap(); // base everywhere

    a.update(ItemId(0), UpdateOp::append(&b"+edit"[..])).unwrap();
    pull_delta(&mut b, &mut a).unwrap();

    let before = b.costs();
    let out = pull_delta(&mut c, &mut b).unwrap();
    let d = b.costs() - before;
    assert_eq!(out.copied(), &[ItemId(0)]);
    assert!(d.bytes_sent - d.control_bytes < 100, "relay should ship ops, not 4 KiB");
    assert_eq!(c.read(ItemId(0)).unwrap(), a.read(ItemId(0)).unwrap());
    c.check_invariants().unwrap();
}

#[test]
fn evicted_chain_falls_back_to_whole() {
    let (mut a, mut b) = pair(10, 32); // tiny budget
    a.update(ItemId(0), UpdateOp::set(vec![5u8; 512])).unwrap();
    pull(&mut b, &mut a).unwrap();
    // Enough edits to evict the chain start.
    for k in 0..16u8 {
        a.update(ItemId(0), UpdateOp::append(vec![k; 8])).unwrap();
    }
    let out = pull_delta(&mut b, &mut a).unwrap();
    assert_eq!(out.copied(), &[ItemId(0)]);
    assert_eq!(b.read(ItemId(0)).unwrap(), a.read(ItemId(0)).unwrap());
    b.check_invariants().unwrap();
}

#[test]
fn up_to_date_fast_path_unchanged() {
    let (mut a, mut b) = pair(1000, 1 << 16);
    a.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
    pull_delta(&mut b, &mut a).unwrap();
    let before = a.costs();
    assert!(matches!(pull_delta(&mut b, &mut a).unwrap(), PullOutcome::UpToDate));
    let d = a.costs() - before;
    assert_eq!(d.vv_entry_cmps, 2); // one DBVV comparison
    assert_eq!(d.bytes_sent, 16); // header-only reply
}

#[test]
fn conflicts_detected_in_delta_mode() {
    let (mut a, mut b) = pair(10, 1 << 16);
    a.update(ItemId(4), UpdateOp::set(&b"from-a"[..])).unwrap();
    b.update(ItemId(4), UpdateOp::set(&b"from-b"[..])).unwrap();
    let PullOutcome::Propagated(out) = pull_delta(&mut b, &mut a).unwrap() else { panic!() };
    assert_eq!(out.conflicts, 1);
    assert!(out.copied.is_empty());
    assert_eq!(b.conflicts().len(), 1);
    // Local value preserved.
    assert_eq!(b.read(ItemId(4)).unwrap().as_bytes(), b"from-b");
}

#[test]
fn conflict_counts_match_whole_mode_under_lww() {
    // Regression: under ResolveLww, delta mode used to count each conflict
    // twice — once in `evaluate_delta_offer` and again when the Whole
    // fallback re-detected the same concurrent pair in
    // `accept_propagation`. Whole-item and delta propagation must agree on
    // the paper's conflict accounting for the same schedule.
    use epidb_core::ConflictPolicy;

    let run = |use_delta: bool| {
        let mut a = Replica::with_policy(NodeId(0), 2, 10, ConflictPolicy::ResolveLww);
        let mut b = Replica::with_policy(NodeId(1), 2, 10, ConflictPolicy::ResolveLww);
        if use_delta {
            a.enable_delta(1 << 16);
            b.enable_delta(1 << 16);
        }
        // Two independently-updated items → two concurrent pairs.
        a.update(ItemId(2), UpdateOp::set(&b"a-wrote-2"[..])).unwrap();
        b.update(ItemId(2), UpdateOp::set(&b"b-wrote-2"[..])).unwrap();
        a.update(ItemId(7), UpdateOp::set(&b"a-wrote-7"[..])).unwrap();
        b.update(ItemId(7), UpdateOp::set(&b"b-wrote-7"[..])).unwrap();
        let PullOutcome::Propagated(out) = (if use_delta {
            pull_delta(&mut b, &mut a).unwrap()
        } else {
            pull(&mut b, &mut a).unwrap()
        }) else {
            panic!("expected propagation")
        };
        b.check_invariants().unwrap();
        (
            out.conflicts,
            b.costs().conflicts_detected,
            b.conflicts().len(),
            b.counters().lww_resolutions,
            b.read(ItemId(2)).unwrap().as_bytes().to_vec(),
            b.read(ItemId(7)).unwrap().as_bytes().to_vec(),
        )
    };

    let whole = run(false);
    let delta = run(true);
    assert_eq!(whole, delta, "whole vs delta conflict accounting diverged");
    assert_eq!(whole.0, 2, "one conflict per item, counted once");
    assert_eq!(whole.1, 2);
    assert_eq!(whole.3, 2, "both conflicts resolved by LWW");
}

#[test]
fn conflict_counts_match_whole_mode_under_report() {
    // Same schedule under Report: the refused item never ships, the
    // conflict is counted at offer-evaluation time, and both modes agree.
    use epidb_core::ConflictPolicy;

    let run = |use_delta: bool| {
        let mut a = Replica::with_policy(NodeId(0), 2, 10, ConflictPolicy::Report);
        let mut b = Replica::with_policy(NodeId(1), 2, 10, ConflictPolicy::Report);
        if use_delta {
            a.enable_delta(1 << 16);
            b.enable_delta(1 << 16);
        }
        a.update(ItemId(4), UpdateOp::set(&b"from-a"[..])).unwrap();
        b.update(ItemId(4), UpdateOp::set(&b"from-b"[..])).unwrap();
        let PullOutcome::Propagated(out) = (if use_delta {
            pull_delta(&mut b, &mut a).unwrap()
        } else {
            pull(&mut b, &mut a).unwrap()
        }) else {
            panic!("expected propagation")
        };
        b.check_invariants().unwrap();
        (out.conflicts, b.costs().conflicts_detected, b.conflicts().len())
    };

    assert_eq!(run(false), run(true));
    assert_eq!(run(false), (1, 1, 1));
}

#[test]
fn delta_and_whole_pulls_interleave() {
    let (mut a, mut b) = pair(30, 1 << 16);
    for round in 0..6u8 {
        a.update(ItemId((round % 3) as u32), UpdateOp::append(vec![round; 4])).unwrap();
        if round % 2 == 0 {
            pull_delta(&mut b, &mut a).unwrap();
        } else {
            pull(&mut b, &mut a).unwrap();
        }
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }
    assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
    for x in 0..3u32 {
        assert_eq!(a.read(ItemId(x)).unwrap(), b.read(ItemId(x)).unwrap());
    }
}

#[test]
fn delta_pull_replays_aux_updates_too() {
    // OOB + aux replay interoperates with delta pulls: same Fig. 4 path.
    let (mut a, mut b) = pair(10, 1 << 16);
    a.update(ItemId(0), UpdateOp::set(&b"v1"[..])).unwrap();
    oob_copy(&mut b, &mut a, ItemId(0)).unwrap();
    b.update(ItemId(0), UpdateOp::append(&b"+aux"[..])).unwrap();
    let PullOutcome::Propagated(out) = pull_delta(&mut b, &mut a).unwrap() else { panic!() };
    assert_eq!(out.replayed, 1);
    assert_eq!(out.aux_discarded, vec![ItemId(0)]);
    assert_eq!(b.read(ItemId(0)).unwrap().as_bytes(), b"v1+aux");
    assert_eq!(b.read_regular(ItemId(0)).unwrap().as_bytes(), b"v1+aux");
    b.check_invariants().unwrap();
}

#[test]
fn chain_extends_through_aux_replay() {
    // Replayed aux updates are regular updates and must extend the local
    // delta chain so they can be relayed as ops.
    let (mut a, mut b) = pair(10, 1 << 16);
    a.update(ItemId(0), UpdateOp::set(vec![3u8; 2048])).unwrap();
    pull(&mut b, &mut a).unwrap();
    pull(&mut a, &mut b).unwrap();
    // b OOB-fetches nothing newer — instead b just edits regularly and a
    // delta-pulls; then a edits via aux replay path: simulate with oob.
    b.update(ItemId(0), UpdateOp::append(&b"e1"[..])).unwrap();
    oob_copy(&mut a, &mut b, ItemId(0)).unwrap();
    a.update(ItemId(0), UpdateOp::append(&b"e2"[..])).unwrap(); // aux update at a
    pull(&mut a, &mut b).unwrap(); // replays e2 onto a's regular copy
    assert_eq!(a.read_regular(ItemId(0)).unwrap().len(), 2048 + 4);

    // Now b delta-pulls from a: the replayed op must ship as a delta.
    let before = a.costs();
    let out = pull_delta(&mut b, &mut a).unwrap();
    let d = a.costs() - before;
    assert_eq!(out.copied(), &[ItemId(0)]);
    assert!(d.bytes_sent - d.control_bytes < 100, "replayed edit should ship as ops");
    assert_eq!(b.read(ItemId(0)).unwrap(), a.read(ItemId(0)).unwrap());
}
