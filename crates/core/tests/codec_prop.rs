//! Property tests for the wire codec: arbitrary engine requests and
//! responses round-trip, truncated buffers are rejected, and arbitrary
//! byte soup never panics the decoder.

use bytes::Bytes;
use epidb_common::{ItemId, NodeId};
use epidb_core::codec::{
    decode_request, decode_response, encode_request, encode_response, get_op, get_payload, get_vv,
    put_op, put_payload, put_vv, Reader, Writer,
};
use epidb_core::{
    CachedOp, DeltaItem, DeltaOffer, DeltaOfferResponse, DeltaPayload, DeltaRequest, FullPullReply,
    OobReply, PropagationPayload, PropagationResponse, ProtocolRequest, ProtocolResponse,
    ReconItem, ReconReply, ShippedItem,
};
use epidb_log::LogRecord;
use epidb_store::UpdateOp;
use epidb_vv::{DbVersionVector, VersionVector};
use proptest::prelude::*;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    prop::collection::vec(any::<u64>(), 1..8).prop_map(VersionVector::from_entries)
}

fn arb_dbvv() -> impl Strategy<Value = DbVersionVector> {
    arb_vv().prop_map(DbVersionVector::from_vector)
}

/// The vendored proptest has no `String` strategy; build names from ASCII.
fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0x61u8..0x7Bu8, 0..12).prop_map(|b| String::from_utf8(b).expect("ascii"))
}

fn arb_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|d| UpdateOp::Set(Bytes::from(d))),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(o, d)| {
            UpdateOp::WriteRange { offset: o as usize, data: Bytes::from(d) }
        }),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|d| UpdateOp::Append(Bytes::from(d))),
    ]
}

/// Tail vectors, deliberately including empty per-origin tails and the
/// all-empty case (the `D = ∅` "you are current by tails" shape).
fn arb_tails() -> impl Strategy<Value = Vec<Vec<LogRecord>>> {
    prop::collection::vec(
        prop::collection::vec(
            (any::<u32>(), any::<u64>()).prop_map(|(i, m)| LogRecord { item: ItemId(i), m }),
            0..6,
        ),
        1..5,
    )
}

fn arb_shipped() -> impl Strategy<Value = ShippedItem> {
    (any::<u32>(), arb_vv(), prop::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(i, ivv, v)| ShippedItem { item: ItemId(i), ivv, value: Bytes::from(v) })
}

fn arb_payload() -> impl Strategy<Value = PropagationPayload> {
    (arb_tails(), prop::collection::vec(arb_shipped(), 0..5))
        .prop_map(|(tails, items)| PropagationPayload { tails, items })
}

fn arb_cached_op() -> impl Strategy<Value = CachedOp> {
    (arb_vv(), arb_op()).prop_map(|(pre_vv, op)| CachedOp { pre_vv, op })
}

fn arb_delta_item() -> impl Strategy<Value = DeltaItem> {
    prop_oneof![
        (any::<u32>(), prop::collection::vec(arb_cached_op(), 0..4), arb_vv()).prop_map(
            |(item, ops, final_ivv)| DeltaItem::Ops { item: ItemId(item), ops, final_ivv },
        ),
        arb_shipped().prop_map(DeltaItem::Whole),
    ]
}

fn arb_recon_item() -> impl Strategy<Value = ReconItem> {
    (
        any::<u32>(),
        arb_vv(),
        prop::collection::vec(any::<u8>(), 0..64),
        prop::collection::vec((any::<u16>(), any::<u64>()), 0..4),
    )
        .prop_map(|(item, ivv, value, records)| ReconItem {
            item: ItemId(item),
            ivv,
            value: Bytes::from(value),
            records: records.into_iter().map(|(k, m)| (NodeId(k), m)).collect(),
        })
}

fn arb_recon_reply() -> impl Strategy<Value = ReconReply> {
    (
        prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..6),
        prop::collection::vec(arb_recon_item(), 0..4),
        prop::collection::vec(any::<u64>(), 0..5),
        any::<u64>(),
    )
        .prop_map(|(digests, items, floor, cut)| ReconReply { digests, items, floor, cut })
}

fn arb_full_pull_reply() -> impl Strategy<Value = FullPullReply> {
    (prop::collection::vec(arb_recon_item(), 0..5), prop::collection::vec(any::<u64>(), 0..5))
        .prop_map(|(items, floor)| FullPullReply { items, floor })
}

fn arb_delta_offer() -> impl Strategy<Value = DeltaOfferResponse> {
    prop_oneof![
        Just(DeltaOfferResponse::YouAreCurrent),
        Just(DeltaOfferResponse::NeedRecon),
        (
            arb_tails(),
            prop::collection::vec((any::<u32>(), arb_vv()), 0..5)
                .prop_map(|v| v.into_iter().map(|(i, ivv)| (ItemId(i), ivv)).collect()),
        )
            .prop_map(|(tails, offers)| DeltaOfferResponse::Offer(DeltaOffer { tails, offers })),
    ]
}

fn arb_delta_request() -> impl Strategy<Value = DeltaRequest> {
    prop::collection::vec((any::<u32>(), arb_vv()), 0..5).prop_map(|v| DeltaRequest {
        wants: v.into_iter().map(|(i, ivv)| (ItemId(i), ivv)).collect(),
    })
}

fn arb_oob_reply() -> impl Strategy<Value = OobReply> {
    (any::<u32>(), arb_vv(), prop::collection::vec(any::<u8>(), 0..128), any::<bool>()).prop_map(
        |(item, ivv, value, from_aux)| OobReply {
            item: ItemId(item),
            ivv,
            value: Bytes::from(value),
            from_aux,
        },
    )
}

/// Every request variant except the routing envelope.
fn arb_flat_request() -> impl Strategy<Value = ProtocolRequest> {
    prop_oneof![
        (any::<u16>(), arb_dbvv())
            .prop_map(|(n, dbvv)| ProtocolRequest::Pull { from: NodeId(n), dbvv }),
        (any::<u16>(), arb_dbvv())
            .prop_map(|(n, dbvv)| ProtocolRequest::DeltaPull { from: NodeId(n), dbvv }),
        (any::<u16>(), arb_delta_request())
            .prop_map(|(n, wants)| ProtocolRequest::DeltaFetch { from: NodeId(n), wants }),
        (any::<u16>(), any::<u32>())
            .prop_map(|(n, i)| ProtocolRequest::Oob { from: NodeId(n), item: ItemId(i) }),
        any::<u16>().prop_map(|n| ProtocolRequest::ListDatabases { from: NodeId(n) }),
        (
            any::<u16>(),
            prop::collection::vec((any::<u32>(), any::<u32>()), 0..6),
            prop::collection::vec(any::<u32>(), 0..6),
        )
            .prop_map(|(n, ranges, fetch)| ProtocolRequest::Recon {
                from: NodeId(n),
                ranges,
                fetch: fetch.into_iter().map(ItemId).collect(),
            }),
        any::<u16>().prop_map(|n| ProtocolRequest::FullPull { from: NodeId(n) }),
    ]
}

/// Any request, including a depth-1 `Db` routing envelope (the codec
/// rejects deeper nesting, so the strategy builds exactly one level).
fn arb_request() -> impl Strategy<Value = ProtocolRequest> {
    prop_oneof![
        3 => arb_flat_request(),
        1 => (arb_name(), arb_flat_request())
            .prop_map(|(name, req)| ProtocolRequest::Db { name, req: Box::new(req) }),
    ]
}

fn arb_flat_response() -> impl Strategy<Value = ProtocolResponse> {
    prop_oneof![
        prop_oneof![
            Just(PropagationResponse::YouAreCurrent),
            Just(PropagationResponse::NeedRecon),
            arb_payload().prop_map(PropagationResponse::Payload),
        ]
        .prop_map(ProtocolResponse::Pull),
        arb_delta_offer().prop_map(ProtocolResponse::DeltaOffer),
        prop::collection::vec(arb_delta_item(), 0..4)
            .prop_map(|items| ProtocolResponse::DeltaPayload(DeltaPayload { items })),
        arb_oob_reply().prop_map(ProtocolResponse::Oob),
        arb_recon_reply().prop_map(ProtocolResponse::Recon),
        arb_full_pull_reply().prop_map(ProtocolResponse::Full),
        prop::collection::vec(arb_name(), 0..4).prop_map(ProtocolResponse::Databases),
        arb_name().prop_map(ProtocolResponse::Error),
    ]
}

fn arb_response() -> impl Strategy<Value = ProtocolResponse> {
    prop_oneof![
        3 => arb_flat_response(),
        1 => (arb_name(), arb_flat_response())
            .prop_map(|(name, resp)| ProtocolResponse::Db { name, resp: Box::new(resp) }),
    ]
}

proptest! {
    #[test]
    fn vv_roundtrips(vv in arb_vv()) {
        let mut w = Writer::new();
        put_vv(&mut w, &vv);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_vv(&mut r).unwrap(), vv);
        r.finish().unwrap();
    }

    #[test]
    fn op_roundtrips(op in arb_op()) {
        let mut w = Writer::new();
        put_op(&mut w, &op);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_op(&mut r).unwrap(), op);
        r.finish().unwrap();
    }

    #[test]
    fn payload_roundtrips(p in arb_payload()) {
        let mut w = Writer::new();
        put_payload(&mut w, &p);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_payload(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(&back.tails, &p.tails);
        prop_assert_eq!(back.items.len(), p.items.len());
        for (a, b) in back.items.iter().zip(&p.items) {
            prop_assert_eq!(a.item, b.item);
            prop_assert_eq!(&a.ivv, &b.ivv);
            prop_assert_eq!(&a.value, &b.value);
        }
    }

    /// Every engine request — including empty delta-fetch lists, empty
    /// database names, and depth-1 routing envelopes — round-trips
    /// structurally intact.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let back = decode_request(&encode_request(&req)).unwrap();
        prop_assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }

    /// Every engine response — empty tails, empty offers, whole-item
    /// fallbacks, error strings — round-trips structurally intact.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let back = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(format!("{back:?}"), format!("{resp:?}"));
    }

    /// Chopping any amount off the end of a valid frame must yield a clean
    /// decode error (frames are self-describing: a decoder that "succeeds"
    /// on a prefix would silently drop protocol state).
    #[test]
    fn truncated_requests_rejected(req in arb_request(), cut in 0u32..100) {
        let buf = encode_request(&req);
        let keep = buf.len() * cut as usize / 100;
        if keep < buf.len() {
            prop_assert!(decode_request(&buf[..keep]).is_err());
        }
    }

    #[test]
    fn truncated_responses_rejected(resp in arb_response(), cut in 0u32..100) {
        let buf = encode_response(&resp);
        let keep = buf.len() * cut as usize / 100;
        if keep < buf.len() {
            prop_assert!(decode_response(&buf[..keep]).is_err());
        }
    }

    /// Trailing garbage after a valid frame must also be rejected.
    #[test]
    fn padded_requests_rejected(req in arb_request(), pad in 1usize..8) {
        let mut buf = encode_request(&req);
        buf.extend(std::iter::repeat_n(0xAB, pad));
        prop_assert!(decode_request(&buf).is_err());
    }

    /// Fuzz: the decoders must reject or accept arbitrary bytes without
    /// panicking.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Fuzz: snapshot restore must never panic on corrupt input.
    #[test]
    fn snapshot_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = epidb_core::Replica::from_snapshot(&bytes);
    }
}

/// A megabyte-sized item value survives the round trip (length fields are
/// u32 throughout; this exercises the large-payload path without the cost
/// of a proptest case).
#[test]
fn max_size_value_roundtrips() {
    let value = vec![0x5Au8; 1 << 20];
    let resp = ProtocolResponse::Oob(OobReply {
        item: ItemId(7),
        ivv: VersionVector::from_entries(vec![3, 0, 9]),
        value: Bytes::copy_from_slice(&value),
        from_aux: true,
    });
    let buf = encode_response(&resp);
    assert!(buf.len() > 1 << 20);
    match decode_response(&buf).unwrap() {
        ProtocolResponse::Oob(reply) => {
            assert_eq!(&reply.value[..], &value[..]);
            assert!(reply.from_aux);
        }
        other => panic!("kind changed: {other:?}"),
    }
}

/// The all-empty offer (empty tails, no offered items) is a legal frame.
#[test]
fn empty_delta_offer_roundtrips() {
    let resp = ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(DeltaOffer {
        tails: vec![vec![], vec![]],
        offers: vec![],
    }));
    let back = decode_response(&encode_response(&resp)).unwrap();
    assert_eq!(format!("{back:?}"), format!("{resp:?}"));
}

// --- checked (CRC32) envelope fuzzing ---------------------------------------

use epidb_common::Error;
use epidb_core::codec::{
    decode_request_checked, decode_request_checked_shared, decode_response_checked,
    decode_response_checked_shared, encode_request_checked, encode_response_checked,
};

fn is_corrupt<T: std::fmt::Debug>(r: Result<T, Error>) -> bool {
    matches!(r, Err(Error::CorruptFrame(_)))
}

proptest! {
    /// Flipping any single bit of a checked request frame must surface as
    /// `CorruptFrame` — never a wrong decode, never a panic.
    #[test]
    fn bit_flipped_checked_requests_rejected(
        req in arb_request(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_request_checked(&req);
        let idx = (pos % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        prop_assert!(
            is_corrupt(decode_request_checked(&frame)),
            "flip at byte {} bit {} not caught", idx, bit
        );
        // The shared-buffer decoder must agree.
        let shared = Bytes::from(frame);
        prop_assert!(is_corrupt(decode_request_checked_shared(&shared)));
    }

    #[test]
    fn bit_flipped_checked_responses_rejected(
        resp in arb_response(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = encode_response_checked(&resp);
        let idx = (pos % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        prop_assert!(
            is_corrupt(decode_response_checked(&frame)),
            "flip at byte {} bit {} not caught", idx, bit
        );
        let shared = Bytes::from(frame);
        prop_assert!(is_corrupt(decode_response_checked_shared(&shared)));
    }

    /// Replacing a whole byte with a different value is likewise caught.
    #[test]
    fn byte_stomped_checked_frames_rejected(
        resp in arb_response(),
        pos in any::<u64>(),
        replacement in any::<u8>(),
    ) {
        let mut frame = encode_response_checked(&resp);
        let idx = (pos % frame.len() as u64) as usize;
        if frame[idx] != replacement {
            frame[idx] = replacement;
            prop_assert!(is_corrupt(decode_response_checked(&frame)));
        }
    }

    /// Intact checked frames still round-trip.
    #[test]
    fn checked_requests_roundtrip(req in arb_request()) {
        let frame = encode_request_checked(&req);
        let back = decode_request_checked(&frame).unwrap();
        prop_assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }

    /// Arbitrary byte soup never panics the checked decoders, and anything
    /// they reject is reported as a corrupt frame (the retryable shape).
    #[test]
    fn checked_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Err(e) = decode_request_checked(&bytes) {
            prop_assert!(matches!(e, Error::CorruptFrame(_)));
        }
        if let Err(e) = decode_response_checked(&bytes) {
            prop_assert!(matches!(e, Error::CorruptFrame(_)));
        }
    }
}

// --- scratch-pooled decoding and frame-size bounds --------------------------

use epidb_core::codec::{check_frame_len, DecodeScratch};

proptest! {
    /// Decoding through a recycled scratch buffer — one that previously
    /// held a *different* frame — is indistinguishable from decoding a
    /// fresh allocation, for every request variant. This is the
    /// connection-lifetime invariant behind the transport's buffer pool:
    /// no state leaks between frames.
    #[test]
    fn scratch_pooled_request_decode_matches_fresh(
        first in arb_request(),
        second in arb_request(),
    ) {
        let mut scratch = DecodeScratch::new();
        for req in [&first, &second] {
            let wire = encode_request_checked(req);
            let mut buf = scratch.take_buf();
            buf.extend_from_slice(&wire);
            let frame = Bytes::from(buf);
            let pooled = decode_request_checked_shared(&frame).unwrap();
            let fresh = decode_request_checked(&wire).unwrap();
            prop_assert_eq!(format!("{pooled:?}"), format!("{fresh:?}"));
            drop(pooled);
            prop_assert!(scratch.recycle(frame));
        }
        // The second iteration really did reuse the first frame's buffer.
        prop_assert_eq!(scratch.pooled(), 1);
    }

    /// As above, for every response variant — including payloads whose
    /// values decode as zero-copy sub-views of the pooled frame. While
    /// such views are alive the frame must refuse to recycle (recycling
    /// would hand aliased memory to the next read); once dropped, the
    /// buffer pools normally.
    #[test]
    fn scratch_pooled_response_decode_matches_fresh(
        first in arb_response(),
        second in arb_response(),
    ) {
        let mut scratch = DecodeScratch::new();
        for resp in [&first, &second] {
            let wire = encode_response_checked(resp);
            let mut buf = scratch.take_buf();
            buf.extend_from_slice(&wire);
            let frame = Bytes::from(buf);
            let pooled = decode_response_checked_shared(&frame).unwrap();
            let fresh = decode_response_checked(&wire).unwrap();
            prop_assert_eq!(format!("{pooled:?}"), format!("{fresh:?}"));
            drop(pooled);
            // Nothing aliases the frame once the message is dropped, so
            // the buffer must actually return to the pool.
            prop_assert!(scratch.recycle(frame));
        }
        prop_assert_eq!(scratch.pooled(), 1);
    }

    /// Encoded frames for bounded inputs stay far under [`MAX_FRAME`]:
    /// the sender-side check accepts everything these strategies can
    /// build, so ordinary traffic never trips the frame limit.
    #[test]
    fn bounded_requests_fit_the_frame_limit(req in arb_request()) {
        let wire = encode_request_checked(&req);
        prop_assert!(check_frame_len(wire.len()).is_ok());
    }

    #[test]
    fn bounded_responses_fit_the_frame_limit(resp in arb_response()) {
        let wire = encode_response_checked(&resp);
        prop_assert!(check_frame_len(wire.len()).is_ok());
    }
}
