//! Property tests for the wire codec: arbitrary messages round-trip, and
//! arbitrary byte soup never panics the decoder.

use bytes::Bytes;
use epidb_common::{ItemId, NodeId};
use epidb_core::codec::{
    decode_message, encode_message, get_op, get_payload, get_vv, put_op, put_payload, put_vv,
    Reader, WireMessage, Writer,
};
use epidb_core::{OobReply, PropagationPayload, PropagationResponse, ShippedItem};
use epidb_log::LogRecord;
use epidb_store::{ItemValue, UpdateOp};
use epidb_vv::{DbVersionVector, VersionVector};
use proptest::prelude::*;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    prop::collection::vec(any::<u64>(), 1..8).prop_map(VersionVector::from_entries)
}

fn arb_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|d| UpdateOp::Set(Bytes::from(d))),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(|(o, d)| {
            UpdateOp::WriteRange { offset: o as usize, data: Bytes::from(d) }
        }),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|d| UpdateOp::Append(Bytes::from(d))),
    ]
}

fn arb_payload() -> impl Strategy<Value = PropagationPayload> {
    let tails = prop::collection::vec(
        prop::collection::vec(
            (any::<u32>(), any::<u64>()).prop_map(|(i, m)| LogRecord { item: ItemId(i), m }),
            0..6,
        ),
        1..5,
    );
    let items = prop::collection::vec(
        (any::<u32>(), arb_vv(), prop::collection::vec(any::<u8>(), 0..64)).prop_map(
            |(i, ivv, v)| ShippedItem { item: ItemId(i), ivv, value: ItemValue::from_slice(&v) },
        ),
        0..5,
    );
    (tails, items).prop_map(|(tails, items)| PropagationPayload { tails, items })
}

proptest! {
    #[test]
    fn vv_roundtrips(vv in arb_vv()) {
        let mut w = Writer::new();
        put_vv(&mut w, &vv);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_vv(&mut r).unwrap(), vv);
        r.finish().unwrap();
    }

    #[test]
    fn op_roundtrips(op in arb_op()) {
        let mut w = Writer::new();
        put_op(&mut w, &op);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_op(&mut r).unwrap(), op);
        r.finish().unwrap();
    }

    #[test]
    fn payload_roundtrips(p in arb_payload()) {
        let mut w = Writer::new();
        put_payload(&mut w, &p);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_payload(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(&back.tails, &p.tails);
        prop_assert_eq!(back.items.len(), p.items.len());
        for (a, b) in back.items.iter().zip(&p.items) {
            prop_assert_eq!(a.item, b.item);
            prop_assert_eq!(&a.ivv, &b.ivv);
            prop_assert_eq!(&a.value, &b.value);
        }
    }

    #[test]
    fn pull_messages_roundtrip(node in any::<u16>(), dbvv in arb_vv(), p in arb_payload()) {
        let msg = WireMessage::PullRequest {
            from: NodeId(node),
            dbvv: DbVersionVector::from_vector(dbvv.clone()),
        };
        match decode_message(&encode_message(&msg)).unwrap() {
            WireMessage::PullRequest { from, dbvv: d } => {
                prop_assert_eq!(from, NodeId(node));
                prop_assert_eq!(d.as_vector(), &dbvv);
            }
            _ => prop_assert!(false, "kind changed"),
        }
        let msg = WireMessage::PullResponse {
            from: NodeId(node),
            response: PropagationResponse::Payload(p.clone()),
        };
        match decode_message(&encode_message(&msg)).unwrap() {
            WireMessage::PullResponse { response: PropagationResponse::Payload(back), .. } => {
                prop_assert_eq!(&back.tails, &p.tails);
            }
            _ => prop_assert!(false, "kind changed"),
        }
    }

    #[test]
    fn oob_messages_roundtrip(node in any::<u16>(), item in any::<u32>(), ivv in arb_vv(),
                              value in prop::collection::vec(any::<u8>(), 0..128),
                              from_aux in any::<bool>()) {
        let msg = WireMessage::OobResponse {
            from: NodeId(node),
            reply: OobReply {
                item: ItemId(item),
                ivv: ivv.clone(),
                value: ItemValue::from_slice(&value),
                from_aux,
            },
        };
        match decode_message(&encode_message(&msg)).unwrap() {
            WireMessage::OobResponse { from, reply } => {
                prop_assert_eq!(from, NodeId(node));
                prop_assert_eq!(reply.item, ItemId(item));
                prop_assert_eq!(reply.ivv, ivv);
                prop_assert_eq!(reply.value.as_bytes(), &value[..]);
                prop_assert_eq!(reply.from_aux, from_aux);
            }
            _ => prop_assert!(false, "kind changed"),
        }
    }

    /// Fuzz: the decoder must reject or accept arbitrary bytes without
    /// panicking.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }

    /// Fuzz: snapshot restore must never panic on corrupt input.
    #[test]
    fn snapshot_restore_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = epidb_core::Replica::from_snapshot(&bytes);
    }
}
