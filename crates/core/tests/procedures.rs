//! Message-level tests of the propagation procedures themselves —
//! `SendPropagation` / `AcceptPropagation` exercised directly on the
//! request/response values rather than through the `pull` orchestrator.

use epidb_common::{ItemId, NodeId};
use epidb_core::{PropagationResponse, Replica};
use epidb_store::UpdateOp;
use epidb_vv::DbVersionVector;

fn replica(id: u16, n: usize) -> Replica {
    Replica::new(NodeId(id), n, 16)
}

#[test]
fn send_propagation_is_current_for_dominating_recipient() {
    let mut source = replica(0, 2);
    source.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
    // A recipient claiming strictly more knowledge than the source.
    let mut recipient_dbvv = DbVersionVector::zero(2);
    recipient_dbvv.record_local_update(NodeId(0));
    recipient_dbvv.record_local_update(NodeId(1));
    let resp = source.prepare_propagation(&recipient_dbvv);
    assert!(matches!(resp, PropagationResponse::YouAreCurrent));
}

#[test]
fn send_propagation_builds_exact_tails_and_item_set() {
    let mut source = replica(0, 3);
    source.update(ItemId(3), UpdateOp::set(&b"a"[..])).unwrap(); // m=1
    source.update(ItemId(5), UpdateOp::set(&b"b"[..])).unwrap(); // m=2
    source.update(ItemId(3), UpdateOp::set(&b"c"[..])).unwrap(); // m=3 (replaces m=1)

    // Recipient has seen the source's first update only.
    let mut recipient_dbvv = DbVersionVector::zero(3);
    recipient_dbvv.record_local_update(NodeId(0));
    let resp = source.prepare_propagation(&recipient_dbvv);
    let PropagationResponse::Payload(p) = resp else { panic!("expected payload") };

    // Tail for origin 0 holds the records the recipient misses (m > 1):
    // (5,2) and (3,3), ascending.
    assert_eq!(p.tails[0].len(), 2);
    assert_eq!((p.tails[0][0].item, p.tails[0][0].m), (ItemId(5), 2));
    assert_eq!((p.tails[0][1].item, p.tails[0][1].m), (ItemId(3), 3));
    assert!(p.tails[1].is_empty() && p.tails[2].is_empty());

    // S = {5, 3}, each with the current IVV and value. The recipient's
    // stale view of item 3 is irrelevant — it gets the latest whole copy.
    let mut items: Vec<ItemId> = p.items.iter().map(|s| s.item).collect();
    items.sort();
    assert_eq!(items, vec![ItemId(3), ItemId(5)]);
    let x3 = p.items.iter().find(|s| s.item == ItemId(3)).unwrap();
    assert_eq!(&x3.value[..], b"c");
    assert_eq!(x3.ivv.get(NodeId(0)), 2); // two updates to item 3
}

#[test]
fn send_propagation_can_be_repeated_flags_reset() {
    // The IsSelected flags must be reset after every call, so repeated
    // sends produce identical item sets.
    let mut source = replica(0, 2);
    for i in 0..4u32 {
        source.update(ItemId(i), UpdateOp::set(vec![i as u8])).unwrap();
    }
    let recipient_dbvv = DbVersionVector::zero(2);
    let first = source.prepare_propagation(&recipient_dbvv);
    let second = source.prepare_propagation(&recipient_dbvv);
    let (PropagationResponse::Payload(a), PropagationResponse::Payload(b)) = (first, second) else {
        panic!()
    };
    assert_eq!(a.items.len(), 4);
    assert_eq!(a.items.len(), b.items.len());
    source.check_invariants().unwrap(); // includes the flags-clear check
}

#[test]
fn accept_propagation_applies_exactly_the_payload() {
    let mut source = replica(0, 2);
    let mut recipient = replica(1, 2);
    source.update(ItemId(1), UpdateOp::set(&b"payload"[..])).unwrap();
    let resp = source.prepare_propagation(&recipient.dbvv().clone());
    let PropagationResponse::Payload(p) = resp else { panic!() };
    let out = recipient.accept_propagation(NodeId(0), p).unwrap();
    assert_eq!(out.copied, vec![ItemId(1)]);
    assert_eq!(out.conflicts, 0);
    assert_eq!(recipient.read(ItemId(1)).unwrap().as_bytes(), b"payload");
    assert_eq!(recipient.dbvv().get(NodeId(0)), 1);
    // The forwarded record is retained under the true origin.
    assert_eq!(recipient.log().retained(NodeId(0), ItemId(1)).unwrap().m, 1);
    recipient.check_invariants().unwrap();
}

#[test]
fn replaying_the_same_payload_is_harmless() {
    // Duplicate delivery (a retransmitted message): the second application
    // must be a no-op with only equal-receipt counters moving.
    let mut source = replica(0, 2);
    let mut recipient = replica(1, 2);
    source.update(ItemId(2), UpdateOp::set(&b"dup"[..])).unwrap();
    let PropagationResponse::Payload(p) = source.prepare_propagation(&recipient.dbvv().clone())
    else {
        panic!()
    };
    recipient.accept_propagation(NodeId(0), p.clone()).unwrap();
    let before = recipient.dbvv().clone();
    let out = recipient.accept_propagation(NodeId(0), p).unwrap();
    assert!(out.copied.is_empty());
    assert_eq!(out.conflicts, 0);
    assert_eq!(recipient.counters().equal_receipts, 1);
    assert_eq!(recipient.dbvv(), &before);
    assert_eq!(recipient.read(ItemId(2)).unwrap().as_bytes(), b"dup");
    recipient.check_invariants().unwrap();
}

#[test]
fn accept_rejects_out_of_universe_items() {
    let mut source = Replica::new(NodeId(0), 2, 64);
    let mut recipient = replica(1, 2); // only 16 items
    source.update(ItemId(40), UpdateOp::set(&b"x"[..])).unwrap();
    let PropagationResponse::Payload(p) = source.prepare_propagation(&recipient.dbvv().clone())
    else {
        panic!()
    };
    assert!(recipient.accept_propagation(NodeId(0), p).is_err());
}

#[test]
fn cross_origin_tails_are_separated() {
    // Source knows updates from two origins; both tails travel and land in
    // the right components.
    let mut a = replica(0, 3);
    let mut b = replica(1, 3);
    let mut c = replica(2, 3);
    a.update(ItemId(0), UpdateOp::set(&b"from-a"[..])).unwrap();
    b.update(ItemId(1), UpdateOp::set(&b"from-b"[..])).unwrap();
    epidb_core::pull(&mut c, &mut a).unwrap();
    epidb_core::pull(&mut c, &mut b).unwrap();

    let mut fresh = replica(0, 3);
    let PropagationResponse::Payload(p) = c.prepare_propagation(&fresh.dbvv().clone()) else {
        panic!()
    };
    assert_eq!(p.tails[0].len(), 1);
    assert_eq!(p.tails[1].len(), 1);
    assert!(p.tails[2].is_empty());
    fresh.accept_propagation(NodeId(2), p).unwrap();
    assert_eq!(fresh.log().component_len(NodeId(0)), 1);
    assert_eq!(fresh.log().component_len(NodeId(1)), 1);
    assert_eq!(fresh.read(ItemId(0)).unwrap().as_bytes(), b"from-a");
    assert_eq!(fresh.read(ItemId(1)).unwrap().as_bytes(), b"from-b");
    fresh.check_invariants().unwrap();
}
