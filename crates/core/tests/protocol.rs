//! End-to-end tests of the protocol across multiple replicas, covering the
//! scenarios the paper describes: scheduled propagation, transitive
//! (indirect) propagation, constant-time identical-replica detection,
//! conflict detection and suspension, out-of-bound copying with intra-node
//! catch-up, and the DBVV/log invariants throughout.

use epidb_common::{ConflictSite, ItemId, NodeId};
use epidb_core::{oob_copy, pull, ConflictPolicy, OobOutcome, PullOutcome, Replica};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;

fn cluster(n_nodes: usize, n_items: usize) -> Vec<Replica> {
    (0..n_nodes).map(|i| Replica::new(NodeId::from_index(i), n_nodes, n_items)).collect()
}

fn pull_pair(replicas: &mut [Replica], recipient: usize, source: usize) -> PullOutcome {
    assert_ne!(recipient, source);
    let (r, s) = if recipient < source {
        let (lo, hi) = replicas.split_at_mut(source);
        (&mut lo[recipient], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(recipient);
        (&mut hi[0], &mut lo[source])
    };
    pull(r, s).unwrap()
}

fn oob_pair(replicas: &mut [Replica], recipient: usize, source: usize, x: ItemId) -> OobOutcome {
    assert_ne!(recipient, source);
    let (r, s) = if recipient < source {
        let (lo, hi) = replicas.split_at_mut(source);
        (&mut lo[recipient], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(recipient);
        (&mut hi[0], &mut lo[source])
    };
    oob_copy(r, s, x).unwrap()
}

fn assert_all_invariants(replicas: &[Replica]) {
    for r in replicas {
        r.check_invariants().unwrap_or_else(|e| panic!("invariant violated at {}: {e}", r.id()));
    }
}

fn assert_identical(replicas: &[Replica]) {
    let first = &replicas[0];
    for r in &replicas[1..] {
        assert_eq!(
            first.dbvv().compare(r.dbvv()),
            VvOrd::Equal,
            "DBVVs differ: {} vs {}",
            first.dbvv(),
            r.dbvv()
        );
        for x in (0..first.n_items()).map(ItemId::from_index) {
            assert_eq!(
                first.read_regular(x).unwrap(),
                r.read_regular(x).unwrap(),
                "value of {x} differs between {} and {}",
                first.id(),
                r.id()
            );
            assert_eq!(first.item_ivv(x).unwrap(), r.item_ivv(x).unwrap());
        }
    }
}

#[test]
fn basic_two_node_propagation() {
    let mut c = cluster(2, 100);
    c[0].update(ItemId(3), UpdateOp::set(&b"v3"[..])).unwrap();
    c[0].update(ItemId(42), UpdateOp::set(&b"v42"[..])).unwrap();
    c[0].update(ItemId(3), UpdateOp::append(&b"!"[..])).unwrap();

    let out = pull_pair(&mut c, 1, 0);
    let PullOutcome::Propagated(out) = out else { panic!("expected propagation") };
    // Three updates but only two items copied (log compaction).
    let mut copied = out.copied.clone();
    copied.sort();
    assert_eq!(copied, vec![ItemId(3), ItemId(42)]);
    assert_eq!(c[1].read(ItemId(3)).unwrap().as_bytes(), b"v3!");
    assert_eq!(c[1].read(ItemId(42)).unwrap().as_bytes(), b"v42");
    assert_identical(&c);
    assert_all_invariants(&c);
}

#[test]
fn pull_between_identical_replicas_is_up_to_date() {
    let mut c = cluster(2, 1000);
    c[0].update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
    assert!(matches!(pull_pair(&mut c, 1, 0), PullOutcome::Propagated(_)));

    // Now identical. Detection must cost exactly n entry comparisons at the
    // source and ship nothing, regardless of the 1000 items.
    let before = c[0].costs();
    let out = pull_pair(&mut c, 1, 0);
    assert!(matches!(out, PullOutcome::UpToDate));
    let delta = c[0].costs() - before;
    assert_eq!(delta.vv_entry_cmps, 2); // n = 2
    assert_eq!(delta.log_records_examined, 0);
    assert_eq!(delta.items_scanned, 0);
}

#[test]
fn pull_from_older_source_is_up_to_date() {
    // Recipient strictly newer than source: source answers you-are-current.
    let mut c = cluster(2, 10);
    c[1].update(ItemId(0), UpdateOp::set(&b"y"[..])).unwrap();
    assert!(matches!(pull_pair(&mut c, 1, 0), PullOutcome::UpToDate));
    assert_all_invariants(&c);
}

#[test]
fn indirect_propagation_detected_as_current() {
    // The Lotus comparison scenario (§8.1): updates flow A -> B and A -> C;
    // a B <-> C sync must detect identical replicas in constant time.
    let mut c = cluster(3, 500);
    for i in 0..20u32 {
        c[0].update(ItemId(i), UpdateOp::set(vec![i as u8])).unwrap();
    }
    pull_pair(&mut c, 1, 0);
    pull_pair(&mut c, 2, 0);

    let before = c[2].costs();
    assert!(matches!(pull_pair(&mut c, 1, 2), PullOutcome::UpToDate));
    let delta = c[2].costs() - before;
    assert_eq!(delta.vv_entry_cmps, 3);
    assert_eq!(delta.items_scanned, 0);
    assert_identical(&c);
    assert_all_invariants(&c);
}

#[test]
fn transitive_propagation_converges_a_chain() {
    // A -> B -> C: C receives A's updates without ever talking to A
    // (forwarding — the property Oracle's scheme lacks, §8.2).
    let mut c = cluster(3, 50);
    c[0].update(ItemId(1), UpdateOp::set(&b"origin-a"[..])).unwrap();
    pull_pair(&mut c, 1, 0);
    let out = pull_pair(&mut c, 2, 1);
    assert!(matches!(out, PullOutcome::Propagated(_)));
    assert_eq!(c[2].read(ItemId(1)).unwrap().as_bytes(), b"origin-a");
    // The forwarded log record is attributed to origin A, not B.
    assert_eq!(c[2].log().component_len(NodeId(0)), 1);
    assert_eq!(c[2].log().component_len(NodeId(1)), 0);
    assert_all_invariants(&c);
}

#[test]
fn bidirectional_merge_of_disjoint_updates() {
    let mut c = cluster(2, 10);
    c[0].update(ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
    c[1].update(ItemId(1), UpdateOp::set(&b"b"[..])).unwrap();

    pull_pair(&mut c, 0, 1);
    pull_pair(&mut c, 1, 0);
    assert_identical(&c);
    assert_eq!(c[0].read(ItemId(1)).unwrap().as_bytes(), b"b");
    assert_eq!(c[1].read(ItemId(0)).unwrap().as_bytes(), b"a");
    assert_all_invariants(&c);
}

#[test]
fn overhead_proportional_to_changed_items_not_database_size() {
    // m = 5 changed items in an N = 10_000 item database: the source's
    // work must be O(m), nowhere near N.
    let mut c = cluster(2, 10_000);
    for i in 0..5u32 {
        c[0].update(ItemId(i * 1000), UpdateOp::set(vec![i as u8; 8])).unwrap();
    }
    let before = c[0].costs();
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.copied.len(), 5);
    let delta = c[0].costs() - before;
    // n cmps + (m selected + ≤1 stop) records + m item materializations.
    assert!(delta.comparison_work() <= 2 + 6 + 5, "work = {}", delta.comparison_work());
    assert_all_invariants(&c);
}

#[test]
fn conflict_is_detected_and_suspends_item() {
    let mut c = cluster(2, 10);
    // Concurrent updates to the same item at both nodes, no tokens.
    c[0].update(ItemId(5), UpdateOp::set(&b"from-a"[..])).unwrap();
    c[1].update(ItemId(5), UpdateOp::set(&b"from-b"[..])).unwrap();

    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.conflicts, 1);
    assert!(out.copied.is_empty());
    // Local copy untouched; conflict recorded with the offending pair.
    assert_eq!(c[1].read(ItemId(5)).unwrap().as_bytes(), b"from-b");
    let evs = c[1].conflicts();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].site, ConflictSite::Propagation);
    assert_eq!(evs[0].item, ItemId(5));
    assert_eq!(evs[0].offending, Some((NodeId(1), NodeId(0))));
    // The conflicting record was stripped: B's log has no record from A.
    assert_eq!(c[1].log().component_len(NodeId(0)), 0);
    // Re-detection on the next round (conflicts stay visible until
    // resolved).
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.conflicts, 1);
    assert_all_invariants(&c);
}

#[test]
fn conflict_does_not_block_other_items() {
    let mut c = cluster(2, 10);
    c[0].update(ItemId(0), UpdateOp::set(&b"conflict-a"[..])).unwrap();
    c[1].update(ItemId(0), UpdateOp::set(&b"conflict-b"[..])).unwrap();
    c[0].update(ItemId(1), UpdateOp::set(&b"clean"[..])).unwrap();

    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.conflicts, 1);
    assert_eq!(out.copied, vec![ItemId(1)]);
    assert_eq!(c[1].read(ItemId(1)).unwrap().as_bytes(), b"clean");
    assert_all_invariants(&c);
}

#[test]
fn lww_policy_resolves_and_converges() {
    let n_items = 10;
    let mut a = Replica::with_policy(NodeId(0), 2, n_items, ConflictPolicy::ResolveLww);
    let mut b = Replica::with_policy(NodeId(1), 2, n_items, ConflictPolicy::ResolveLww);
    a.update(ItemId(2), UpdateOp::set(&b"aa"[..])).unwrap();
    b.update(ItemId(2), UpdateOp::set(&b"zz"[..])).unwrap();

    let PullOutcome::Propagated(out) = pull(&mut b, &mut a).unwrap() else { panic!() };
    assert_eq!(out.conflicts, 1);
    assert_eq!(out.copied, vec![ItemId(2)]);
    assert_eq!(b.counters().lww_resolutions, 1);
    // Resolution picked the deterministic winner ("zz" ties on totals,
    // larger bytes win) and dominates both parents.
    assert_eq!(b.read(ItemId(2)).unwrap().as_bytes(), b"zz");
    assert_eq!(
        b.item_ivv(ItemId(2)).unwrap().compare(a.item_ivv(ItemId(2)).unwrap()),
        VvOrd::Dominates
    );
    // A pulls the resolution; the cluster converges.
    let PullOutcome::Propagated(out) = pull(&mut a, &mut b).unwrap() else { panic!() };
    assert_eq!(out.conflicts, 0);
    assert_eq!(a.read(ItemId(2)).unwrap().as_bytes(), b"zz");
    assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
    a.check_invariants().unwrap();
    b.check_invariants().unwrap();
}

#[test]
fn oob_copy_creates_aux_and_serves_reads() {
    let mut c = cluster(3, 20);
    c[0].update(ItemId(4), UpdateOp::set(&b"hot-v1"[..])).unwrap();

    // B fetches the hot item out-of-bound; regular copy stays old.
    let out = oob_pair(&mut c, 1, 0, ItemId(4));
    assert_eq!(out, OobOutcome::Adopted { from_aux: false });
    assert_eq!(c[1].read(ItemId(4)).unwrap().as_bytes(), b"hot-v1");
    assert_eq!(c[1].read_regular(ItemId(4)).unwrap().as_bytes(), b"");
    assert_eq!(c[1].aux_item_count(), 1);
    // DBVV untouched by out-of-bound copying.
    assert_eq!(c[1].dbvv().total(), 0);
    assert_all_invariants(&c);
}

#[test]
fn oob_fetch_of_stale_copy_is_no_action() {
    let mut c = cluster(2, 10);
    c[0].update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
    pull_pair(&mut c, 1, 0);
    // Fetching from an equally-current source: no aux copy created.
    assert_eq!(oob_pair(&mut c, 1, 0, ItemId(0)), OobOutcome::AlreadyCurrent);
    assert_eq!(c[1].aux_item_count(), 0);
    // And from a strictly older source.
    c[1].update(ItemId(0), UpdateOp::append(&b"+"[..])).unwrap();
    assert_eq!(oob_pair(&mut c, 1, 0, ItemId(0)), OobOutcome::AlreadyCurrent);
    assert_all_invariants(&c);
}

#[test]
fn oob_source_prefers_its_aux_copy() {
    let mut c = cluster(3, 10);
    c[0].update(ItemId(1), UpdateOp::set(&b"v1"[..])).unwrap();
    // B gets it out-of-bound and updates it there (aux structures).
    oob_pair(&mut c, 1, 0, ItemId(1));
    c[1].update(ItemId(1), UpdateOp::append(&b"+b"[..])).unwrap();
    // C fetches from B: must receive B's *aux* copy (newest).
    let out = oob_pair(&mut c, 2, 1, ItemId(1));
    assert_eq!(out, OobOutcome::Adopted { from_aux: true });
    assert_eq!(c[2].read(ItemId(1)).unwrap().as_bytes(), b"v1+b");
    assert_all_invariants(&c);
}

#[test]
fn intra_node_propagation_replays_aux_updates_and_discards_aux() {
    let mut c = cluster(2, 10);
    let x = ItemId(3);
    // A writes v1. B fetches it out-of-bound and applies two local updates
    // on the aux copy.
    c[0].update(x, UpdateOp::set(&b"v1"[..])).unwrap();
    oob_pair(&mut c, 1, 0, x);
    c[1].update(x, UpdateOp::append(&b".b1"[..])).unwrap();
    c[1].update(x, UpdateOp::append(&b".b2"[..])).unwrap();
    assert_eq!(c[1].aux_log().len(), 2);
    assert_eq!(c[1].dbvv().total(), 0); // aux updates don't touch DBVV yet

    // Scheduled propagation copies the regular v1 to B; intra-node
    // propagation then replays both aux updates onto the regular copy and
    // discards the aux copy.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.copied, vec![x]);
    assert_eq!(out.replayed, 2);
    assert_eq!(out.aux_discarded, vec![x]);
    assert_eq!(c[1].aux_item_count(), 0);
    assert_eq!(c[1].aux_log().len(), 0);
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v1.b1.b2");
    assert_eq!(c[1].read_regular(x).unwrap().as_bytes(), b"v1.b1.b2");
    // The replayed updates are now regular updates by B: DBVV advanced and
    // log records exist, so they propagate onward normally.
    assert_eq!(c[1].dbvv().get(NodeId(1)), 2);
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 0, 1) else { panic!() };
    assert_eq!(out.copied, vec![x]);
    assert_eq!(c[0].read(x).unwrap().as_bytes(), b"v1.b1.b2");
    assert_identical(&c);
    assert_all_invariants(&c);
}

#[test]
fn oob_then_no_local_updates_discards_aux_on_catch_up() {
    let mut c = cluster(2, 10);
    let x = ItemId(0);
    c[0].update(x, UpdateOp::set(&b"v1"[..])).unwrap();
    oob_pair(&mut c, 1, 0, x);
    assert_eq!(c[1].aux_item_count(), 1);
    // Scheduled propagation catches the regular copy up; aux is discarded
    // with nothing to replay.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.replayed, 0);
    assert_eq!(out.aux_discarded, vec![x]);
    assert_eq!(c[1].aux_item_count(), 0);
    assert_all_invariants(&c);
}

#[test]
fn aux_kept_while_regular_still_behind() {
    let mut c = cluster(3, 10);
    let x = ItemId(0);
    // A writes v1, then v2. B pulls v1 indirectly... simulate: A writes v1,
    // C pulls (gets v1), A writes v2, B oob-fetches v2 from A, then B
    // scheduled-pulls from C (which only has v1).
    c[0].update(x, UpdateOp::set(&b"v1"[..])).unwrap();
    pull_pair(&mut c, 2, 0);
    c[0].update(x, UpdateOp::set(&b"v2"[..])).unwrap();
    oob_pair(&mut c, 1, 0, x);
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v2");

    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 2) else { panic!() };
    assert_eq!(out.copied, vec![x]);
    // Regular copy now v1, aux still v2 — aux must be kept.
    assert!(out.aux_discarded.is_empty());
    assert_eq!(c[1].read_regular(x).unwrap().as_bytes(), b"v1");
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v2");
    assert_eq!(c[1].aux_item_count(), 1);

    // Catching up from A discards the aux copy.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.aux_discarded, vec![x]);
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v2");
    assert_all_invariants(&c);
}

#[test]
fn oob_conflict_is_detected() {
    let mut c = cluster(2, 10);
    let x = ItemId(2);
    c[0].update(x, UpdateOp::set(&b"a"[..])).unwrap();
    c[1].update(x, UpdateOp::set(&b"b"[..])).unwrap();
    let out = oob_pair(&mut c, 1, 0, x);
    assert_eq!(out, OobOutcome::Conflict);
    let evs = c[1].conflicts();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].site, ConflictSite::OutOfBound);
    assert_all_invariants(&c);
}

#[test]
fn intra_node_conflict_detected_when_aux_updates_race_regular() {
    // B oob-fetches x from A, updates the aux copy; meanwhile C updates x
    // concurrently (relative to the fetched version) and B's regular copy
    // receives C's version. Replay must detect the conflict between the
    // regular copy and the earliest aux record.
    let mut c = cluster(3, 10);
    let x = ItemId(0);
    c[0].update(x, UpdateOp::set(&b"base"[..])).unwrap();
    oob_pair(&mut c, 1, 0, x); // aux at B: A's base
    c[1].update(x, UpdateOp::append(&b"+b"[..])).unwrap(); // aux record with vv=<1,0,0>
    c[2].update(x, UpdateOp::set(&b"c-version"[..])).unwrap(); // concurrent with A's base
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 2) else { panic!() };
    // Regular copy adopted C's version (B's regular was empty/zero vv).
    assert_eq!(out.copied, vec![x]);
    // Replay: regular vv <0,0,1> vs aux record vv <1,0,0> -> conflict.
    assert_eq!(out.conflicts, 1);
    let evs = c[1].conflicts();
    assert_eq!(evs[0].site, ConflictSite::IntraNode);
    // Aux state preserved pending resolution.
    assert_eq!(c[1].aux_item_count(), 1);
    assert_eq!(c[1].aux_log().len(), 1);
    assert_all_invariants(&c);
}

#[test]
fn oob_overwrite_of_aux_keeps_pending_replays() {
    // B oob-fetches x, updates aux, then oob-fetches an even newer version
    // that *includes* its own aux updates (round-tripped through C). The
    // aux log is not modified by the overwrite, and pending records still
    // replay later.
    let mut c = cluster(3, 10);
    let x = ItemId(0);
    c[0].update(x, UpdateOp::set(&b"v1."[..])).unwrap();
    oob_pair(&mut c, 1, 0, x);
    c[1].update(x, UpdateOp::append(&b"b1."[..])).unwrap();
    // C oob-fetches from B (gets B's aux copy), appends, and B oob-fetches
    // back: the incoming vv dominates B's aux vv.
    oob_pair(&mut c, 2, 1, x);
    c[2].update(x, UpdateOp::append(&b"c1."[..])).unwrap();
    let out = oob_pair(&mut c, 1, 2, x);
    assert_eq!(out, OobOutcome::Adopted { from_aux: true });
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v1.b1.c1.");
    // The pending aux record (b1) survived the overwrite.
    assert_eq!(c[1].aux_log().len(), 1);

    // Scheduled propagation brings B's regular copy to v1; replay applies
    // b1 (vv matches), then stops (aux vv is ahead by C's update).
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else { panic!() };
    assert_eq!(out.replayed, 1);
    assert!(out.aux_discarded.is_empty());
    assert_eq!(c[1].read_regular(x).unwrap().as_bytes(), b"v1.b1.");
    assert_eq!(c[1].read(x).unwrap().as_bytes(), b"v1.b1.c1.");
    assert_all_invariants(&c);
}

#[test]
fn counters_stay_zero_in_clean_runs() {
    let mut c = cluster(4, 100);
    for round in 0..5 {
        for (i, replica) in c.iter_mut().enumerate() {
            let x = ItemId((round * 4 + i) as u32);
            replica.update(x, UpdateOp::set(vec![i as u8])).unwrap();
        }
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    pull_pair(&mut c, i, j);
                }
            }
        }
    }
    for r in &c {
        assert_eq!(r.counters().equal_receipts, 0);
        assert_eq!(r.counters().stale_receipts, 0);
        assert_eq!(r.costs().conflicts_detected, 0);
    }
    assert_identical(&c);
    assert_all_invariants(&c);
}

#[test]
fn log_vector_stays_bounded_under_heavy_updates() {
    let mut c = cluster(2, 8);
    for i in 0..1000u32 {
        c[0].update(ItemId(i % 8), UpdateOp::set(vec![(i % 251) as u8])).unwrap();
    }
    assert!(c[0].log().total_len() <= 8);
    pull_pair(&mut c, 1, 0);
    assert!(c[1].log().total_len() <= 2 * 8);
    assert_identical(&c);
    assert_all_invariants(&c);
}

#[test]
fn lww_resolution_re_syncs_cleanly_with_third_node() {
    // Regression for the resolve_lww / DBVV bookkeeping interaction: a
    // last-writer-wins resolution is logged as a fresh local update whose
    // IVV dominates both parents, so re-syncing with a third node (and
    // back with the losing writer) must converge with DBVV == Σ IVV at
    // every step.
    let mut c: Vec<Replica> = (0..3)
        .map(|i| Replica::with_policy(NodeId::from_index(i), 3, 4, ConflictPolicy::ResolveLww))
        .collect();
    for r in &mut c {
        r.set_paranoid(true); // per-step invariant audits throughout
    }
    let x = ItemId(0);
    c[0].update(x, UpdateOp::set(&b"from-a"[..])).unwrap();
    c[1].update(x, UpdateOp::set(&b"from-b"[..])).unwrap();

    // B pulls from A: the copies are concurrent, and B's policy resolves.
    pull_pair(&mut c, 1, 0);
    assert_eq!(c[1].counters().lww_resolutions, 1);
    // The resolution strictly dominates both parents.
    assert_eq!(c[1].item_ivv(x).unwrap().compare(c[0].item_ivv(x).unwrap()), VvOrd::Dominates);
    let resolved = c[1].read_regular(x).unwrap().as_bytes().to_vec();

    // A third node syncs from the resolver and adopts the resolved copy.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 2, 1) else { panic!("expected copy") };
    assert_eq!(out.copied, vec![x]);
    assert_eq!(out.conflicts, 0);
    assert_eq!(c[2].read_regular(x).unwrap().as_bytes(), resolved);

    // Against the losing writer the third node is already current.
    assert!(matches!(pull_pair(&mut c, 2, 0), PullOutcome::UpToDate));

    // The losing writer re-syncs: its copy is strictly dominated, so this
    // is a plain adoption — no new conflict, no second resolution.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 0, 2) else { panic!("expected copy") };
    assert_eq!(out.copied, vec![x]);
    assert_eq!(out.conflicts, 0);
    assert_eq!(c[0].counters().lww_resolutions, 0);

    assert_identical(&c);
    assert_all_invariants(&c);
    for r in &c {
        let report = r.audit();
        assert!(report.is_clean(), "{}", report.summary());
    }
}

#[test]
fn refused_conflicts_reship_until_resolved() {
    // Regression for refused-update handling in accept_propagation: a
    // report-policy recipient strips the refused item's records from the
    // shipped tails, so its DBVV never advances past the refused update and
    // the source keeps re-shipping it on every pull until the conflict is
    // resolved out of band (here: via a third, LWW-resolving node).
    let mut c = vec![
        Replica::with_policy(NodeId(0), 3, 4, ConflictPolicy::Report),
        Replica::with_policy(NodeId(1), 3, 4, ConflictPolicy::Report),
        Replica::with_policy(NodeId(2), 3, 4, ConflictPolicy::ResolveLww),
    ];
    for r in &mut c {
        r.set_paranoid(true);
    }
    let x = ItemId(0);
    c[0].update(x, UpdateOp::set(&b"a."[..])).unwrap();
    c[1].update(x, UpdateOp::set(&b"b."[..])).unwrap();

    // Every pull re-ships the refused item and re-declares the conflict.
    for round in 1..=3u64 {
        let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 0) else {
            panic!("round {round}: refused update must keep the replicas unequal")
        };
        assert_eq!(out.conflicts, 1, "round {round}");
        assert!(out.copied.is_empty(), "round {round}");
        assert_eq!(c[1].costs().conflicts_detected, round);
    }
    // B's DBVV never advanced past A's refused update, no record for it
    // entered B's log, and B's own copy is untouched.
    assert_eq!(c[1].dbvv().get(NodeId(0)), 0);
    assert_eq!(c[1].log().component_len(NodeId(0)), 0);
    assert_eq!(c[1].read_regular(x).unwrap().as_bytes(), b"b.");

    // Resolution via the third node: it adopts A's copy, then pulls B's
    // concurrent copy and resolves last-writer-wins.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 2, 0) else { panic!("expected copy") };
    assert_eq!(out.copied, vec![x]);
    pull_pair(&mut c, 2, 1);
    assert_eq!(c[2].counters().lww_resolutions, 1);

    // The resolved copy dominates both sides, so it flows back to the
    // conflicted replicas as plain adoptions and the stall clears.
    let PullOutcome::Propagated(out) = pull_pair(&mut c, 1, 2) else { panic!("expected copy") };
    assert_eq!(out.copied, vec![x]);
    assert_eq!(out.conflicts, 0);
    assert_eq!(c[1].dbvv().get(NodeId(0)), 1, "resolution finally covered A's refused update");
    pull_pair(&mut c, 0, 2);

    // Quiet afterwards: the formerly stalled pair is in sync.
    assert!(matches!(pull_pair(&mut c, 1, 0), PullOutcome::UpToDate));
    assert_identical(&c);
    assert_all_invariants(&c);
    for r in &c {
        let report = r.audit();
        assert!(report.is_clean(), "{}", report.summary());
    }
}
