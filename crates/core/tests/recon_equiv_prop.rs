//! Property: set reconciliation is observationally equivalent to the
//! whole-database pull it replaces.
//!
//! For an arbitrary divergence schedule — source writes, recipient
//! writes, source log compaction, an optional recipient crash/recovery —
//! a recipient synced by the digest-tree descent must end in exactly the
//! state its twin reaches through the O(database) whole pull: equal
//! model-checker fingerprints (store, log, DBVV, coverage floor), not
//! merely equal reads. This is the safety half of the cold-start ladder;
//! the cost half (the descent ships O(diff · log N), the whole pull
//! ships O(N)) is pinned by `tools/perf_report`'s cold-start gate.

use epidb_common::{ItemId, NodeId};
use epidb_core::{Engine, LocalTransport, PullOutcome, Replica};
use epidb_store::UpdateOp;
use proptest::prelude::*;

const N_NODES: usize = 2;
const N_ITEMS: usize = 16;

/// One step of the divergence phase, applied after the shared-history
/// pull: drift on either side, or a compaction tightening the source's
/// log retention (what makes the recipient's coverage gap unservable).
#[derive(Clone, Debug)]
enum Op {
    SourceWrite { slot: usize, byte: u8, append: bool },
    RecipientWrite { slot: usize, byte: u8 },
    Compact { keep: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let source = (0..N_ITEMS, any::<u8>(), any::<bool>())
        .prop_map(|(slot, byte, append)| Op::SourceWrite { slot, byte, append });
    let recipient =
        (0..N_ITEMS, any::<u8>()).prop_map(|(slot, byte)| Op::RecipientWrite { slot, byte });
    let compact = (1usize..3).prop_map(|keep| Op::Compact { keep });
    prop::collection::vec(prop_oneof![4 => source, 2 => recipient, 1 => compact], 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn recon_sync_is_fingerprint_equal_to_whole_pull_sync(
        shared in 0usize..10,
        ops in arb_ops(),
        crash in any::<bool>(),
    ) {
        let mut source = Replica::new(NodeId(1), N_NODES, N_ITEMS);
        let mut recipient = Replica::new(NodeId(0), N_NODES, N_ITEMS);

        // Shared history: the source seeds some items and the recipient
        // absorbs them through an ordinary tail-covered pull.
        for i in 0..shared {
            let slot = (i * 5) % N_ITEMS;
            source
                .update(ItemId(slot as u32), UpdateOp::set(vec![i as u8; 8]))
                .unwrap();
        }
        if shared > 0 {
            Engine::pull(&mut recipient, &mut LocalTransport::new(&mut source)).unwrap();
        }

        // Divergence: both sides drift; the source may compact its log
        // out from under the recipient's coverage.
        for op in &ops {
            match *op {
                Op::SourceWrite { slot, byte, append } => {
                    let op = if append {
                        UpdateOp::append(vec![byte])
                    } else {
                        UpdateOp::set(vec![byte; 4])
                    };
                    source.update(ItemId(slot as u32), op).unwrap();
                }
                Op::RecipientWrite { slot, byte } => {
                    recipient
                        .update(ItemId(slot as u32), UpdateOp::set(vec![byte, 0xAA]))
                        .unwrap();
                }
                Op::Compact { keep } => source.set_log_retention(keep),
            }
        }

        // Optional recipient crash: recover from its own durable image
        // before syncing (the cold-start shape).
        if crash {
            recipient = Replica::mc_restore(&recipient.mc_snapshot()).unwrap();
        }

        // Twins: same starting state, two sync paths.
        let mut by_recon = recipient.clone();
        let mut by_whole = recipient;
        let mut source_twin = source.clone();

        let out = Engine::pull_recon(&mut by_recon, &mut LocalTransport::new(&mut source)).unwrap();
        if !ops.is_empty() {
            prop_assert!(matches!(
                out,
                PullOutcome::Propagated(_) | PullOutcome::UpToDate
            ));
        }

        let reply = source_twin.serve_full_pull().unwrap();
        by_whole.apply_recon_items(NodeId(1), reply.items, &reply.floor).unwrap();

        prop_assert_eq!(
            by_recon.fingerprint(),
            by_whole.fingerprint(),
            "reconciliation reached a different durable state than the whole pull"
        );
        by_recon.check_invariants().unwrap();
        by_whole.check_invariants().unwrap();
    }
}
