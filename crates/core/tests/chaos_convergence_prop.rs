//! Property test: anti-entropy under arbitrary chaos converges.
//!
//! For an arbitrary fault plan (loss up to 50% per leg, duplication,
//! reordering, corruption, resets, healing partitions) and an arbitrary
//! single-writer update schedule, a cluster of paranoid replicas driven
//! by chaotic retried pulls and then healed must end with identical
//! stores on every node — equal DBVVs, equal values, no conflicts, all
//! invariants intact.

use epidb_common::{ItemId, NodeId};
use epidb_core::{
    ChaosLink, Engine, FaultPlan, LocalTransport, PartitionWindow, Replica, RetryPolicy,
};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0u32..=50, 0u32..=50),
        (0u32..=30, 0u32..=30, 0u32..=30, 0u32..=20),
        prop::collection::vec((0u64..30, 1u64..8), 0..3),
    )
        .prop_map(|((req, resp), (dup, reorder, corrupt, reset), windows)| FaultPlan {
            request_loss: req as f64 / 100.0,
            response_loss: resp as f64 / 100.0,
            duplication: dup as f64 / 100.0,
            reorder: reorder as f64 / 100.0,
            corruption: corrupt as f64 / 100.0,
            reset: reset as f64 / 100.0,
            latency: std::time::Duration::ZERO,
            partitions: windows
                .into_iter()
                .map(|(from, len)| PartitionWindow { from, until: from + len })
                .collect(),
        })
}

/// One step of the schedule: an update at a node (single-writer: node `w`
/// writes only items with `item % n_nodes == w`) or a chaotic pull.
#[derive(Clone, Debug)]
enum Step {
    Update { writer: usize, slot: usize, byte: u8, large: bool },
    Pull { recipient: usize, source_offset: usize, delta: bool },
}

fn arb_steps(n_nodes: usize) -> impl Strategy<Value = Vec<Step>> {
    let update = (0..n_nodes, 0usize..4, any::<u8>(), any::<bool>())
        .prop_map(|(writer, slot, byte, large)| Step::Update { writer, slot, byte, large });
    let pull =
        (0..n_nodes, 1..n_nodes, any::<bool>()).prop_map(|(recipient, source_offset, delta)| {
            Step::Pull { recipient, source_offset, delta }
        });
    prop::collection::vec(prop_oneof![update, pull], 1..40)
}

fn pull_pair(
    replicas: &mut [Replica],
    recipient: usize,
    source: usize,
    link: &mut ChaosLink,
    policy: &RetryPolicy,
    delta: bool,
) -> epidb_common::Result<()> {
    assert_ne!(recipient, source);
    let (lo, hi) = replicas.split_at_mut(recipient.max(source));
    let (r, s) = if recipient < source {
        (&mut lo[recipient], &mut hi[0])
    } else {
        (&mut hi[0], &mut lo[source])
    };
    let mut transport = epidb_core::ChaosTransport::new(LocalTransport::new(s), link);
    if delta {
        Engine::pull_delta_with(r, &mut transport, policy).map(|_| ())
    } else {
        Engine::pull_with(r, &mut transport, policy).map(|_| ())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn chaotic_schedules_converge(
        seed in any::<u64>(),
        plan in arb_plan(),
        steps in arb_steps(3),
    ) {
        let n_nodes = 3;
        let n_items = 12;
        let mut replicas: Vec<Replica> = (0..n_nodes)
            .map(|i| {
                let mut r = Replica::new(NodeId::from_index(i), n_nodes, n_items);
                r.enable_delta(1 << 18);
                r.set_paranoid(true);
                r
            })
            .collect();
        let mut links: Vec<Vec<Option<ChaosLink>>> = (0..n_nodes)
            .map(|r| {
                (0..n_nodes)
                    .map(|s| {
                        (r != s).then(|| {
                            ChaosLink::new(
                                seed.wrapping_add((r * n_nodes + s) as u64),
                                plan.clone(),
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        let policy = RetryPolicy::attempts(64);
        let mut expected = vec![Vec::<u8>::new(); n_items];

        for step in &steps {
            match *step {
                Step::Update { writer, slot, byte, large } => {
                    let item = writer + slot * n_nodes;
                    if item < n_items {
                        let len = if large { 192 } else { 5 };
                        let value = vec![byte; len];
                        expected[item] = value.clone();
                        replicas[writer]
                            .update(ItemId(item as u32), UpdateOp::set(value))
                            .expect("update");
                    }
                }
                Step::Pull { recipient, source_offset, delta } => {
                    let source = (recipient + source_offset) % n_nodes;
                    let link = links[recipient][source].as_mut().expect("distinct");
                    // Chaotic pulls may exhaust their retries; the healed
                    // sweep below must still converge.
                    let _ = pull_pair(&mut replicas, recipient, source, link, &policy, delta);
                }
            }
        }

        // Heal every link, then one full mesh of pulls per direction.
        for row in &mut links {
            for link in row.iter_mut().flatten() {
                link.set_plan(FaultPlan::none());
            }
        }
        for (r, row) in links.iter_mut().enumerate() {
            for (s, link) in row.iter_mut().enumerate() {
                let Some(link) = link.as_mut() else { continue };
                pull_pair(&mut replicas, r, s, link, &policy, true).expect("healed pull failed");
            }
        }

        // Identical stores everywhere, no conflicts, invariants intact.
        let reference = replicas[0].dbvv().clone();
        for r in &replicas {
            prop_assert_eq!(r.dbvv().compare(&reference), VvOrd::Equal);
            prop_assert_eq!(r.costs().conflicts_detected, 0);
            r.check_invariants().expect("invariants");
            for (item, want) in expected.iter().enumerate() {
                let got = r.read_regular(ItemId(item as u32)).expect("item");
                prop_assert_eq!(got.as_bytes(), &want[..]);
            }
        }
    }
}
