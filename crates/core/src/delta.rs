//! Delta (update-record) propagation — the paper's other shipping mode.
//!
//! §2: "Update propagation can be done by either copying the entire data
//! item, or by obtaining and applying log records for missing updates. …
//! The ideas described in this paper are applicable for both these
//! methods. We chose whole data copying as the presentation context."
//!
//! This module implements the other choice, on top of the same DBVV/log
//! machinery. Because the source does not know the recipient's per-item
//! state up front, the exchange gains one round trip:
//!
//! 1. recipient → source: DBVV (identical to the whole-item mode; the
//!    constant-time "you are current" fast path is unchanged);
//! 2. source → recipient: the tail vector plus an **offer** — the ids and
//!    IVVs of the items the recipient misses, *without values*;
//! 3. recipient → source: the subset it actually wants, each with the
//!    recipient's current IVV;
//! 4. source → recipient: per item, either the contiguous **operation
//!    chain** from the recipient's IVV to the source's (when the source's
//!    [`OpCache`](crate::opcache::OpCache) still holds it) or the whole
//!    value (fallback — replicas without a cache interoperate seamlessly).
//!
//! Once data is applied, everything else (DBVV rule 3, tail appending,
//! conflict handling, intra-node propagation) is exactly the whole-item
//! protocol, so the §2.1 correctness criteria carry over unchanged.

use std::collections::BTreeSet;

use epidb_common::costs::wire;
use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{ConflictEvent, ConflictSite, ItemId, NodeId, Result};
use epidb_log::LogRecord;
use epidb_vv::{DbVersionVector, VersionVector, VvOrd};

use crate::engine::{Engine, LocalTransport};
use crate::opcache::CachedOp;
use crate::policy::ConflictPolicy;
use crate::propagation::{AcceptOutcome, PullOutcome, TailSelection};
use crate::replica::Replica;
use crate::ShippedItem;

/// Message 2: what the recipient misses — tails plus per-item IVVs, no
/// values.
#[derive(Clone, Debug)]
pub struct DeltaOffer {
    /// The tail vector `D` (as in the whole-item mode).
    pub tails: Vec<Vec<LogRecord>>,
    /// `(item, source IVV)` for every item referenced by `D`.
    pub offers: Vec<(ItemId, VersionVector)>,
}

impl DeltaOffer {
    /// Control bytes of the offer message body (each offered IVV sizes
    /// itself).
    pub fn control_bytes(&self) -> u64 {
        self.tails.iter().map(Vec::len).sum::<usize>() as u64 * wire::LOG_RECORD
            + self.offers.iter().map(|(_, ivv)| wire::ITEM_ID + wire::vv(ivv.len())).sum::<u64>()
    }
}

/// Message 2 envelope.
#[derive(Clone, Debug)]
pub enum DeltaOfferResponse {
    /// Recipient's DBVV dominates or equals — nothing to do (O(n)).
    YouAreCurrent,
    /// Items on offer.
    Offer(DeltaOffer),
    /// The source's retention-pruned log no longer covers the
    /// recipient's gap; the recipient must degrade to reconciliation.
    NeedRecon,
}

impl DeltaOfferResponse {
    /// Control bytes of the response message body.
    pub fn control_bytes(&self) -> u64 {
        match self {
            DeltaOfferResponse::YouAreCurrent | DeltaOfferResponse::NeedRecon => 0,
            DeltaOfferResponse::Offer(o) => o.control_bytes(),
        }
    }
}

/// Message 3: the items the recipient wants, with its current IVVs.
#[derive(Clone, Debug, Default)]
pub struct DeltaRequest {
    /// `(item, recipient IVV)` pairs.
    pub wants: Vec<(ItemId, VersionVector)>,
}

impl DeltaRequest {
    /// Control bytes of the request message body.
    pub fn control_bytes(&self) -> u64 {
        self.wants.iter().map(|(_, ivv)| wire::ITEM_ID + wire::vv(ivv.len())).sum()
    }
}

/// Message 4: one item's data, as an operation chain or a whole value.
#[derive(Clone, Debug)]
pub enum DeltaItem {
    /// The contiguous operation chain from the recipient's IVV to
    /// `final_ivv`.
    Ops {
        /// The item.
        item: ItemId,
        /// The chain, oldest first; `ops[i]`'s post-state is
        /// `ops[i+1].pre_vv`, the last op's post-state is `final_ivv`.
        ops: Vec<CachedOp>,
        /// The source's current IVV for the item.
        final_ivv: VersionVector,
    },
    /// Whole-item fallback (cache miss at the source).
    Whole(ShippedItem),
}

impl DeltaItem {
    fn control_bytes(&self) -> u64 {
        match self {
            DeltaItem::Ops { ops, final_ivv, .. } => {
                let n = final_ivv.len();
                wire::ITEM_ID
                    + wire::vv(n)
                    + ops.len() as u64 * (wire::vv(n) + 9/* op tag + length */)
            }
            DeltaItem::Whole(s) => s.control_bytes(),
        }
    }

    fn payload_bytes(&self) -> u64 {
        match self {
            DeltaItem::Ops { ops, .. } => ops.iter().map(|c| c.op.payload_len() as u64).sum(),
            DeltaItem::Whole(s) => s.value.len() as u64,
        }
    }
}

/// Message 4 body.
#[derive(Clone, Debug, Default)]
pub struct DeltaPayload {
    /// One entry per requested item.
    pub items: Vec<DeltaItem>,
}

impl DeltaPayload {
    /// Control bytes of the data message body.
    pub fn control_bytes(&self) -> u64 {
        self.items.iter().map(DeltaItem::control_bytes).sum()
    }

    /// Payload bytes of the data message body.
    pub fn payload_bytes(&self) -> u64 {
        self.items.iter().map(DeltaItem::payload_bytes).sum()
    }

    /// How many items travel as operation chains.
    pub fn ops_items(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, DeltaItem::Ops { .. })).count()
    }
}

/// The recipient's evaluation of an offer, carried into the apply step.
/// `refused` is a `BTreeSet` so anything derived from it (journaled
/// mutations, state fingerprints) sees a deterministic order.
#[derive(Clone, Debug, Default)]
pub struct OfferEvaluation {
    pub(crate) tails: Vec<Vec<LogRecord>>,
    pub(crate) refused: BTreeSet<ItemId>,
    pub(crate) conflicts: usize,
}

impl OfferEvaluation {
    /// Reconstruct an evaluation from its journaled parts (recovery
    /// replay). Conflicts are ephemeral and start at zero.
    pub(crate) fn from_parts(tails: Vec<Vec<LogRecord>>, refused: Vec<ItemId>) -> OfferEvaluation {
        OfferEvaluation { tails, refused: refused.into_iter().collect(), conflicts: 0 }
    }
}

impl Replica {
    /// Step 2 at the source: like
    /// [`prepare_propagation`](Replica::prepare_propagation) but offering
    /// item IVVs instead of shipping values.
    pub fn prepare_delta_offer(&mut self, recipient_dbvv: &DbVersionVector) -> DeltaOfferResponse {
        let (tails, s_items) = match self.select_tails(recipient_dbvv) {
            TailSelection::Current => return DeltaOfferResponse::YouAreCurrent,
            TailSelection::Uncovered => return DeltaOfferResponse::NeedRecon,
            TailSelection::Tails(tails, s_items) => (tails, s_items),
        };
        // Offers carry only (item, IVV) — values are never touched here, so
        // an offer frame costs one control-sized allocation however large
        // the items are.
        let mut offers = Vec::with_capacity(s_items.len());
        for &x in &s_items {
            let ivv = self.store.get(x).expect("logged item exists").ivv.clone();
            offers.push((x, ivv));
        }

        let shipped = offers.len() as u64;
        self.trace_record(TraceStep::SendPropagation, None, None, OrdTag::NoCompare, shipped);
        self.post_step_audit("send-propagation");
        DeltaOfferResponse::Offer(DeltaOffer { tails, offers })
    }

    /// Step 3 at the recipient: compare offered IVVs with local state,
    /// declare conflicts, and build the want-list.
    pub fn evaluate_delta_offer(
        &mut self,
        source: NodeId,
        offer: DeltaOffer,
    ) -> Result<(DeltaRequest, OfferEvaluation)> {
        let mut request = DeltaRequest::default();
        // One exact-sized allocation up front; the want-list can only be a
        // subset of the offers.
        request.wants.reserve_exact(offer.offers.len());
        let mut eval = OfferEvaluation { tails: offer.tails, ..OfferEvaluation::default() };
        for (x, remote_ivv) in offer.offers {
            self.check_item(x)?;
            let mut cmps = 0;
            let ord = {
                let local_ivv = &self.store.get(x)?.ivv;
                remote_ivv.compare_counted(local_ivv, &mut cmps)
            };
            self.costs.vv_entry_cmps += cmps;
            match ord {
                // The IVV is cloned only when the item actually goes on the
                // want-list (it travels in message 3).
                VvOrd::Dominates => request.wants.push((x, self.store.get(x)?.ivv.clone())),
                VvOrd::Equal => {
                    self.counters.equal_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                }
                VvOrd::DominatedBy => {
                    self.counters.stale_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                }
                VvOrd::Concurrent => {
                    // In delta mode the LWW policy still needs the remote
                    // value, so the item is requested like a dominating
                    // one; under Report it is refused and stripped.
                    //
                    // Each conflict is counted exactly once. Under Report
                    // the refused item never reaches `accept_propagation`,
                    // so this is the only place that can count it. Under
                    // ResolveLww the wanted item comes back as a Whole
                    // fallback (no op chain starts at a concurrent IVV) and
                    // `accept_propagation` re-detects, counts, and resolves
                    // the same pair — counting here too double-counted it.
                    match self.policy {
                        ConflictPolicy::Report => {
                            eval.conflicts += 1;
                            let offending = {
                                let local_ivv = &self.store.get(x)?.ivv;
                                remote_ivv.offending_pair(local_ivv)
                            };
                            self.report_conflict(ConflictEvent {
                                item: x,
                                detected_at: self.id,
                                peer: Some(source),
                                site: ConflictSite::Propagation,
                                offending,
                            });
                            eval.refused.insert(x);
                        }
                        ConflictPolicy::ResolveLww => {
                            request.wants.push((x, self.store.get(x)?.ivv.clone()))
                        }
                    }
                }
            }
        }
        let wanted = request.wants.len() as u64;
        self.trace_record(TraceStep::DeltaOffer, None, Some(source), OrdTag::NoCompare, wanted);
        Ok((request, eval))
    }

    /// Step 4 at the source: answer each want with the operation chain
    /// when the cache still holds it, else the whole value.
    ///
    /// The answer is a *prefix* of the wants when the replica's delta
    /// frame budget ([`set_delta_frame_budget`](Replica::set_delta_frame_budget))
    /// would be exceeded — at least one item is always served, and the
    /// initiator re-requests the unserved suffix in its next fetch frame,
    /// so a bounded frame size costs extra round trips, never progress.
    pub fn serve_delta_request(&mut self, request: &DeltaRequest) -> Result<DeltaPayload> {
        let mut payload = DeltaPayload::default();
        // Exact-sized up front (the frame budget can only shorten it).
        payload.items.reserve_exact(request.wants.len());
        let mut frame_bytes = 0u64;
        for (x, from_vv) in &request.wants {
            if !payload.items.is_empty() && frame_bytes >= self.delta_frame_budget {
                break;
            }
            self.check_item(*x)?;
            let value_len = self.store.get(*x)?.value.len();
            // Ship the chain only when it is actually cheaper than the
            // whole value (e.g. a chain of full overwrites is not).
            let chain = self
                .op_cache
                .chain_from_cloned(*x, from_vv)
                .filter(|ops| ops.iter().map(|c| c.op.payload_len()).sum::<usize>() <= value_len);
            if let Some(ops) = chain {
                self.costs.log_records_examined += ops.len() as u64;
                let final_ivv = self.store.get(*x)?.ivv.clone();
                payload.items.push(DeltaItem::Ops { item: *x, ops, final_ivv });
            } else {
                self.costs.items_scanned += 1;
                // Whole-value fallback ships a refcounted view, not a copy.
                let it = self.store.get_mut(*x)?;
                payload.items.push(DeltaItem::Whole(ShippedItem {
                    item: *x,
                    ivv: it.ivv.clone(),
                    value: it.value.share(),
                }));
            }
            let added = payload.items.last().expect("just pushed");
            frame_bytes += added.control_bytes() + added.payload_bytes();
        }
        Ok(payload)
    }

    /// Final step at the recipient: apply the data, then append the
    /// (surviving) tails and run intra-node propagation — identical
    /// semantics to `AcceptPropagation` from here on.
    pub fn apply_delta(
        &mut self,
        source: NodeId,
        payload: DeltaPayload,
        eval: OfferEvaluation,
    ) -> Result<AcceptOutcome> {
        self.journal_mutation(|| {
            let mut refused: Vec<ItemId> = eval.refused.iter().copied().collect();
            refused.sort();
            crate::journal::Mutation::Delta {
                from: source,
                payload: payload.clone(),
                tails: eval.tails.clone(),
                refused,
            }
        });
        let mut outcome = AcceptOutcome { conflicts: eval.conflicts, ..AcceptOutcome::default() };
        let mut refused = eval.refused;

        for item in payload.items {
            match item {
                DeltaItem::Whole(shipped) => {
                    let x = shipped.item;
                    // Sink suspended: this delta exchange already journaled
                    // one record; the inner whole-item accept must not add
                    // a second.
                    let sub = self.with_sink_suspended(|r| {
                        let n = r.n_nodes();
                        r.accept_propagation(
                            source,
                            crate::PropagationPayload {
                                tails: vec![Vec::new(); n],
                                items: vec![shipped],
                            },
                        )
                    })?;
                    outcome.conflicts += sub.conflicts;
                    outcome.replayed += sub.replayed;
                    outcome.aux_discarded.extend(sub.aux_discarded);
                    if sub.copied.contains(&x) {
                        outcome.copied.push(x);
                    } else if sub.conflicts > 0 {
                        refused.insert(x);
                    }
                }
                DeltaItem::Ops { item: x, ops, final_ivv } => {
                    self.check_item(x)?;
                    // Chain must start exactly at the local state and end
                    // strictly ahead of it; anything else means the states
                    // raced between messages 3 and 4 — fall back by
                    // refusing now, a later pull repairs it.
                    let chain_ok = {
                        let local_ivv = &self.store.get(x)?.ivv;
                        ops.first().map(|c| &c.pre_vv == local_ivv).unwrap_or(false)
                            && final_ivv.compare(local_ivv) == VvOrd::Dominates
                    };
                    if !chain_ok {
                        self.counters.stale_receipts += 1;
                        self.costs.redundant_deliveries += 1;
                        refused.insert(x);
                        continue;
                    }
                    let chain_len = ops.len() as u64;
                    let record_cache = self.op_cache.is_enabled();
                    let prev_ivv = {
                        let stored = self.store.get_mut(x)?;
                        for c in &ops {
                            c.op.apply(&mut stored.value);
                        }
                        std::mem::replace(&mut stored.ivv, final_ivv)
                    };
                    if record_cache {
                        // Extend the local chain so this replica can relay
                        // deltas onward: op i's post-state is op i+1's
                        // pre-state.
                        for c in ops {
                            self.op_cache.record(x, c.pre_vv, c.op);
                        }
                    }
                    {
                        let cur_ivv = &self.store.get(x)?.ivv;
                        self.dbvv.absorb_item_copy(&prev_ivv, cur_ivv)?;
                    }
                    self.costs.items_copied += 1;
                    outcome.copied.push(x);
                    self.trace_record(
                        TraceStep::DeltaOps,
                        Some(x),
                        Some(source),
                        OrdTag::Dominates,
                        chain_len,
                    );
                }
            }
        }

        // Append surviving tails, as AcceptPropagation does.
        for (k, tail) in eval.tails.iter().enumerate() {
            let k = NodeId::from_index(k);
            for rec in tail {
                if refused.contains(&rec.item) {
                    continue;
                }
                self.log.add_record(k, *rec);
                self.costs.log_records_examined += 1;
            }
            self.enforce_log_retention(k);
        }

        let intra = self.intra_node_propagation(&outcome.copied);
        outcome.replayed += intra.replayed;
        outcome.aux_discarded.extend(intra.discarded);
        outcome.conflicts += intra.conflicts;
        self.post_step_audit("apply-delta");
        Ok(outcome)
    }
}

/// One complete delta-mode pull: `recipient` from `source`, with full
/// message/byte accounting across the four messages.
///
/// A thin wrapper over [`Engine::pull_delta`] with the in-process
/// [`LocalTransport`] — the same dispatch path every other runtime uses.
pub fn pull_delta(recipient: &mut Replica, source: &mut Replica) -> Result<PullOutcome> {
    debug_assert_eq!(recipient.n_nodes(), source.n_nodes());
    Engine::pull_delta(recipient, &mut LocalTransport::new(source))
}
