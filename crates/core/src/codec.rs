//! Binary wire codec for the protocol's messages and state.
//!
//! A compact, versioned, little-endian format. The byte-accounting
//! constants in `epidb_common::costs::wire` model this encoding; the codec
//! makes them real: what `Costs` charges is (up to small rounding in the
//! envelope) what these functions produce.
//!
//! The same primitives back the snapshot (persistence) format in
//! [`crate::snapshot`] and the TCP framing in `epidb-net`.

use std::ops::Range;

use bytes::Bytes;
use epidb_common::{Error, ItemId, NodeId, Result, RouteTarget, ShardId};
use epidb_log::LogRecord;
use epidb_store::UpdateOp;
use epidb_vv::{DbVersionVector, VersionVector};

use crate::delta::{DeltaItem, DeltaOffer, DeltaOfferResponse, DeltaPayload, DeltaRequest};
use crate::engine::{ProtocolRequest, ProtocolResponse};
use crate::messages::{
    FullPullReply, OobReply, PropagationPayload, PropagationResponse, ReconItem, ReconReply,
    ShippedItem,
};
use crate::opcache::CachedOp;

/// Format version byte embedded in framed messages and snapshots.
pub const CODEC_VERSION: u8 = 1;

/// Hard upper bound on a framed message (length prefix + checked header +
/// body), shared by every transport. Both ends enforce it: a sender must
/// refuse to emit a larger frame ([`Error::FrameTooLarge`], not
/// retryable — resending the same oversized message can never succeed),
/// and a receiver drops anything whose length prefix exceeds it before
/// allocating a buffer for it.
pub const MAX_FRAME: u32 = 64 << 20;

/// Sender-side frame-size check: `body_len` is the encoded body (checked
/// header included); errors with the typed, non-retryable
/// [`Error::FrameTooLarge`] when the frame would exceed [`MAX_FRAME`].
/// The arithmetic is in `u64`, so bodies larger than `u32::MAX` are
/// rejected rather than silently truncated by a cast.
pub fn check_frame_len(body_len: usize) -> Result<u32> {
    let len = body_len as u64;
    if len > MAX_FRAME as u64 {
        return Err(Error::FrameTooLarge { len, limit: MAX_FRAME as u64 });
    }
    Ok(len as u32)
}

// --- frame integrity (CRC32) ------------------------------------------------

/// IEEE CRC32 lookup table (reflected polynomial 0xEDB88320), built at
/// compile time — no external crate, no runtime init.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming IEEE CRC32 digest. Feed it the encoded frame in as many
/// slices as the writer holds ([`Writer::chunks`]): the checksum covers
/// control runs *and* shared value segments without assembling them — the
/// integrity check rides the same vectored path as the bytes themselves.
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh digest.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Absorb a slice.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

/// IEEE CRC32 of a contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Values at or below this size are copied inline into the control buffer
/// when encoded with [`Writer::value`]; larger ones travel as shared,
/// refcounted segments. Inlining tiny values is cheaper than the
/// per-segment bookkeeping (and the iovec entry) they would otherwise
/// cost; large values must never be memcpy'd.
pub const INLINE_VALUE_MAX: usize = 128;

/// One stretch of encoded output: either a range of the control buffer or
/// a shared value segment.
enum Chunk {
    Ctl(Range<usize>),
    Val(Bytes),
}

/// Growable output buffer with primitive writers.
///
/// The writer is *segment-aware*: primitive fields accumulate in a
/// reusable control buffer, while large values appended
/// with [`Writer::value`] are kept as refcounted [`Bytes`] segments
/// instead of being copied in. The encoded message is the in-order
/// concatenation of both, exposed either as contiguous bytes
/// ([`Writer::into_bytes`], which only copies when value segments exist)
/// or as a sequence of slices ([`Writer::chunks`]) that a transport can
/// hand to a single vectored write — the zero-copy path from store to
/// socket.
///
/// Writers are meant to be reused: [`Writer::clear`] drops the contents
/// but keeps the control allocation, so a long-lived connection encodes
/// every frame into the same buffer.
#[derive(Default)]
pub struct Writer {
    /// Control bytes live in `ctl[..pos]`. The vector is kept at full
    /// length (equal to its capacity) so every primitive write is a plain
    /// slice store behind one length check — no per-call `reserve`, no
    /// `memcpy` dispatch for the fixed-width fields. This is what lets a
    /// thousand-item frame encode at copy speed.
    ctl: Vec<u8>,
    /// One past the last control byte written.
    pos: usize,
    chunks: Vec<Chunk>,
    /// Start of the control run not yet recorded in `chunks`.
    mark: usize,
    /// Total bytes held in `Chunk::Val` segments.
    val_bytes: usize,
}

impl Writer {
    /// Fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Fresh writer with `capacity` control bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer { ctl: vec![0; capacity], ..Writer::default() }
    }

    /// Drop the contents but keep the control allocation, for reuse.
    pub fn clear(&mut self) {
        self.pos = 0;
        self.chunks.clear();
        self.mark = 0;
        self.val_bytes = 0;
    }

    /// Reserve room for at least `additional` more control bytes.
    pub fn reserve(&mut self, additional: usize) {
        if self.pos + additional > self.ctl.len() {
            self.grow(additional);
        }
    }

    #[cold]
    fn grow(&mut self, need: usize) {
        let target = (self.pos + need).max(self.ctl.len() * 2).max(64);
        self.ctl.resize(target, 0);
    }

    /// Claim `need` control bytes, growing if necessary; returns the
    /// write offset. The single branch all primitive writers share.
    #[inline]
    fn claim(&mut self, need: usize) -> usize {
        if self.pos + need > self.ctl.len() {
            self.grow(need);
        }
        let p = self.pos;
        self.pos += need;
        p
    }

    /// Finish and take the encoded bytes as one contiguous buffer.
    /// Zero-copy when no value segments were appended (the common case for
    /// requests and snapshots); otherwise assembles once.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.chunks.is_empty() {
            self.ctl.truncate(self.pos);
            return self.ctl;
        }
        let mut out = Vec::with_capacity(self.len());
        for chunk in &self.chunks {
            match chunk {
                Chunk::Ctl(r) => out.extend_from_slice(&self.ctl[r.clone()]),
                Chunk::Val(b) => out.extend_from_slice(b),
            }
        }
        out.extend_from_slice(&self.ctl[self.mark..self.pos]);
        out
    }

    /// The encoded message as in-order slices (control runs interleaved
    /// with shared value segments), for vectored writes.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        let tail = &self.ctl[self.mark..self.pos];
        self.chunks
            .iter()
            .map(move |chunk| match chunk {
                Chunk::Ctl(r) => &self.ctl[r.clone()],
                Chunk::Val(b) => &b[..],
            })
            .chain(std::iter::once(tail).filter(|s| !s.is_empty()))
    }

    /// Bytes written so far (control and value segments).
    pub fn len(&self) -> usize {
        self.pos + self.val_bytes
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True before the writer's first use (no control buffer yet).
    fn is_fresh(&self) -> bool {
        self.ctl.is_empty()
    }

    /// Write a raw byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        let p = self.claim(1);
        self.ctl[p] = v;
    }

    /// Write a little-endian u16.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        let p = self.claim(2);
        self.ctl[p..p + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        let p = self.claim(4);
        self.ctl[p..p + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        let p = self.claim(8);
        self.ctl[p..p + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a run of little-endian u64s with one length check — the bulk
    /// path behind version-vector encoding.
    #[inline]
    pub fn u64_slice(&mut self, vals: &[u64]) {
        let n = vals.len() * 8;
        let p = self.claim(n);
        for (d, v) in self.ctl[p..p + n].chunks_exact_mut(8).zip(vals) {
            d.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Write a length-prefixed byte string (always copied into the control
    /// buffer; use [`Writer::value`] for payload bytes).
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) {
        let p = self.claim(4 + v.len());
        self.ctl[p..p + 4].copy_from_slice(&(v.len() as u32).to_le_bytes());
        self.ctl[p + 4..p + 4 + v.len()].copy_from_slice(v);
    }

    /// Append pre-serialized wire bytes verbatim.
    #[inline]
    pub fn raw(&mut self, bytes: &[u8]) {
        let p = self.claim(bytes.len());
        self.ctl[p..p + bytes.len()].copy_from_slice(bytes);
    }

    /// IEEE CRC32 over the encoded message, computed by streaming the
    /// in-order chunks (control runs and shared value segments) through
    /// the digest — no assembly, no copies. Equal to `crc32(&into_bytes())`.
    pub fn crc32(&self) -> u32 {
        let mut c = Crc32::new();
        for chunk in self.chunks() {
            c.update(chunk);
        }
        c.finish()
    }

    /// Write a length-prefixed value payload. Small values are inlined
    /// into the control buffer (coalescing a many-small-item frame into a
    /// single contiguous chunk); anything larger than [`INLINE_VALUE_MAX`]
    /// is recorded as a shared segment — a refcount bump, not a copy.
    #[inline]
    pub fn value(&mut self, v: &Bytes) {
        if v.len() <= INLINE_VALUE_MAX {
            let p = self.claim(4 + v.len());
            self.ctl[p..p + 4].copy_from_slice(&(v.len() as u32).to_le_bytes());
            self.ctl[p + 4..p + 4 + v.len()].copy_from_slice(v);
        } else {
            self.u32(v.len() as u32);
            self.chunks.push(Chunk::Ctl(self.mark..self.pos));
            self.mark = self.pos;
            self.chunks.push(Chunk::Val(v.clone()));
            self.val_bytes += v.len();
        }
    }
}

/// Zero-copy input cursor with primitive readers.
///
/// Constructed over a plain slice ([`Reader::new`]) or over a shared
/// frame ([`Reader::shared`]); in the latter mode, [`Reader::value`]
/// yields sub-views of the frame instead of copies, so decoding a
/// received message never duplicates payload bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, backing: None }
    }

    /// Wrap a shared frame; values decode as zero-copy sub-views of it.
    pub fn shared(frame: &'a Bytes) -> Reader<'a> {
        Reader { buf: frame, pos: 0, backing: Some(frame) }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error if any input is left unconsumed (strict decoding).
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(decode_err(format!("{} trailing bytes", self.remaining())))
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(decode_err(format!("need {n} bytes, {} remaining", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    #[inline]
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Read a little-endian u32.
    #[inline]
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Read a little-endian u64.
    #[inline]
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read a length-prefixed byte string.
    #[inline]
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed value payload. Zero-copy (a sub-view of the
    /// frame) when the reader was built with [`Reader::shared`]; a copy
    /// otherwise.
    pub fn value(&mut self) -> Result<Bytes> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let slice = self.take(len)?;
        Ok(match self.backing {
            Some(frame) => frame.slice(start..start + len),
            None => Bytes::copy_from_slice(slice),
        })
    }
}

fn decode_err(msg: impl Into<String>) -> Error {
    Error::Network(format!("decode: {}", msg.into()))
}

// --- version vectors ------------------------------------------------------

/// Encode a version vector (bulk entry write).
#[inline]
pub fn put_vv(w: &mut Writer, vv: &VersionVector) {
    let e = vv.entries();
    w.u16(e.len() as u16);
    w.u64_slice(e);
}

/// Decode a version vector. Allocation-free for vectors up to the inline
/// cap ([`epidb_vv::VV_INLINE_CAP`] servers) — the entries are read from
/// one borrowed run of the frame straight into inline storage, so a
/// thousand-item message decodes its thousand vectors with zero heap
/// traffic.
pub fn get_vv(r: &mut Reader<'_>) -> Result<VersionVector> {
    let n = r.u16()? as usize;
    let raw = r.take(n * 8)?;
    let mut vv = VersionVector::zero(n);
    for j in 0..n {
        let b: [u8; 8] = raw[j * 8..j * 8 + 8].try_into().expect("len");
        vv.set(NodeId::from_index(j), u64::from_le_bytes(b));
    }
    Ok(vv)
}

/// Encode a database version vector.
pub fn put_dbvv(w: &mut Writer, vv: &DbVersionVector) {
    put_vv(w, vv.as_vector());
}

/// Decode a database version vector.
pub fn get_dbvv(r: &mut Reader<'_>) -> Result<DbVersionVector> {
    Ok(DbVersionVector::from_vector(get_vv(r)?))
}

// --- operations -----------------------------------------------------------

const OP_SET: u8 = 0;
const OP_WRITE_RANGE: u8 = 1;
const OP_APPEND: u8 = 2;

/// Encode an update operation.
pub fn put_op(w: &mut Writer, op: &UpdateOp) {
    match op {
        UpdateOp::Set(d) => {
            w.u8(OP_SET);
            w.value(d);
        }
        UpdateOp::WriteRange { offset, data } => {
            w.u8(OP_WRITE_RANGE);
            w.u64(*offset as u64);
            w.value(data);
        }
        UpdateOp::Append(d) => {
            w.u8(OP_APPEND);
            w.value(d);
        }
    }
}

/// Decode an update operation.
pub fn get_op(r: &mut Reader<'_>) -> Result<UpdateOp> {
    match r.u8()? {
        OP_SET => Ok(UpdateOp::Set(r.value()?)),
        OP_WRITE_RANGE => {
            let offset = r.u64()? as usize;
            let data = r.value()?;
            Ok(UpdateOp::WriteRange { offset, data })
        }
        OP_APPEND => Ok(UpdateOp::Append(r.value()?)),
        t => Err(decode_err(format!("unknown op tag {t}"))),
    }
}

// --- propagation messages ---------------------------------------------------

/// Encode a log record.
#[inline]
pub fn put_log_record(w: &mut Writer, rec: &LogRecord) {
    w.u32(rec.item.0);
    w.u64(rec.m);
}

/// Decode a log record.
pub fn get_log_record(r: &mut Reader<'_>) -> Result<LogRecord> {
    Ok(LogRecord { item: ItemId(r.u32()?), m: r.u64()? })
}

/// Encode a shipped item (id + IVV + value).
///
/// Small items (inline-sized value) take a fused path: one length check
/// claims the whole record — id, IVV, value header, value bytes — and the
/// fields are stored straight into the claimed window. Large values fall
/// back to the field-by-field path, which records the value as a shared
/// zero-copy segment.
#[inline]
pub fn put_shipped_item(w: &mut Writer, s: &ShippedItem) {
    let e = s.ivv.entries();
    let vlen = s.value.len();
    if vlen <= INLINE_VALUE_MAX {
        let need = 4 + 2 + e.len() * 8 + 4 + vlen;
        let p = w.claim(need);
        let buf = &mut w.ctl[p..p + need];
        buf[..4].copy_from_slice(&s.item.0.to_le_bytes());
        buf[4..6].copy_from_slice(&(e.len() as u16).to_le_bytes());
        let (vv, rest) = buf[6..].split_at_mut(e.len() * 8);
        for (d, v) in vv.chunks_exact_mut(8).zip(e) {
            d.copy_from_slice(&v.to_le_bytes());
        }
        rest[..4].copy_from_slice(&(vlen as u32).to_le_bytes());
        rest[4..4 + vlen].copy_from_slice(&s.value);
    } else {
        w.u32(s.item.0);
        put_vv(w, &s.ivv);
        w.value(&s.value);
    }
}

/// Decode a shipped item.
pub fn get_shipped_item(r: &mut Reader<'_>) -> Result<ShippedItem> {
    let item = ItemId(r.u32()?);
    let ivv = get_vv(r)?;
    let value = r.value()?;
    Ok(ShippedItem { item, ivv, value })
}

/// Encode a whole propagation payload. Each tail is written through one
/// claimed window (12 bytes per record, no per-field length checks).
pub fn put_payload(w: &mut Writer, p: &PropagationPayload) {
    w.u16(p.tails.len() as u16);
    for tail in &p.tails {
        w.u32(tail.len() as u32);
        put_log_records(w, tail);
    }
    w.u32(p.items.len() as u32);
    for item in &p.items {
        put_shipped_item(w, item);
    }
}

/// Encode a run of log records with a single length check.
pub fn put_log_records(w: &mut Writer, recs: &[LogRecord]) {
    let n = recs.len() * 12;
    let p = w.claim(n);
    for (d, rec) in w.ctl[p..p + n].chunks_exact_mut(12).zip(recs) {
        d[..4].copy_from_slice(&rec.item.0.to_le_bytes());
        d[4..].copy_from_slice(&rec.m.to_le_bytes());
    }
}

/// Decode a propagation payload.
pub fn get_payload(r: &mut Reader<'_>) -> Result<PropagationPayload> {
    let n_tails = r.u16()? as usize;
    let mut tails = Vec::with_capacity(n_tails);
    for _ in 0..n_tails {
        let len = r.u32()? as usize;
        let mut tail = Vec::with_capacity(len);
        for _ in 0..len {
            tail.push(get_log_record(r)?);
        }
        tails.push(tail);
    }
    let n_items = r.u32()? as usize;
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        items.push(get_shipped_item(r)?);
    }
    Ok(PropagationPayload { tails, items })
}

const RESP_CURRENT: u8 = 0;
const RESP_PAYLOAD: u8 = 1;
const RESP_NEED_RECON: u8 = 2;

/// Encode a propagation response.
pub fn put_response(w: &mut Writer, resp: &PropagationResponse) {
    match resp {
        PropagationResponse::YouAreCurrent => w.u8(RESP_CURRENT),
        PropagationResponse::Payload(p) => {
            w.u8(RESP_PAYLOAD);
            put_payload(w, p);
        }
        PropagationResponse::NeedRecon => w.u8(RESP_NEED_RECON),
    }
}

/// Decode a propagation response.
pub fn get_response(r: &mut Reader<'_>) -> Result<PropagationResponse> {
    match r.u8()? {
        RESP_CURRENT => Ok(PropagationResponse::YouAreCurrent),
        RESP_PAYLOAD => Ok(PropagationResponse::Payload(get_payload(r)?)),
        RESP_NEED_RECON => Ok(PropagationResponse::NeedRecon),
        t => Err(decode_err(format!("unknown response tag {t}"))),
    }
}

// --- reconciliation messages -------------------------------------------------

/// Encode one reconciliation item (id + IVV + retained records + value).
pub fn put_recon_item(w: &mut Writer, s: &ReconItem) {
    w.u32(s.item.0);
    put_vv(w, &s.ivv);
    w.u16(s.records.len() as u16);
    for (k, m) in &s.records {
        w.u16(k.0);
        w.u64(*m);
    }
    w.value(&s.value);
}

/// Decode one reconciliation item.
pub fn get_recon_item(r: &mut Reader<'_>) -> Result<ReconItem> {
    let item = ItemId(r.u32()?);
    let ivv = get_vv(r)?;
    let n = r.u16()? as usize;
    let mut records = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let k = NodeId(r.u16()?);
        records.push((k, r.u64()?));
    }
    let value = r.value()?;
    Ok(ReconItem { item, ivv, value, records })
}

/// Encode a coverage-floor vector (one u64 per origin).
pub fn put_floor(w: &mut Writer, floor: &[u64]) {
    w.u16(floor.len() as u16);
    w.u64_slice(floor);
}

/// Decode a coverage-floor vector.
pub fn get_floor(r: &mut Reader<'_>) -> Result<Vec<u64>> {
    let n = r.u16()? as usize;
    let mut floor = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        floor.push(r.u64()?);
    }
    Ok(floor)
}

/// Encode a reconciliation descent reply.
pub fn put_recon_reply(w: &mut Writer, reply: &ReconReply) {
    w.u32(reply.digests.len() as u32);
    for (s, e, d) in &reply.digests {
        w.u32(*s);
        w.u32(*e);
        w.u64(*d);
    }
    w.u32(reply.items.len() as u32);
    for item in &reply.items {
        put_recon_item(w, item);
    }
    put_floor(w, &reply.floor);
    w.u64(reply.cut);
}

/// Decode a reconciliation descent reply.
pub fn get_recon_reply(r: &mut Reader<'_>) -> Result<ReconReply> {
    let n = r.u32()? as usize;
    let mut digests = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let s = r.u32()?;
        let e = r.u32()?;
        digests.push((s, e, r.u64()?));
    }
    let n = r.u32()? as usize;
    let mut items = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        items.push(get_recon_item(r)?);
    }
    let floor = get_floor(r)?;
    let cut = r.u64()?;
    Ok(ReconReply { digests, items, floor, cut })
}

/// Encode a whole-database pull reply.
pub fn put_full_pull_reply(w: &mut Writer, reply: &FullPullReply) {
    w.u32(reply.items.len() as u32);
    for item in &reply.items {
        put_recon_item(w, item);
    }
    put_floor(w, &reply.floor);
}

/// Decode a whole-database pull reply.
pub fn get_full_pull_reply(r: &mut Reader<'_>) -> Result<FullPullReply> {
    let n = r.u32()? as usize;
    let mut items = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        items.push(get_recon_item(r)?);
    }
    let floor = get_floor(r)?;
    Ok(FullPullReply { items, floor })
}

/// Encode an out-of-bound reply.
pub fn put_oob_reply(w: &mut Writer, reply: &OobReply) {
    w.u32(reply.item.0);
    put_vv(w, &reply.ivv);
    w.value(&reply.value);
    w.u8(reply.from_aux as u8);
}

/// Decode an out-of-bound reply.
pub fn get_oob_reply(r: &mut Reader<'_>) -> Result<OobReply> {
    let item = ItemId(r.u32()?);
    let ivv = get_vv(r)?;
    let value = r.value()?;
    let from_aux = match r.u8()? {
        0 => false,
        1 => true,
        b => return Err(decode_err(format!("bad bool {b}"))),
    };
    Ok(OobReply { item, ivv, value, from_aux })
}

// --- delta messages ---------------------------------------------------------

/// Encode a cached operation (pre-state IVV + the op).
pub fn put_cached_op(w: &mut Writer, c: &CachedOp) {
    put_vv(w, &c.pre_vv);
    put_op(w, &c.op);
}

/// Decode a cached operation.
pub fn get_cached_op(r: &mut Reader<'_>) -> Result<CachedOp> {
    let pre_vv = get_vv(r)?;
    let op = get_op(r)?;
    Ok(CachedOp { pre_vv, op })
}

/// Encode a delta offer (tails + per-item IVVs).
pub fn put_delta_offer(w: &mut Writer, o: &DeltaOffer) {
    w.u16(o.tails.len() as u16);
    for tail in &o.tails {
        w.u32(tail.len() as u32);
        put_log_records(w, tail);
    }
    w.u32(o.offers.len() as u32);
    for (item, ivv) in &o.offers {
        w.u32(item.0);
        put_vv(w, ivv);
    }
}

/// Decode a delta offer.
pub fn get_delta_offer(r: &mut Reader<'_>) -> Result<DeltaOffer> {
    let n_tails = r.u16()? as usize;
    let mut tails = Vec::with_capacity(n_tails);
    for _ in 0..n_tails {
        let len = r.u32()? as usize;
        let mut tail = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            tail.push(get_log_record(r)?);
        }
        tails.push(tail);
    }
    let n_offers = r.u32()? as usize;
    let mut offers = Vec::with_capacity(n_offers.min(4096));
    for _ in 0..n_offers {
        let item = ItemId(r.u32()?);
        offers.push((item, get_vv(r)?));
    }
    Ok(DeltaOffer { tails, offers })
}

/// Encode a delta want-list.
pub fn put_delta_request(w: &mut Writer, req: &DeltaRequest) {
    w.u32(req.wants.len() as u32);
    for (item, ivv) in &req.wants {
        w.u32(item.0);
        put_vv(w, ivv);
    }
}

/// Decode a delta want-list.
pub fn get_delta_request(r: &mut Reader<'_>) -> Result<DeltaRequest> {
    let n = r.u32()? as usize;
    let mut wants = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let item = ItemId(r.u32()?);
        wants.push((item, get_vv(r)?));
    }
    Ok(DeltaRequest { wants })
}

const DELTA_OPS: u8 = 0;
const DELTA_WHOLE: u8 = 1;

/// Encode one delta payload entry (op chain or whole-item fallback).
pub fn put_delta_item(w: &mut Writer, item: &DeltaItem) {
    match item {
        DeltaItem::Ops { item, ops, final_ivv } => {
            w.u8(DELTA_OPS);
            w.u32(item.0);
            put_vv(w, final_ivv);
            w.u32(ops.len() as u32);
            for c in ops {
                put_cached_op(w, c);
            }
        }
        DeltaItem::Whole(s) => {
            w.u8(DELTA_WHOLE);
            put_shipped_item(w, s);
        }
    }
}

/// Decode one delta payload entry.
pub fn get_delta_item(r: &mut Reader<'_>) -> Result<DeltaItem> {
    match r.u8()? {
        DELTA_OPS => {
            let item = ItemId(r.u32()?);
            let final_ivv = get_vv(r)?;
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ops.push(get_cached_op(r)?);
            }
            Ok(DeltaItem::Ops { item, ops, final_ivv })
        }
        DELTA_WHOLE => Ok(DeltaItem::Whole(get_shipped_item(r)?)),
        t => Err(decode_err(format!("unknown delta item tag {t}"))),
    }
}

/// Encode a delta data message.
pub fn put_delta_payload(w: &mut Writer, p: &DeltaPayload) {
    w.u32(p.items.len() as u32);
    for item in &p.items {
        put_delta_item(w, item);
    }
}

/// Decode a delta data message.
pub fn get_delta_payload(r: &mut Reader<'_>) -> Result<DeltaPayload> {
    let n = r.u32()? as usize;
    let mut items = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        items.push(get_delta_item(r)?);
    }
    Ok(DeltaPayload { items })
}

// --- framed protocol messages (for real transports) ------------------------

const REQ_PULL: u8 = 1;
const REQ_DELTA_PULL: u8 = 2;
const REQ_DELTA_FETCH: u8 = 3;
const REQ_OOB: u8 = 4;
const REQ_LIST_DBS: u8 = 5;
const REQ_DB: u8 = 6;
const REQ_SHARD: u8 = 7;
const REQ_RECON: u8 = 8;
const REQ_FULL_PULL: u8 = 9;

const RESP_PULL: u8 = 1;
const RESP_DELTA_OFFER: u8 = 2;
const RESP_DELTA_PAYLOAD: u8 = 3;
const RESP_OOB: u8 = 4;
const RESP_DBS: u8 = 5;
const RESP_DB: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_SHARD: u8 = 8;
const RESP_REFUSED: u8 = 9;
const RESP_RECON: u8 = 10;
const RESP_FULL: u8 = 11;

const OFFER_CURRENT: u8 = 0;
const OFFER_OFFER: u8 = 1;
const OFFER_NEED_RECON: u8 = 2;

// Sub-tags of `RESP_REFUSED`: the two typed routing refusals that must
// survive a real wire byte-exact (retryability depends on the variant).
const REFUSED_NOT_SERVED: u8 = 0;
const REFUSED_MOVING: u8 = 1;

// Sub-tags of a `REFUSED_NOT_SERVED` route target.
const TARGET_DB: u8 = 0;
const TARGET_SHARD: u8 = 1;

/// One level of routing is legal (a [`ProtocolRequest::Db`] or
/// [`ProtocolRequest::Shard`] envelope around a replica-level message);
/// deeper nesting is rejected.
const MAX_ROUTE_DEPTH: u8 = 1;

fn put_string(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String> {
    // Validate in place, copy once — nothing is allocated for rejected
    // input. Strings appear O(1) times per frame (routing names, error
    // text), never per item, so this is off the small-message fast path.
    std::str::from_utf8(r.bytes()?)
        .map(str::to_owned)
        .map_err(|e| decode_err(format!("bad utf-8: {e}")))
}

fn put_request_body(w: &mut Writer, req: &ProtocolRequest) {
    match req {
        ProtocolRequest::Pull { from, dbvv } => {
            w.u8(REQ_PULL);
            w.u16(from.0);
            put_dbvv(w, dbvv);
        }
        ProtocolRequest::DeltaPull { from, dbvv } => {
            w.u8(REQ_DELTA_PULL);
            w.u16(from.0);
            put_dbvv(w, dbvv);
        }
        ProtocolRequest::DeltaFetch { from, wants } => {
            w.u8(REQ_DELTA_FETCH);
            w.u16(from.0);
            put_delta_request(w, wants);
        }
        ProtocolRequest::Oob { from, item } => {
            w.u8(REQ_OOB);
            w.u16(from.0);
            w.u32(item.0);
        }
        ProtocolRequest::ListDatabases { from } => {
            w.u8(REQ_LIST_DBS);
            w.u16(from.0);
        }
        ProtocolRequest::Db { name, req } => {
            w.u8(REQ_DB);
            put_string(w, name);
            put_request_body(w, req);
        }
        ProtocolRequest::Shard { shard, req } => {
            w.u8(REQ_SHARD);
            w.u16(shard.0);
            put_request_body(w, req);
        }
        ProtocolRequest::Recon { from, ranges, fetch } => {
            w.u8(REQ_RECON);
            w.u16(from.0);
            w.u32(ranges.len() as u32);
            for (s, e) in ranges {
                w.u32(*s);
                w.u32(*e);
            }
            w.u32(fetch.len() as u32);
            for item in fetch {
                w.u32(item.0);
            }
        }
        ProtocolRequest::FullPull { from } => {
            w.u8(REQ_FULL_PULL);
            w.u16(from.0);
        }
    }
}

fn get_request_body(r: &mut Reader<'_>, depth: u8) -> Result<ProtocolRequest> {
    match r.u8()? {
        REQ_PULL => {
            let from = NodeId(r.u16()?);
            Ok(ProtocolRequest::Pull { from, dbvv: get_dbvv(r)? })
        }
        REQ_DELTA_PULL => {
            let from = NodeId(r.u16()?);
            Ok(ProtocolRequest::DeltaPull { from, dbvv: get_dbvv(r)? })
        }
        REQ_DELTA_FETCH => {
            let from = NodeId(r.u16()?);
            Ok(ProtocolRequest::DeltaFetch { from, wants: get_delta_request(r)? })
        }
        REQ_OOB => {
            let from = NodeId(r.u16()?);
            Ok(ProtocolRequest::Oob { from, item: ItemId(r.u32()?) })
        }
        REQ_LIST_DBS => Ok(ProtocolRequest::ListDatabases { from: NodeId(r.u16()?) }),
        REQ_DB => {
            if depth >= MAX_ROUTE_DEPTH {
                return Err(decode_err("nested db routing"));
            }
            let name = get_string(r)?;
            let req = get_request_body(r, depth + 1)?;
            Ok(ProtocolRequest::Db { name, req: Box::new(req) })
        }
        REQ_SHARD => {
            if depth >= MAX_ROUTE_DEPTH {
                return Err(decode_err("nested shard routing"));
            }
            let shard = ShardId(r.u16()?);
            let req = get_request_body(r, depth + 1)?;
            Ok(ProtocolRequest::Shard { shard, req: Box::new(req) })
        }
        REQ_RECON => {
            let from = NodeId(r.u16()?);
            let n = r.u32()? as usize;
            let mut ranges = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let s = r.u32()?;
                ranges.push((s, r.u32()?));
            }
            let n = r.u32()? as usize;
            let mut fetch = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                fetch.push(ItemId(r.u32()?));
            }
            Ok(ProtocolRequest::Recon { from, ranges, fetch })
        }
        REQ_FULL_PULL => Ok(ProtocolRequest::FullPull { from: NodeId(r.u16()?) }),
        t => Err(decode_err(format!("unknown request tag {t}"))),
    }
}

fn put_response_body(w: &mut Writer, resp: &ProtocolResponse) {
    match resp {
        ProtocolResponse::Pull(r) => {
            w.u8(RESP_PULL);
            put_response(w, r);
        }
        ProtocolResponse::DeltaOffer(DeltaOfferResponse::YouAreCurrent) => {
            w.u8(RESP_DELTA_OFFER);
            w.u8(OFFER_CURRENT);
        }
        ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(o)) => {
            w.u8(RESP_DELTA_OFFER);
            w.u8(OFFER_OFFER);
            put_delta_offer(w, o);
        }
        ProtocolResponse::DeltaOffer(DeltaOfferResponse::NeedRecon) => {
            w.u8(RESP_DELTA_OFFER);
            w.u8(OFFER_NEED_RECON);
        }
        ProtocolResponse::DeltaPayload(p) => {
            w.u8(RESP_DELTA_PAYLOAD);
            put_delta_payload(w, p);
        }
        ProtocolResponse::Oob(reply) => {
            w.u8(RESP_OOB);
            put_oob_reply(w, reply);
        }
        ProtocolResponse::Databases(names) => {
            w.u8(RESP_DBS);
            w.u32(names.len() as u32);
            for name in names {
                put_string(w, name);
            }
        }
        ProtocolResponse::Db { name, resp } => {
            w.u8(RESP_DB);
            put_string(w, name);
            put_response_body(w, resp);
        }
        ProtocolResponse::Error(msg) => {
            w.u8(RESP_ERROR);
            put_string(w, msg);
        }
        ProtocolResponse::Shard { shard, resp } => {
            w.u8(RESP_SHARD);
            w.u16(shard.0);
            put_response_body(w, resp);
        }
        ProtocolResponse::Refused(e) => {
            w.u8(RESP_REFUSED);
            put_refusal(w, e);
        }
        ProtocolResponse::Recon(reply) => {
            w.u8(RESP_RECON);
            put_recon_reply(w, reply);
        }
        ProtocolResponse::Full(reply) => {
            w.u8(RESP_FULL);
            put_full_pull_reply(w, reply);
        }
    }
}

/// Encode a typed routing refusal. Only the two routing variants exist on
/// the wire; anything else is a caller bug (the engine folds other errors
/// into [`ProtocolResponse::Error`] text).
fn put_refusal(w: &mut Writer, e: &Error) {
    match e {
        Error::NotServedHere { target, owners } => {
            w.u8(REFUSED_NOT_SERVED);
            match target {
                RouteTarget::Database(name) => {
                    w.u8(TARGET_DB);
                    put_string(w, name);
                }
                RouteTarget::Shard(shard) => {
                    w.u8(TARGET_SHARD);
                    w.u16(shard.0);
                }
            }
            w.u16(owners.len() as u16);
            for o in owners {
                w.u16(o.0);
            }
        }
        Error::ShardMoving(shard) => {
            w.u8(REFUSED_MOVING);
            w.u16(shard.0);
        }
        other => panic!("refusal {other:?} is not a typed routing refusal"),
    }
}

fn get_refusal(r: &mut Reader<'_>) -> Result<Error> {
    match r.u8()? {
        REFUSED_NOT_SERVED => {
            let target = match r.u8()? {
                TARGET_DB => RouteTarget::Database(get_string(r)?),
                TARGET_SHARD => RouteTarget::Shard(ShardId(r.u16()?)),
                t => return Err(decode_err(format!("unknown route target tag {t}"))),
            };
            let n = r.u16()? as usize;
            let mut owners = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                owners.push(NodeId(r.u16()?));
            }
            Ok(Error::NotServedHere { target, owners })
        }
        REFUSED_MOVING => Ok(Error::ShardMoving(ShardId(r.u16()?))),
        t => Err(decode_err(format!("unknown refusal tag {t}"))),
    }
}

fn get_response_body(r: &mut Reader<'_>, depth: u8) -> Result<ProtocolResponse> {
    match r.u8()? {
        RESP_PULL => Ok(ProtocolResponse::Pull(get_response(r)?)),
        RESP_DELTA_OFFER => match r.u8()? {
            OFFER_CURRENT => Ok(ProtocolResponse::DeltaOffer(DeltaOfferResponse::YouAreCurrent)),
            OFFER_OFFER => {
                Ok(ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(get_delta_offer(r)?)))
            }
            OFFER_NEED_RECON => Ok(ProtocolResponse::DeltaOffer(DeltaOfferResponse::NeedRecon)),
            t => Err(decode_err(format!("unknown offer tag {t}"))),
        },
        RESP_DELTA_PAYLOAD => Ok(ProtocolResponse::DeltaPayload(get_delta_payload(r)?)),
        RESP_OOB => Ok(ProtocolResponse::Oob(get_oob_reply(r)?)),
        RESP_DBS => {
            let n = r.u32()? as usize;
            let mut names = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                names.push(get_string(r)?);
            }
            Ok(ProtocolResponse::Databases(names))
        }
        RESP_DB => {
            if depth >= MAX_ROUTE_DEPTH {
                return Err(decode_err("nested db routing"));
            }
            let name = get_string(r)?;
            let resp = get_response_body(r, depth + 1)?;
            Ok(ProtocolResponse::Db { name, resp: Box::new(resp) })
        }
        RESP_ERROR => Ok(ProtocolResponse::Error(get_string(r)?)),
        RESP_SHARD => {
            if depth >= MAX_ROUTE_DEPTH {
                return Err(decode_err("nested shard routing"));
            }
            let shard = ShardId(r.u16()?);
            let resp = get_response_body(r, depth + 1)?;
            Ok(ProtocolResponse::Shard { shard, resp: Box::new(resp) })
        }
        RESP_REFUSED => Ok(ProtocolResponse::Refused(get_refusal(r)?)),
        RESP_RECON => Ok(ProtocolResponse::Recon(get_recon_reply(r)?)),
        RESP_FULL => Ok(ProtocolResponse::Full(get_full_pull_reply(r)?)),
        t => Err(decode_err(format!("unknown response tag {t}"))),
    }
}

/// Encode a framed protocol request into a caller-supplied (reusable)
/// writer: the writer is cleared, capacity is pre-reserved from the
/// message's own size accounting, and the version byte + tagged body are
/// written. The length prefix is the transport's job.
pub fn encode_request_to(req: &ProtocolRequest, w: &mut Writer) {
    w.clear();
    // Size the control buffer from the message's own accounting, but only
    // on first use: a reused writer keeps its capacity, and re-walking the
    // message to compute `control_bytes` every frame costs more than the
    // amortized growth it would save.
    if w.is_fresh() {
        w.reserve(req.control_bytes() as usize + 16);
    }
    w.u8(CODEC_VERSION);
    put_request_body(w, req);
}

/// Encode a framed protocol request (version byte + tagged body) into a
/// fresh contiguous buffer. The length prefix is the transport's job.
pub fn encode_request(req: &ProtocolRequest) -> Vec<u8> {
    let mut w = Writer::new();
    encode_request_to(req, &mut w);
    w.into_bytes()
}

fn check_version(r: &mut Reader<'_>) -> Result<()> {
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(decode_err(format!("unsupported codec version {version}")));
    }
    Ok(())
}

/// Decode a framed protocol request, rejecting unknown versions/tags,
/// over-deep routing, and trailing garbage.
pub fn decode_request(buf: &[u8]) -> Result<ProtocolRequest> {
    let mut r = Reader::new(buf);
    check_version(&mut r)?;
    let req = get_request_body(&mut r, 0)?;
    r.finish()?;
    Ok(req)
}

/// As [`decode_request`], but over a shared frame: any value payloads in
/// the message decode as zero-copy sub-views of `frame`.
pub fn decode_request_shared(frame: &Bytes) -> Result<ProtocolRequest> {
    let mut r = Reader::shared(frame);
    check_version(&mut r)?;
    let req = get_request_body(&mut r, 0)?;
    r.finish()?;
    Ok(req)
}

/// Encode a framed protocol response into a caller-supplied (reusable)
/// writer; see [`encode_request_to`]. Values above [`INLINE_VALUE_MAX`]
/// become shared segments ([`Writer::chunks`]), not copies.
pub fn encode_response_to(resp: &ProtocolResponse, w: &mut Writer) {
    w.clear();
    // See `encode_request_to` for why this reserves only on first use.
    if w.is_fresh() {
        w.reserve(resp.control_bytes() as usize + 16);
    }
    w.u8(CODEC_VERSION);
    put_response_body(w, resp);
}

/// Encode a framed protocol response (version byte + tagged body) into a
/// fresh contiguous buffer.
pub fn encode_response(resp: &ProtocolResponse) -> Vec<u8> {
    let mut w = Writer::new();
    encode_response_to(resp, &mut w);
    w.into_bytes()
}

/// Decode a framed protocol response, rejecting unknown versions/tags,
/// over-deep routing, and trailing garbage.
pub fn decode_response(buf: &[u8]) -> Result<ProtocolResponse> {
    let mut r = Reader::new(buf);
    check_version(&mut r)?;
    let resp = get_response_body(&mut r, 0)?;
    r.finish()?;
    Ok(resp)
}

/// As [`decode_response`], but over a shared frame: item values decode as
/// zero-copy sub-views of `frame` — the receive half of the zero-copy
/// payload path.
pub fn decode_response_shared(frame: &Bytes) -> Result<ProtocolResponse> {
    let mut r = Reader::shared(frame);
    check_version(&mut r)?;
    let resp = get_response_body(&mut r, 0)?;
    r.finish()?;
    Ok(resp)
}

// --- checked frame envelope -------------------------------------------------
//
// A checked frame is `crc32 (u32 LE) | versioned body`. The checksum covers
// the whole body — control bytes and value segments alike — so any flipped
// bit surfaces as [`Error::CorruptFrame`] instead of a garbage decode. The
// checksum is always verified *before* the body is decoded (and, in the
// shared variants, before any zero-copy sub-view aliases the frame).

/// Bytes of the checked-frame header (the CRC32 field).
pub const CHECKED_HEADER: usize = 4;

/// Verify a checked frame's CRC32 header; on success return the body.
pub fn verify_checked_frame(buf: &[u8]) -> Result<&[u8]> {
    if buf.len() < CHECKED_HEADER {
        return Err(Error::CorruptFrame(format!("frame too short: {} bytes", buf.len())));
    }
    let want = u32::from_le_bytes(buf[..CHECKED_HEADER].try_into().expect("len"));
    let body = &buf[CHECKED_HEADER..];
    let got = crc32(body);
    if got != want {
        return Err(Error::CorruptFrame(format!(
            "crc mismatch: header {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok(body)
}

fn corrupt(e: Error) -> Error {
    // A frame whose checksum matched but whose body fails to decode is
    // still a corrupt frame from the receiver's perspective (and equally
    // retryable); fold the decode detail into the message.
    match e {
        Error::CorruptFrame(_) => e,
        other => Error::CorruptFrame(other.to_string()),
    }
}

/// Encode a request as a checked frame (CRC32 header + versioned body).
pub fn encode_request_checked(req: &ProtocolRequest) -> Vec<u8> {
    let body = encode_request(req);
    let mut out = Vec::with_capacity(CHECKED_HEADER + body.len());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a checked request frame; any integrity or decode failure is a
/// retryable [`Error::CorruptFrame`].
pub fn decode_request_checked(buf: &[u8]) -> Result<ProtocolRequest> {
    let body = verify_checked_frame(buf)?;
    decode_request(body).map_err(corrupt)
}

/// Encode a response as a checked frame (CRC32 header + versioned body).
pub fn encode_response_checked(resp: &ProtocolResponse) -> Vec<u8> {
    let body = encode_response(resp);
    let mut out = Vec::with_capacity(CHECKED_HEADER + body.len());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a checked response frame; any integrity or decode failure is a
/// retryable [`Error::CorruptFrame`].
pub fn decode_response_checked(buf: &[u8]) -> Result<ProtocolResponse> {
    let body = verify_checked_frame(buf)?;
    decode_response(body).map_err(corrupt)
}

/// As [`decode_response_checked`], but zero-copy: after the checksum
/// verifies, item values decode as sub-views of `frame`. Verification
/// happens strictly before aliasing, so a corrupted frame is dropped
/// whole — no partially-decoded state escapes.
pub fn decode_response_checked_shared(frame: &Bytes) -> Result<ProtocolResponse> {
    verify_checked_frame(frame)?;
    let body = frame.slice(CHECKED_HEADER..);
    decode_response_shared(&body).map_err(corrupt)
}

/// As [`decode_request_checked`], but zero-copy over a shared frame.
pub fn decode_request_checked_shared(frame: &Bytes) -> Result<ProtocolRequest> {
    verify_checked_frame(frame)?;
    let body = frame.slice(CHECKED_HEADER..);
    decode_request_shared(&body).map_err(corrupt)
}

// --- decode scratch ---------------------------------------------------------

/// Frame buffers above this size are dropped instead of pooled; a giant
/// whole-item frame must not pin its allocation for the rest of a
/// connection's life.
const SCRATCH_MAX_POOLED: usize = 1 << 20;

/// Buffers retained per scratch: one in-flight frame plus a spare is the
/// steady state of a request/response connection.
const SCRATCH_MAX_BUFS: usize = 4;

/// Decode-side scratch: a slab of reusable frame buffers, owned by a
/// connection (or engine) and recycled per frame.
///
/// The decoders themselves are O(1) allocations per frame regardless of
/// item count — version vectors decode into inline storage
/// ([`get_vv`]), values alias the frame ([`Reader::shared`]), and only
/// the per-message containers allocate. What remains is the frame buffer
/// itself: a transport that reads each response into a fresh `Vec`
/// allocates once per round even when nothing changed. The scratch closes
/// that gap: [`DecodeScratch::take_buf`] hands out a recycled buffer to
/// read the frame into, and [`DecodeScratch::recycle`] reclaims it once
/// the decoded message no longer aliases it (checked via refcount — a
/// frame whose values were adopted by the store stays alive, untouched).
#[derive(Default)]
pub struct DecodeScratch {
    bufs: Vec<Vec<u8>>,
}

impl DecodeScratch {
    /// Fresh, empty scratch.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// A cleared buffer to read the next frame into — recycled if one is
    /// pooled, fresh otherwise.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.bufs.pop().unwrap_or_default()
    }

    /// Reclaim a frame's buffer after its decoded message has been
    /// consumed. Succeeds (and pools the allocation for the next
    /// [`DecodeScratch::take_buf`]) only when nothing aliases the frame
    /// anymore; a frame still backing adopted values is left alone.
    /// Returns whether the buffer was reclaimed.
    pub fn recycle(&mut self, frame: Bytes) -> bool {
        match frame.try_into_vec() {
            Ok(buf) => {
                self.recycle_buf(buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Pool a plain buffer (the non-shared read path).
    pub fn recycle_buf(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() <= SCRATCH_MAX_POOLED && self.bufs.len() < SCRATCH_MAX_BUFS {
            buf.clear();
            self.bufs.push(buf);
        }
    }

    /// Buffers currently pooled (for tests and diagnostics).
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(1996);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1996);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut w = Writer::new();
        w.u8(CODEC_VERSION);
        w.u8(REQ_OOB);
        w.u16(0);
        w.u32(9);
        w.u8(0xFF); // garbage
        assert!(decode_request(&w.into_bytes()).is_err());
    }

    #[test]
    fn vv_roundtrip() {
        let v = vv(&[0, 5, u64::MAX, 7]);
        let mut w = Writer::new();
        put_vv(&mut w, &v);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(get_vv(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn ops_roundtrip() {
        for op in [
            UpdateOp::set(&b"whole"[..]),
            UpdateOp::write_range(17, &b"patch"[..]),
            UpdateOp::append(&b""[..]),
        ] {
            let mut w = Writer::new();
            put_op(&mut w, &op);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            assert_eq!(get_op(&mut r).unwrap(), op);
            r.finish().unwrap();
        }
    }

    #[test]
    fn payload_roundtrip() {
        let payload = PropagationPayload {
            tails: vec![
                vec![LogRecord { item: ItemId(1), m: 3 }, LogRecord { item: ItemId(2), m: 9 }],
                vec![],
            ],
            items: vec![ShippedItem {
                item: ItemId(1),
                ivv: vv(&[3, 0]),
                value: Bytes::from_static(b"contents"),
            }],
        };
        let mut w = Writer::new();
        put_payload(&mut w, &payload);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_payload(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.tails, payload.tails);
        assert_eq!(back.items.len(), 1);
        assert_eq!(back.items[0].item, ItemId(1));
        assert_eq!(back.items[0].ivv, vv(&[3, 0]));
        assert_eq!(&back.items[0].value[..], b"contents");
    }

    #[test]
    fn requests_roundtrip() {
        let mut dbvv = DbVersionVector::zero(3);
        dbvv.record_local_update(NodeId(2));
        let reqs = vec![
            ProtocolRequest::Pull { from: NodeId(1), dbvv: dbvv.clone() },
            ProtocolRequest::DeltaPull { from: NodeId(1), dbvv },
            ProtocolRequest::DeltaFetch {
                from: NodeId(0),
                wants: DeltaRequest { wants: vec![(ItemId(3), vv(&[1, 0, 2]))] },
            },
            ProtocolRequest::Oob { from: NodeId(2), item: ItemId(77) },
            ProtocolRequest::ListDatabases { from: NodeId(0) },
            ProtocolRequest::Db {
                name: "mail".into(),
                req: Box::new(ProtocolRequest::Oob { from: NodeId(2), item: ItemId(5) }),
            },
            ProtocolRequest::Shard {
                shard: ShardId(3),
                req: Box::new(ProtocolRequest::Oob { from: NodeId(2), item: ItemId(5) }),
            },
            ProtocolRequest::Recon {
                from: NodeId(1),
                ranges: vec![(0, 8), (8, 16)],
                fetch: vec![ItemId(3), ItemId(11)],
            },
            ProtocolRequest::Recon { from: NodeId(0), ranges: vec![], fetch: vec![] },
            ProtocolRequest::FullPull { from: NodeId(2) },
        ];
        for req in reqs {
            let buf = encode_request(&req);
            let back = decode_request(&buf).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            ProtocolResponse::Pull(PropagationResponse::YouAreCurrent),
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::YouAreCurrent),
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(DeltaOffer {
                tails: vec![vec![LogRecord { item: ItemId(1), m: 4 }], vec![]],
                offers: vec![(ItemId(1), vv(&[4, 0]))],
            })),
            ProtocolResponse::DeltaPayload(DeltaPayload {
                items: vec![
                    DeltaItem::Ops {
                        item: ItemId(1),
                        ops: vec![CachedOp {
                            pre_vv: vv(&[3, 0]),
                            op: UpdateOp::append(&b"x"[..]),
                        }],
                        final_ivv: vv(&[4, 0]),
                    },
                    DeltaItem::Whole(ShippedItem {
                        item: ItemId(2),
                        ivv: vv(&[0, 1]),
                        value: Bytes::from_static(b"whole"),
                    }),
                ],
            }),
            ProtocolResponse::Oob(OobReply {
                item: ItemId(77),
                ivv: vv(&[1, 2, 3]),
                value: Bytes::from_static(b"v"),
                from_aux: true,
            }),
            ProtocolResponse::Databases(vec!["docs".into(), "mail".into()]),
            ProtocolResponse::Db {
                name: "mail".into(),
                resp: Box::new(ProtocolResponse::Pull(PropagationResponse::YouAreCurrent)),
            },
            ProtocolResponse::Error("remote failure".into()),
            ProtocolResponse::Shard {
                shard: ShardId(7),
                resp: Box::new(ProtocolResponse::Pull(PropagationResponse::YouAreCurrent)),
            },
            ProtocolResponse::Refused(Error::NotServedHere {
                target: RouteTarget::Shard(ShardId(2)),
                owners: vec![NodeId(1), NodeId(3)],
            }),
            ProtocolResponse::Refused(Error::NotServedHere {
                target: RouteTarget::Database("mail".into()),
                owners: vec![],
            }),
            ProtocolResponse::Refused(Error::ShardMoving(ShardId(4))),
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::NeedRecon),
            ProtocolResponse::Pull(PropagationResponse::NeedRecon),
            ProtocolResponse::Recon(ReconReply {
                digests: vec![(0, 4, 0xDEAD_BEEF), (4, 8, 7)],
                items: vec![ReconItem {
                    item: ItemId(5),
                    ivv: vv(&[2, 0, 1]),
                    value: Bytes::from_static(b"reconciled"),
                    records: vec![(NodeId(0), 2), (NodeId(2), 1)],
                }],
                floor: vec![1, 0, 0],
                cut: 13,
            }),
            ProtocolResponse::Recon(ReconReply::default()),
            ProtocolResponse::Full(FullPullReply {
                items: vec![
                    ReconItem {
                        item: ItemId(0),
                        ivv: vv(&[1, 0]),
                        value: Bytes::from_static(b"a"),
                        records: vec![(NodeId(0), 1)],
                    },
                    ReconItem {
                        item: ItemId(1),
                        ivv: vv(&[0, 0]),
                        value: Bytes::new(),
                        records: vec![],
                    },
                ],
                floor: vec![0, 3],
            }),
        ];
        for resp in resps {
            let buf = encode_response(&resp);
            let back = decode_response(&buf).unwrap();
            assert_eq!(format!("{resp:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn nested_db_routing_rejected() {
        let req = ProtocolRequest::Db {
            name: "outer".into(),
            req: Box::new(ProtocolRequest::Db {
                name: "inner".into(),
                req: Box::new(ProtocolRequest::ListDatabases { from: NodeId(0) }),
            }),
        };
        assert!(decode_request(&encode_request(&req)).is_err());
    }

    #[test]
    fn nested_shard_routing_rejected() {
        let req = ProtocolRequest::Shard {
            shard: ShardId(0),
            req: Box::new(ProtocolRequest::Shard {
                shard: ShardId(1),
                req: Box::new(ProtocolRequest::ListDatabases { from: NodeId(0) }),
            }),
        };
        assert!(decode_request(&encode_request(&req)).is_err());
        // Mixed nesting (a shard envelope inside a db envelope) is equally
        // over-deep: one routing hop total.
        let req = ProtocolRequest::Db {
            name: "outer".into(),
            req: Box::new(ProtocolRequest::Shard {
                shard: ShardId(1),
                req: Box::new(ProtocolRequest::ListDatabases { from: NodeId(0) }),
            }),
        };
        assert!(decode_request(&encode_request(&req)).is_err());
    }

    #[test]
    fn refusals_roundtrip_typed() {
        // A refusal that crossed a real wire must still classify correctly.
        let refusal = ProtocolResponse::Refused(Error::ShardMoving(ShardId(9)));
        match decode_response(&encode_response(&refusal)).unwrap() {
            ProtocolResponse::Refused(e) => assert!(e.is_retryable()),
            other => panic!("kind changed: {other:?}"),
        }
        let refusal = ProtocolResponse::Refused(Error::NotServedHere {
            target: RouteTarget::Shard(ShardId(1)),
            owners: vec![NodeId(2)],
        });
        match decode_response(&encode_response(&refusal)).unwrap() {
            ProtocolResponse::Refused(e) => {
                assert!(!e.is_retryable());
                match e {
                    Error::NotServedHere { owners, .. } => assert_eq!(owners, vec![NodeId(2)]),
                    other => panic!("variant changed: {other:?}"),
                }
            }
            other => panic!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = encode_request(&ProtocolRequest::Oob { from: NodeId(0), item: ItemId(0) });
        buf[0] = 99;
        assert!(decode_request(&buf).is_err());
    }

    fn large_oob(len: usize) -> (ProtocolResponse, Bytes) {
        let value = Bytes::from(vec![0xC3u8; len]);
        let resp = ProtocolResponse::Oob(OobReply {
            item: ItemId(4),
            ivv: vv(&[2, 1]),
            value: value.clone(),
            from_aux: false,
        });
        (resp, value)
    }

    #[test]
    fn large_value_travels_as_shared_segment() {
        let (resp, value) = large_oob(INLINE_VALUE_MAX + 1);
        let mut w = Writer::new();
        encode_response_to(&resp, &mut w);
        let segments: Vec<&[u8]> = w.chunks().collect();
        assert!(segments.len() >= 3, "ctl run, value segment, ctl tail");
        assert!(
            segments.iter().any(|s| s.as_ptr() == value.as_ref().as_ptr()),
            "the value segment must be the store's buffer itself, not a copy"
        );
        // The chunk sequence and the contiguous encoding agree byte-for-byte.
        let concat: Vec<u8> = segments.concat();
        assert_eq!(concat, encode_response(&resp));
        assert_eq!(concat.len(), w.len());
    }

    #[test]
    fn small_value_is_inlined() {
        let (resp, _) = large_oob(INLINE_VALUE_MAX);
        let mut w = Writer::new();
        encode_response_to(&resp, &mut w);
        assert_eq!(w.chunks().count(), 1, "at or below the threshold: one contiguous run");
    }

    #[test]
    fn shared_decode_is_zero_copy() {
        let (resp, _) = large_oob(1024);
        let frame = Bytes::from(encode_response(&resp));
        match decode_response_shared(&frame).unwrap() {
            ProtocolResponse::Oob(reply) => {
                assert!(
                    reply.value.shares_storage_with(&frame),
                    "decoded value must be a sub-view of the frame"
                );
                assert_eq!(reply.value.len(), 1024);
            }
            other => panic!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn writer_reuse_keeps_capacity_and_resets_segments() {
        let (resp, _) = large_oob(4096);
        let mut w = Writer::new();
        encode_response_to(&resp, &mut w);
        let first = encode_response(&resp);
        // Re-encoding a different message into the same writer must fully
        // reset segment state; a small message then fits in one run.
        let small = ProtocolResponse::Error("e".into());
        encode_response_to(&small, &mut w);
        assert_eq!(w.chunks().count(), 1);
        assert_eq!(w.chunks().next().unwrap().to_vec(), encode_response(&small));
        // And the original message still encodes identically afterwards.
        encode_response_to(&resp, &mut w);
        assert_eq!(w.chunks().flat_map(|s| s.iter().copied()).collect::<Vec<u8>>(), first);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_crc_streams_over_value_segments() {
        let (resp, _) = large_oob(4096);
        let mut w = Writer::new();
        encode_response_to(&resp, &mut w);
        assert!(w.chunks().count() >= 3, "must actually exercise segmented output");
        assert_eq!(w.crc32(), crc32(&encode_response(&resp)));
    }

    #[test]
    fn checked_frames_roundtrip() {
        let req = ProtocolRequest::Oob { from: NodeId(1), item: ItemId(9) };
        let back = decode_request_checked(&encode_request_checked(&req)).unwrap();
        assert_eq!(format!("{back:?}"), format!("{req:?}"));
        let (resp, _) = large_oob(1024);
        let frame = Bytes::from(encode_response_checked(&resp));
        let back = decode_response_checked_shared(&frame).unwrap();
        assert_eq!(format!("{back:?}"), format!("{resp:?}"));
    }

    #[test]
    fn checked_shared_decode_stays_zero_copy() {
        let (resp, _) = large_oob(1024);
        let frame = Bytes::from(encode_response_checked(&resp));
        match decode_response_checked_shared(&frame).unwrap() {
            ProtocolResponse::Oob(reply) => {
                assert!(reply.value.shares_storage_with(&frame));
            }
            other => panic!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn every_single_byte_flip_is_a_corrupt_frame() {
        let req = ProtocolRequest::Oob { from: NodeId(2), item: ItemId(3) };
        let frame = encode_request_checked(&req);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            match decode_request_checked(&bad) {
                Err(Error::CorruptFrame(_)) => {}
                other => panic!("flip at byte {i}: expected CorruptFrame, got {other:?}"),
            }
        }
    }

    #[test]
    fn short_checked_frames_rejected() {
        for len in 0..CHECKED_HEADER {
            assert!(matches!(decode_request_checked(&vec![0u8; len]), Err(Error::CorruptFrame(_))));
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = encode_request(&ProtocolRequest::Oob { from: NodeId(0), item: ItemId(0) });
        buf[1] = 200;
        assert!(decode_request(&buf).is_err());
        let mut buf = encode_response(&ProtocolResponse::Error("e".into()));
        buf[1] = 200;
        assert!(decode_response(&buf).is_err());
    }
}
