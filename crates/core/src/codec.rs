//! Binary wire codec for the protocol's messages and state.
//!
//! A compact, versioned, little-endian format. The byte-accounting
//! constants in `epidb_common::costs::wire` model this encoding; the codec
//! makes them real: what `Costs` charges is (up to small rounding in the
//! envelope) what these functions produce.
//!
//! The same primitives back the snapshot (persistence) format in
//! [`crate::snapshot`] and the TCP framing in `epidb-net`.

use bytes::Bytes;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_log::LogRecord;
use epidb_store::{ItemValue, UpdateOp};
use epidb_vv::{DbVersionVector, VersionVector};

use crate::messages::{OobReply, PropagationPayload, PropagationResponse, ShippedItem};

/// Format version byte embedded in framed messages and snapshots.
pub const CODEC_VERSION: u8 = 1;

/// Growable output buffer with primitive writers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Zero-copy input cursor with primitive readers.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error if any input is left unconsumed (strict decoding).
    pub fn finish(self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(decode_err(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(decode_err(format!("need {n} bytes, {} remaining", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

fn decode_err(msg: impl Into<String>) -> Error {
    Error::Network(format!("decode: {}", msg.into()))
}

// --- version vectors ------------------------------------------------------

/// Encode a version vector.
pub fn put_vv(w: &mut Writer, vv: &VersionVector) {
    w.u16(vv.len() as u16);
    for (_, v) in vv.iter() {
        w.u64(v);
    }
}

/// Decode a version vector.
pub fn get_vv(r: &mut Reader<'_>) -> Result<VersionVector> {
    let n = r.u16()? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(r.u64()?);
    }
    Ok(VersionVector::from_entries(entries))
}

/// Encode a database version vector.
pub fn put_dbvv(w: &mut Writer, vv: &DbVersionVector) {
    put_vv(w, vv.as_vector());
}

/// Decode a database version vector.
pub fn get_dbvv(r: &mut Reader<'_>) -> Result<DbVersionVector> {
    Ok(DbVersionVector::from_vector(get_vv(r)?))
}

// --- operations -----------------------------------------------------------

const OP_SET: u8 = 0;
const OP_WRITE_RANGE: u8 = 1;
const OP_APPEND: u8 = 2;

/// Encode an update operation.
pub fn put_op(w: &mut Writer, op: &UpdateOp) {
    match op {
        UpdateOp::Set(d) => {
            w.u8(OP_SET);
            w.bytes(d);
        }
        UpdateOp::WriteRange { offset, data } => {
            w.u8(OP_WRITE_RANGE);
            w.u64(*offset as u64);
            w.bytes(data);
        }
        UpdateOp::Append(d) => {
            w.u8(OP_APPEND);
            w.bytes(d);
        }
    }
}

/// Decode an update operation.
pub fn get_op(r: &mut Reader<'_>) -> Result<UpdateOp> {
    match r.u8()? {
        OP_SET => Ok(UpdateOp::Set(Bytes::copy_from_slice(r.bytes()?))),
        OP_WRITE_RANGE => {
            let offset = r.u64()? as usize;
            let data = Bytes::copy_from_slice(r.bytes()?);
            Ok(UpdateOp::WriteRange { offset, data })
        }
        OP_APPEND => Ok(UpdateOp::Append(Bytes::copy_from_slice(r.bytes()?))),
        t => Err(decode_err(format!("unknown op tag {t}"))),
    }
}

// --- propagation messages ---------------------------------------------------

/// Encode a log record.
pub fn put_log_record(w: &mut Writer, rec: &LogRecord) {
    w.u32(rec.item.0);
    w.u64(rec.m);
}

/// Decode a log record.
pub fn get_log_record(r: &mut Reader<'_>) -> Result<LogRecord> {
    Ok(LogRecord { item: ItemId(r.u32()?), m: r.u64()? })
}

/// Encode a shipped item (id + IVV + value).
pub fn put_shipped_item(w: &mut Writer, s: &ShippedItem) {
    w.u32(s.item.0);
    put_vv(w, &s.ivv);
    w.bytes(s.value.as_bytes());
}

/// Decode a shipped item.
pub fn get_shipped_item(r: &mut Reader<'_>) -> Result<ShippedItem> {
    let item = ItemId(r.u32()?);
    let ivv = get_vv(r)?;
    let value = ItemValue::from_slice(r.bytes()?);
    Ok(ShippedItem { item, ivv, value })
}

/// Encode a whole propagation payload.
pub fn put_payload(w: &mut Writer, p: &PropagationPayload) {
    w.u16(p.tails.len() as u16);
    for tail in &p.tails {
        w.u32(tail.len() as u32);
        for rec in tail {
            put_log_record(w, rec);
        }
    }
    w.u32(p.items.len() as u32);
    for item in &p.items {
        put_shipped_item(w, item);
    }
}

/// Decode a propagation payload.
pub fn get_payload(r: &mut Reader<'_>) -> Result<PropagationPayload> {
    let n_tails = r.u16()? as usize;
    let mut tails = Vec::with_capacity(n_tails);
    for _ in 0..n_tails {
        let len = r.u32()? as usize;
        let mut tail = Vec::with_capacity(len);
        for _ in 0..len {
            tail.push(get_log_record(r)?);
        }
        tails.push(tail);
    }
    let n_items = r.u32()? as usize;
    let mut items = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        items.push(get_shipped_item(r)?);
    }
    Ok(PropagationPayload { tails, items })
}

const RESP_CURRENT: u8 = 0;
const RESP_PAYLOAD: u8 = 1;

/// Encode a propagation response.
pub fn put_response(w: &mut Writer, resp: &PropagationResponse) {
    match resp {
        PropagationResponse::YouAreCurrent => w.u8(RESP_CURRENT),
        PropagationResponse::Payload(p) => {
            w.u8(RESP_PAYLOAD);
            put_payload(w, p);
        }
    }
}

/// Decode a propagation response.
pub fn get_response(r: &mut Reader<'_>) -> Result<PropagationResponse> {
    match r.u8()? {
        RESP_CURRENT => Ok(PropagationResponse::YouAreCurrent),
        RESP_PAYLOAD => Ok(PropagationResponse::Payload(get_payload(r)?)),
        t => Err(decode_err(format!("unknown response tag {t}"))),
    }
}

/// Encode an out-of-bound reply.
pub fn put_oob_reply(w: &mut Writer, reply: &OobReply) {
    w.u32(reply.item.0);
    put_vv(w, &reply.ivv);
    w.bytes(reply.value.as_bytes());
    w.u8(reply.from_aux as u8);
}

/// Decode an out-of-bound reply.
pub fn get_oob_reply(r: &mut Reader<'_>) -> Result<OobReply> {
    let item = ItemId(r.u32()?);
    let ivv = get_vv(r)?;
    let value = ItemValue::from_slice(r.bytes()?);
    let from_aux = match r.u8()? {
        0 => false,
        1 => true,
        b => return Err(decode_err(format!("bad bool {b}"))),
    };
    Ok(OobReply { item, ivv, value, from_aux })
}

// --- framed protocol messages (for real transports) ------------------------

/// A complete, self-describing protocol message as it travels over a real
/// transport (e.g. the TCP runtime).
#[derive(Debug)]
pub enum WireMessage {
    /// Pull request: the recipient's node id and DBVV.
    PullRequest {
        /// Requesting node.
        from: NodeId,
        /// Its database version vector.
        dbvv: DbVersionVector,
    },
    /// Pull response from a source node.
    PullResponse {
        /// Replying node.
        from: NodeId,
        /// The decision/payload.
        response: PropagationResponse,
    },
    /// Out-of-bound request for one item.
    OobRequest {
        /// Requesting node.
        from: NodeId,
        /// Wanted item.
        item: ItemId,
    },
    /// Out-of-bound reply.
    OobResponse {
        /// Replying node.
        from: NodeId,
        /// The item copy.
        reply: OobReply,
    },
}

const MSG_PULL_REQ: u8 = 1;
const MSG_PULL_RESP: u8 = 2;
const MSG_OOB_REQ: u8 = 3;
const MSG_OOB_RESP: u8 = 4;

/// Encode a framed message (version byte + tag + body). The length prefix
/// is the transport's job.
pub fn encode_message(msg: &WireMessage) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(CODEC_VERSION);
    match msg {
        WireMessage::PullRequest { from, dbvv } => {
            w.u8(MSG_PULL_REQ);
            w.u16(from.0);
            put_dbvv(&mut w, dbvv);
        }
        WireMessage::PullResponse { from, response } => {
            w.u8(MSG_PULL_RESP);
            w.u16(from.0);
            put_response(&mut w, response);
        }
        WireMessage::OobRequest { from, item } => {
            w.u8(MSG_OOB_REQ);
            w.u16(from.0);
            w.u32(item.0);
        }
        WireMessage::OobResponse { from, reply } => {
            w.u8(MSG_OOB_RESP);
            w.u16(from.0);
            put_oob_reply(&mut w, reply);
        }
    }
    w.into_bytes()
}

/// Decode a framed message, rejecting unknown versions/tags and trailing
/// garbage.
pub fn decode_message(buf: &[u8]) -> Result<WireMessage> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(decode_err(format!("unsupported codec version {version}")));
    }
    let tag = r.u8()?;
    let msg = match tag {
        MSG_PULL_REQ => {
            let from = NodeId(r.u16()?);
            let dbvv = get_dbvv(&mut r)?;
            WireMessage::PullRequest { from, dbvv }
        }
        MSG_PULL_RESP => {
            let from = NodeId(r.u16()?);
            let response = get_response(&mut r)?;
            WireMessage::PullResponse { from, response }
        }
        MSG_OOB_REQ => {
            let from = NodeId(r.u16()?);
            let item = ItemId(r.u32()?);
            WireMessage::OobRequest { from, item }
        }
        MSG_OOB_RESP => {
            let from = NodeId(r.u16()?);
            let reply = get_oob_reply(&mut r)?;
            WireMessage::OobResponse { from, reply }
        }
        t => return Err(decode_err(format!("unknown message tag {t}"))),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(1996);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1996);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut w = Writer::new();
        w.u8(CODEC_VERSION);
        w.u8(3); // OobRequest
        w.u16(0);
        w.u32(9);
        w.u8(0xFF); // garbage
        assert!(decode_message(&w.into_bytes()).is_err());
    }

    #[test]
    fn vv_roundtrip() {
        let v = vv(&[0, 5, u64::MAX, 7]);
        let mut w = Writer::new();
        put_vv(&mut w, &v);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(get_vv(&mut r).unwrap(), v);
        r.finish().unwrap();
    }

    #[test]
    fn ops_roundtrip() {
        for op in [
            UpdateOp::set(&b"whole"[..]),
            UpdateOp::write_range(17, &b"patch"[..]),
            UpdateOp::append(&b""[..]),
        ] {
            let mut w = Writer::new();
            put_op(&mut w, &op);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            assert_eq!(get_op(&mut r).unwrap(), op);
            r.finish().unwrap();
        }
    }

    #[test]
    fn payload_roundtrip() {
        let payload = PropagationPayload {
            tails: vec![
                vec![LogRecord { item: ItemId(1), m: 3 }, LogRecord { item: ItemId(2), m: 9 }],
                vec![],
            ],
            items: vec![ShippedItem {
                item: ItemId(1),
                ivv: vv(&[3, 0]),
                value: ItemValue::from_slice(b"contents"),
            }],
        };
        let mut w = Writer::new();
        put_payload(&mut w, &payload);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let back = get_payload(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.tails, payload.tails);
        assert_eq!(back.items.len(), 1);
        assert_eq!(back.items[0].item, ItemId(1));
        assert_eq!(back.items[0].ivv, vv(&[3, 0]));
        assert_eq!(back.items[0].value.as_bytes(), b"contents");
    }

    #[test]
    fn messages_roundtrip() {
        let mut dbvv = DbVersionVector::zero(3);
        dbvv.record_local_update(NodeId(2));
        let msgs = vec![
            WireMessage::PullRequest { from: NodeId(1), dbvv: dbvv.clone() },
            WireMessage::PullResponse {
                from: NodeId(0),
                response: PropagationResponse::YouAreCurrent,
            },
            WireMessage::OobRequest { from: NodeId(2), item: ItemId(77) },
            WireMessage::OobResponse {
                from: NodeId(0),
                reply: OobReply {
                    item: ItemId(77),
                    ivv: vv(&[1, 2, 3]),
                    value: ItemValue::from_slice(b"v"),
                    from_aux: true,
                },
            },
        ];
        for msg in msgs {
            let buf = encode_message(&msg);
            let back = decode_message(&buf).unwrap();
            match (&msg, &back) {
                (
                    WireMessage::PullRequest { from: f1, dbvv: d1 },
                    WireMessage::PullRequest { from: f2, dbvv: d2 },
                ) => {
                    assert_eq!(f1, f2);
                    assert_eq!(d1, d2);
                }
                (
                    WireMessage::PullResponse { from: f1, response: r1 },
                    WireMessage::PullResponse { from: f2, response: r2 },
                ) => {
                    assert_eq!(f1, f2);
                    assert!(matches!(
                        (r1, r2),
                        (PropagationResponse::YouAreCurrent, PropagationResponse::YouAreCurrent)
                    ));
                }
                (
                    WireMessage::OobRequest { from: f1, item: i1 },
                    WireMessage::OobRequest { from: f2, item: i2 },
                ) => {
                    assert_eq!(f1, f2);
                    assert_eq!(i1, i2);
                }
                (
                    WireMessage::OobResponse { from: f1, reply: r1 },
                    WireMessage::OobResponse { from: f2, reply: r2 },
                ) => {
                    assert_eq!(f1, f2);
                    assert_eq!(r1.item, r2.item);
                    assert_eq!(r1.ivv, r2.ivv);
                    assert_eq!(r1.value, r2.value);
                    assert_eq!(r1.from_aux, r2.from_aux);
                }
                _ => panic!("message kind changed in roundtrip"),
            }
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut buf = encode_message(&WireMessage::OobRequest { from: NodeId(0), item: ItemId(0) });
        buf[0] = 99;
        assert!(decode_message(&buf).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = encode_message(&WireMessage::OobRequest { from: NodeId(0), item: ItemId(0) });
        buf[1] = 200;
        assert!(decode_message(&buf).is_err());
    }
}
