//! Scheduled update propagation — `SendPropagation` and
//! `AcceptPropagation` (§5.1, Figs. 2–3) plus the two-message pull
//! orchestration.

use std::collections::HashSet;

use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{ConflictEvent, ConflictSite, ItemId, NodeId, Result};
use epidb_log::LogRecord;
use epidb_vv::DbVersionVector;

use crate::engine::{Engine, LocalTransport};
use crate::messages::{PropagationPayload, PropagationResponse, ShippedItem};
use crate::policy::{lww_remote_wins, ConflictPolicy};
use crate::replica::Replica;

/// What `AcceptPropagation` (plus the follow-up intra-node propagation)
/// did with a received payload.
#[derive(Clone, Debug, Default)]
pub struct AcceptOutcome {
    /// Items whose regular copy was brought up to date (adopted or, under
    /// the LWW policy, merged).
    pub copied: Vec<ItemId>,
    /// Conflicts declared while processing the payload.
    pub conflicts: usize,
    /// Auxiliary-log records replayed onto regular copies by the
    /// intra-node propagation step.
    pub replayed: u64,
    /// Auxiliary copies discarded because the regular copy caught up.
    pub aux_discarded: Vec<ItemId>,
}

/// Result of one anti-entropy pull.
#[derive(Clone, Debug)]
pub enum PullOutcome {
    /// The source replied "you are current": the recipient's DBVV dominates
    /// or equals the source's. Detected in O(n) — constant in the number of
    /// data items.
    UpToDate,
    /// Updates were propagated.
    Propagated(AcceptOutcome),
}

impl PullOutcome {
    /// Items copied by this pull (empty when up to date).
    pub fn copied(&self) -> &[ItemId] {
        match self {
            PullOutcome::UpToDate => &[],
            PullOutcome::Propagated(o) => &o.copied,
        }
    }
}

/// Outcome of the shared `SendPropagation` first half: the recipient is
/// current, tails can be served, or the retention-pruned log no longer
/// covers the recipient's gap and the source must punt to reconciliation.
pub(crate) enum TailSelection {
    /// The recipient's DBVV dominates or equals: nothing to send.
    Current,
    /// Per-origin tails plus the selected item set `S`.
    Tails(Vec<Vec<LogRecord>>, Vec<ItemId>),
    /// Some gapped origin `k` has `floor[k] > recipient_dbvv[k]`: records
    /// the recipient needs were evicted by log retention, so the tail
    /// vector cannot cover the gap.
    Uncovered,
}

impl Replica {
    /// The paper's `SendPropagation(i, V_i)` (Fig. 2), executed at the
    /// *source* `j = self` when recipient `i` asks to propagate.
    ///
    /// Compares the recipient's DBVV with the local one; if the recipient
    /// dominates or equals, answers [`PropagationResponse::YouAreCurrent`]
    /// — the constant-time identical-replica detection. Otherwise builds
    /// the tail vector `D` (per-origin records the recipient missed) and
    /// the item set `S` (via the `IsSelected` flags, O(m)) and ships both.
    ///
    /// Only regular copies are ever included in `S`; auxiliary state never
    /// participates in scheduled propagation (§5.1).
    pub fn prepare_propagation(&mut self, recipient_dbvv: &DbVersionVector) -> PropagationResponse {
        let (tails, s_items) = match self.select_tails(recipient_dbvv) {
            TailSelection::Current => return PropagationResponse::YouAreCurrent,
            TailSelection::Uncovered => return PropagationResponse::NeedRecon,
            TailSelection::Tails(tails, s_items) => (tails, s_items),
        };
        // Materialize the shipped items. Values are *shared*, not copied:
        // `ItemValue::share` hands out a refcounted view, so building `S`
        // costs O(|S|) regardless of value sizes.
        let mut items = Vec::with_capacity(s_items.len());
        for &x in &s_items {
            let it = self.store.get_mut(x).expect("logged item exists");
            items.push(ShippedItem { item: x, ivv: it.ivv.clone(), value: it.value.share() });
        }

        let shipped = items.len() as u64;
        self.trace_record(TraceStep::SendPropagation, None, None, OrdTag::NoCompare, shipped);
        self.post_step_audit("send-propagation");
        PropagationResponse::Payload(PropagationPayload { tails, items })
    }

    /// Shared first half of `SendPropagation`: the DBVV comparison, the
    /// tail vector `D`, and the selected item set `S` — everything up to
    /// (but excluding) materializing per-item payloads, so the whole-item
    /// and delta-offer paths can each ship only what they need.
    ///
    /// Returns [`TailSelection::Current`] when the recipient is current
    /// (the constant-time identical-replica detection, with its
    /// trace/audit already recorded), and [`TailSelection::Uncovered`]
    /// when log retention has evicted records inside the recipient's gap
    /// — the caller must degrade to set reconciliation.
    pub(crate) fn select_tails(&mut self, recipient_dbvv: &DbVersionVector) -> TailSelection {
        let mut cmps = 0;
        let ord = recipient_dbvv.compare_counted(&self.dbvv, &mut cmps);
        self.costs.vv_entry_cmps += cmps;
        if ord.dominates_or_equal() {
            self.trace_record(TraceStep::SendUpToDate, None, None, OrdTag::NoCompare, 0);
            self.post_step_audit("send-up-to-date");
            return TailSelection::Current;
        }

        let n = self.n_nodes();
        // Coverage check: for every gapped origin `k` the tail
        // `(recipient_dbvv[k], dbvv[k]]` must still be fully retained,
        // i.e. no eviction reached past the recipient's watermark.
        for k in NodeId::all(n) {
            if self.dbvv.get(k) > recipient_dbvv.get(k)
                && self.floor[k.index()] > recipient_dbvv.get(k)
            {
                self.trace_record(TraceStep::SendNeedRecon, None, None, OrdTag::NoCompare, 0);
                self.post_step_audit("send-need-recon");
                return TailSelection::Uncovered;
            }
        }

        let mut tails: Vec<Vec<LogRecord>> = vec![Vec::new(); n];
        let mut examined = 0;
        for k in NodeId::all(n) {
            if self.dbvv.get(k) > recipient_dbvv.get(k) {
                tails[k.index()] = self.log.tail_after(k, recipient_dbvv.get(k), &mut examined);
            }
        }
        self.costs.log_records_examined += examined;

        // Compute S = union of items referenced by D, in O(total records),
        // using the IsSelected flags (§6).
        let mut s_items: Vec<ItemId> = Vec::new();
        for tail in &tails {
            for rec in tail {
                let flag = &mut self.is_selected[rec.item.index()];
                if !*flag {
                    *flag = true;
                    s_items.push(rec.item);
                }
            }
        }
        for &x in &s_items {
            self.is_selected[x.index()] = false;
        }
        self.costs.items_scanned += s_items.len() as u64;
        TailSelection::Tails(tails, s_items)
    }

    /// The paper's `AcceptPropagation(D, S)` (Fig. 3), executed at the
    /// *recipient* `i = self`, followed by `IntraNodePropagation` (Fig. 4)
    /// for the items copied.
    ///
    /// For each shipped item: adopt it if its IVV dominates the local
    /// regular copy's; declare a conflict (and strip its records from the
    /// tail vector) if the IVVs are concurrent. Then append the surviving
    /// tails to the local log vector via `AddLogRecord`.
    pub fn accept_propagation(
        &mut self,
        source: NodeId,
        payload: PropagationPayload,
    ) -> Result<AcceptOutcome> {
        self.journal_mutation(|| crate::journal::Mutation::Propagation {
            from: source,
            payload: payload.clone(),
        });
        let mut outcome = AcceptOutcome::default();
        let mut refused: HashSet<ItemId> = HashSet::new();

        for shipped in payload.items {
            self.check_item(shipped.item)?;
            let x = shipped.item;
            let mut cmps = 0;
            let ord = {
                let local = self.store.get(x).expect("checked");
                shipped.ivv.compare_counted(&local.ivv, &mut cmps)
            };
            self.costs.vv_entry_cmps += cmps;
            match ord {
                epidb_vv::VvOrd::Dominates => {
                    // Received copy is strictly newer: adopt it and apply
                    // DBVV maintenance rule 3. Whole-item adoption breaks
                    // the local operation chain for delta propagation.
                    {
                        let local = self.store.get(x).expect("checked");
                        self.dbvv.absorb_item_copy(&local.ivv, &shipped.ivv)?;
                    }
                    self.store.adopt(x, shipped.value.into(), shipped.ivv)?;
                    self.op_cache.clear_item(x);
                    self.costs.items_copied += 1;
                    outcome.copied.push(x);
                    self.trace_record(
                        TraceStep::AcceptItem,
                        Some(x),
                        Some(source),
                        OrdTag::Dominates,
                        0,
                    );
                }
                epidb_vv::VvOrd::Equal => {
                    // Unreachable in conflict-free operation; harmless no-op
                    // when a previously refused item is re-shipped.
                    self.counters.equal_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                    self.trace_record(
                        TraceStep::AcceptItem,
                        Some(x),
                        Some(source),
                        OrdTag::Equal,
                        0,
                    );
                }
                epidb_vv::VvOrd::DominatedBy => {
                    // "vi(x) dominates vj(x) cannot happen" (§5.1) in
                    // conflict-free operation; reachable only after an
                    // external conflict resolution. Ignore the stale copy.
                    self.counters.stale_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                    self.trace_record(
                        TraceStep::AcceptItem,
                        Some(x),
                        Some(source),
                        OrdTag::DominatedBy,
                        0,
                    );
                }
                epidb_vv::VvOrd::Concurrent => {
                    outcome.conflicts += 1;
                    let offending = {
                        let local = self.store.get(x).expect("checked");
                        shipped.ivv.offending_pair(&local.ivv)
                    };
                    self.report_conflict(ConflictEvent {
                        item: x,
                        detected_at: self.id,
                        peer: Some(source),
                        site: ConflictSite::Propagation,
                        offending,
                    });
                    match self.policy {
                        ConflictPolicy::Report if self.debug_adopt_conflicts => {
                            // Seeded mutant (model-checker self-test, see
                            // `Replica::debug_break_conflict_adopt`): adopt
                            // the concurrent copy with no DBVV absorb,
                            // breaking maintenance rule 3.
                            self.store.adopt(x, shipped.value.into(), shipped.ivv)?;
                            self.op_cache.clear_item(x);
                            self.costs.items_copied += 1;
                            outcome.copied.push(x);
                            self.trace_record(
                                TraceStep::AcceptItem,
                                Some(x),
                                Some(source),
                                OrdTag::Concurrent,
                                0,
                            );
                        }
                        ConflictPolicy::Report => {
                            // Strip this item's records from the tail
                            // vector (Fig. 3) and refuse the copy.
                            refused.insert(x);
                            self.trace_record(
                                TraceStep::RefuseItem,
                                Some(x),
                                Some(source),
                                OrdTag::Concurrent,
                                0,
                            );
                        }
                        ConflictPolicy::ResolveLww => {
                            let m = self.resolve_lww(x, &shipped)?;
                            outcome.copied.push(x);
                            self.trace_record(
                                TraceStep::LwwResolve,
                                Some(x),
                                Some(source),
                                OrdTag::Concurrent,
                                m,
                            );
                        }
                    }
                }
            }
        }

        // Append the (surviving) tails to the local log vector, head to
        // tail, via AddLogRecord.
        let mut appended: u64 = 0;
        for (k, tail) in payload.tails.iter().enumerate() {
            let k = NodeId::from_index(k);
            for rec in tail {
                if refused.contains(&rec.item) {
                    continue;
                }
                self.log.add_record(k, *rec);
                self.costs.log_records_examined += 1;
                appended += 1;
            }
            self.enforce_log_retention(k);
        }
        self.trace_record(TraceStep::AppendTails, None, Some(source), OrdTag::NoCompare, appended);

        // Step 3: intra-node propagation for the copied items (Fig. 4).
        let intra = self.intra_node_propagation(&outcome.copied);
        outcome.replayed = intra.replayed;
        outcome.aux_discarded = intra.discarded;
        outcome.conflicts += intra.conflicts;

        self.post_step_audit("accept-propagation");
        Ok(outcome)
    }

    /// Resolve a propagation conflict under [`ConflictPolicy::ResolveLww`]:
    /// merge the IVVs (component-wise max), absorb the merge into the DBVV
    /// (the generalized rule 3), install the deterministic winner value,
    /// and record the resolution as a fresh local update so it dominates
    /// both parents. Returns the `m` of the resolution's log record.
    pub(crate) fn resolve_lww(&mut self, x: ItemId, shipped: &ShippedItem) -> Result<u64> {
        let local_ivv = self.store.get(x)?.ivv.clone();
        let mut merged = local_ivv.clone();
        merged.merge_max(&shipped.ivv)?;
        self.dbvv.absorb_item_copy(&local_ivv, &merged)?;
        let remote_wins = {
            let it = self.store.get(x)?;
            lww_remote_wins(it.value.as_bytes(), &local_ivv, &shipped.value, &shipped.ivv)
        };
        if remote_wins {
            // Refcount bump: the shipped value is already a shared buffer.
            self.store.adopt(x, shipped.value.clone().into(), merged)?;
        } else {
            // Local value survives in place; only the IVV merges.
            self.store.get_mut(x)?.ivv = merged;
        }
        self.op_cache.clear_item(x);
        // The resolution is a new update performed here.
        let it = self.store.get_mut(x)?;
        it.ivv.bump(self.id);
        let m = self.dbvv.record_local_update(self.id);
        self.log.add_record(self.id, LogRecord { item: x, m });
        self.counters.lww_resolutions += 1;
        Ok(m)
    }
}

/// Perform one anti-entropy pull: `recipient` propagates updates from
/// `source` (§5.1), with full message/byte accounting.
///
/// Message 1 (recipient → source): the recipient's DBVV.
/// Message 2 (source → recipient): "you are current" or `(D, S)`.
///
/// A thin wrapper over [`Engine::pull`] with the in-process
/// [`LocalTransport`] — the same dispatch path every other runtime uses.
pub fn pull(recipient: &mut Replica, source: &mut Replica) -> Result<PullOutcome> {
    debug_assert_eq!(recipient.n_nodes(), source.n_nodes());
    Engine::pull(recipient, &mut LocalTransport::new(source))
}
