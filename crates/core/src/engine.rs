//! The transport-agnostic protocol engine: one dispatch surface for every
//! runtime.
//!
//! The paper's protocol is a handful of request/response exchanges — the
//! two-message pull (§5.1, Figs. 2–3), the four-message delta variant
//! (§2's update-record shipping), and the one-item out-of-bound copy
//! (§5.2). This module gives those exchanges a single vocabulary
//! ([`ProtocolRequest`] / [`ProtocolResponse`]), a single responder entry
//! point ([`Engine::handle`]), and initiator-side drivers
//! ([`Engine::pull`], [`Engine::pull_delta`], [`Engine::oob`]) that run a
//! full sync round against any [`Transport`].
//!
//! Every runtime is a thin adapter over this module:
//!
//! * the in-process helpers (`pull`, `pull_delta`, `oob_copy`) use
//!   [`LocalTransport`] — two replicas in one address space;
//! * `epidb-net`'s `ThreadedCluster` moves the same enums over channels;
//! * `epidb-net`'s `TcpCluster` frames them with [`crate::codec`] — the
//!   wire codec serializes exactly the values the engine executes.
//!
//! Cost accounting ([`Costs::charge_message`](epidb_common::Costs)),
//! protocol tracing, and paranoid post-step audits all live at this
//! dispatch boundary, so every transport gets them uniformly and for free.

use std::time::Instant;

use epidb_common::costs::wire;
use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{Error, ItemId, NodeId, Result, ShardId};
use epidb_vv::DbVersionVector;

use crate::delta::{DeltaOfferResponse, DeltaPayload, DeltaRequest};
use crate::messages::{FullPullReply, OobReply, PropagationResponse, ReconReply};
use crate::oob::OobOutcome;
use crate::propagation::PullOutcome;
use crate::recon::{ReconDriver, ReconStep};
use crate::replica::Replica;
use crate::retry::RetryPolicy;

/// A request message of the protocol, as executed by [`Engine::handle`]
/// and serialized by [`crate::codec`].
#[derive(Clone, Debug)]
pub enum ProtocolRequest {
    /// Message 1 of the two-message pull (§5.1): the recipient's DBVV.
    Pull {
        /// The requesting (recipient) node.
        from: NodeId,
        /// The recipient's database version vector.
        dbvv: DbVersionVector,
    },
    /// Message 1 of the delta-mode pull: same DBVV, but the source answers
    /// with an offer instead of values.
    DeltaPull {
        /// The requesting (recipient) node.
        from: NodeId,
        /// The recipient's database version vector.
        dbvv: DbVersionVector,
    },
    /// Message 3 of the delta-mode pull: the want-list.
    DeltaFetch {
        /// The requesting (recipient) node.
        from: NodeId,
        /// The items wanted, each with the recipient's current IVV.
        wants: DeltaRequest,
    },
    /// An out-of-bound request for one item (§5.2).
    Oob {
        /// The requesting node.
        from: NodeId,
        /// The wanted item.
        item: ItemId,
    },
    /// One step of the cold-start reconciliation descent (see
    /// [`crate::recon`]): probe digest-tree ranges and fetch differing
    /// leaves.
    Recon {
        /// The requesting (recipient) node.
        from: NodeId,
        /// Half-open item ranges whose child digests are wanted.
        ranges: Vec<(u32, u32)>,
        /// Differing leaves whose full items are wanted.
        fetch: Vec<ItemId>,
    },
    /// A whole-database pull — the O(N) bottom rung of the degradation
    /// ladder (delta → recon → whole-pull).
    FullPull {
        /// The requesting (recipient) node.
        from: NodeId,
    },
    /// Ask a multi-database server which databases it hosts (the prelude
    /// to server-level anti-entropy, §2's one-instance-per-database rule).
    ListDatabases {
        /// The requesting node.
        from: NodeId,
    },
    /// Route a request to one named database of a multi-database server.
    Db {
        /// The database the inner request addresses.
        name: String,
        /// The request to run against that database's replica.
        req: Box<ProtocolRequest>,
    },
    /// Route a request to one shard of a sharded (partially replicating)
    /// node — see [`crate::shard`]. A node that does not own the shard
    /// refuses with [`Error::NotServedHere`] carrying its shard-map entry.
    Shard {
        /// The shard the inner request addresses.
        shard: ShardId,
        /// The request to run against that shard's replica.
        req: Box<ProtocolRequest>,
    },
}

/// A response message of the protocol, paired with [`ProtocolRequest`].
#[derive(Clone, Debug)]
pub enum ProtocolResponse {
    /// Message 2 of the pull: "you are current" or the tails + items.
    Pull(PropagationResponse),
    /// Message 2 of the delta pull: "you are current" or the offer.
    DeltaOffer(DeltaOfferResponse),
    /// Message 4 of the delta pull: the requested data.
    DeltaPayload(DeltaPayload),
    /// Reply to an out-of-bound request.
    Oob(OobReply),
    /// Reply to one reconciliation descent step.
    Recon(ReconReply),
    /// Reply to a whole-database pull.
    Full(FullPullReply),
    /// The database names a server hosts, sorted.
    Databases(Vec<String>),
    /// A routed response from one named database.
    Db {
        /// The database the inner response came from.
        name: String,
        /// The response from that database's replica.
        resp: Box<ProtocolResponse>,
    },
    /// A routed response from one shard of a sharded node.
    Shard {
        /// The shard the inner response came from.
        shard: ShardId,
        /// The response from that shard's replica.
        resp: Box<ProtocolResponse>,
    },
    /// A typed routing refusal ([`Error::NotServedHere`] or
    /// [`Error::ShardMoving`]) carried in-band so it survives byte-level
    /// transports with its structure — owners list, retryability — intact.
    /// [`Transport::exchange`] implementations convert it back into the
    /// `Err` it wraps, so drivers never observe it directly.
    Refused(Error),
    /// The responder failed to execute the request. Real transports carry
    /// the error back in-band; [`Transport::exchange`] implementations
    /// convert it into an [`Error`] so drivers never observe it directly.
    Error(String),
}

impl ProtocolRequest {
    /// The node that initiated this request (the routing envelope is
    /// transparent).
    pub fn from(&self) -> NodeId {
        match self {
            ProtocolRequest::Pull { from, .. }
            | ProtocolRequest::DeltaPull { from, .. }
            | ProtocolRequest::DeltaFetch { from, .. }
            | ProtocolRequest::Oob { from, .. }
            | ProtocolRequest::Recon { from, .. }
            | ProtocolRequest::FullPull { from }
            | ProtocolRequest::ListDatabases { from } => *from,
            ProtocolRequest::Db { req, .. } | ProtocolRequest::Shard { req, .. } => req.from(),
        }
    }

    /// Short kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolRequest::Pull { .. } => "pull",
            ProtocolRequest::DeltaPull { .. } => "delta-pull",
            ProtocolRequest::DeltaFetch { .. } => "delta-fetch",
            ProtocolRequest::Oob { .. } => "oob",
            ProtocolRequest::Recon { .. } => "recon",
            ProtocolRequest::FullPull { .. } => "full-pull",
            ProtocolRequest::ListDatabases { .. } => "list-databases",
            ProtocolRequest::Db { .. } => "db",
            ProtocolRequest::Shard { .. } => "shard",
        }
    }

    /// Control bytes of the whole request message, envelope included. The
    /// [`Db`](ProtocolRequest::Db) routing envelope is modeled by the
    /// message header (its name travels in the header's budget), so routed
    /// and unrouted requests charge identically — a requirement for the
    /// cost-parity guarantee across transports.
    pub fn control_bytes(&self) -> u64 {
        wire::MSG_HEADER + self.body_control_bytes()
    }

    fn body_control_bytes(&self) -> u64 {
        match self {
            ProtocolRequest::Pull { dbvv, .. } | ProtocolRequest::DeltaPull { dbvv, .. } => {
                wire::vv(dbvv.len())
            }
            ProtocolRequest::DeltaFetch { wants, .. } => wants.control_bytes(),
            ProtocolRequest::Oob { .. } => wire::ITEM_ID,
            ProtocolRequest::Recon { ranges, fetch, .. } => {
                ranges.len() as u64 * wire::RECON_RANGE + fetch.len() as u64 * wire::ITEM_ID
            }
            ProtocolRequest::FullPull { .. } => 0,
            ProtocolRequest::ListDatabases { .. } => 0,
            ProtocolRequest::Db { req, .. } | ProtocolRequest::Shard { req, .. } => {
                req.body_control_bytes()
            }
        }
    }

    /// Payload bytes of the request message (always zero: requests carry
    /// version information only, never item values).
    pub fn payload_bytes(&self) -> u64 {
        0
    }
}

impl ProtocolResponse {
    /// Short kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolResponse::Pull(_) => "pull",
            ProtocolResponse::DeltaOffer(_) => "delta-offer",
            ProtocolResponse::DeltaPayload(_) => "delta-payload",
            ProtocolResponse::Oob(_) => "oob",
            ProtocolResponse::Recon(_) => "recon",
            ProtocolResponse::Full(_) => "full",
            ProtocolResponse::Databases(_) => "databases",
            ProtocolResponse::Db { .. } => "db",
            ProtocolResponse::Shard { .. } => "shard",
            ProtocolResponse::Refused(_) => "refused",
            ProtocolResponse::Error(_) => "error",
        }
    }

    /// Control bytes of the whole response message, envelope included (the
    /// [`Db`](ProtocolResponse::Db) envelope is header-budget, as on the
    /// request side).
    pub fn control_bytes(&self) -> u64 {
        wire::MSG_HEADER + self.body_control_bytes()
    }

    fn body_control_bytes(&self) -> u64 {
        match self {
            ProtocolResponse::Pull(r) => r.control_bytes(),
            ProtocolResponse::DeltaOffer(r) => r.control_bytes(),
            ProtocolResponse::DeltaPayload(p) => p.control_bytes(),
            ProtocolResponse::Oob(r) => r.control_bytes(),
            ProtocolResponse::Recon(r) => r.control_bytes(),
            ProtocolResponse::Full(r) => r.control_bytes(),
            ProtocolResponse::Databases(names) => names.iter().map(|n| 4 + n.len() as u64).sum(),
            ProtocolResponse::Db { resp, .. } | ProtocolResponse::Shard { resp, .. } => {
                resp.body_control_bytes()
            }
            ProtocolResponse::Refused(e) => e.to_string().len() as u64,
            ProtocolResponse::Error(msg) => msg.len() as u64,
        }
    }

    /// Payload bytes of the response message (item values being copied).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            ProtocolResponse::Pull(r) => r.payload_bytes(),
            ProtocolResponse::DeltaPayload(p) => p.payload_bytes(),
            ProtocolResponse::Oob(r) => r.value.len() as u64,
            ProtocolResponse::Recon(r) => r.payload_bytes(),
            ProtocolResponse::Full(r) => r.payload_bytes(),
            ProtocolResponse::Db { resp, .. } | ProtocolResponse::Shard { resp, .. } => {
                resp.payload_bytes()
            }
            ProtocolResponse::DeltaOffer(_)
            | ProtocolResponse::Databases(_)
            | ProtocolResponse::Refused(_)
            | ProtocolResponse::Error(_) => 0,
        }
    }
}

/// How bytes move: one request out, one response back.
///
/// Implementations decide the medium — a direct function call
/// ([`LocalTransport`]), a channel pair, a framed socket — and surface
/// delivery failure (loss, timeout, a crashed peer) as [`Error`]. A remote
/// [`ProtocolResponse::Error`] must also be converted to `Err`, so drivers
/// only ever see successful, well-typed responses.
pub trait Transport {
    /// The node id of the peer this transport reaches.
    fn peer(&self) -> NodeId;

    /// Send one request and await the peer's response.
    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse>;
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn peer(&self) -> NodeId {
        (**self).peer()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        (**self).exchange(req)
    }
}

/// Access to the initiating replica between exchanges.
///
/// Drivers never hold the replica across a blocking
/// [`Transport::exchange`] — under a threaded runtime that would hold the
/// replica's lock while waiting on a peer that may be waiting on us
/// (mutual pulls would deadlock). Implementations scope each borrow to one
/// local protocol step.
pub trait ReplicaHost {
    /// Run `f` over the replica, holding it only for the duration of `f`.
    fn with<R>(&mut self, f: impl FnOnce(&mut Replica) -> R) -> R;
}

impl ReplicaHost for Replica {
    fn with<R>(&mut self, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(self)
    }
}

/// The in-process transport: the "peer" is another replica in the same
/// address space, and an exchange is a direct call to [`Engine::handle`].
pub struct LocalTransport<'a> {
    source: &'a mut Replica,
}

impl<'a> LocalTransport<'a> {
    /// Wrap the source replica of an in-process exchange.
    pub fn new(source: &'a mut Replica) -> LocalTransport<'a> {
        LocalTransport { source }
    }
}

impl Transport for LocalTransport<'_> {
    fn peer(&self) -> NodeId {
        self.source.id()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        Engine::handle(self.source, req)
    }
}

/// A transport that reaches one named database of a multi-database server
/// by wrapping every exchange in the [`ProtocolRequest::Db`] routing
/// envelope.
pub struct DbTransport<'a, T: Transport> {
    inner: &'a mut T,
    name: &'a str,
}

impl<'a, T: Transport> DbTransport<'a, T> {
    /// Route exchanges on `inner` to the peer server's database `name`.
    pub fn new(inner: &'a mut T, name: &'a str) -> DbTransport<'a, T> {
        DbTransport { inner, name }
    }
}

impl<T: Transport> Transport for DbTransport<'_, T> {
    fn peer(&self) -> NodeId {
        self.inner.peer()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let envelope = ProtocolRequest::Db { name: self.name.to_string(), req: Box::new(req) };
        match self.inner.exchange(envelope)? {
            ProtocolResponse::Db { resp, .. } => Ok(*resp),
            other => Err(unexpected("db-routed exchange", &other)),
        }
    }
}

/// A transport that reaches one shard of a sharded node by wrapping every
/// exchange in the [`ProtocolRequest::Shard`] routing envelope — the
/// shard-level twin of [`DbTransport`].
pub struct ShardTransport<'a, T: Transport> {
    inner: &'a mut T,
    shard: ShardId,
}

impl<'a, T: Transport> ShardTransport<'a, T> {
    /// Route exchanges on `inner` to the peer node's shard `shard`.
    pub fn new(inner: &'a mut T, shard: ShardId) -> ShardTransport<'a, T> {
        ShardTransport { inner, shard }
    }
}

impl<T: Transport> Transport for ShardTransport<'_, T> {
    fn peer(&self) -> NodeId {
        self.inner.peer()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let envelope = ProtocolRequest::Shard { shard: self.shard, req: Box::new(req) };
        match self.inner.exchange(envelope)? {
            ProtocolResponse::Shard { resp, .. } => Ok(*resp),
            other => Err(unexpected("shard-routed exchange", &other)),
        }
    }
}

/// Which shipping mode a sync round uses (§2: whole data copying vs.
/// applying log records for missing updates).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncMode {
    /// Whole-item copying — the paper's presentation context.
    WholeItem,
    /// Update-record (delta) shipping via the op cache.
    Delta,
}

/// Build the error for a response of the wrong shape (or a remote error a
/// transport let through).
pub(crate) fn unexpected(context: &str, resp: &ProtocolResponse) -> Error {
    match resp {
        ProtocolResponse::Error(msg) => Error::Network(format!("{context}: peer error: {msg}")),
        // A typed refusal a transport let through keeps its type: its
        // retryability story must not be flattened into a generic network
        // error.
        ProtocolResponse::Refused(e) => e.clone(),
        other => Error::Network(format!("{context}: unexpected {} response", other.kind())),
    }
}

/// How an initiator coalesces a delta round's want-list into fetch frames.
///
/// A gossip round over many small items wants a handful of large frames,
/// not one frame per item (per-frame costs — header, CRC, syscall —
/// dominate tiny payloads) and not one unbounded frame (which can trip
/// the transport's [`crate::codec::MAX_FRAME`] limit). The budget bounds
/// the *item count* per `DeltaFetch`; the responder's byte budget
/// ([`Replica::set_delta_frame_budget`]) bounds the reply, and anything
/// it leaves unserved is re-requested in the next frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipBudget {
    /// Maximum wanted items carried by one `DeltaFetch` frame. Values
    /// below 1 behave as 1 (a frame that can carry nothing makes no
    /// progress).
    pub max_frame_items: usize,
}

impl GossipBudget {
    /// No coalescing: the whole want-list rides one fetch frame — the
    /// exchange shape (and therefore the per-node [`epidb_common::Costs`])
    /// of the unchunked protocol.
    pub const UNBOUNDED: GossipBudget = GossipBudget { max_frame_items: usize::MAX };

    /// At most `items` wants per fetch frame.
    pub const fn per_frame(items: usize) -> GossipBudget {
        GossipBudget { max_frame_items: items }
    }
}

impl Default for GossipBudget {
    fn default() -> GossipBudget {
        GossipBudget::UNBOUNDED
    }
}

/// The protocol engine. A unit type: all state lives in the replicas; the
/// engine is the single dispatch surface over them.
pub struct Engine;

impl Engine {
    /// Execute one request against the responder's replica — the single
    /// entry point every runtime serves requests through.
    ///
    /// Charges the responder for the response message and runs the
    /// paranoid post-step audit at this boundary, so accounting and
    /// auditing are uniform across transports. Database-routed requests
    /// ([`ProtocolRequest::Db`] / [`ProtocolRequest::ListDatabases`]) are
    /// a [`Server`](crate::Server)-level concern — see
    /// [`Engine::handle_server`](crate::server) — and fail here.
    pub fn handle(replica: &mut Replica, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let from = req.from();
        let resp = match req {
            ProtocolRequest::Pull { dbvv, .. } => {
                ProtocolResponse::Pull(replica.prepare_propagation(&dbvv))
            }
            ProtocolRequest::DeltaPull { dbvv, .. } => {
                ProtocolResponse::DeltaOffer(replica.prepare_delta_offer(&dbvv))
            }
            ProtocolRequest::DeltaFetch { wants, .. } => {
                ProtocolResponse::DeltaPayload(replica.serve_delta_request(&wants)?)
            }
            ProtocolRequest::Oob { item, .. } => {
                let reply = replica.serve_oob(item)?;
                replica.trace_record(
                    TraceStep::OobServe,
                    Some(item),
                    Some(from),
                    OrdTag::NoCompare,
                    reply.from_aux as u64,
                );
                replica.post_step_audit("serve-oob");
                ProtocolResponse::Oob(reply)
            }
            ProtocolRequest::Recon { ranges, fetch, .. } => {
                ProtocolResponse::Recon(replica.serve_recon(&ranges, &fetch)?)
            }
            ProtocolRequest::FullPull { .. } => ProtocolResponse::Full(replica.serve_full_pull()?),
            ProtocolRequest::ListDatabases { .. }
            | ProtocolRequest::Db { .. }
            | ProtocolRequest::Shard { .. } => {
                return Err(Error::Network(format!(
                    "request {:?} requires server-level dispatch",
                    req.kind()
                )));
            }
        };
        replica.charge_message(resp.control_bytes(), resp.payload_bytes());
        Ok(resp)
    }

    /// The shared retry loop: run `round` until it succeeds, the error is
    /// not transient, attempts run out, or the deadline passes. Rounds are
    /// idempotent (each attempt restarts from the recipient's *current*
    /// DBVV, and re-shipped dominated items are no-ops by IVV comparison),
    /// so retrying a whole round is always safe.
    ///
    /// Accounting happens here, at the same boundary as message charging:
    /// every extra attempt charges `retries`, and every corrupt frame
    /// observed — whichever layer detected it — charges
    /// `corrupt_frames_dropped` on the recipient.
    /// `start` is the round's clock for the deadline check; callers that
    /// chain loops (the delta→whole degradation) pass one shared start so
    /// the whole ladder answers to one deadline.
    fn retry_loop<H, T, R>(
        recipient: &mut H,
        transport: &mut T,
        policy: &RetryPolicy,
        start: Instant,
        mut round: impl FnMut(&mut H, &mut T) -> Result<R>,
    ) -> Result<R>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let mut failed = 0u32;
        loop {
            match round(recipient, transport) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    if matches!(e, Error::CorruptFrame(_)) {
                        recipient.with(|r| r.note_corrupt_frame());
                    }
                    failed += 1;
                    if !policy.retryable(&e)
                        || failed >= policy.max_attempts
                        || policy.deadline_exceeded(start)
                    {
                        return Err(e);
                    }
                    recipient.with(|r| r.note_retry());
                    let pause = policy.backoff(failed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }

    /// Drive one whole-item anti-entropy pull (§5.1) as the recipient,
    /// against any transport. No retries; see [`Engine::pull_with`].
    pub fn pull<H, T>(recipient: &mut H, transport: &mut T) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::pull_with(recipient, transport, &RetryPolicy::none())
    }

    /// As [`Engine::pull`], retrying the whole round under `policy` when
    /// an exchange fails transiently.
    pub fn pull_with<H, T>(
        recipient: &mut H,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::retry_loop(recipient, transport, policy, Instant::now(), Self::pull_round)
    }

    fn pull_round<H, T>(recipient: &mut H, transport: &mut T) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let source = transport.peer();
        let req = recipient.with(|r| {
            let req = ProtocolRequest::Pull { from: r.id(), dbvv: r.dbvv().clone() };
            r.charge_message(req.control_bytes(), req.payload_bytes());
            req
        });
        match transport.exchange(req)? {
            ProtocolResponse::Pull(PropagationResponse::YouAreCurrent) => Ok(PullOutcome::UpToDate),
            ProtocolResponse::Pull(PropagationResponse::Payload(payload)) => {
                let outcome = recipient.with(|r| r.accept_propagation(source, payload))?;
                Ok(PullOutcome::Propagated(outcome))
            }
            ProtocolResponse::Pull(PropagationResponse::NeedRecon) => {
                // The responder's retention-pruned log cannot cover our
                // gap: degrade to set reconciliation within this attempt.
                Self::recon_round(recipient, transport, &GossipBudget::UNBOUNDED)
            }
            other => Err(unexpected("pull", &other)),
        }
    }

    /// Drive one cold-start reconciliation (digest-tree descent, possibly
    /// degrading to the whole-database pull) as the recipient, against any
    /// transport. No retries; see [`Engine::pull_recon_with`].
    pub fn pull_recon<H, T>(recipient: &mut H, transport: &mut T) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::pull_recon_with(recipient, transport, &RetryPolicy::none(), &GossipBudget::UNBOUNDED)
    }

    /// As [`Engine::pull_recon`], retrying the whole descent under
    /// `policy` (descents are idempotent: a fresh attempt restarts from
    /// the recipient's *current* state, so already-adopted items prune
    /// out) and capping request frames under `budget` — at most
    /// [`GossipBudget::max_frame_items`] range probes plus leaf fetches
    /// per `Recon` frame.
    pub fn pull_recon_with<H, T>(
        recipient: &mut H,
        transport: &mut T,
        policy: &RetryPolicy,
        budget: &GossipBudget,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::retry_loop(recipient, transport, policy, Instant::now(), |h, t| {
            Self::recon_round(h, t, budget)
        })
    }

    /// One reconciliation round: the blocking loop over the shared
    /// [`ReconDriver`] — the same machine the step-wise
    /// [`Round`](crate::rounds::Round) runs, so costs are byte-identical
    /// across runtimes by construction.
    fn recon_round<H, T>(
        recipient: &mut H,
        transport: &mut T,
        budget: &GossipBudget,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let peer = transport.peer();
        let (mut driver, first) = recipient.with(|r| ReconDriver::start(r, budget.max_frame_items));
        let mut req = first;
        loop {
            let resp = transport.exchange(req)?;
            match recipient.with(|r| driver.on_response(r, peer, resp))? {
                ReconStep::Send(next) => req = next,
                ReconStep::Done(outcome) => return Ok(outcome),
            }
        }
    }

    /// Drive one delta-mode pull (§2's update-record shipping; messages
    /// 1–4) as the recipient, against any transport. No retries; see
    /// [`Engine::pull_delta_with`].
    pub fn pull_delta<H, T>(recipient: &mut H, transport: &mut T) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::pull_delta_with(recipient, transport, &RetryPolicy::none())
    }

    /// As [`Engine::pull_delta`], with two layers of resilience: each
    /// delta round retries under `policy`, and if the four-message delta
    /// exchange *still* fails transiently, the driver degrades to the
    /// two-message whole-item pull — fewer exchanges to survive, and the
    /// recipient catches up with values instead of op chains. (The
    /// responder-side budget check degrades per *item* inside the delta
    /// payload; this ladder covers the whole-round failure case.)
    pub fn pull_delta_with<H, T>(
        recipient: &mut H,
        transport: &mut T,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::pull_delta_budgeted(recipient, transport, policy, &GossipBudget::UNBOUNDED)
    }

    /// As [`Engine::pull_delta_with`], coalescing the round's fetches
    /// under `budget`: at most [`GossipBudget::max_frame_items`] wants per
    /// `DeltaFetch` frame, with anything the responder leaves unserved
    /// (its own frame-byte budget) re-requested until the round is whole.
    pub fn pull_delta_budgeted<H, T>(
        recipient: &mut H,
        transport: &mut T,
        policy: &RetryPolicy,
        budget: &GossipBudget,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let start = Instant::now();
        let delta = Self::retry_loop(recipient, transport, policy, start, |h, t| {
            Self::pull_delta_round(h, t, budget)
        });
        match delta {
            Err(e) if policy.retryable(&e) && !policy.deadline_exceeded(start) => {
                // The degradation is exactly one more attempt at the
                // round, in a cheaper mode, charged against the *same*
                // round budget: no fresh retry loop, and no attempt at
                // all once the round's deadline has passed — a degraded
                // round must never outlive the policy that bounds it.
                recipient.with(|r| r.note_retry());
                Self::pull_round(recipient, transport)
            }
            other => other,
        }
    }

    fn pull_delta_round<H, T>(
        recipient: &mut H,
        transport: &mut T,
        budget: &GossipBudget,
    ) -> Result<PullOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let source = transport.peer();
        let req = recipient.with(|r| {
            let req = ProtocolRequest::DeltaPull { from: r.id(), dbvv: r.dbvv().clone() };
            r.charge_message(req.control_bytes(), req.payload_bytes());
            req
        });
        let offer = match transport.exchange(req)? {
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::YouAreCurrent) => {
                return Ok(PullOutcome::UpToDate);
            }
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::NeedRecon) => {
                // Coverage lost at the source: this round continues as a
                // reconciliation descent under the same frame budget.
                return Self::recon_round(recipient, transport, budget);
            }
            ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(offer)) => offer,
            other => return Err(unexpected("delta-pull", &other)),
        };
        let (wants, eval) = recipient.with(|r| r.evaluate_delta_offer(source, offer))?;
        let mut remaining = wants.wants;
        let cap = budget.max_frame_items.max(1);
        let mut items = Vec::with_capacity(remaining.len());
        let mut first = true;
        // One fetch frame per `cap`-sized slice of the want-list (always
        // at least one frame, even for an empty list — the exchange shape
        // with an unbounded budget is identical to the unchunked
        // protocol). The responder may answer any fetch with a shorter
        // prefix (its frame-byte budget); the unserved suffix simply rides
        // the next frame.
        while first || !remaining.is_empty() {
            first = false;
            let take = remaining.len().min(cap);
            // The chunk is *moved* into the fetch frame, not cloned — in
            // the common fully-served case the round allocates nothing per
            // want. Only the item IDs are kept (for the rare under-served
            // suffix, whose IVVs are re-derived below: the recipient
            // applies nothing until the round's single `apply_delta`, so
            // its IVVs are stable).
            let rest = remaining.split_off(take);
            let chunk = std::mem::replace(&mut remaining, rest);
            let ids: Vec<ItemId> = chunk.iter().map(|(x, _)| *x).collect();
            let fetch = recipient.with(|r| {
                let fetch = ProtocolRequest::DeltaFetch {
                    from: r.id(),
                    wants: DeltaRequest { wants: chunk },
                };
                r.charge_message(fetch.control_bytes(), fetch.payload_bytes());
                fetch
            });
            match transport.exchange(fetch)? {
                ProtocolResponse::DeltaPayload(payload) => {
                    let served = payload.items.len().min(take);
                    if served == 0 && take > 0 {
                        return Err(Error::Network("delta fetch made no progress".into()));
                    }
                    if served < take {
                        let mut unserved = recipient.with(|r| {
                            ids[served..]
                                .iter()
                                .map(|&x| Ok((x, r.store.get(x)?.ivv.clone())))
                                .collect::<Result<Vec<_>>>()
                        })?;
                        unserved.append(&mut remaining);
                        remaining = unserved;
                    }
                    items.extend(payload.items);
                }
                other => return Err(unexpected("delta-fetch", &other)),
            }
        }
        let outcome = recipient.with(|r| r.apply_delta(source, DeltaPayload { items }, eval))?;
        Ok(PullOutcome::Propagated(outcome))
    }

    /// Drive one out-of-bound copy of `item` (§5.2) as the recipient,
    /// against any transport. No retries; see [`Engine::oob_with`].
    pub fn oob<H, T>(recipient: &mut H, transport: &mut T, item: ItemId) -> Result<OobOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::oob_with(recipient, transport, item, &RetryPolicy::none())
    }

    /// As [`Engine::oob`], retrying the one-item exchange under `policy`.
    pub fn oob_with<H, T>(
        recipient: &mut H,
        transport: &mut T,
        item: ItemId,
        policy: &RetryPolicy,
    ) -> Result<OobOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        Self::retry_loop(recipient, transport, policy, Instant::now(), |h, t| {
            Self::oob_round(h, t, item)
        })
    }

    fn oob_round<H, T>(recipient: &mut H, transport: &mut T, item: ItemId) -> Result<OobOutcome>
    where
        H: ReplicaHost,
        T: Transport,
    {
        let source = transport.peer();
        let req = recipient.with(|r| {
            let req = ProtocolRequest::Oob { from: r.id(), item };
            r.charge_message(req.control_bytes(), req.payload_bytes());
            req
        });
        match transport.exchange(req)? {
            ProtocolResponse::Oob(reply) => recipient.with(|r| r.accept_oob(source, reply)),
            other => Err(unexpected("oob", &other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_store::UpdateOp;

    fn pair() -> (Replica, Replica) {
        (Replica::new(NodeId(0), 2, 10), Replica::new(NodeId(1), 2, 10))
    }

    #[test]
    fn handle_rejects_server_level_requests() {
        let (mut a, _) = pair();
        let err = Engine::handle(&mut a, ProtocolRequest::ListDatabases { from: NodeId(1) });
        assert!(err.is_err());
        let routed = ProtocolRequest::Db {
            name: "db".into(),
            req: Box::new(ProtocolRequest::ListDatabases { from: NodeId(1) }),
        };
        assert!(Engine::handle(&mut a, routed).is_err());
    }

    #[test]
    fn engine_pull_equals_wrapper_semantics() {
        let (mut a, mut b) = pair();
        a.update(ItemId(3), UpdateOp::set(&b"x"[..])).unwrap();
        let out = Engine::pull(&mut b, &mut LocalTransport::new(&mut a)).unwrap();
        assert_eq!(out.copied(), &[ItemId(3)]);
        assert!(matches!(
            Engine::pull(&mut b, &mut LocalTransport::new(&mut a)).unwrap(),
            PullOutcome::UpToDate
        ));
        assert_eq!(b.read(ItemId(3)).unwrap().as_bytes(), b"x");
    }

    #[test]
    fn db_envelope_is_cost_transparent() {
        let dbvv = DbVersionVector::zero(3);
        let plain = ProtocolRequest::Pull { from: NodeId(0), dbvv: dbvv.clone() };
        let routed =
            ProtocolRequest::Db { name: "a-database".into(), req: Box::new(plain.clone()) };
        assert_eq!(plain.control_bytes(), routed.control_bytes());

        let plain = ProtocolResponse::Pull(PropagationResponse::YouAreCurrent);
        let routed =
            ProtocolResponse::Db { name: "a-database".into(), resp: Box::new(plain.clone()) };
        assert_eq!(plain.control_bytes(), routed.control_bytes());
        assert_eq!(plain.payload_bytes(), routed.payload_bytes());
    }

    #[test]
    fn shard_envelope_is_cost_transparent() {
        let dbvv = DbVersionVector::zero(3);
        let plain = ProtocolRequest::Pull { from: NodeId(0), dbvv: dbvv.clone() };
        let routed = ProtocolRequest::Shard { shard: ShardId(7), req: Box::new(plain.clone()) };
        assert_eq!(plain.control_bytes(), routed.control_bytes());

        let plain = ProtocolResponse::Pull(PropagationResponse::YouAreCurrent);
        let routed = ProtocolResponse::Shard { shard: ShardId(7), resp: Box::new(plain.clone()) };
        assert_eq!(plain.control_bytes(), routed.control_bytes());
        assert_eq!(plain.payload_bytes(), routed.payload_bytes());
    }

    #[test]
    fn refused_responses_keep_their_typed_error() {
        let refusal = Error::ShardMoving(ShardId(2));
        let err = unexpected("pull", &ProtocolResponse::Refused(refusal.clone()));
        assert_eq!(err, refusal);
        assert!(err.is_retryable());
        let refusal = Error::NotServedHere {
            target: epidb_common::RouteTarget::Shard(ShardId(1)),
            owners: vec![NodeId(3)],
        };
        let err = unexpected("pull", &ProtocolResponse::Refused(refusal.clone()));
        assert_eq!(err, refusal);
        assert!(!err.is_retryable());
    }

    #[test]
    fn unexpected_response_reports_kind() {
        let err = unexpected("pull", &ProtocolResponse::Databases(vec![]));
        assert!(matches!(err, Error::Network(ref m) if m.contains("databases")));
        let err = unexpected("pull", &ProtocolResponse::Error("boom".into()));
        assert!(matches!(err, Error::Network(ref m) if m.contains("boom")));
    }

    /// Fails the first `failures` exchanges, then behaves; optionally only
    /// for delta-mode requests (to exercise the degradation ladder).
    struct Flaky<'a> {
        inner: LocalTransport<'a>,
        failures: u32,
        delta_only: bool,
    }

    impl Transport for Flaky<'_> {
        fn peer(&self) -> NodeId {
            self.inner.peer()
        }

        fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
            let is_delta = matches!(
                req,
                ProtocolRequest::DeltaPull { .. } | ProtocolRequest::DeltaFetch { .. }
            );
            if self.failures > 0 && (!self.delta_only || is_delta) {
                self.failures -= 1;
                return Err(Error::Network("flaky".into()));
            }
            self.inner.exchange(req)
        }
    }

    #[test]
    fn pull_with_retries_through_transient_failures() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let mut t = Flaky { inner: LocalTransport::new(&mut a), failures: 2, delta_only: false };
        let policy = crate::RetryPolicy::attempts(4);
        let out = Engine::pull_with(&mut b, &mut t, &policy).unwrap();
        assert_eq!(out.copied(), &[ItemId(1)]);
        assert_eq!(b.costs().retries, 2);
    }

    #[test]
    fn no_retry_policy_fails_on_first_error() {
        let (mut a, mut b) = pair();
        let mut t = Flaky { inner: LocalTransport::new(&mut a), failures: 1, delta_only: false };
        assert!(Engine::pull(&mut b, &mut t).is_err());
        assert_eq!(b.costs().retries, 0);
    }

    #[test]
    fn exhausted_attempts_surface_the_error() {
        let (mut a, mut b) = pair();
        let mut t = Flaky { inner: LocalTransport::new(&mut a), failures: 10, delta_only: false };
        let policy = crate::RetryPolicy::attempts(3);
        assert!(Engine::pull_with(&mut b, &mut t, &policy).is_err());
        assert_eq!(b.costs().retries, 2, "three attempts = two retries");
    }

    #[test]
    fn delta_degrades_to_whole_item_pull() {
        let (mut a, mut b) = pair();
        a.update(ItemId(2), UpdateOp::set(&b"w"[..])).unwrap();
        // Delta exchanges always fail; the whole-item path is healthy.
        let mut t =
            Flaky { inner: LocalTransport::new(&mut a), failures: u32::MAX, delta_only: true };
        let policy = crate::RetryPolicy::attempts(2);
        let out = Engine::pull_delta_with(&mut b, &mut t, &policy).unwrap();
        assert_eq!(out.copied(), &[ItemId(2)]);
        assert_eq!(b.read(ItemId(2)).unwrap().as_bytes(), b"w");
        assert!(b.costs().retries >= 2, "delta retry + degradation both charge");
    }

    #[test]
    fn corrupt_frames_are_counted_and_retried() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        struct CorruptOnce<'a>(LocalTransport<'a>, bool);
        impl Transport for CorruptOnce<'_> {
            fn peer(&self) -> NodeId {
                self.0.peer()
            }
            fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
                if !self.1 {
                    self.1 = true;
                    return Err(Error::CorruptFrame("crc mismatch".into()));
                }
                self.0.exchange(req)
            }
        }
        let mut t = CorruptOnce(LocalTransport::new(&mut a), false);
        let policy = crate::RetryPolicy::attempts(3);
        let out = Engine::pull_with(&mut b, &mut t, &policy).unwrap();
        assert_eq!(out.copied(), &[ItemId(1)]);
        assert_eq!(b.costs().corrupt_frames_dropped, 1);
        assert_eq!(b.costs().retries, 1);
    }

    #[test]
    fn non_transient_errors_never_retry() {
        let (mut a, mut b) = pair();
        struct Wrong<'a>(LocalTransport<'a>, u32);
        impl Transport for Wrong<'_> {
            fn peer(&self) -> NodeId {
                self.0.peer()
            }
            fn exchange(&mut self, _req: ProtocolRequest) -> Result<ProtocolResponse> {
                self.1 += 1;
                Err(Error::UnknownItem(ItemId(99)))
            }
        }
        let _ = &mut a;
        let mut t = Wrong(LocalTransport::new(&mut a), 0);
        let policy = crate::RetryPolicy::attempts(5);
        assert!(Engine::pull_with(&mut b, &mut t, &policy).is_err());
        assert_eq!(t.1, 1, "a non-retryable error must not be retried");
        assert_eq!(b.costs().retries, 0);
    }

    /// Always fails, counting every exchange — for pinning the total
    /// attempt budget of a round including its degradation.
    struct FailCount(u32);
    impl Transport for FailCount {
        fn peer(&self) -> NodeId {
            NodeId(0)
        }
        fn exchange(&mut self, _req: ProtocolRequest) -> Result<ProtocolResponse> {
            self.0 += 1;
            Err(Error::Network("down".into()))
        }
    }

    #[test]
    fn degradation_shares_the_round_attempt_budget() {
        // Regression: the degraded whole-item attempt used to run a
        // *fresh* retry loop with a fresh deadline, so a failing round
        // could spend ~2x max_attempts. It is now exactly one extra
        // exchange: max_attempts delta attempts + 1 degraded pull.
        let (_, mut b) = pair();
        let mut t = FailCount(0);
        let policy = crate::RetryPolicy::attempts(3);
        assert!(Engine::pull_delta_with(&mut b, &mut t, &policy).is_err());
        assert_eq!(t.0, 4, "3 delta attempts + 1 degraded whole-item attempt");
        assert_eq!(b.costs().retries, 3, "2 in-loop retries + the degradation switch");
    }

    #[test]
    fn expired_deadline_skips_the_degradation() {
        // A round whose deadline has passed must not start the degraded
        // whole-item attempt: one delta attempt, then the error surfaces.
        let (_, mut b) = pair();
        let mut t = FailCount(0);
        let policy = crate::RetryPolicy {
            round_deadline: Some(std::time::Duration::ZERO),
            ..crate::RetryPolicy::attempts(5)
        };
        assert!(Engine::pull_delta_with(&mut b, &mut t, &policy).is_err());
        assert_eq!(t.0, 1, "deadline already expired: no retries, no degradation");
        assert_eq!(b.costs().retries, 0);
    }

    /// Counts delta exchanges by kind, for pinning frame coalescing.
    struct Counting<'a> {
        inner: LocalTransport<'a>,
        pulls: u32,
        fetches: u32,
    }
    impl Transport for Counting<'_> {
        fn peer(&self) -> NodeId {
            self.inner.peer()
        }
        fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
            match &req {
                ProtocolRequest::DeltaPull { .. } => self.pulls += 1,
                ProtocolRequest::DeltaFetch { .. } => self.fetches += 1,
                _ => {}
            }
            self.inner.exchange(req)
        }
    }

    #[test]
    fn budgeted_rounds_chunk_the_want_list() {
        let (mut a, mut b) = pair();
        for i in 0..10 {
            a.update(ItemId(i), UpdateOp::set(&b"v"[..])).unwrap();
        }
        let mut t = Counting { inner: LocalTransport::new(&mut a), pulls: 0, fetches: 0 };
        let policy = crate::RetryPolicy::none();
        let out = Engine::pull_delta_budgeted(&mut b, &mut t, &policy, &GossipBudget::per_frame(4))
            .unwrap();
        assert_eq!(out.copied().len(), 10);
        assert_eq!(t.pulls, 1);
        assert_eq!(t.fetches, 3, "10 wants at 4 per frame = 3 fetch frames");
        for i in 0..10 {
            assert_eq!(b.read(ItemId(i)).unwrap().as_bytes(), b"v");
        }
    }

    #[test]
    fn responder_byte_budget_serves_a_prefix_that_is_rerequested() {
        let (mut a, mut b) = pair();
        for i in 0..3 {
            a.update(ItemId(i), UpdateOp::set(&b"value"[..])).unwrap();
        }
        // A 1-byte responder budget forces one item per payload frame;
        // the initiator re-requests the unserved suffix until whole.
        a.set_delta_frame_budget(1);
        let mut t = Counting { inner: LocalTransport::new(&mut a), pulls: 0, fetches: 0 };
        let policy = crate::RetryPolicy::none();
        let out =
            Engine::pull_delta_budgeted(&mut b, &mut t, &policy, &GossipBudget::UNBOUNDED).unwrap();
        assert_eq!(out.copied().len(), 3);
        assert_eq!(t.fetches, 3, "one served item per fetch under a 1-byte budget");
        for i in 0..3 {
            assert_eq!(b.read(ItemId(i)).unwrap().as_bytes(), b"value");
        }
    }

    #[test]
    fn unbounded_budget_matches_the_unchunked_exchange_shape() {
        // Transport parity depends on the default budget charging exactly
        // the same messages as the pre-coalescing protocol: one DeltaPull,
        // one DeltaFetch, regardless of want-list size.
        let (mut a, mut b) = pair();
        for i in 0..10 {
            a.update(ItemId(i), UpdateOp::set(&b"v"[..])).unwrap();
        }
        let mut t = Counting { inner: LocalTransport::new(&mut a), pulls: 0, fetches: 0 };
        let out = Engine::pull_delta(&mut b, &mut t).unwrap();
        assert_eq!(out.copied().len(), 10);
        assert_eq!((t.pulls, t.fetches), (1, 1));
    }
}
