//! Conflict handling policies.
//!
//! The paper leaves conflict *resolution* to the application ("resolved in
//! an application-specific manner, which often involves manual
//! intervention", §2). The default [`ConflictPolicy::Report`] is exactly the
//! paper's behaviour: declare the inconsistency, refuse the copy, and strip
//! the conflicting item's records from the received tail vector so the
//! refusal is remembered (Fig. 3).
//!
//! [`ConflictPolicy::ResolveLww`] is the common application-level resolver
//! (deterministic last-writer-wins merge) offered so that long-running
//! randomized simulations converge after injected conflicts; it is built on
//! the standard version-vector technique of adopting the component-wise
//! maximum of the two vectors and then performing the resolution as a fresh
//! local update, so the merged copy dominates both parents and wins
//! everywhere through normal propagation.

use epidb_vv::VersionVector;

/// What a replica does when `AcceptPropagation` detects inconsistent
/// copies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// Declare the conflict and refuse the copy (the paper's behaviour).
    /// Propagation for the item is suspended until the conflict is resolved
    /// externally; the conflict keeps being re-detected on later rounds.
    #[default]
    Report,
    /// Declare the conflict, then auto-resolve: merge version vectors
    /// (component-wise max), pick the winning value deterministically, and
    /// record the resolution as a new local update.
    ResolveLww,
}

/// Deterministically decide whether the *remote* copy survives a conflict:
/// the copy that reflects more updates wins; ties break on the value bytes
/// (larger lexicographically), then in favour of the local copy. Any
/// deterministic rule works — resolution is installed as a fresh update
/// that dominates both parents.
///
/// Borrow-based (no value is cloned to make the decision); the caller
/// installs whichever copy won.
pub fn lww_remote_wins(
    local_value: &[u8],
    local_ivv: &VersionVector,
    remote_value: &[u8],
    remote_ivv: &VersionVector,
) -> bool {
    let lt = local_ivv.total();
    let rt = remote_ivv.total();
    rt > lt || (rt == lt && remote_value > local_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    fn winner<'a>(
        local: &'a [u8],
        lv: &VersionVector,
        remote: &'a [u8],
        rv: &VersionVector,
    ) -> &'a [u8] {
        if lww_remote_wins(local, lv, remote, rv) {
            remote
        } else {
            local
        }
    }

    #[test]
    fn more_updates_wins() {
        assert_eq!(winner(b"local", &vv(&[1, 0]), b"remote", &vv(&[0, 3])), b"remote");
    }

    #[test]
    fn tie_breaks_on_bytes() {
        assert_eq!(winner(b"bbb", &vv(&[1, 0]), b"aaa", &vv(&[0, 1])), b"bbb");
        assert_eq!(winner(b"aaa", &vv(&[1, 0]), b"bbb", &vv(&[0, 1])), b"bbb");
    }

    #[test]
    fn full_tie_keeps_local() {
        assert!(!lww_remote_wins(b"same", &vv(&[1, 0]), b"same", &vv(&[0, 1])));
    }

    #[test]
    fn winner_is_symmetric_under_swap() {
        // Whatever one side picks, the other side must pick the same value
        // when roles are swapped — determinism across replicas.
        let (a, av) = (b"alpha".as_slice(), vv(&[2, 0]));
        let (b, bv) = (b"beta".as_slice(), vv(&[0, 2]));
        assert_eq!(winner(a, &av, b, &bv), winner(b, &bv, a, &av));
    }
}
