//! Conflict handling policies.
//!
//! The paper leaves conflict *resolution* to the application ("resolved in
//! an application-specific manner, which often involves manual
//! intervention", §2). The default [`ConflictPolicy::Report`] is exactly the
//! paper's behaviour: declare the inconsistency, refuse the copy, and strip
//! the conflicting item's records from the received tail vector so the
//! refusal is remembered (Fig. 3).
//!
//! [`ConflictPolicy::ResolveLww`] is the common application-level resolver
//! (deterministic last-writer-wins merge) offered so that long-running
//! randomized simulations converge after injected conflicts; it is built on
//! the standard version-vector technique of adopting the component-wise
//! maximum of the two vectors and then performing the resolution as a fresh
//! local update, so the merged copy dominates both parents and wins
//! everywhere through normal propagation.

use epidb_store::ItemValue;
use epidb_vv::VersionVector;

/// What a replica does when `AcceptPropagation` detects inconsistent
/// copies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictPolicy {
    /// Declare the conflict and refuse the copy (the paper's behaviour).
    /// Propagation for the item is suspended until the conflict is resolved
    /// externally; the conflict keeps being re-detected on later rounds.
    #[default]
    Report,
    /// Declare the conflict, then auto-resolve: merge version vectors
    /// (component-wise max), pick the winning value deterministically, and
    /// record the resolution as a new local update.
    ResolveLww,
}

/// Deterministically choose the surviving value between two conflicting
/// copies: the copy that reflects more updates wins; ties break on the
/// value bytes (larger lexicographically), then in favour of the local
/// copy. Any deterministic rule works — resolution is installed as a fresh
/// update that dominates both parents.
pub fn lww_winner(
    local_value: &ItemValue,
    local_ivv: &VersionVector,
    remote_value: &ItemValue,
    remote_ivv: &VersionVector,
) -> ItemValue {
    let lt = local_ivv.total();
    let rt = remote_ivv.total();
    if rt > lt || (rt == lt && remote_value.as_bytes() > local_value.as_bytes()) {
        remote_value.clone()
    } else {
        local_value.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    #[test]
    fn more_updates_wins() {
        let w = lww_winner(
            &ItemValue::from_slice(b"local"),
            &vv(&[1, 0]),
            &ItemValue::from_slice(b"remote"),
            &vv(&[0, 3]),
        );
        assert_eq!(w.as_bytes(), b"remote");
    }

    #[test]
    fn tie_breaks_on_bytes() {
        let w = lww_winner(
            &ItemValue::from_slice(b"bbb"),
            &vv(&[1, 0]),
            &ItemValue::from_slice(b"aaa"),
            &vv(&[0, 1]),
        );
        assert_eq!(w.as_bytes(), b"bbb");
        let w = lww_winner(
            &ItemValue::from_slice(b"aaa"),
            &vv(&[1, 0]),
            &ItemValue::from_slice(b"bbb"),
            &vv(&[0, 1]),
        );
        assert_eq!(w.as_bytes(), b"bbb");
    }

    #[test]
    fn full_tie_keeps_local() {
        let w = lww_winner(
            &ItemValue::from_slice(b"same"),
            &vv(&[1, 0]),
            &ItemValue::from_slice(b"same"),
            &vv(&[0, 1]),
        );
        assert_eq!(w.as_bytes(), b"same");
    }

    #[test]
    fn winner_is_symmetric_under_swap() {
        // Whatever one side picks, the other side must pick the same value
        // when roles are swapped — determinism across replicas.
        let a = (ItemValue::from_slice(b"alpha"), vv(&[2, 0]));
        let b = (ItemValue::from_slice(b"beta"), vv(&[0, 2]));
        let w1 = lww_winner(&a.0, &a.1, &b.0, &b.1);
        let w2 = lww_winner(&b.0, &b.1, &a.0, &a.1);
        assert_eq!(w1, w2);
    }
}
