//! The operation cache backing delta (update-record) propagation.
//!
//! The paper (§2) notes update propagation can ship either whole data
//! items or "log records for missing updates" (Oracle-style), and that its
//! ideas apply to both. The whole-item mode needs no update payloads; this
//! cache is the extra state the *delta* mode needs: recent re-doable
//! operations per item, each tagged with the IVV the regular copy had just
//! before the operation applied — so a contiguous chain of operations can
//! be shipped to a recipient whose copy matches the chain's start.
//!
//! Chains are contiguous **by construction**: operations are recorded in
//! the order they executed on the regular copy, and the item's chain is
//! cleared whenever the copy changes by any other means (whole-item
//! adoption, conflict resolution), because those breaks would invalidate
//! the linkage.
//!
//! The cache is bounded by a payload-byte budget; eviction is oldest-first
//! across all items (an evicted prefix just means falling back to
//! whole-item shipping for the affected item).

use std::collections::{BTreeMap, VecDeque};

use epidb_common::ItemId;
use epidb_store::UpdateOp;
use epidb_vv::VersionVector;

/// One cached operation: the op plus the regular IVV immediately before it
/// applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedOp {
    /// Regular-copy IVV before the operation (exclusive).
    pub pre_vv: VersionVector,
    /// The operation.
    pub op: UpdateOp,
}

/// Bounded per-item operation history.
#[derive(Clone, Debug, Default)]
pub struct OpCache {
    /// A `BTreeMap` so fingerprinting walks the chains in item order.
    per_item: BTreeMap<ItemId, VecDeque<CachedOp>>,
    /// Global arrival order, for oldest-first eviction.
    order: VecDeque<ItemId>,
    payload_bytes: usize,
    budget_bytes: usize,
}

impl OpCache {
    /// A cache retaining up to `budget_bytes` of operation payload.
    pub fn new(budget_bytes: usize) -> OpCache {
        OpCache { budget_bytes, ..OpCache::default() }
    }

    /// A disabled cache (records nothing; every chain lookup misses).
    pub fn disabled() -> OpCache {
        OpCache::new(0)
    }

    /// True if the cache records operations.
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// Total operations retained.
    pub fn len(&self) -> usize {
        self.per_item.values().map(VecDeque::len).sum()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Retained operation payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// The configured payload-byte budget (0 = disabled).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Every retained chain, in item order (deterministic — used by state
    /// fingerprinting).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, impl Iterator<Item = &CachedOp>)> {
        self.per_item.iter().map(|(&item, q)| (item, q.iter()))
    }

    /// Record an operation just applied to the regular copy of `item`
    /// whose IVV was `pre_vv` beforehand.
    pub fn record(&mut self, item: ItemId, pre_vv: VersionVector, op: UpdateOp) {
        if !self.is_enabled() {
            return;
        }
        self.payload_bytes += op.payload_len();
        self.per_item.entry(item).or_default().push_back(CachedOp { pre_vv, op });
        self.order.push_back(item);
        while self.payload_bytes > self.budget_bytes {
            let Some(oldest_item) = self.order.pop_front() else {
                break;
            };
            // The oldest entry in `order` is the front of that item's
            // deque (per-item order is a subsequence of global order, and
            // clears purge `order` lazily via the emptiness check below).
            if let Some(q) = self.per_item.get_mut(&oldest_item) {
                if let Some(evicted) = q.pop_front() {
                    self.payload_bytes -= evicted.op.payload_len();
                }
                if q.is_empty() {
                    self.per_item.remove(&oldest_item);
                }
            }
        }
    }

    /// Drop `item`'s chain (the regular copy changed by whole-item
    /// adoption or resolution — linkage broken).
    pub fn clear_item(&mut self, item: ItemId) {
        if let Some(q) = self.per_item.remove(&item) {
            self.payload_bytes -= q.iter().map(|c| c.op.payload_len()).sum::<usize>();
            // Stale `order` entries for this item are purged lazily in
            // `record`'s eviction loop.
            self.order.retain(|x| *x != item);
        }
    }

    /// The contiguous operation chain for `item` starting exactly at
    /// `from_vv` (the requester's current IVV), if the cache still holds
    /// it. Returns the suffix of cached ops whose first `pre_vv` equals
    /// `from_vv`.
    pub fn chain_from(&self, item: ItemId, from_vv: &VersionVector) -> Option<&[CachedOp]> {
        let q = self.per_item.get(&item)?;
        let (slices, _) = q.as_slices();
        // Make the deque contiguous view cheaply: VecDeque::as_slices may
        // split; fall back to position search over an iterator index.
        let start = q.iter().position(|c| &c.pre_vv == from_vv)?;
        // Safe re-slice: we need a contiguous slice; if the deque wrapped,
        // slices[start..] may not exist — handle by checking bounds.
        if start < slices.len() && slices.len() == q.len() {
            Some(&slices[start..])
        } else {
            // Rare wrapped case: no zero-copy slice available; signal a
            // miss so the caller ships the whole item. (Chains are short
            // and deques rarely wrap; correctness is unaffected.)
            None
        }
    }

    /// Clone the chain (always succeeds when a chain exists, wrapped or
    /// not).
    pub fn chain_from_cloned(
        &self,
        item: ItemId,
        from_vv: &VersionVector,
    ) -> Option<Vec<CachedOp>> {
        let q = self.per_item.get(&item)?;
        let start = q.iter().position(|c| &c.pre_vv == from_vv)?;
        Some(q.iter().skip(start).cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(e: &[u64]) -> VersionVector {
        VersionVector::from_entries(e.to_vec())
    }

    fn op(n: usize) -> UpdateOp {
        UpdateOp::set(vec![0xAA; n])
    }

    #[test]
    fn disabled_cache_records_nothing() {
        let mut c = OpCache::disabled();
        c.record(ItemId(0), vv(&[0]), op(8));
        assert!(c.is_empty());
        assert!(c.chain_from_cloned(ItemId(0), &vv(&[0])).is_none());
    }

    #[test]
    fn chain_lookup_finds_suffix() {
        let mut c = OpCache::new(1024);
        c.record(ItemId(0), vv(&[0, 0]), op(4));
        c.record(ItemId(0), vv(&[1, 0]), op(4));
        c.record(ItemId(0), vv(&[2, 0]), op(4));
        let full = c.chain_from_cloned(ItemId(0), &vv(&[0, 0])).unwrap();
        assert_eq!(full.len(), 3);
        let suffix = c.chain_from_cloned(ItemId(0), &vv(&[1, 0])).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].pre_vv, vv(&[1, 0]));
        assert!(c.chain_from_cloned(ItemId(0), &vv(&[9, 0])).is_none());
    }

    #[test]
    fn eviction_is_oldest_first_and_budgeted() {
        let mut c = OpCache::new(20);
        c.record(ItemId(0), vv(&[0]), op(8)); // 8
        c.record(ItemId(1), vv(&[0]), op(8)); // 16
        c.record(ItemId(0), vv(&[1]), op(8)); // 24 -> evict item0's first
        assert!(c.payload_bytes() <= 20);
        // Item 0's chain now starts at vv [1].
        assert!(c.chain_from_cloned(ItemId(0), &vv(&[0])).is_none());
        assert!(c.chain_from_cloned(ItemId(0), &vv(&[1])).is_some());
        assert!(c.chain_from_cloned(ItemId(1), &vv(&[0])).is_some());
    }

    #[test]
    fn clear_item_drops_chain_and_bytes() {
        let mut c = OpCache::new(1024);
        c.record(ItemId(0), vv(&[0]), op(10));
        c.record(ItemId(1), vv(&[0]), op(10));
        c.clear_item(ItemId(0));
        assert_eq!(c.payload_bytes(), 10);
        assert!(c.chain_from_cloned(ItemId(0), &vv(&[0])).is_none());
        assert!(c.chain_from_cloned(ItemId(1), &vv(&[0])).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_copy_chain_matches_cloned_when_unwrapped() {
        let mut c = OpCache::new(1024);
        for k in 0..5u64 {
            c.record(ItemId(0), vv(&[k]), op(4));
        }
        let a = c.chain_from(ItemId(0), &vv(&[2])).map(<[CachedOp]>::to_vec);
        let b = c.chain_from_cloned(ItemId(0), &vv(&[2]));
        assert_eq!(a, b);
    }
}
