#![warn(missing_docs)]

//! `epidb-core` — the scalable update-propagation protocol of
//! *Rabinovich, Gehani & Kononov, "Scalable Update Propagation in Epidemic
//! Replicated Databases"* (EDBT 1996).
//!
//! # The idea
//!
//! Classic epidemic (anti-entropy) replication compares the version
//! information of **every** data item between two replicas, so each
//! anti-entropy round costs O(N) in the total number of items N. This
//! protocol instead associates a *database version vector* (DBVV) with each
//! database replica: comparing two DBVVs detects in constant time (O(n) in
//! the fixed server count) whether any propagation is needed at all, and a
//! per-origin *log vector* that retains only the latest record per
//! (origin, item) lets the source compute exactly what to ship in O(m),
//! where m is the number of items actually copied.
//!
//! Individual hot items can still be fetched at any time via
//! *out-of-bound copying*, which is kept in parallel auxiliary structures
//! (auxiliary copy, auxiliary IVV, auxiliary log) so it never perturbs the
//! ordering invariants scheduled propagation relies on; a background
//! *intra-node propagation* replays auxiliary updates onto the regular copy
//! once it catches up.
//!
//! # Quick start
//!
//! ```
//! use epidb_common::{ItemId, NodeId};
//! use epidb_core::{pull, PullOutcome, Replica};
//! use epidb_store::UpdateOp;
//!
//! // Two servers replicating a 1000-item database.
//! let mut a = Replica::new(NodeId(0), 2, 1000);
//! let mut b = Replica::new(NodeId(1), 2, 1000);
//!
//! // A few updates land at server A...
//! a.update(ItemId(7), UpdateOp::set(&b"hello"[..])).unwrap();
//! a.update(ItemId(9), UpdateOp::set(&b"world"[..])).unwrap();
//!
//! // ...and anti-entropy brings B up to date, touching only the 2 items
//! // that changed — not all 1000.
//! let outcome = pull(&mut b, &mut a).unwrap();
//! assert_eq!(outcome.copied().len(), 2);
//! assert_eq!(b.read(ItemId(7)).unwrap().as_bytes(), b"hello");
//!
//! // A second pull detects "nothing to do" from the DBVVs alone.
//! assert!(matches!(pull(&mut b, &mut a).unwrap(), PullOutcome::UpToDate));
//! ```

pub mod chaos;
pub mod codec;
pub mod delta;
pub mod engine;
pub mod journal;
pub mod mc_state;
pub mod messages;
pub mod oob;
pub mod opcache;
pub mod paranoid;
pub mod policy;
pub mod propagation;
pub mod recon;
pub mod replica;
pub mod retry;
pub mod rounds;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod tokens;

mod intranode;

pub use chaos::{ChaosLink, ChaosStats, ChaosTransport, FaultPlan, PartitionWindow};
pub use delta::{
    pull_delta, DeltaItem, DeltaOffer, DeltaOfferResponse, DeltaPayload, DeltaRequest,
};
pub use engine::{
    DbTransport, Engine, GossipBudget, LocalTransport, ProtocolRequest, ProtocolResponse,
    ReplicaHost, ShardTransport, SyncMode, Transport,
};
pub use journal::{Mutation, MutationSink, SinkHandle};
pub use mc_state::{FnvHasher, McShardedSnapshot, McSnapshot};
pub use messages::{
    FullPullReply, OobReply, PropagationPayload, PropagationResponse, ReconItem, ReconReply,
    ShippedItem,
};
pub use oob::{oob_copy, OobOutcome};
pub use opcache::{CachedOp, OpCache};
pub use paranoid::{AuditCheck, AuditViolation, ParanoidReport, ReplicaAuditor};
pub use policy::ConflictPolicy;
pub use propagation::{pull, AcceptOutcome, PullOutcome};
pub use recon::{pull_recon, ReconDriver, ReconStep};
pub use replica::{AuxItem, ProtocolCounters, Replica};
pub use retry::RetryPolicy;
pub use rounds::{Round, RoundOutcome, RoundStep};
pub use server::{pull_server, pull_server_delta, LocalServerTransport, Server, ServerPullOutcome};
pub use shard::{LocalShardedTransport, ShardMap, ShardedNode, ShardedOob};
pub use tokens::TokenManager;
