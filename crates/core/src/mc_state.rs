//! Model-checker state surface: cheap snapshot/restore and canonical
//! fingerprinting for [`Replica`] and [`ShardedNode`].
//!
//! The explicit-state model checker (`epidb-mc`) explores the protocol by
//! forking system states, firing one enabled event on each fork, and
//! deduplicating states it has seen before. That needs two operations the
//! durable snapshot codec almost — but not quite — provides:
//!
//! * **[`Replica::mc_snapshot`] / [`Replica::mc_restore`]** — a full
//!   in-memory capture. The durable snapshot deliberately drops ephemeral
//!   state (cost counters, pending conflict reports, the op cache) because
//!   a *crash* is supposed to lose it; a checker fork must lose nothing,
//!   so [`McSnapshot`] wraps the durable bytes together with the ephemeral
//!   remainder. Restoring a fork is `from_snapshot` plus reinstating that
//!   remainder. (A checker models a crash by restoring only the durable
//!   bytes — exactly what `epidb-durable` recovery would reconstruct.)
//!
//! * **[`Replica::fingerprint`]** — a canonical 64-bit digest of
//!   *behaviorally relevant* state, used to prune already-explored states.
//!   Two states with equal fingerprints must be indistinguishable to every
//!   future schedule: the digest covers the durable image (items, IVVs,
//!   DBVV, log vector, aux structures, policy), the `restored` flag and
//!   conflict count (both gate the aux-dominance invariant), the op-cache
//!   contents (they decide delta vs whole-item shipping), and the delta
//!   frame budget. Pure diagnostics — cost counters, protocol counters,
//!   conflict event details, traces — are deliberately excluded, so
//!   schedules that differ only in bookkeeping collapse into one state.
//!   The digest is FNV-1a over the deterministic codec encoding; it does
//!   **not** use `std`'s `DefaultHasher`, whose algorithm is unspecified
//!   across releases.
//!
//! Determinism of the underlying walks is load-bearing: `aux_items` and
//! the op cache iterate in `BTreeMap` key order, and the snapshot codec
//! writes every section in a fixed order, so identical logical states
//! produce identical bytes and identical fingerprints.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use epidb_common::{ConflictEvent, Costs, NodeId, Result, ShardId};

use crate::codec::{put_op, put_vv, Writer};
use crate::opcache::OpCache;
use crate::policy::ConflictPolicy;
use crate::replica::{ProtocolCounters, Replica};
use crate::shard::{ShardMap, ShardedNode};

/// A streaming FNV-1a 64-bit hasher.
///
/// Chosen for state fingerprinting because it is dependency-free, fast on
/// the short buffers involved, and — unlike `std::hash::DefaultHasher` —
/// has a *stable, specified* algorithm, so fingerprints are comparable
/// across runs, builds, and toolchains (counterexample schedules stay
/// replayable byte-for-byte).
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl FnvHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> FnvHasher {
        FnvHasher(Self::OFFSET_BASIS)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher::new()
    }
}

/// A full in-memory capture of one [`Replica`], including the ephemeral
/// state the durable snapshot deliberately drops. See the module docs for
/// the durable/ephemeral split.
#[derive(Clone, Debug)]
pub struct McSnapshot {
    /// The durable image ([`Replica::to_snapshot`]) — what a crash keeps.
    durable: Bytes,
    /// Ephemeral remainder — what a crash loses.
    restored: bool,
    costs: Costs,
    counters: ProtocolCounters,
    conflicts: Vec<ConflictEvent>,
    op_cache: OpCache,
    delta_frame_budget: u64,
    paranoid: bool,
    debug_adopt_conflicts: bool,
}

impl McSnapshot {
    /// The durable image alone — the bytes `epidb-durable` recovery would
    /// reconstruct after a crash (plus WAL replay, which the deterministic
    /// engine has already folded in by journaling *before* each state
    /// change). The checker uses this as the crash image.
    pub fn durable_bytes(&self) -> &Bytes {
        &self.durable
    }
}

impl Replica {
    /// Capture this replica completely (durable + ephemeral state) for a
    /// model-checker fork. `mc_restore` of the result is observationally
    /// equal to `self`.
    pub fn mc_snapshot(&self) -> McSnapshot {
        McSnapshot {
            durable: Bytes::from(self.to_snapshot()),
            restored: self.restored,
            costs: self.costs,
            counters: self.counters,
            conflicts: self.conflicts.clone(),
            op_cache: self.op_cache.clone(),
            delta_frame_budget: self.delta_frame_budget,
            paranoid: self.paranoid,
            debug_adopt_conflicts: self.debug_adopt_conflicts,
        }
    }

    /// Rebuild a replica from a checker capture. The inverse of
    /// [`mc_snapshot`](Self::mc_snapshot): durable state decodes through
    /// the snapshot codec, then the ephemeral remainder is reinstated
    /// (including the `restored` flag, which `from_snapshot` would have
    /// forced to `true`). The trace ring and journal sink deliberately
    /// start fresh — forks must not share a sink or append to the
    /// original's trace.
    pub fn mc_restore(snap: &McSnapshot) -> Result<Replica> {
        let mut r = Replica::from_snapshot_shared(&snap.durable)?;
        r.restored = snap.restored;
        r.costs = snap.costs;
        r.counters = snap.counters;
        r.conflicts = snap.conflicts.clone();
        r.op_cache = snap.op_cache.clone();
        r.delta_frame_budget = snap.delta_frame_budget;
        r.paranoid = snap.paranoid;
        r.debug_adopt_conflicts = snap.debug_adopt_conflicts;
        Ok(r)
    }

    /// Canonical 64-bit digest of behaviorally relevant state (see the
    /// module docs for exactly what is covered and what is excluded).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FnvHasher::new();
        h.write(&self.to_snapshot());
        h.write_u8(u8::from(self.restored));
        h.write_u64(self.costs.conflicts_detected);
        h.write_u64(self.delta_frame_budget);
        h.write_u8(u8::from(self.debug_adopt_conflicts));
        // Op-cache contents, in item order; chains decide whether a future
        // delta round ships ops or degrades to whole items.
        h.write_u64(self.op_cache.budget_bytes() as u64);
        let mut w = Writer::new();
        for (item, chain) in self.op_cache.iter() {
            let ops: Vec<_> = chain.collect();
            w.u32(item.0);
            w.u32(ops.len() as u32);
            for c in ops {
                put_vv(&mut w, &c.pre_vv);
                put_op(&mut w, &c.op);
            }
        }
        h.write(&w.into_bytes());
        h.finish()
    }
}

/// A full in-memory capture of one [`ShardedNode`]: an [`McSnapshot`] per
/// owned shard plus the node-level routing and accounting state.
#[derive(Clone, Debug)]
pub struct McShardedSnapshot {
    id: NodeId,
    n_nodes: usize,
    map: ShardMap,
    shards: BTreeMap<ShardId, McSnapshot>,
    moving: BTreeSet<ShardId>,
    meta_costs: Costs,
    policy: ConflictPolicy,
}

impl McShardedSnapshot {
    /// Per-shard durable images — the crash image of a sharded node (each
    /// owned shard recovers independently from its own WAL/snapshot).
    pub fn durable_images(&self) -> impl Iterator<Item = (ShardId, &Bytes)> {
        self.shards.iter().map(|(&s, snap)| (s, snap.durable_bytes()))
    }
}

fn policy_tag(policy: ConflictPolicy) -> u8 {
    match policy {
        ConflictPolicy::Report => 0,
        ConflictPolicy::ResolveLww => 1,
    }
}

/// Digest a shard map: dimensions plus every owner list, in shard order.
fn hash_shard_map(h: &mut FnvHasher, map: &ShardMap) {
    h.write_u64(map.items_per_shard() as u64);
    h.write_u64(map.n_shards() as u64);
    for s in ShardId::all(map.n_shards()) {
        let owners = map.owners(s);
        h.write_u64(owners.len() as u64);
        for &o in owners {
            h.write_u64(o.index() as u64);
        }
    }
}

impl ShardedNode {
    /// Capture this node completely for a model-checker fork.
    pub fn mc_snapshot(&self) -> McShardedSnapshot {
        McShardedSnapshot {
            id: self.id,
            n_nodes: self.n_nodes,
            map: self.map.clone(),
            shards: self.shards.iter().map(|(&s, r)| (s, r.mc_snapshot())).collect(),
            moving: self.moving.clone(),
            meta_costs: self.meta_costs,
            policy: self.policy,
        }
    }

    /// Rebuild a node from a checker capture (inverse of
    /// [`mc_snapshot`](Self::mc_snapshot)).
    pub fn mc_restore(snap: &McShardedSnapshot) -> Result<ShardedNode> {
        let mut shards = BTreeMap::new();
        for (&s, shard_snap) in &snap.shards {
            shards.insert(s, Replica::mc_restore(shard_snap)?);
        }
        Ok(ShardedNode {
            id: snap.id,
            n_nodes: snap.n_nodes,
            map: snap.map.clone(),
            shards,
            moving: snap.moving.clone(),
            meta_costs: snap.meta_costs,
            policy: snap.policy,
        })
    }

    /// Build the node a crash-and-recover of `self` would produce: every
    /// owned shard restarts from its durable image alone (each shard has
    /// its own WAL/snapshot directory under `epidb-durable`), with the
    /// delta cache re-enabled at `delta_budget`. Node meta-costs reset;
    /// the map and moving set are node configuration and survive (durable
    /// handoff journals them). The full-replication analogue, grounded
    /// against real disk recovery, is `epidb_durable::crash_recovered_twin`.
    pub fn crash_recovered(&self, delta_budget: usize) -> Result<ShardedNode> {
        let mut shards = BTreeMap::new();
        for (&s, r) in &self.shards {
            let mut twin = Replica::from_snapshot(&r.to_snapshot())?;
            if delta_budget > 0 {
                twin.enable_delta(delta_budget);
            }
            shards.insert(s, twin);
        }
        Ok(ShardedNode {
            id: self.id,
            n_nodes: self.n_nodes,
            map: self.map.clone(),
            shards,
            moving: self.moving.clone(),
            meta_costs: Costs::default(),
            policy: self.policy,
        })
    }

    /// Canonical 64-bit digest: the map configuration, the moving set, and
    /// every owned shard's [`Replica::fingerprint`], in shard order. Node
    /// meta-costs are diagnostics and excluded, mirroring the replica rule.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FnvHasher::new();
        h.write_u64(self.id.index() as u64);
        h.write_u64(self.n_nodes as u64);
        h.write_u8(policy_tag(self.policy));
        hash_shard_map(&mut h, &self.map);
        h.write_u64(self.moving.len() as u64);
        for &s in &self.moving {
            h.write_u64(s.index() as u64);
        }
        h.write_u64(self.shards.len() as u64);
        for (&s, r) in &self.shards {
            h.write_u64(s.index() as u64);
            h.write_u64(r.fingerprint());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oob_copy, pull};
    use epidb_common::ItemId;
    use epidb_store::UpdateOp;

    fn busy_replica() -> Replica {
        let mut a = Replica::new(NodeId(0), 3, 12);
        let mut b = Replica::new(NodeId(1), 3, 12);
        a.enable_delta(4096);
        b.enable_delta(4096);
        for i in 0..5u32 {
            a.update(ItemId(i), UpdateOp::set(vec![i as u8; 16])).unwrap();
        }
        b.update(ItemId(7), UpdateOp::set(&b"b-side"[..])).unwrap();
        pull(&mut b, &mut a).unwrap();
        a.update(ItemId(0), UpdateOp::append(&b"+new"[..])).unwrap();
        oob_copy(&mut b, &mut a, ItemId(0)).unwrap();
        b.update(ItemId(0), UpdateOp::append(&b"+aux"[..])).unwrap();
        b
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = FnvHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = FnvHasher::new();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn mc_roundtrip_is_observationally_equal() {
        let r = busy_replica();
        let snap = r.mc_snapshot();
        let restored = Replica::mc_restore(&snap).unwrap();
        assert_eq!(r.fingerprint(), restored.fingerprint());
        assert_eq!(r.costs(), restored.costs());
        assert_eq!(r.counters(), restored.counters());
        assert_eq!(r.conflicts(), restored.conflicts());
        for x in ItemId::all(r.n_items()) {
            assert_eq!(r.read(x).unwrap(), restored.read(x).unwrap());
        }
        // restored flag is preserved, not forced like a durable recovery.
        assert!(!restored.is_restored());
    }

    #[test]
    fn fingerprint_separates_behavioral_state_only() {
        let r = busy_replica();
        let base = r.fingerprint();

        // Pure diagnostics do not change the fingerprint.
        let mut noisy = r.clone();
        noisy.costs.messages_sent += 100;
        noisy.counters.equal_receipts += 1;
        assert_eq!(noisy.fingerprint(), base);

        // Behavioral state does.
        let mut updated = r.clone();
        updated.update(ItemId(3), UpdateOp::set(&b"x"[..])).unwrap();
        assert_ne!(updated.fingerprint(), base);

        let mut flagged = r.clone();
        flagged.restored = true;
        assert_ne!(flagged.fingerprint(), base);

        let mut cached = r.clone();
        cached.op_cache.record(
            ItemId(1),
            r.item_ivv(ItemId(1)).unwrap().clone(),
            UpdateOp::set(&b"op"[..]),
        );
        assert_ne!(cached.fingerprint(), base);
    }

    #[test]
    fn crash_image_loses_exactly_the_ephemeral_state() {
        let r = busy_replica();
        let snap = r.mc_snapshot();
        // Crash = durable bytes only.
        let crashed = Replica::from_snapshot_shared(snap.durable_bytes()).unwrap();
        assert!(crashed.is_restored());
        assert!(crashed.op_cache().is_empty());
        assert_eq!(crashed.costs().messages_sent, 0);
        // Durable content is intact.
        for x in ItemId::all(r.n_items()) {
            assert_eq!(r.read(x).unwrap(), crashed.read(x).unwrap());
        }
    }

    #[test]
    fn sharded_roundtrip_and_fingerprint() {
        let map = ShardMap::new(4, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]);
        let mut n = ShardedNode::new(NodeId(1), 3, map, ConflictPolicy::Report);
        n.update(ItemId(1), UpdateOp::set(&b"s0"[..])).unwrap();
        n.update(ItemId(6), UpdateOp::set(&b"s1"[..])).unwrap();
        let base = n.fingerprint();

        let snap = n.mc_snapshot();
        let restored = ShardedNode::mc_restore(&snap).unwrap();
        assert_eq!(restored.fingerprint(), base);
        assert_eq!(restored.read(ItemId(1)).unwrap(), n.read(ItemId(1)).unwrap());

        n.update(ItemId(6), UpdateOp::append(&b"+"[..])).unwrap();
        assert_ne!(n.fingerprint(), base);
    }
}
