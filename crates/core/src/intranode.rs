//! `IntraNodePropagation` (§5.1 step 3, Fig. 4): replay auxiliary-log
//! records onto regular copies once the regular copy has caught up to the
//! state each update was originally applied on.

use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{ConflictEvent, ConflictSite, ItemId};
use epidb_log::LogRecord;
use epidb_vv::VvOrd;

use crate::replica::Replica;

/// What one intra-node propagation pass did.
#[derive(Clone, Debug, Default)]
pub(crate) struct IntraOutcome {
    /// Auxiliary records applied to regular copies.
    pub replayed: u64,
    /// Auxiliary copies discarded (regular copy caught up).
    pub discarded: Vec<ItemId>,
    /// Conflicts declared between a regular copy and an auxiliary record.
    pub conflicts: usize,
}

impl Replica {
    /// Run Fig. 4 for every item in `copied` (the items just brought up to
    /// date by `AcceptPropagation`).
    ///
    /// For each such item with an auxiliary copy: while the earliest
    /// auxiliary record's stored IVV equals the regular copy's IVV, apply
    /// its operation to the regular copy exactly as a fresh local update
    /// (bump `v_ii(x)`, bump `V_ii`, append `(x, V_ii)` to `L_ii`) and
    /// remove the record. If the vectors conflict, declare inconsistency.
    /// When the auxiliary log holds no more records for the item and the
    /// regular IVV dominates or equals the auxiliary IVV, discard the
    /// auxiliary copy.
    pub(crate) fn intra_node_propagation(&mut self, copied: &[ItemId]) -> IntraOutcome {
        let mut out = IntraOutcome::default();
        for &x in copied {
            if !self.aux_items.contains_key(&x) {
                continue;
            }
            loop {
                let Some(earliest) = self.aux_log.earliest(x) else {
                    // No more records for x: final catch-up check.
                    let aux_ivv = &self.aux_items[&x].ivv;
                    let reg_ivv = &self.store.get(x).expect("item exists").ivv;
                    let mut cmps = 0;
                    let ord = reg_ivv.compare_counted(aux_ivv, &mut cmps);
                    self.costs.vv_entry_cmps += cmps;
                    // Conflict detection is deferred to AcceptPropagation
                    // here (§5.1): only the dominates-or-equal case acts.
                    if ord.dominates_or_equal() {
                        self.aux_items.remove(&x);
                        out.discarded.push(x);
                        self.trace_record(
                            TraceStep::IntraDiscard,
                            Some(x),
                            None,
                            OrdTag::NoCompare,
                            0,
                        );
                    }
                    break;
                };

                let mut cmps = 0;
                let ord = {
                    let reg_ivv = &self.store.get(x).expect("item exists").ivv;
                    reg_ivv.compare_counted(&earliest.vv, &mut cmps)
                };
                self.costs.vv_entry_cmps += cmps;
                match ord {
                    VvOrd::Equal => {
                        // The regular copy is exactly the state this update
                        // was applied on: replay it as a local update.
                        let rec = self.aux_log.pop_earliest(x).expect("checked");
                        let pre_vv = if self.op_cache.is_enabled() {
                            Some(self.store.get(x).expect("item exists").ivv.clone())
                        } else {
                            None
                        };
                        let item = self.store.get_mut(x).expect("item exists");
                        rec.op.apply(&mut item.value);
                        item.ivv.bump(self.id);
                        let m = self.dbvv.record_local_update(self.id);
                        self.log.add_record(self.id, LogRecord { item: x, m });
                        if let Some(pre_vv) = pre_vv {
                            self.op_cache.record(x, pre_vv, rec.op);
                        }
                        self.costs.aux_replays += 1;
                        out.replayed += 1;
                        self.trace_record(TraceStep::IntraReplay, Some(x), None, OrdTag::Equal, m);
                    }
                    VvOrd::Concurrent => {
                        // There exist inconsistent replicas of x (Fig. 4).
                        let offending = {
                            let reg_ivv = &self.store.get(x).expect("item exists").ivv;
                            reg_ivv.offending_pair(&earliest.vv)
                        };
                        self.report_conflict(ConflictEvent {
                            item: x,
                            detected_at: self.id,
                            peer: None,
                            site: ConflictSite::IntraNode,
                            offending,
                        });
                        out.conflicts += 1;
                        self.trace_record(
                            TraceStep::IntraConflict,
                            Some(x),
                            None,
                            OrdTag::Concurrent,
                            0,
                        );
                        break;
                    }
                    VvOrd::DominatedBy => {
                        // The record was applied on a state the regular
                        // copy has not reached yet: stop until more
                        // propagation arrives.
                        break;
                    }
                    VvOrd::Dominates => {
                        // "vi(x) can never dominate a version vector of an
                        // auxiliary record" (§5.1) — true under conflict-free
                        // operation (e.g. tokens). Under optimistic updates
                        // it is reachable: the regular copy advanced past
                        // the record's base state through updates that
                        // cannot include this auxiliary update (it lives
                        // only here), so the update is concurrent with them
                        // — a genuine inconsistency.
                        self.report_conflict(ConflictEvent {
                            item: x,
                            detected_at: self.id,
                            peer: None,
                            site: ConflictSite::IntraNode,
                            offending: None,
                        });
                        out.conflicts += 1;
                        self.trace_record(
                            TraceStep::IntraConflict,
                            Some(x),
                            None,
                            OrdTag::Dominates,
                            0,
                        );
                        break;
                    }
                }
            }
        }
        out
    }
}
