//! Out-of-bound data copying (§5.2): obtaining a newer version of an
//! individual data item at any time, outside scheduled update propagation.

use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{ConflictEvent, ConflictSite, ItemId, NodeId, Result};
use epidb_vv::VvOrd;

use crate::engine::{Engine, LocalTransport};
use crate::messages::OobReply;
use crate::replica::{AuxItem, Replica};

/// What an out-of-bound copy attempt did at the recipient.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OobOutcome {
    /// The received copy was newer and became the (new) auxiliary copy.
    Adopted {
        /// Whether the source answered from its own auxiliary copy.
        from_aux: bool,
    },
    /// The received copy was the same as, or older than, the local one;
    /// nothing changed.
    AlreadyCurrent,
    /// The received IVV conflicted with the local one; inconsistency was
    /// declared and nothing changed.
    Conflict,
}

impl Replica {
    /// Serve an out-of-bound request for item `x` (§5.2): reply with the
    /// auxiliary copy if one exists (it is never older than the regular
    /// copy — an optimization, not a correctness requirement), else the
    /// regular copy. No log records travel.
    /// Takes `&mut self` only to *share* the served value
    /// ([`epidb_store::ItemValue::share`] promotes owned storage to a
    /// refcounted buffer in place); no protocol state changes.
    pub fn serve_oob(&mut self, x: ItemId) -> Result<OobReply> {
        if let Some(aux) = self.aux_items.get_mut(&x) {
            return Ok(OobReply {
                item: x,
                ivv: aux.ivv.clone(),
                value: aux.value.share(),
                from_aux: true,
            });
        }
        let it = self.store.get_mut(x)?;
        Ok(OobReply { item: x, ivv: it.ivv.clone(), value: it.value.share(), from_aux: false })
    }

    /// Accept an out-of-bound reply (§5.2). The received IVV is compared
    /// against the local *auxiliary* IVV if an auxiliary copy exists, else
    /// the regular IVV:
    ///
    /// * received dominates → the received value and IVV become the new
    ///   auxiliary copy and auxiliary IVV. The auxiliary log is **not**
    ///   modified — any pending records still replay onto the regular copy
    ///   later.
    /// * equal or dominated → no action (the local copy is already as new).
    /// * concurrent → inconsistency is declared; no action.
    pub fn accept_oob(&mut self, from: NodeId, reply: OobReply) -> Result<OobOutcome> {
        self.journal_mutation(|| crate::journal::Mutation::Oob { from, reply: reply.clone() });
        self.check_item(reply.item)?;
        let x = reply.item;
        let mut cmps = 0;
        let ord = {
            let local_ivv = match self.aux_items.get(&x) {
                Some(aux) => &aux.ivv,
                None => &self.store.get(x)?.ivv,
            };
            reply.ivv.compare_counted(local_ivv, &mut cmps)
        };
        self.costs.vv_entry_cmps += cmps;
        let outcome = match ord {
            VvOrd::Dominates => {
                let from_aux = reply.from_aux;
                self.aux_items.insert(x, AuxItem { value: reply.value.into(), ivv: reply.ivv });
                self.trace_record(TraceStep::OobAccept, Some(x), Some(from), OrdTag::Dominates, 0);
                OobOutcome::Adopted { from_aux }
            }
            VvOrd::Equal | VvOrd::DominatedBy => {
                let tag = if ord == VvOrd::Equal { OrdTag::Equal } else { OrdTag::DominatedBy };
                self.costs.redundant_deliveries += 1;
                self.trace_record(TraceStep::OobAccept, Some(x), Some(from), tag, 0);
                OobOutcome::AlreadyCurrent
            }
            VvOrd::Concurrent => {
                let offending = {
                    let local_ivv = match self.aux_items.get(&x) {
                        Some(aux) => &aux.ivv,
                        None => &self.store.get(x)?.ivv,
                    };
                    reply.ivv.offending_pair(local_ivv)
                };
                self.report_conflict(ConflictEvent {
                    item: x,
                    detected_at: self.id,
                    peer: Some(from),
                    site: ConflictSite::OutOfBound,
                    offending,
                });
                self.trace_record(TraceStep::OobAccept, Some(x), Some(from), OrdTag::Concurrent, 0);
                OobOutcome::Conflict
            }
        };
        self.post_step_audit("accept-oob");
        Ok(outcome)
    }
}

/// Perform one out-of-bound copy of item `x`: `recipient` obtains the
/// source's newest copy of `x`, with message/byte accounting.
///
/// A thin wrapper over [`Engine::oob`] with the in-process
/// [`LocalTransport`] — the same dispatch path every other runtime uses.
pub fn oob_copy(recipient: &mut Replica, source: &mut Replica, x: ItemId) -> Result<OobOutcome> {
    Engine::oob(recipient, &mut LocalTransport::new(source), x)
}
