//! Cold-start set reconciliation: the rung of the degradation ladder
//! below delta and tail-covered pulls (delta → recon → whole-pull).
//!
//! The paper's log vector retains one latest record per item per origin
//! (§4.2); with a retention cap ([`Replica::set_log_retention`]) a
//! responder can evict records a long-offline recipient still needs. The
//! responder then answers [`PropagationResponse::NeedRecon`](crate::PropagationResponse::NeedRecon) instead of a
//! tail vector, and the recipient reconciles by divide-and-conquer over a
//! deterministic **digest tree**:
//!
//! * leaves are per-item FNV digests of `(IVV, value)` — the same FNV-1a
//!   discipline as [`crate::mc_state`]'s fingerprints;
//! * interior nodes fold `(start, end, left, right)`, so a subtree digest
//!   commits to both structure and content;
//! * the tree is never materialized — digests are computed on demand in
//!   O(width) per probed range.
//!
//! The recipient drives a breadth-first descent ([`ReconDriver`]): each
//! [`ProtocolRequest::Recon`] carries ranges to probe plus leaves to
//! fetch; each [`ReconReply`] returns the two child digests per probed
//! range and full items ([`ReconItem`]) for the fetched leaves. Equal
//! digests prune whole subtrees, so a `d`-item diff over `N` items costs
//! O(d · log N) digest traffic instead of the O(N) whole-database pull —
//! which survives as [`ProtocolRequest::FullPull`], the genuine bottom
//! rung, chosen outright when the recipient is empty (every item would
//! differ) or when the descent discovers that more than half the item
//! space differs.
//!
//! Frames are capped by [`GossipBudget::max_frame_items`](crate::GossipBudget::max_frame_items) (ranges plus
//! fetches per request), mirroring the delta path's fetch coalescing, and
//! both the blocking driver ([`Engine::pull_recon`](crate::Engine)) and
//! the step-wise [`Round`](crate::rounds::Round) run the *same*
//! [`ReconDriver`], so per-node [`Costs`](epidb_common::Costs) are
//! byte-identical across runtimes by construction.

use epidb_common::trace::{OrdTag, TraceStep};
use epidb_common::{ConflictEvent, ConflictSite, Error, ItemId, NodeId, Result};
use epidb_log::LogRecord;

use crate::engine::{unexpected, ProtocolRequest, ProtocolResponse};
use crate::journal::Mutation;
use crate::mc_state::FnvHasher;
use crate::messages::{FullPullReply, ReconItem, ReconReply, ShippedItem};
use crate::policy::ConflictPolicy;
use crate::propagation::{AcceptOutcome, PullOutcome};
use crate::replica::Replica;

impl Replica {
    /// Leaf digest of item `x`: FNV-1a over the IVV (length + entries)
    /// and the value (length + bytes). Two replicas agree on a leaf
    /// digest iff they agree on the item's `(IVV, value)`.
    fn leaf_digest(&self, x: ItemId) -> u64 {
        let it = self.store.get(x).expect("digested item exists");
        let mut h = FnvHasher::new();
        h.write_u64(it.ivv.len() as u64);
        for &e in it.ivv.entries() {
            h.write_u64(e);
        }
        h.write_u64(it.value.as_bytes().len() as u64);
        h.write(it.value.as_bytes());
        h.finish()
    }

    /// Digest of the half-open item range `[start, end)` — a leaf digest
    /// for width 1, otherwise the FNV fold of `(start, end, left child,
    /// right child)` with the midpoint at `start + (end - start) / 2`.
    fn fold_range(&self, start: u32, end: u32) -> u64 {
        debug_assert!(start < end);
        if end - start == 1 {
            return self.leaf_digest(ItemId(start));
        }
        let mid = start + (end - start) / 2;
        let mut h = FnvHasher::new();
        h.write_u64(start as u64);
        h.write_u64(end as u64);
        h.write_u64(self.fold_range(start, mid));
        h.write_u64(self.fold_range(mid, end));
        h.finish()
    }

    /// [`fold_range`](Self::fold_range) with cost accounting: every leaf
    /// under the range is digested, charged as `items_scanned`.
    pub(crate) fn range_digest(&mut self, start: u32, end: u32) -> u64 {
        self.costs.items_scanned += (end - start) as u64;
        self.fold_range(start, end)
    }

    /// Materialize one item for shipping: value (shared, not copied),
    /// IVV, and the *retained* per-origin log records for the item, so an
    /// adopting recipient rebuilds the same log state a tail-covered pull
    /// would have left it with.
    fn recon_item(&mut self, x: ItemId) -> ReconItem {
        let n = self.n_nodes();
        let mut records = Vec::new();
        for k in NodeId::all(n) {
            if let Some(rec) = self.log.retained(k, x) {
                records.push((k, rec.m));
                self.costs.log_records_examined += 1;
            }
        }
        let it = self.store.get_mut(x).expect("checked item exists");
        ReconItem { item: x, ivv: it.ivv.clone(), value: it.value.share(), records }
    }

    /// Serve one reconciliation descent step (the responder side of
    /// [`ProtocolRequest::Recon`]): for each probed range return its two
    /// child digests (a width-1 range returns its own leaf digest), and
    /// ship full items for the fetched leaves, plus the coverage floor.
    pub fn serve_recon(&mut self, ranges: &[(u32, u32)], fetch: &[ItemId]) -> Result<ReconReply> {
        let n = self.n_items() as u32;
        let mut digests = Vec::with_capacity(ranges.len() * 2);
        for &(start, end) in ranges {
            if start >= end || end > n {
                return Err(Error::Network(format!(
                    "recon range [{start}, {end}) outside the {n}-item space"
                )));
            }
            if end - start == 1 {
                digests.push((start, end, self.range_digest(start, end)));
            } else {
                let mid = start + (end - start) / 2;
                digests.push((start, mid, self.range_digest(start, mid)));
                digests.push((mid, end, self.range_digest(mid, end)));
            }
        }
        let mut items = Vec::with_capacity(fetch.len());
        for &x in fetch {
            self.check_item(x)?;
            items.push(self.recon_item(x));
        }
        let served = digests.len() as u64 + items.len() as u64;
        self.trace_record(TraceStep::ReconServe, None, None, OrdTag::NoCompare, served);
        self.post_step_audit("recon-serve");
        Ok(ReconReply { digests, items, floor: self.floor.clone(), cut: self.dbvv.total() })
    }

    /// Serve a whole-database pull (the responder side of
    /// [`ProtocolRequest::FullPull`]): every item with its IVV, value,
    /// and retained records, plus the coverage floor. O(N) by design —
    /// the ladder's bottom rung.
    pub fn serve_full_pull(&mut self) -> Result<FullPullReply> {
        let n = self.n_items();
        let mut items = Vec::with_capacity(n);
        for x in ItemId::all(n) {
            items.push(self.recon_item(x));
        }
        self.costs.items_scanned += n as u64;
        self.trace_record(TraceStep::ReconServe, None, None, OrdTag::NoCompare, n as u64);
        self.post_step_audit("recon-serve");
        Ok(FullPullReply { items, floor: self.floor.clone() })
    }

    /// Apply reconciled items at the recipient — the recon twin of
    /// [`accept_propagation`](Replica::accept_propagation), with the same
    /// per-item IVV routing (adopt / redundant / conflict under the
    /// policy) and the same follow-up intra-node propagation. Shipped
    /// records are applied only for *adopted* items (a refused concurrent
    /// copy keeps its records out, exactly as Fig. 3 strips tails), and
    /// the source's coverage floor merges in component-wise, so the
    /// recipient never re-serves coverage it did not receive.
    pub fn apply_recon_items(
        &mut self,
        from: NodeId,
        items: Vec<ReconItem>,
        floor: &[u64],
    ) -> Result<AcceptOutcome> {
        if floor.len() != self.n_nodes() {
            return Err(Error::DimensionMismatch { left: floor.len(), right: self.n_nodes() });
        }
        // Journal only effective steps: digest-only descent replies touch
        // no durable state and replay as no-ops anyway.
        let effect = !items.is_empty() || floor.iter().enumerate().any(|(k, &m)| m > self.floor[k]);
        if effect {
            self.journal_mutation(|| Mutation::Recon {
                from,
                items: items.clone(),
                floor: floor.to_vec(),
            });
        }

        let mut outcome = AcceptOutcome::default();
        let fetched = items.len() as u64;
        for shipped in items {
            self.check_item(shipped.item)?;
            let x = shipped.item;
            let mut cmps = 0;
            let ord = {
                let local = self.store.get(x).expect("checked");
                shipped.ivv.compare_counted(&local.ivv, &mut cmps)
            };
            self.costs.vv_entry_cmps += cmps;
            match ord {
                epidb_vv::VvOrd::Dominates => {
                    {
                        let local = self.store.get(x).expect("checked");
                        self.dbvv.absorb_item_copy(&local.ivv, &shipped.ivv)?;
                    }
                    self.store.adopt(x, shipped.value.into(), shipped.ivv)?;
                    self.op_cache.clear_item(x);
                    self.costs.items_copied += 1;
                    outcome.copied.push(x);
                    for &(k, m) in &shipped.records {
                        if k.index() >= self.n_nodes() {
                            return Err(Error::UnknownNode(k));
                        }
                        self.log.add_record(k, LogRecord { item: x, m });
                        self.costs.log_records_examined += 1;
                    }
                    self.trace_record(
                        TraceStep::AcceptItem,
                        Some(x),
                        Some(from),
                        OrdTag::Dominates,
                        0,
                    );
                }
                epidb_vv::VvOrd::Equal => {
                    self.counters.equal_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                    self.trace_record(TraceStep::AcceptItem, Some(x), Some(from), OrdTag::Equal, 0);
                }
                epidb_vv::VvOrd::DominatedBy => {
                    self.counters.stale_receipts += 1;
                    self.costs.redundant_deliveries += 1;
                    self.trace_record(
                        TraceStep::AcceptItem,
                        Some(x),
                        Some(from),
                        OrdTag::DominatedBy,
                        0,
                    );
                }
                epidb_vv::VvOrd::Concurrent => {
                    outcome.conflicts += 1;
                    let offending = {
                        let local = self.store.get(x).expect("checked");
                        shipped.ivv.offending_pair(&local.ivv)
                    };
                    self.report_conflict(ConflictEvent {
                        item: x,
                        detected_at: self.id,
                        peer: Some(from),
                        site: ConflictSite::Propagation,
                        offending,
                    });
                    let as_shipped = ShippedItem {
                        item: x,
                        ivv: shipped.ivv.clone(),
                        value: shipped.value.clone(),
                    };
                    match self.policy {
                        ConflictPolicy::Report if self.debug_adopt_conflicts => {
                            self.store.adopt(x, shipped.value.into(), shipped.ivv)?;
                            self.op_cache.clear_item(x);
                            self.costs.items_copied += 1;
                            outcome.copied.push(x);
                            self.trace_record(
                                TraceStep::AcceptItem,
                                Some(x),
                                Some(from),
                                OrdTag::Concurrent,
                                0,
                            );
                        }
                        ConflictPolicy::Report => {
                            // Refuse the copy; its records stay out of the
                            // log, as Fig. 3 strips a refused item's tails.
                            self.trace_record(
                                TraceStep::RefuseItem,
                                Some(x),
                                Some(from),
                                OrdTag::Concurrent,
                                0,
                            );
                        }
                        ConflictPolicy::ResolveLww => {
                            let m = self.resolve_lww(x, &as_shipped)?;
                            outcome.copied.push(x);
                            self.trace_record(
                                TraceStep::LwwResolve,
                                Some(x),
                                Some(from),
                                OrdTag::Concurrent,
                                m,
                            );
                        }
                    }
                }
            }
        }

        for k in NodeId::all(self.n_nodes()) {
            self.raise_floor(k, floor[k.index()]);
            self.enforce_log_retention(k);
        }

        let intra = self.intra_node_propagation(&outcome.copied);
        outcome.replayed = intra.replayed;
        outcome.aux_discarded = intra.discarded;
        outcome.conflicts += intra.conflicts;

        self.trace_record(TraceStep::ReconAccept, None, Some(from), OrdTag::NoCompare, fetched);
        self.post_step_audit("recon-accept");
        Ok(outcome)
    }
}

/// Pull from `source` via set reconciliation over a local (in-process)
/// transport — the recon twin of [`crate::pull`] / [`crate::pull_delta`].
pub fn pull_recon(recipient: &mut Replica, source: &mut Replica) -> Result<PullOutcome> {
    crate::engine::Engine::pull_recon(recipient, &mut crate::engine::LocalTransport::new(source))
}

/// What the initiator must do next after feeding a response into
/// [`ReconDriver::on_response`].
#[derive(Debug)]
pub enum ReconStep {
    /// Another request is in flight.
    Send(ProtocolRequest),
    /// The descent (or full pull) completed.
    Done(PullOutcome),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ReconMode {
    /// Digest-tree descent over the item space.
    Descent,
    /// Degraded to the whole-database pull.
    Full,
}

/// The recipient-driven reconciliation state machine, shared verbatim by
/// the blocking engine driver and the step-wise [`Round`](crate::rounds::Round) — which is what
/// makes their per-node costs byte-identical. `Clone` so the model
/// checker can fork systems with descents mid-flight.
#[derive(Clone, Debug)]
pub struct ReconDriver {
    n_items: u32,
    /// Max entries (ranges + fetches) per request frame, min 1.
    cap: usize,
    mode: ReconMode,
    /// Differing ranges not yet probed (breadth-first order).
    pending_ranges: Vec<(u32, u32)>,
    /// Differing leaves not yet fetched.
    pending_fetch: Vec<ItemId>,
    /// Differing leaves discovered so far (the degradation trigger).
    discovered: u64,
    /// The source's cut stamp from the first reply. A later reply with a
    /// different stamp means the source mutated mid-descent — earlier
    /// subtree prunes are no longer sound, so the driver degrades to the
    /// atomic whole-database pull.
    cut: Option<u64>,
    /// Items fetched so far, **staged** until the descent completes. A
    /// partially-applied descent could leave the recipient holding a
    /// non-prefix subset of an origin's updates (absorbing an item's
    /// later updates without a sibling item carrying the earlier ones),
    /// which tail-covered pulls can never repair — so fetched items only
    /// commit atomically, all at once, when every pending range and
    /// fetch has drained under a single consistent cut. An aborted round
    /// discards the stage and leaves the recipient untouched.
    staged: Vec<ReconItem>,
    /// Component-wise max of the reply floors, committed with the stage.
    staged_floor: Vec<u64>,
    /// Whether any reply shipped items (drives the final outcome).
    any_items: bool,
    outcome: AcceptOutcome,
}

impl ReconDriver {
    /// Start a reconciliation toward a peer: charges and returns the
    /// first request. An empty recipient (zero DBVV — every non-empty
    /// source item is guaranteed to differ) skips the descent and opens
    /// with the whole-database pull outright.
    pub fn start(initiator: &mut Replica, cap: usize) -> (ReconDriver, ProtocolRequest) {
        let n = initiator.n_items() as u32;
        let mut driver = ReconDriver {
            n_items: n,
            cap: cap.max(1),
            mode: ReconMode::Descent,
            pending_ranges: Vec::new(),
            pending_fetch: Vec::new(),
            discovered: 0,
            cut: None,
            staged: Vec::new(),
            staged_floor: vec![0; initiator.n_nodes()],
            any_items: false,
            outcome: AcceptOutcome::default(),
        };
        let req = if n == 0 || initiator.dbvv().total() == 0 {
            driver.mode = ReconMode::Full;
            ProtocolRequest::FullPull { from: initiator.id() }
        } else {
            ProtocolRequest::Recon { from: initiator.id(), ranges: vec![(0, n)], fetch: vec![] }
        };
        initiator.charge_message(req.control_bytes(), req.payload_bytes());
        (driver, req)
    }

    /// Feed the responder's reply to the last request into the machine.
    pub fn on_response(
        &mut self,
        initiator: &mut Replica,
        peer: NodeId,
        resp: ProtocolResponse,
    ) -> Result<ReconStep> {
        match (self.mode, resp) {
            (ReconMode::Full, ProtocolResponse::Full(reply)) => {
                let got = initiator.apply_recon_items(peer, reply.items, &reply.floor)?;
                self.merge(got);
                Ok(ReconStep::Done(PullOutcome::Propagated(std::mem::take(&mut self.outcome))))
            }
            (ReconMode::Full, other) => Err(unexpected("full-pull", &other)),
            (ReconMode::Descent, ProtocolResponse::Recon(reply)) => {
                // Cut check first: digests and items are only comparable
                // against ONE consistent source snapshot. A mid-descent
                // source mutation (the stamp moved) invalidates the subtree
                // prunes made against earlier replies, so discard the stage
                // and degrade to the single-exchange (atomic-cut)
                // whole-database pull.
                let stale = self.cut.is_some_and(|c| c != reply.cut);
                self.cut = Some(reply.cut);
                if stale {
                    return Ok(ReconStep::Send(self.degrade(initiator)));
                }
                if reply.floor.len() != self.staged_floor.len() {
                    return Err(Error::DimensionMismatch {
                        left: reply.floor.len(),
                        right: self.staged_floor.len(),
                    });
                }
                for (k, &m) in reply.floor.iter().enumerate() {
                    self.staged_floor[k] = self.staged_floor[k].max(m);
                }
                if !reply.items.is_empty() {
                    self.any_items = true;
                    self.staged.extend(reply.items);
                }
                // Narrow: equal digests prune whole subtrees; differing
                // width-1 ranges become leaf fetches.
                for &(start, end, digest) in &reply.digests {
                    if start >= end || end > self.n_items {
                        return Err(Error::Network(format!(
                            "recon reply range [{start}, {end}) outside the {}-item space",
                            self.n_items
                        )));
                    }
                    if initiator.range_digest(start, end) == digest {
                        continue;
                    }
                    if end - start == 1 {
                        self.pending_fetch.push(ItemId(start));
                        self.discovered += 1;
                    } else {
                        self.pending_ranges.push((start, end));
                    }
                }
                // Degrade: more than half the item space differs — the
                // remaining descent would cost more than shipping the
                // database whole.
                if self.discovered > (self.n_items / 2) as u64 {
                    return Ok(ReconStep::Send(self.degrade(initiator)));
                }
                if self.pending_ranges.is_empty() && self.pending_fetch.is_empty() {
                    // Commit: every range and fetch drained under one cut —
                    // apply the whole stage atomically.
                    let staged = std::mem::take(&mut self.staged);
                    let floor = std::mem::take(&mut self.staged_floor);
                    let got = initiator.apply_recon_items(peer, staged, &floor)?;
                    self.merge(got);
                    let outcome = std::mem::take(&mut self.outcome);
                    return Ok(ReconStep::Done(if self.any_items {
                        PullOutcome::Propagated(outcome)
                    } else {
                        PullOutcome::UpToDate
                    }));
                }
                // Next frame: up to `cap` entries, ranges before fetches
                // (breadth-first, deterministic).
                let nr = self.pending_ranges.len().min(self.cap);
                let ranges: Vec<(u32, u32)> = self.pending_ranges.drain(..nr).collect();
                let nf = self.pending_fetch.len().min(self.cap - nr);
                let fetch: Vec<ItemId> = self.pending_fetch.drain(..nf).collect();
                let req = ProtocolRequest::Recon { from: initiator.id(), ranges, fetch };
                initiator.charge_message(req.control_bytes(), req.payload_bytes());
                Ok(ReconStep::Send(req))
            }
            (ReconMode::Descent, other) => Err(unexpected("recon", &other)),
        }
    }

    /// Abandon the descent — drop pending probes and the stage — and
    /// charge + build the whole-database pull that replaces it.
    fn degrade(&mut self, initiator: &mut Replica) -> ProtocolRequest {
        self.mode = ReconMode::Full;
        self.pending_ranges.clear();
        self.pending_fetch.clear();
        self.staged.clear();
        self.staged_floor.iter_mut().for_each(|m| *m = 0);
        let req = ProtocolRequest::FullPull { from: initiator.id() };
        initiator.charge_message(req.control_bytes(), req.payload_bytes());
        req
    }

    fn merge(&mut self, got: AcceptOutcome) {
        self.outcome.copied.extend(got.copied);
        self.outcome.conflicts += got.conflicts;
        self.outcome.replayed += got.replayed;
        self.outcome.aux_discarded.extend(got.aux_discarded);
    }

    /// Absorb the descent's full state into a fingerprint hasher — two
    /// drivers hash identically iff a future schedule cannot distinguish
    /// them (see [`Round::mc_fingerprint`](crate::rounds::Round)).
    pub fn mc_fingerprint(&self, h: &mut FnvHasher) {
        h.write_u64(self.n_items as u64);
        h.write_u64(self.cap as u64);
        h.write_u8(match self.mode {
            ReconMode::Descent => 0,
            ReconMode::Full => 1,
        });
        h.write_u64(self.pending_ranges.len() as u64);
        for &(s, e) in &self.pending_ranges {
            h.write_u64(s as u64);
            h.write_u64(e as u64);
        }
        h.write_u64(self.pending_fetch.len() as u64);
        for x in &self.pending_fetch {
            h.write_u64(x.index() as u64);
        }
        h.write_u64(self.discovered);
        match self.cut {
            None => h.write_u8(0),
            Some(c) => {
                h.write_u8(1);
                h.write_u64(c);
            }
        }
        h.write_u64(self.staged.len() as u64);
        for it in &self.staged {
            h.write_u64(it.item.index() as u64);
            h.write_u64(it.ivv.len() as u64);
            for &e in it.ivv.entries() {
                h.write_u64(e);
            }
            h.write_u64(it.value.len() as u64);
            h.write(&it.value);
            h.write_u64(it.records.len() as u64);
            for &(k, m) in &it.records {
                h.write_u64(k.index() as u64);
                h.write_u64(m);
            }
        }
        h.write_u64(self.staged_floor.len() as u64);
        for &m in &self.staged_floor {
            h.write_u64(m);
        }
        h.write_u8(self.any_items as u8);
        h.write_u64(self.outcome.copied.len() as u64);
        for x in &self.outcome.copied {
            h.write_u64(x.index() as u64);
        }
        h.write_u64(self.outcome.conflicts as u64);
        h.write_u64(self.outcome.replayed);
        h.write_u64(self.outcome.aux_discarded.len() as u64);
        for x in &self.outcome.aux_discarded {
            h.write_u64(x.index() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GossipBudget, LocalTransport};
    use epidb_store::UpdateOp;

    fn pair(n_items: usize) -> (Replica, Replica) {
        (Replica::new(NodeId(0), 2, n_items), Replica::new(NodeId(1), 2, n_items))
    }

    #[test]
    fn leaf_digests_agree_iff_items_agree() {
        let (mut a, mut b) = pair(4);
        assert_eq!(a.leaf_digest(ItemId(0)), b.leaf_digest(ItemId(0)));
        b.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        assert_ne!(a.leaf_digest(ItemId(0)), b.leaf_digest(ItemId(0)));
        a.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        // Same value, different IVV (different origin) — still different.
        assert_ne!(a.leaf_digest(ItemId(0)), b.leaf_digest(ItemId(0)));
    }

    #[test]
    fn range_digests_fold_and_localize_differences() {
        let (mut a, mut b) = pair(8);
        assert_eq!(a.range_digest(0, 8), b.range_digest(0, 8));
        b.update(ItemId(5), UpdateOp::set(&b"q"[..])).unwrap();
        assert_ne!(a.range_digest(0, 8), b.range_digest(0, 8));
        // The untouched half still agrees; the touched half differs.
        assert_eq!(a.range_digest(0, 4), b.range_digest(0, 4));
        assert_ne!(a.range_digest(4, 8), b.range_digest(4, 8));
        assert_eq!(a.range_digest(4, 5), b.range_digest(4, 5));
        assert_ne!(a.range_digest(5, 6), b.range_digest(5, 6));
    }

    #[test]
    fn serve_recon_returns_children_and_rejects_bad_ranges() {
        let (mut a, _) = pair(8);
        let reply = a.serve_recon(&[(0, 8)], &[]).unwrap();
        assert_eq!(reply.digests.len(), 2);
        assert_eq!((reply.digests[0].0, reply.digests[0].1), (0, 4));
        assert_eq!((reply.digests[1].0, reply.digests[1].1), (4, 8));
        let reply = a.serve_recon(&[(3, 4)], &[]).unwrap();
        assert_eq!(reply.digests.len(), 1, "width-1 range yields its own leaf digest");
        assert!(a.serve_recon(&[(0, 9)], &[]).is_err());
        assert!(a.serve_recon(&[(4, 4)], &[]).is_err());
    }

    #[test]
    fn recon_descent_ships_only_the_diff() {
        let n = 64;
        let (mut a, mut b) = pair(n);
        // Shared history at both replicas.
        for i in 0..n as u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 16])).unwrap();
        }
        Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        // Then b moves ahead by 3 items while a is offline.
        for i in [7u32, 20, 41] {
            b.update(ItemId(i), UpdateOp::append(&b"+late"[..])).unwrap();
        }
        let payload_before = b.costs().bytes_sent - b.costs().control_bytes;
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        let mut copied = out.copied().to_vec();
        copied.sort();
        assert_eq!(copied, vec![ItemId(7), ItemId(20), ItemId(41)]);
        for i in [7u32, 20, 41] {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
        // Payload shipped by the descent = the three differing values only.
        let diff_payload: u64 = [7u32, 20, 41]
            .iter()
            .map(|&i| b.read(ItemId(i)).unwrap().as_bytes().len() as u64)
            .sum();
        let payload_sent = b.costs().bytes_sent - b.costs().control_bytes - payload_before;
        assert_eq!(payload_sent, diff_payload, "descent ships only differing values");
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn recon_on_equal_replicas_reports_up_to_date() {
        let (mut a, mut b) = pair(8);
        for i in 0..8u32 {
            b.update(ItemId(i), UpdateOp::set(&b"v"[..])).unwrap();
        }
        Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(matches!(out, PullOutcome::UpToDate));
    }

    #[test]
    fn empty_recipient_goes_straight_to_full_pull() {
        let (mut a, mut b) = pair(8);
        for i in 0..8u32 {
            b.update(ItemId(i), UpdateOp::set(vec![1u8; 8])).unwrap();
        }
        let (driver, req) = ReconDriver::start(&mut a, usize::MAX);
        assert_eq!(driver.mode, ReconMode::Full);
        assert!(matches!(req, ProtocolRequest::FullPull { .. }));
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert_eq!(out.copied().len(), 8);
        for i in 0..8u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn descent_degrades_to_full_pull_when_most_items_differ() {
        let n = 16;
        let (mut a, mut b) = pair(n);
        // One shared item so the recipient is not empty (no shortcut).
        b.update(ItemId(0), UpdateOp::set(&b"seed"[..])).unwrap();
        Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        for i in 1..n as u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 4])).unwrap();
        }
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert_eq!(out.copied().len(), n - 1);
        for i in 0..n as u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
    }

    #[test]
    fn recon_applies_retained_records_and_floor() {
        let (mut a, mut b) = pair(4);
        b.set_log_retention(1);
        for i in 0..4u32 {
            b.update(ItemId(i), UpdateOp::set(&b"v"[..])).unwrap();
        }
        // b's log keeps only the latest record; its floor is raised.
        assert!(b.coverage_floor()[1] > 0);
        a.update(ItemId(0), UpdateOp::set(&b"mine"[..])).unwrap();
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(out.copied().len() >= 3);
        // The recipient inherited the responder's floor.
        assert_eq!(a.coverage_floor()[1], b.coverage_floor()[1]);
        // And the retained record for the last item arrived.
        assert_eq!(a.log().retained(NodeId(1), ItemId(3)), b.log().retained(NodeId(1), ItemId(3)));
        a.check_invariants().unwrap();
    }

    #[test]
    fn budgeted_descent_chunks_request_frames() {
        let n = 64;
        let (mut a0, mut b) = pair(n);
        for i in 0..n as u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        Engine::pull(&mut a0, &mut LocalTransport::new(&mut b)).unwrap();
        for i in [3u32, 30, 60] {
            b.update(ItemId(i), UpdateOp::append(&b"+x"[..])).unwrap();
        }
        let mut a1 = a0.clone();
        let out = Engine::pull_recon_with(
            &mut a0,
            &mut LocalTransport::new(&mut b),
            &crate::RetryPolicy::none(),
            &GossipBudget::per_frame(2),
        )
        .unwrap();
        assert_eq!(out.copied().len(), 3);
        // Unbounded gets there too, in fewer (larger) frames.
        let out = Engine::pull_recon(&mut a1, &mut LocalTransport::new(&mut b)).unwrap();
        assert_eq!(out.copied().len(), 3);
        assert!(a0.costs().messages_sent > a1.costs().messages_sent);
        for i in 0..n as u32 {
            assert_eq!(a0.read(ItemId(i)).unwrap(), a1.read(ItemId(i)).unwrap());
        }
    }

    #[test]
    fn mid_descent_source_write_degrades_to_atomic_full_pull() {
        // Regression (found by the model checker): a source write racing
        // the descent can invalidate earlier subtree prunes, and absorbing
        // the late reply's items would leave the recipient holding a
        // non-prefix subset of the source's updates — a divergence that
        // tail-covered pulls can never heal. The cut stamp must detect the
        // race and force the single-exchange whole-database pull instead.
        let n = 8;
        let (mut a, mut b) = pair(n);
        for i in 0..n as u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        for i in [1u32, 6] {
            b.update(ItemId(i), UpdateOp::append(&b"+x"[..])).unwrap();
        }
        let (mut driver, mut req) = ReconDriver::start(&mut a, 1);
        let mut exchanges = 0;
        let mut degraded = false;
        loop {
            exchanges += 1;
            let resp = match &req {
                ProtocolRequest::Recon { ranges, fetch, .. } => {
                    ProtocolResponse::Recon(b.serve_recon(ranges, fetch).unwrap())
                }
                ProtocolRequest::FullPull { .. } => {
                    degraded = true;
                    ProtocolResponse::Full(b.serve_full_pull().unwrap())
                }
                other => panic!("unexpected recon request {other:?}"),
            };
            // The source keeps writing while the descent is in flight —
            // the next reply it serves will carry a moved cut stamp.
            if exchanges == 2 {
                b.update(ItemId(4), UpdateOp::set(&b"racing"[..])).unwrap();
            }
            match driver.on_response(&mut a, b.id(), resp).unwrap() {
                ReconStep::Send(next) => req = next,
                ReconStep::Done(out) => {
                    assert!(matches!(out, PullOutcome::Propagated(_)));
                    break;
                }
            }
        }
        assert!(degraded, "the moved cut stamp must force the whole-database pull");
        for i in 0..n as u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
        a.check_invariants().unwrap();
        // The committed state is prefix-true: a tail-covered pull sees
        // nothing left to ship.
        let out = Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(matches!(out, PullOutcome::UpToDate));
    }

    #[test]
    fn aborted_descent_leaves_the_recipient_untouched() {
        // Fetched items are staged, not applied: a round that dies
        // mid-descent (loss, crash) must leave no partial absorption
        // behind, or the recipient's DBVV could claim updates it does not
        // hold in prefix order.
        let n = 8;
        let (mut a, mut b) = pair(n);
        for i in 0..n as u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        for i in [1u32, 6] {
            b.update(ItemId(i), UpdateOp::append(&b"+x"[..])).unwrap();
        }
        let dbvv_before = a.dbvv().clone();
        let (mut driver, mut req) = ReconDriver::start(&mut a, 1);
        // Run two exchanges — far enough to have fetched item 1 into the
        // stage with cap 1 — then abandon the round.
        for _ in 0..3 {
            let resp = match &req {
                ProtocolRequest::Recon { ranges, fetch, .. } => {
                    ProtocolResponse::Recon(b.serve_recon(ranges, fetch).unwrap())
                }
                other => panic!("unexpected recon request {other:?}"),
            };
            match driver.on_response(&mut a, b.id(), resp).unwrap() {
                ReconStep::Send(next) => req = next,
                ReconStep::Done(_) => panic!("descent finished before the abort point"),
            }
        }
        drop(driver);
        assert_eq!(a.dbvv(), &dbvv_before, "nothing committed by the aborted descent");
        assert_eq!(a.read(ItemId(1)).unwrap().as_bytes(), &[1u8; 8][..], "item 1 unchanged");
        // And the retried reconciliation heals cleanly afterwards.
        let out = Engine::pull_recon(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        for i in 0..n as u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn pull_degrades_to_recon_when_coverage_is_lost() {
        let (mut a, mut b) = pair(8);
        b.set_log_retention(1);
        for i in 0..8u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        a.update(ItemId(0), UpdateOp::set(&b"mine"[..])).unwrap();
        // a's DBVV gap at origin 1 starts below b's floor → plain pull
        // answers NeedRecon and the driver reconciles transparently.
        let out = Engine::pull(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        for i in 1..8u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn delta_pull_degrades_to_recon_when_coverage_is_lost() {
        let (mut a, mut b) = pair(8);
        a.enable_delta(4096);
        b.enable_delta(4096);
        b.set_log_retention(1);
        for i in 0..8u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        a.update(ItemId(0), UpdateOp::set(&b"mine"[..])).unwrap();
        let out = Engine::pull_delta(&mut a, &mut LocalTransport::new(&mut b)).unwrap();
        assert!(matches!(out, PullOutcome::Propagated(_)));
        for i in 1..8u32 {
            assert_eq!(a.read(ItemId(i)).unwrap(), b.read(ItemId(i)).unwrap());
        }
    }
}
