//! Seed-deterministic fault injection over any [`Transport`].
//!
//! [`ChaosTransport`] wraps an inner transport and subjects every exchange
//! to a [`FaultPlan`]: loss on either leg, duplication, reordering,
//! latency, byte corruption, per-link partitions, and mid-exchange
//! connection resets. All randomness comes from one per-link
//! [`StdRng`] seeded explicitly, so a run is a pure function of
//! `(seed, plan, schedule)` — a failing chaos run replays exactly from its
//! printed seed.
//!
//! The faults are modeled at the request/response boundary the engine
//! drivers see:
//!
//! * **loss** (request or response leg) — the exchange fails with a
//!   [`Error::Network`] before or after the responder executed it;
//! * **duplication** — the responder executes the request twice; the
//!   first response is dropped in flight (the paper's idempotence makes
//!   the duplicate a read-only no-op);
//! * **reordering** — the request is *deferred*: the round fails now, and
//!   the stale request is delivered (and its response discarded) at the
//!   front of a later exchange on the same link — an old in-flight frame
//!   arriving out of order;
//! * **corruption** — the message is actually encoded with the checked
//!   codec, one byte is flipped, and the checked decoder produces the
//!   real [`Error::CorruptFrame`] the wire path would produce;
//! * **partition** — exchanges fail while the link's tick counter is
//!   inside a [`PartitionWindow`]; windows end, so partitions heal;
//! * **reset** — the responder executed the request but the connection
//!   died before the response arrived (the half-applied-round shape the
//!   retry ladder must survive).

use std::time::Duration;

use epidb_common::{Error, NodeId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{
    decode_request_checked, decode_response_checked, encode_request_checked,
    encode_response_checked,
};
use crate::engine::{ProtocolRequest, ProtocolResponse, Transport};

/// A half-open window `[from, until)` of link ticks (exchange attempts on
/// that link) during which the link is partitioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick of the outage.
    pub from: u64,
    /// First tick after the outage (the window heals here).
    pub until: u64,
}

impl PartitionWindow {
    /// Whether `tick` falls inside the outage.
    pub fn contains(&self, tick: u64) -> bool {
        (self.from..self.until).contains(&tick)
    }
}

/// The fault mix applied to one link. All probabilities are per-exchange
/// and independent; `Default` is the fault-free plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability the request leg is lost.
    pub request_loss: f64,
    /// Probability the response leg is lost (after responder execution).
    pub response_loss: f64,
    /// Probability the request is delivered twice.
    pub duplication: f64,
    /// Probability the request is deferred and redelivered out of order.
    pub reorder: f64,
    /// Probability one byte of the frame (request or response, chosen at
    /// random) is corrupted.
    pub corruption: f64,
    /// Probability the connection resets mid-exchange, after the responder
    /// executed the request but before the response arrives.
    pub reset: f64,
    /// Fixed extra latency per exchange.
    pub latency: Duration,
    /// Scheduled outages, in link ticks.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Uniform loss on both legs — the shape the old `FaultInjector`
    /// provided.
    pub fn lossy(p: f64) -> FaultPlan {
        FaultPlan { request_loss: p, response_loss: p, ..FaultPlan::default() }
    }

    /// True if every fault probability is zero and no partitions are
    /// scheduled (latency alone does not make a plan faulty).
    pub fn is_fault_free(&self) -> bool {
        self.request_loss == 0.0
            && self.response_loss == 0.0
            && self.duplication == 0.0
            && self.reorder == 0.0
            && self.corruption == 0.0
            && self.reset == 0.0
            && self.partitions.is_empty()
    }
}

/// Ground-truth injection counts, kept by the injector itself so harnesses
/// can check the protocol's accounting (e.g. every corrupted frame was
/// dropped) against what was actually done to the link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Exchange attempts made through this link.
    pub exchanges: u64,
    /// Requests lost before reaching the responder.
    pub lost_requests: u64,
    /// Responses lost after responder execution.
    pub lost_responses: u64,
    /// Requests delivered twice.
    pub duplicated: u64,
    /// Requests deferred for out-of-order redelivery.
    pub reordered: u64,
    /// Deferred requests actually redelivered late.
    pub redelivered: u64,
    /// Frames corrupted (request or response leg).
    pub corrupted: u64,
    /// Connections reset after responder execution.
    pub resets: u64,
    /// Exchanges refused because the link was partitioned.
    pub partitioned: u64,
    /// Exchanges that completed cleanly.
    pub delivered: u64,
}

impl ChaosStats {
    /// Total faults injected.
    pub fn faults(&self) -> u64 {
        self.lost_requests
            + self.lost_responses
            + self.duplicated
            + self.reordered
            + self.corrupted
            + self.resets
            + self.partitioned
    }
}

/// Persistent chaos state for one directed link: the seeded RNG, the plan,
/// the tick counter partitions are scheduled against, deferred (reordered)
/// requests awaiting redelivery, and the injection stats.
///
/// Links outlive the per-round [`ChaosTransport`] wrapper — runtimes build
/// a fresh transport per exchange, but the fault process must be
/// continuous across rounds.
#[derive(Debug)]
pub struct ChaosLink {
    rng: StdRng,
    plan: FaultPlan,
    tick: u64,
    deferred: Vec<ProtocolRequest>,
    /// Injection counts so far.
    pub stats: ChaosStats,
}

impl ChaosLink {
    /// A link driven by `plan`, with all randomness derived from `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> ChaosLink {
        ChaosLink {
            rng: StdRng::seed_from_u64(seed),
            plan,
            tick: 0,
            deferred: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// The plan this link runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replace the plan (e.g. heal the link for a convergence phase).
    /// The RNG, tick counter, and stats carry over.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Exchange attempts made so far (the clock partitions run on).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    fn partitioned(&self) -> bool {
        self.plan.partitions.iter().any(|w| w.contains(self.tick))
    }

    /// Flip one random byte in `frame`.
    fn corrupt_byte(&mut self, frame: &mut [u8]) {
        let idx = self.rng.gen_range(0..frame.len());
        let bit = self.rng.gen_range(0..8u32);
        frame[idx] ^= 1 << bit;
    }
}

fn chaos_err(what: &str) -> Error {
    Error::Network(format!("chaos: {what}"))
}

/// A [`Transport`] that owns an inner transport and injects the faults of
/// a [`ChaosLink`] into every exchange. Composable: the inner transport
/// can be [`LocalTransport`](crate::LocalTransport), a channel, a socket —
/// anything that implements [`Transport`] (including `&mut T`).
pub struct ChaosTransport<'a, T: Transport> {
    inner: T,
    link: &'a mut ChaosLink,
}

impl<'a, T: Transport> ChaosTransport<'a, T> {
    /// Wrap `inner`, injecting faults from `link`.
    pub fn new(inner: T, link: &'a mut ChaosLink) -> ChaosTransport<'a, T> {
        ChaosTransport { inner, link }
    }

    /// Unwrap the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for ChaosTransport<'_, T> {
    fn peer(&self) -> NodeId {
        self.inner.peer()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        let link = &mut *self.link;
        link.tick += 1;
        link.stats.exchanges += 1;

        // Deferred (reordered) requests arrive first: stale frames landing
        // out of order. The responder executes them; their responses have
        // nobody waiting and are discarded.
        for old in std::mem::take(&mut link.deferred) {
            link.stats.redelivered += 1;
            let _ = self.inner.exchange(old);
        }

        if link.partitioned() {
            link.stats.partitioned += 1;
            return Err(chaos_err("link partitioned"));
        }

        if !link.plan.latency.is_zero() {
            std::thread::sleep(link.plan.latency);
        }

        let p = link.plan.clone();
        if p.reorder > 0.0 && link.rng.gen_bool(p.reorder) {
            link.stats.reordered += 1;
            link.deferred.push(req);
            return Err(chaos_err("request reordered"));
        }
        if p.request_loss > 0.0 && link.rng.gen_bool(p.request_loss) {
            link.stats.lost_requests += 1;
            return Err(chaos_err("request lost"));
        }
        if p.corruption > 0.0 && link.rng.gen_bool(p.corruption / 2.0) {
            // Request-leg corruption: run the real frame through the real
            // checked codec with one byte flipped, and surface exactly the
            // error the wire path produces.
            let mut frame = encode_request_checked(&req);
            link.corrupt_byte(&mut frame);
            link.stats.corrupted += 1;
            return Err(match decode_request_checked(&frame) {
                Err(e) => e,
                Ok(_) => chaos_err("corruption went undetected"),
            });
        }
        if p.duplication > 0.0 && link.rng.gen_bool(p.duplication) {
            link.stats.duplicated += 1;
            let _ = self.inner.exchange(req.clone());
        }

        let resp = self.inner.exchange(req)?;

        if p.reset > 0.0 && link.rng.gen_bool(p.reset) {
            link.stats.resets += 1;
            return Err(chaos_err("connection reset mid-exchange"));
        }
        if p.response_loss > 0.0 && link.rng.gen_bool(p.response_loss) {
            link.stats.lost_responses += 1;
            return Err(chaos_err("response lost"));
        }
        if p.corruption > 0.0 && link.rng.gen_bool(p.corruption / 2.0) {
            let mut frame = encode_response_checked(&resp);
            link.corrupt_byte(&mut frame);
            link.stats.corrupted += 1;
            return Err(match decode_response_checked(&frame) {
                Err(e) => e,
                Ok(_) => chaos_err("corruption went undetected"),
            });
        }

        link.stats.delivered += 1;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, LocalTransport};
    use crate::replica::Replica;
    use crate::retry::RetryPolicy;
    use epidb_common::ItemId;
    use epidb_store::UpdateOp;

    fn pair() -> (Replica, Replica) {
        (Replica::new(NodeId(0), 2, 8), Replica::new(NodeId(1), 2, 8))
    }

    #[test]
    fn fault_free_link_is_transparent() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let mut link = ChaosLink::new(1, FaultPlan::none());
        let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
        let out = Engine::pull(&mut b, &mut t).unwrap();
        assert_eq!(out.copied(), &[ItemId(1)]);
        assert_eq!(link.stats.delivered, 1);
        assert_eq!(link.stats.faults(), 0);
    }

    #[test]
    fn total_loss_always_fails() {
        let (mut a, mut b) = pair();
        let mut link = ChaosLink::new(1, FaultPlan::lossy(1.0));
        for _ in 0..5 {
            let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
            assert!(Engine::pull(&mut b, &mut t).is_err());
        }
        assert_eq!(link.stats.lost_requests, 5);
        assert_eq!(link.stats.delivered, 0);
    }

    #[test]
    fn corruption_surfaces_as_corrupt_frame() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let plan = FaultPlan { corruption: 1.0, ..FaultPlan::default() };
        let mut link = ChaosLink::new(3, plan);
        let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
        match Engine::pull(&mut b, &mut t) {
            Err(Error::CorruptFrame(_)) => {}
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        assert!(link.stats.corrupted >= 1);
    }

    #[test]
    fn partition_heals_at_window_end() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let plan = FaultPlan {
            partitions: vec![PartitionWindow { from: 1, until: 4 }],
            ..FaultPlan::default()
        };
        let mut link = ChaosLink::new(9, plan);
        for _ in 0..3 {
            let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
            assert!(Engine::pull(&mut b, &mut t).is_err());
        }
        let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
        let out = Engine::pull(&mut b, &mut t).unwrap();
        assert_eq!(out.copied(), &[ItemId(1)]);
        assert_eq!(link.stats.partitioned, 3);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan {
            request_loss: 0.3,
            response_loss: 0.2,
            duplication: 0.2,
            reorder: 0.2,
            corruption: 0.2,
            reset: 0.1,
            ..FaultPlan::default()
        };
        let run = |seed: u64| {
            let (mut a, mut b) = pair();
            a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
            let mut link = ChaosLink::new(seed, plan.clone());
            for _ in 0..40 {
                let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
                let _ = Engine::pull(&mut b, &mut t);
            }
            (link.stats, b.costs())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds must differ somewhere");
    }

    #[test]
    fn retry_rides_through_a_lossy_link() {
        // Every seed must converge under retries; across a seed sweep the
        // 50% lossy link must actually have forced some.
        let mut total_retries = 0;
        for seed in 0..16 {
            let (mut a, mut b) = pair();
            a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
            let mut link = ChaosLink::new(seed, FaultPlan::lossy(0.5));
            let policy = RetryPolicy::attempts(64);
            let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
            let out = Engine::pull_with(&mut b, &mut t, &policy).unwrap();
            assert_eq!(out.copied(), &[ItemId(1)]);
            total_retries += b.costs().retries;
        }
        assert!(total_retries > 0, "a 50% lossy link all but guarantees retries");
    }

    #[test]
    fn reset_after_execution_is_idempotent_under_retry() {
        let (mut a, mut b) = pair();
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        // Reset the first exchange, then heal: the responder executed the
        // round, the recipient retries, and the second delivery must apply
        // cleanly (no half-applied state).
        let mut link = ChaosLink::new(5, FaultPlan { reset: 1.0, ..FaultPlan::default() });
        {
            let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
            assert!(Engine::pull(&mut b, &mut t).is_err());
        }
        link.set_plan(FaultPlan::none());
        let mut t = ChaosTransport::new(LocalTransport::new(&mut a), &mut link);
        let out = Engine::pull(&mut b, &mut t).unwrap();
        assert_eq!(out.copied(), &[ItemId(1)]);
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }
}
