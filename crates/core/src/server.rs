//! Multi-database servers.
//!
//! The paper's model (§2): "For simplicity, we will assume that there is a
//! single database in the system. When the system maintains multiple
//! databases, a separate instance of the protocol runs for each database."
//! [`Server`] is that multiplexer: a node hosting any number of named
//! databases, each an independent [`Replica`] with its own DBVV, log
//! vector, and auxiliary state. Anti-entropy between two servers runs the
//! protocol once per database they share.

use std::collections::BTreeMap;
use std::time::Instant;

use epidb_common::{Costs, Error, ItemId, NodeId, Result, RouteTarget};
use epidb_store::{ItemValue, UpdateOp};

use crate::engine::{
    unexpected, DbTransport, Engine, ProtocolRequest, ProtocolResponse, SyncMode, Transport,
};
use crate::policy::ConflictPolicy;
use crate::propagation::PullOutcome;
use crate::replica::Replica;
use crate::retry::RetryPolicy;

/// A server hosting one protocol instance per named database.
#[derive(Clone, Debug)]
pub struct Server {
    id: NodeId,
    n_nodes: usize,
    databases: BTreeMap<String, Replica>,
    /// Costs of server-level (non-database) exchanges: the database-list
    /// prelude of a server sync session.
    meta_costs: Costs,
}

impl Server {
    /// A server with no databases yet, in a system of `n_nodes` servers.
    pub fn new(id: NodeId, n_nodes: usize) -> Server {
        assert!(id.index() < n_nodes, "server id out of range");
        Server { id, n_nodes, databases: BTreeMap::new(), meta_costs: Costs::ZERO }
    }

    /// This server's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Create a database replica on this server. Every server replicating
    /// the database must create it with the same `n_items` and policy.
    pub fn create_database(
        &mut self,
        name: impl Into<String>,
        n_items: usize,
        policy: ConflictPolicy,
    ) -> Result<()> {
        let name = name.into();
        if self.databases.contains_key(&name) {
            return Err(Error::DatabaseExists(name));
        }
        self.databases.insert(name, Replica::with_policy(self.id, self.n_nodes, n_items, policy));
        Ok(())
    }

    /// Drop a database replica from this server.
    pub fn drop_database(&mut self, name: &str) -> Result<()> {
        self.databases
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::UnknownDatabase(name.to_string()))
    }

    /// Names of the databases hosted here, sorted.
    pub fn database_names(&self) -> Vec<&str> {
        self.databases.keys().map(String::as_str).collect()
    }

    /// Shared access to one database's replica.
    pub fn database(&self, name: &str) -> Result<&Replica> {
        self.databases.get(name).ok_or_else(|| Error::UnknownDatabase(name.to_string()))
    }

    /// Mutable access to one database's replica.
    pub fn database_mut(&mut self, name: &str) -> Result<&mut Replica> {
        self.databases.get_mut(name).ok_or_else(|| Error::UnknownDatabase(name.to_string()))
    }

    /// Apply a user update in one database.
    pub fn update(&mut self, db: &str, item: ItemId, op: UpdateOp) -> Result<()> {
        self.database_mut(db)?.update(item, op)
    }

    /// Read the user-visible value of an item in one database.
    pub fn read(&self, db: &str, item: ItemId) -> Result<&ItemValue> {
        self.database(db)?.read(item)
    }

    /// Total protocol costs across all hosted databases, plus the
    /// server-level exchanges (the database-list prelude).
    pub fn costs(&self) -> Costs {
        self.databases.values().map(Replica::costs).fold(self.meta_costs, |a, b| a + b)
    }

    /// Check invariants of every hosted database.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (name, replica) in &self.databases {
            replica.check_invariants().map_err(|e| format!("database {name:?}: {e}"))?;
        }
        Ok(())
    }

    /// Serialize the whole server (every hosted database) to bytes.
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::codec::Writer;
        let mut w = Writer::new();
        w.bytes(b"EPDBSRV");
        w.u16(self.id.0);
        w.u16(self.n_nodes as u16);
        w.u32(self.databases.len() as u32);
        for (name, replica) in &self.databases {
            w.bytes(name.as_bytes());
            w.bytes(&replica.to_snapshot());
        }
        w.into_bytes()
    }

    /// Recover a server (all its databases) from a snapshot.
    pub fn from_snapshot(buf: &[u8]) -> Result<Server> {
        use crate::codec::Reader;
        let mut r = Reader::new(buf);
        if r.bytes()? != b"EPDBSRV" {
            return Err(Error::Network("server snapshot: bad magic".into()));
        }
        let id = NodeId(r.u16()?);
        let n_nodes = r.u16()? as usize;
        if id.index() >= n_nodes {
            return Err(Error::UnknownNode(id));
        }
        let count = r.u32()? as usize;
        let mut server = Server::new(id, n_nodes);
        for _ in 0..count {
            let name = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|e| Error::Network(format!("server snapshot: bad name: {e}")))?;
            let replica = Replica::from_snapshot(r.bytes()?)?;
            if replica.id() != id || replica.n_nodes() != n_nodes {
                return Err(Error::Network("server snapshot: inconsistent replica".into()));
            }
            server.databases.insert(name, replica);
        }
        r.finish()?;
        Ok(server)
    }
}

/// What a server-level anti-entropy session did, per database.
#[derive(Debug, Default)]
pub struct ServerPullOutcome {
    /// `(database, outcome)` for every database both servers host.
    pub per_database: Vec<(String, PullOutcome)>,
    /// Databases the source hosts but the recipient does not (candidates
    /// for database-level replication, outside the protocol's scope).
    pub missing_at_recipient: Vec<String>,
}

impl Engine {
    /// Execute one request against a multi-database server: answer the
    /// database-list prelude here, route [`ProtocolRequest::Db`] envelopes
    /// to the named database's replica via [`Engine::handle`].
    pub fn handle_server(server: &mut Server, req: ProtocolRequest) -> Result<ProtocolResponse> {
        match req {
            ProtocolRequest::ListDatabases { .. } => {
                let resp = ProtocolResponse::Databases(server.databases.keys().cloned().collect());
                server.meta_costs.charge_message(resp.control_bytes(), resp.payload_bytes());
                Ok(resp)
            }
            ProtocolRequest::Db { name, req } => {
                // Routing refusals are typed: a `Db` envelope naming a
                // database this server doesn't host gets the same
                // `NotServedHere` treatment as an unowned shard, so
                // callers have one redirect/abort story for both. A
                // server has no placement map for databases, hence the
                // empty owners list.
                let replica =
                    server.databases.get_mut(&name).ok_or_else(|| Error::NotServedHere {
                        target: RouteTarget::Database(name.clone()),
                        owners: vec![],
                    })?;
                let resp = Engine::handle(replica, *req)?;
                Ok(ProtocolResponse::Db { name, resp: Box::new(resp) })
            }
            other => Err(Error::Network(format!(
                "server dispatch needs database routing, got {} request",
                other.kind()
            ))),
        }
    }

    /// Drive one anti-entropy session between two servers over any
    /// transport: ask the source which databases it hosts, then run the
    /// protocol once per shared database (a separate instance per
    /// database, §2) in the chosen shipping mode. No retries; see
    /// [`Engine::pull_server_with`].
    pub fn pull_server<T: Transport>(
        recipient: &mut Server,
        transport: &mut T,
        mode: SyncMode,
    ) -> Result<ServerPullOutcome> {
        Self::pull_server_with(recipient, transport, mode, &RetryPolicy::none())
    }

    /// As [`Engine::pull_server`], with `policy` applied independently to
    /// the database-list prelude (retried here, charged to the server's
    /// meta costs) and to each per-database round (retried by the replica
    /// drivers, charged to that database's replica — with the delta mode's
    /// degradation ladder intact).
    pub fn pull_server_with<T: Transport>(
        recipient: &mut Server,
        transport: &mut T,
        mode: SyncMode,
        policy: &RetryPolicy,
    ) -> Result<ServerPullOutcome> {
        let start = Instant::now();
        let mut failed = 0u32;
        let names = loop {
            let list = ProtocolRequest::ListDatabases { from: recipient.id };
            recipient.meta_costs.charge_message(list.control_bytes(), list.payload_bytes());
            match transport.exchange(list) {
                Ok(ProtocolResponse::Databases(names)) => break names,
                Ok(other) => return Err(unexpected("list-databases", &other)),
                Err(e) => {
                    if matches!(e, Error::CorruptFrame(_)) {
                        recipient.meta_costs.corrupt_frames_dropped += 1;
                    }
                    failed += 1;
                    if !policy.retryable(&e)
                        || failed >= policy.max_attempts
                        || policy.deadline_exceeded(start)
                    {
                        return Err(e);
                    }
                    recipient.meta_costs.retries += 1;
                    let pause = policy.backoff(failed);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        };

        let mut outcome = ServerPullOutcome::default();
        for name in names {
            let Some(replica) = recipient.databases.get_mut(&name) else {
                outcome.missing_at_recipient.push(name);
                continue;
            };
            let mut routed = DbTransport::new(transport, &name);
            let o = match mode {
                SyncMode::WholeItem => Engine::pull_with(replica, &mut routed, policy)?,
                SyncMode::Delta => Engine::pull_delta_with(replica, &mut routed, policy)?,
            };
            outcome.per_database.push((name, o));
        }
        Ok(outcome)
    }
}

/// The in-process transport between two multi-database servers: an
/// exchange is a direct call to [`Engine::handle_server`].
pub struct LocalServerTransport<'a> {
    source: &'a mut Server,
}

impl<'a> LocalServerTransport<'a> {
    /// Wrap the source server of an in-process exchange.
    pub fn new(source: &'a mut Server) -> LocalServerTransport<'a> {
        LocalServerTransport { source }
    }
}

impl Transport for LocalServerTransport<'_> {
    fn peer(&self) -> NodeId {
        self.source.id
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        Engine::handle_server(self.source, req)
    }
}

/// One anti-entropy session between two servers: runs the protocol once
/// for every database they share (a separate instance per database, §2),
/// copying whole items.
pub fn pull_server(recipient: &mut Server, source: &mut Server) -> Result<ServerPullOutcome> {
    Engine::pull_server(recipient, &mut LocalServerTransport::new(source), SyncMode::WholeItem)
}

/// As [`pull_server`], but shipping update records (delta mode) for every
/// shared database. Databases whose replicas have no op cache fall back to
/// whole values per item, exactly as replica-level delta pulls do.
pub fn pull_server_delta(recipient: &mut Server, source: &mut Server) -> Result<ServerPullOutcome> {
    Engine::pull_server(recipient, &mut LocalServerTransport::new(source), SyncMode::Delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_vv::VvOrd;

    fn two_servers() -> (Server, Server) {
        let mut a = Server::new(NodeId(0), 2);
        let mut b = Server::new(NodeId(1), 2);
        for s in [&mut a, &mut b] {
            s.create_database("mail", 100, ConflictPolicy::Report).unwrap();
            s.create_database("docs", 50, ConflictPolicy::Report).unwrap();
        }
        (a, b)
    }

    #[test]
    fn databases_are_independent_protocol_instances() {
        let (mut a, mut b) = two_servers();
        a.update("mail", ItemId(1), UpdateOp::set(&b"inbox"[..])).unwrap();
        a.update("docs", ItemId(2), UpdateOp::set(&b"spec"[..])).unwrap();

        // Each database has its own DBVV.
        assert_eq!(a.database("mail").unwrap().dbvv().total(), 1);
        assert_eq!(a.database("docs").unwrap().dbvv().total(), 1);

        let out = pull_server(&mut b, &mut a).unwrap();
        assert_eq!(out.per_database.len(), 2);
        assert!(out.missing_at_recipient.is_empty());
        assert_eq!(b.read("mail", ItemId(1)).unwrap().as_bytes(), b"inbox");
        assert_eq!(b.read("docs", ItemId(2)).unwrap().as_bytes(), b"spec");
        b.check_invariants().unwrap();
    }

    #[test]
    fn identical_databases_detected_per_instance() {
        let (mut a, mut b) = two_servers();
        a.update("mail", ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        pull_server(&mut b, &mut a).unwrap();
        let out = pull_server(&mut b, &mut a).unwrap();
        for (_, o) in &out.per_database {
            assert!(matches!(o, PullOutcome::UpToDate));
        }
        assert_eq!(
            a.database("mail").unwrap().dbvv().compare(b.database("mail").unwrap().dbvv()),
            VvOrd::Equal
        );
    }

    #[test]
    fn unshared_databases_are_reported_not_synced() {
        let (mut a, mut b) = two_servers();
        a.create_database("private", 10, ConflictPolicy::Report).unwrap();
        a.update("private", ItemId(0), UpdateOp::set(&b"secret"[..])).unwrap();
        let out = pull_server(&mut b, &mut a).unwrap();
        assert_eq!(out.missing_at_recipient, vec!["private".to_string()]);
        assert!(b.database("private").is_err());
    }

    #[test]
    fn duplicate_and_unknown_database_errors() {
        let mut s = Server::new(NodeId(0), 2);
        s.create_database("db", 10, ConflictPolicy::Report).unwrap();
        assert!(matches!(
            s.create_database("db", 10, ConflictPolicy::Report),
            Err(Error::DatabaseExists(_))
        ));
        assert!(matches!(s.read("nope", ItemId(0)), Err(Error::UnknownDatabase(_))));
        assert!(s.drop_database("db").is_ok());
        assert!(matches!(s.drop_database("db"), Err(Error::UnknownDatabase(_))));
    }

    #[test]
    fn server_snapshot_roundtrips_all_databases() {
        let (mut a, mut b) = two_servers();
        a.update("mail", ItemId(1), UpdateOp::set(&b"msg"[..])).unwrap();
        a.update("docs", ItemId(0), UpdateOp::set(&b"doc"[..])).unwrap();
        pull_server(&mut b, &mut a).unwrap();

        let buf = b.to_snapshot();
        let restored = Server::from_snapshot(&buf).unwrap();
        assert_eq!(restored.id(), b.id());
        assert_eq!(restored.database_names(), b.database_names());
        assert_eq!(restored.read("mail", ItemId(1)).unwrap().as_bytes(), b"msg");
        assert_eq!(restored.read("docs", ItemId(0)).unwrap().as_bytes(), b"doc");
        restored.check_invariants().unwrap();

        // The restored server keeps replicating.
        let mut restored = restored;
        a.update("mail", ItemId(2), UpdateOp::set(&b"post-crash"[..])).unwrap();
        pull_server(&mut restored, &mut a).unwrap();
        assert_eq!(restored.read("mail", ItemId(2)).unwrap().as_bytes(), b"post-crash");
    }

    #[test]
    fn corrupt_server_snapshot_rejected() {
        let (a, _) = two_servers();
        let buf = a.to_snapshot();
        let mut bad = buf.clone();
        bad[4] = b'X';
        assert!(Server::from_snapshot(&bad).is_err());
        assert!(Server::from_snapshot(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn server_sync_in_delta_mode_ships_ops() {
        let (mut a, mut b) = two_servers();
        for s in [&mut a, &mut b] {
            s.database_mut("mail").unwrap().enable_delta(1 << 20);
            s.database_mut("docs").unwrap().enable_delta(1 << 20);
        }
        a.update("mail", ItemId(0), UpdateOp::set(vec![7u8; 4096])).unwrap();
        pull_server_delta(&mut b, &mut a).unwrap();

        // A small edit on the big item plus a fresh small item: the second
        // delta session must ship operations, not the 4 KiB value again.
        a.update("mail", ItemId(0), UpdateOp::append(&b"tail"[..])).unwrap();
        a.update("docs", ItemId(1), UpdateOp::set(&b"doc"[..])).unwrap();
        let before = a.costs();
        let out = pull_server_delta(&mut b, &mut a).unwrap();
        assert_eq!(out.per_database.len(), 2);
        let d = a.costs() - before;
        assert!(d.bytes_sent - d.control_bytes < 100, "delta session re-shipped whole values");
        assert_eq!(b.read("mail", ItemId(0)).unwrap().len(), 4096 + 4);
        assert_eq!(b.read("docs", ItemId(1)).unwrap().as_bytes(), b"doc");
        b.check_invariants().unwrap();

        // A third session detects "you are current" per database from the
        // DBVVs alone.
        let out = pull_server_delta(&mut b, &mut a).unwrap();
        for (_, o) in &out.per_database {
            assert!(matches!(o, PullOutcome::UpToDate));
        }
    }

    #[test]
    fn routed_request_to_unknown_database_errors() {
        let (mut a, _) = two_servers();
        let req = ProtocolRequest::Db {
            name: "nope".into(),
            req: Box::new(ProtocolRequest::ListDatabases { from: NodeId(1) }),
        };
        match Engine::handle_server(&mut a, req) {
            Err(e @ Error::NotServedHere { .. }) => {
                // Same refusal type as an unowned shard, same
                // classification: redirect, don't blindly retry.
                assert!(!e.is_retryable());
            }
            other => panic!("expected a typed routing refusal, got {other:?}"),
        }
    }

    #[test]
    fn server_costs_aggregate_databases() {
        let (mut a, mut b) = two_servers();
        a.update("mail", ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        a.update("docs", ItemId(0), UpdateOp::set(&b"y"[..])).unwrap();
        pull_server(&mut b, &mut a).unwrap();
        assert!(a.costs().messages_sent >= 2); // one response per database
        assert_eq!(b.costs().items_copied, 2);
        assert_eq!(a.database_names(), vec!["docs", "mail"]);
    }
}
