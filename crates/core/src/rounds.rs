//! Step-wise (non-blocking) protocol rounds: the initiator side of pull,
//! delta-pull, and out-of-bound copy as an explicit state machine.
//!
//! [`Engine::pull`](crate::Engine::pull) and friends drive a whole round
//! to completion inside one call — natural for the blocking runtimes, but
//! opaque to anything that needs to *interleave* rounds: the model checker
//! must be able to stop a round between messages, fork the system, deliver
//! a different message first, or crash a node mid-round. A [`Round`] is
//! the same protocol with the blocking loop turned inside out:
//!
//! ```text
//! let (mut round, req) = Round::start_delta(&mut a, peer, &budget);
//! // ... req travels, the responder runs Engine::handle, resp returns ...
//! match round.on_response(&mut a, resp)? {
//!     RoundStep::Send(next) => { /* another message in flight */ }
//!     RoundStep::Done(outcome) => { /* round complete */ }
//! }
//! ```
//!
//! The machine mirrors the engine's drivers *exactly* — the same messages
//! in the same order with the same charging (initiator charges its
//! requests at send time; the responder charges responses inside
//! [`Engine::handle`](crate::Engine::handle)) — so a schedule driven
//! step-wise produces byte-identical [`Costs`](epidb_common::Costs) and
//! state fingerprints to the same schedule driven by the blocking engine.
//! The parity tests at the bottom pin that equivalence; it is what lets
//! the model checker's conclusions transfer to every production runtime.
//!
//! Retries are deliberately *not* part of the machine: a transport failure
//! aborts the round (the caller may start a fresh one — rounds are
//! idempotent). The model checker injects losses as first-class events
//! instead of hiding them behind a retry loop. This is also the shape an
//! async gossip initiator needs (the ROADMAP's "async initiator" item):
//! one `Round` per in-flight peer exchange, resumed as responses land.

use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_vv::VersionVector;

use crate::codec::{put_log_record, put_op, put_vv, Writer};
use crate::delta::{DeltaItem, DeltaOfferResponse, DeltaPayload, DeltaRequest, OfferEvaluation};
use crate::engine::{unexpected, GossipBudget, ProtocolRequest, ProtocolResponse};
use crate::mc_state::FnvHasher;
use crate::messages::PropagationResponse;
use crate::oob::OobOutcome;
use crate::propagation::PullOutcome;
use crate::recon::{ReconDriver, ReconStep};
use crate::replica::Replica;

/// What the initiator must do next after feeding a response into
/// [`Round::on_response`].
#[derive(Debug)]
pub enum RoundStep {
    /// Another request is in flight — deliver it to the responder and feed
    /// the response back in.
    Send(ProtocolRequest),
    /// The round completed.
    Done(RoundOutcome),
}

/// The completed round's result.
#[derive(Debug)]
pub enum RoundOutcome {
    /// A pull or delta-pull round finished.
    Pull(PullOutcome),
    /// An out-of-bound copy finished.
    Oob(OobOutcome),
}

#[derive(Clone, Debug)]
enum State {
    /// Waiting for message 2 of the whole-item pull.
    AwaitPull,
    /// Waiting for message 2 of the delta pull (the offer).
    AwaitOffer,
    /// Waiting for a delta data frame (message 4, possibly chunked).
    AwaitDelta {
        /// Item ids of the in-flight fetch chunk (for under-served
        /// re-requests).
        ids: Vec<ItemId>,
        /// Wants not yet put on the wire.
        remaining: Vec<(ItemId, VersionVector)>,
        /// Data collected so far, applied in one `apply_delta` at the end.
        got: Vec<DeltaItem>,
        /// The offer evaluation, carried into the apply step.
        eval: OfferEvaluation,
    },
    /// Waiting for the out-of-bound reply.
    AwaitOob {
        /// The requested item.
        item: ItemId,
    },
    /// Running a set-reconciliation descent (entered directly via
    /// [`Round::start_recon`] or by degradation when a pull or offer
    /// answers `NeedRecon`).
    Recon(ReconDriver),
    /// Finished (or aborted by an error).
    Done,
}

/// One in-flight initiator-side protocol round. `Clone` so the model
/// checker can fork a system with rounds mid-flight.
#[derive(Clone, Debug)]
pub struct Round {
    peer: NodeId,
    /// Fetch-chunk cap ([`GossipBudget::max_frame_items`], min 1).
    cap: usize,
    state: State,
}

impl Round {
    /// Start a whole-item pull (§5.1) from `initiator` toward `peer`.
    /// Charges the initiator for message 1 and returns it for delivery.
    pub fn start_pull(initiator: &mut Replica, peer: NodeId) -> (Round, ProtocolRequest) {
        let req = ProtocolRequest::Pull { from: initiator.id(), dbvv: initiator.dbvv().clone() };
        initiator.charge_message(req.control_bytes(), req.payload_bytes());
        (Round { peer, cap: usize::MAX, state: State::AwaitPull }, req)
    }

    /// Start a delta-mode pull (messages 1–4) from `initiator` toward
    /// `peer`, chunking fetches under `budget`.
    pub fn start_delta(
        initiator: &mut Replica,
        peer: NodeId,
        budget: &GossipBudget,
    ) -> (Round, ProtocolRequest) {
        let req =
            ProtocolRequest::DeltaPull { from: initiator.id(), dbvv: initiator.dbvv().clone() };
        initiator.charge_message(req.control_bytes(), req.payload_bytes());
        (Round { peer, cap: budget.max_frame_items.max(1), state: State::AwaitOffer }, req)
    }

    /// Start a set-reconciliation round from `initiator` toward `peer`,
    /// capping request frames under `budget` — the step-wise twin of
    /// [`Engine::pull_recon`](crate::Engine::pull_recon).
    pub fn start_recon(
        initiator: &mut Replica,
        peer: NodeId,
        budget: &GossipBudget,
    ) -> (Round, ProtocolRequest) {
        let cap = budget.max_frame_items.max(1);
        let (driver, req) = ReconDriver::start(initiator, cap);
        (Round { peer, cap, state: State::Recon(driver) }, req)
    }

    /// Start an out-of-bound copy of `item` (§5.2) from `initiator` toward
    /// `peer`.
    pub fn start_oob(
        initiator: &mut Replica,
        peer: NodeId,
        item: ItemId,
    ) -> (Round, ProtocolRequest) {
        let req = ProtocolRequest::Oob { from: initiator.id(), item };
        initiator.charge_message(req.control_bytes(), req.payload_bytes());
        (Round { peer, cap: usize::MAX, state: State::AwaitOob { item } }, req)
    }

    /// The responder this round is exchanging with.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// True once the round has completed or aborted.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Feed the responder's reply to the last sent request into the
    /// machine. Returns the next request to deliver or the round's
    /// outcome. On `Err` the round is aborted (state becomes done); the
    /// error is the same the blocking engine would surface.
    pub fn on_response(
        &mut self,
        initiator: &mut Replica,
        resp: ProtocolResponse,
    ) -> Result<RoundStep> {
        let state = std::mem::replace(&mut self.state, State::Done);
        match (state, resp) {
            (State::AwaitPull, ProtocolResponse::Pull(PropagationResponse::YouAreCurrent)) => {
                Ok(RoundStep::Done(RoundOutcome::Pull(PullOutcome::UpToDate)))
            }
            (State::AwaitPull, ProtocolResponse::Pull(PropagationResponse::Payload(payload))) => {
                let outcome = initiator.accept_propagation(self.peer, payload)?;
                Ok(RoundStep::Done(RoundOutcome::Pull(PullOutcome::Propagated(outcome))))
            }
            (State::AwaitPull, ProtocolResponse::Pull(PropagationResponse::NeedRecon)) => {
                // Degrade exactly as the blocking engine: a plain pull
                // reconciles unbudgeted.
                let (driver, req) = ReconDriver::start(initiator, usize::MAX);
                self.state = State::Recon(driver);
                Ok(RoundStep::Send(req))
            }
            (State::AwaitPull, other) => Err(unexpected("pull", &other)),

            (
                State::AwaitOffer,
                ProtocolResponse::DeltaOffer(DeltaOfferResponse::YouAreCurrent),
            ) => Ok(RoundStep::Done(RoundOutcome::Pull(PullOutcome::UpToDate))),
            (State::AwaitOffer, ProtocolResponse::DeltaOffer(DeltaOfferResponse::Offer(offer))) => {
                let (wants, eval) = initiator.evaluate_delta_offer(self.peer, offer)?;
                // The engine always sends at least one fetch, even for an
                // empty want-list — the exchange shape must match.
                Ok(RoundStep::Send(self.next_fetch(initiator, wants.wants, Vec::new(), eval)))
            }
            (State::AwaitOffer, ProtocolResponse::DeltaOffer(DeltaOfferResponse::NeedRecon)) => {
                // Degrade under the round's own frame cap, like
                // `pull_delta_round`.
                let (driver, req) = ReconDriver::start(initiator, self.cap);
                self.state = State::Recon(driver);
                Ok(RoundStep::Send(req))
            }
            (State::AwaitOffer, other) => Err(unexpected("delta-pull", &other)),

            (
                State::AwaitDelta { ids, mut remaining, mut got, eval },
                ProtocolResponse::DeltaPayload(payload),
            ) => {
                let take = ids.len();
                let served = payload.items.len().min(take);
                if served == 0 && take > 0 {
                    return Err(Error::Network("delta fetch made no progress".into()));
                }
                if served < take {
                    // Under-served suffix: re-derive the IVVs from the
                    // store (nothing has been applied yet, so they are
                    // stable) and put them back at the head of the queue.
                    let mut unserved = ids[served..]
                        .iter()
                        .map(|&x| Ok((x, initiator.store.get(x)?.ivv.clone())))
                        .collect::<Result<Vec<_>>>()?;
                    unserved.append(&mut remaining);
                    remaining = unserved;
                }
                got.extend(payload.items);
                if remaining.is_empty() {
                    let outcome =
                        initiator.apply_delta(self.peer, DeltaPayload { items: got }, eval)?;
                    Ok(RoundStep::Done(RoundOutcome::Pull(PullOutcome::Propagated(outcome))))
                } else {
                    Ok(RoundStep::Send(self.next_fetch(initiator, remaining, got, eval)))
                }
            }
            (State::AwaitDelta { .. }, other) => Err(unexpected("delta-fetch", &other)),

            (State::AwaitOob { .. }, ProtocolResponse::Oob(reply)) => {
                let outcome = initiator.accept_oob(self.peer, reply)?;
                Ok(RoundStep::Done(RoundOutcome::Oob(outcome)))
            }
            (State::AwaitOob { .. }, other) => Err(unexpected("oob", &other)),

            (State::Recon(mut driver), resp) => {
                match driver.on_response(initiator, self.peer, resp)? {
                    ReconStep::Send(req) => {
                        self.state = State::Recon(driver);
                        Ok(RoundStep::Send(req))
                    }
                    ReconStep::Done(outcome) => Ok(RoundStep::Done(RoundOutcome::Pull(outcome))),
                }
            }

            (State::Done, _) => {
                Err(Error::Network("response delivered to a completed round".into()))
            }
        }
    }

    /// Carve the next `cap`-sized chunk off the want-list, charge and
    /// build its `DeltaFetch`, and park the rest in the state. Mirrors the
    /// engine's chunk loop: the chunk is *moved* into the frame, only the
    /// ids are kept.
    fn next_fetch(
        &mut self,
        initiator: &mut Replica,
        mut remaining: Vec<(ItemId, VersionVector)>,
        got: Vec<DeltaItem>,
        eval: OfferEvaluation,
    ) -> ProtocolRequest {
        let take = remaining.len().min(self.cap);
        let rest = remaining.split_off(take);
        let chunk = std::mem::replace(&mut remaining, rest);
        let ids: Vec<ItemId> = chunk.iter().map(|(x, _)| *x).collect();
        let fetch = ProtocolRequest::DeltaFetch {
            from: initiator.id(),
            wants: DeltaRequest { wants: chunk },
        };
        initiator.charge_message(fetch.control_bytes(), fetch.payload_bytes());
        self.state = State::AwaitDelta { ids, remaining, got, eval };
        fetch
    }

    /// Absorb this round's full state into a fingerprint hasher, via the
    /// deterministic codec encoding — two rounds hash identically iff a
    /// future schedule cannot distinguish them.
    pub fn mc_fingerprint(&self, h: &mut FnvHasher) {
        h.write_u64(self.peer.index() as u64);
        h.write_u64(self.cap as u64);
        let mut w = Writer::new();
        match &self.state {
            State::AwaitPull => w.u8(0),
            State::AwaitOffer => w.u8(1),
            State::AwaitDelta { ids, remaining, got, eval } => {
                w.u8(2);
                w.u32(ids.len() as u32);
                for x in ids {
                    w.u32(x.0);
                }
                w.u32(remaining.len() as u32);
                for (x, ivv) in remaining {
                    w.u32(x.0);
                    put_vv(&mut w, ivv);
                }
                w.u32(got.len() as u32);
                for item in got {
                    match item {
                        DeltaItem::Ops { item, ops, final_ivv } => {
                            w.u8(0);
                            w.u32(item.0);
                            w.u32(ops.len() as u32);
                            for c in ops {
                                put_vv(&mut w, &c.pre_vv);
                                put_op(&mut w, &c.op);
                            }
                            put_vv(&mut w, final_ivv);
                        }
                        DeltaItem::Whole(s) => {
                            w.u8(1);
                            w.u32(s.item.0);
                            w.value(&s.value);
                            put_vv(&mut w, &s.ivv);
                        }
                    }
                }
                w.u32(eval.tails.len() as u32);
                for tail in &eval.tails {
                    w.u32(tail.len() as u32);
                    for rec in tail {
                        put_log_record(&mut w, rec);
                    }
                }
                w.u32(eval.refused.len() as u32);
                for x in &eval.refused {
                    w.u32(x.0);
                }
                w.u32(eval.conflicts as u32);
            }
            State::AwaitOob { item } => {
                w.u8(3);
                w.u32(item.0);
            }
            State::Done => w.u8(4),
            State::Recon(driver) => {
                w.u8(5);
                h.write(&w.into_bytes());
                driver.mc_fingerprint(h);
                return;
            }
        }
        h.write(&w.into_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, LocalTransport};
    use epidb_store::UpdateOp;

    /// Drive one round step-wise against `Engine::handle` on the
    /// responder, exactly as the model checker does.
    fn drive(
        initiator: &mut Replica,
        responder: &mut Replica,
        (mut round, first): (Round, ProtocolRequest),
    ) -> Result<RoundOutcome> {
        let mut req = first;
        loop {
            let resp = Engine::handle(responder, req)?;
            match round.on_response(initiator, resp)? {
                RoundStep::Send(next) => req = next,
                RoundStep::Done(outcome) => return Ok(outcome),
            }
        }
    }

    fn seeded_pair(delta: bool) -> (Replica, Replica) {
        let mut a = Replica::new(NodeId(0), 2, 10);
        let mut b = Replica::new(NodeId(1), 2, 10);
        if delta {
            a.enable_delta(4096);
            b.enable_delta(4096);
        }
        for i in 0..6u32 {
            b.update(ItemId(i), UpdateOp::set(vec![i as u8; 12])).unwrap();
        }
        b.update(ItemId(1), UpdateOp::append(&b"+x"[..])).unwrap();
        (a, b)
    }

    #[test]
    fn stepwise_pull_matches_engine_exactly() {
        let (a0, b0) = seeded_pair(false);

        let (mut ae, mut be) = (a0.clone(), b0.clone());
        Engine::pull(&mut ae, &mut LocalTransport::new(&mut be)).unwrap();

        let (mut ar, mut br) = (a0, b0);
        let start = Round::start_pull(&mut ar, NodeId(1));
        let out = drive(&mut ar, &mut br, start).unwrap();
        assert!(matches!(out, RoundOutcome::Pull(PullOutcome::Propagated(_))));

        assert_eq!(ae.costs(), ar.costs(), "initiator costs diverged");
        assert_eq!(be.costs(), br.costs(), "responder costs diverged");
        assert_eq!(ae.fingerprint(), ar.fingerprint());
        assert_eq!(be.fingerprint(), br.fingerprint());
    }

    #[test]
    fn stepwise_delta_matches_engine_exactly() {
        // A chunked budget exercises the multi-fetch path.
        for budget in [GossipBudget::UNBOUNDED, GossipBudget::per_frame(2)] {
            let (a0, b0) = seeded_pair(true);

            let (mut ae, mut be) = (a0.clone(), b0.clone());
            Engine::pull_delta_budgeted(
                &mut ae,
                &mut LocalTransport::new(&mut be),
                &crate::RetryPolicy::none(),
                &budget,
            )
            .unwrap();

            let (mut ar, mut br) = (a0, b0);
            let start = Round::start_delta(&mut ar, NodeId(1), &budget);
            let out = drive(&mut ar, &mut br, start).unwrap();
            assert!(matches!(out, RoundOutcome::Pull(PullOutcome::Propagated(_))));

            assert_eq!(ae.costs(), ar.costs(), "initiator costs diverged");
            assert_eq!(be.costs(), br.costs(), "responder costs diverged");
            assert_eq!(ae.fingerprint(), ar.fingerprint());
            assert_eq!(be.fingerprint(), br.fingerprint());
        }
    }

    #[test]
    fn stepwise_uptodate_and_oob_match_engine() {
        let (a0, b0) = seeded_pair(false);

        // Up-to-date pull: b pulls from a, which has nothing for it.
        let (mut be, mut ae) = (b0.clone(), a0.clone());
        Engine::pull(&mut be, &mut LocalTransport::new(&mut ae)).unwrap();
        let (mut br, mut ar) = (b0.clone(), a0.clone());
        let start = Round::start_pull(&mut br, NodeId(0));
        let out = drive(&mut br, &mut ar, start).unwrap();
        assert!(matches!(out, RoundOutcome::Pull(PullOutcome::UpToDate)));
        assert_eq!(be.costs(), br.costs());
        assert_eq!(ae.costs(), ar.costs());

        // OOB copy of one item.
        let (mut ae, mut be) = (a0.clone(), b0.clone());
        Engine::oob(&mut ae, &mut LocalTransport::new(&mut be), ItemId(2)).unwrap();
        let (mut ar, mut br) = (a0, b0);
        let start = Round::start_oob(&mut ar, NodeId(1), ItemId(2));
        let out = drive(&mut ar, &mut br, start).unwrap();
        assert!(matches!(out, RoundOutcome::Oob(OobOutcome::Adopted { .. })));
        assert_eq!(ae.costs(), ar.costs());
        assert_eq!(be.costs(), br.costs());
        assert_eq!(ae.fingerprint(), ar.fingerprint());
    }

    #[test]
    fn stepwise_recon_matches_engine_exactly() {
        for budget in [GossipBudget::UNBOUNDED, GossipBudget::per_frame(2)] {
            let mut a0 = Replica::new(NodeId(0), 2, 32);
            let mut b0 = Replica::new(NodeId(1), 2, 32);
            for i in 0..32u32 {
                b0.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
            }
            Engine::pull(&mut a0, &mut LocalTransport::new(&mut b0)).unwrap();
            for i in [2u32, 17, 30] {
                b0.update(ItemId(i), UpdateOp::append(&b"+late"[..])).unwrap();
            }

            let (mut ae, mut be) = (a0.clone(), b0.clone());
            Engine::pull_recon_with(
                &mut ae,
                &mut LocalTransport::new(&mut be),
                &crate::RetryPolicy::none(),
                &budget,
            )
            .unwrap();

            let (mut ar, mut br) = (a0, b0);
            let start = Round::start_recon(&mut ar, NodeId(1), &budget);
            let out = drive(&mut ar, &mut br, start).unwrap();
            assert!(matches!(out, RoundOutcome::Pull(PullOutcome::Propagated(_))));

            assert_eq!(ae.costs(), ar.costs(), "initiator costs diverged");
            assert_eq!(be.costs(), br.costs(), "responder costs diverged");
            assert_eq!(ae.fingerprint(), ar.fingerprint());
            assert_eq!(be.fingerprint(), br.fingerprint());
        }
    }

    #[test]
    fn stepwise_pull_degrades_to_recon_like_the_engine() {
        let mut a0 = Replica::new(NodeId(0), 2, 16);
        let mut b0 = Replica::new(NodeId(1), 2, 16);
        b0.set_log_retention(1);
        for i in 0..16u32 {
            b0.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        a0.update(ItemId(0), UpdateOp::set(&b"mine"[..])).unwrap();

        let (mut ae, mut be) = (a0.clone(), b0.clone());
        Engine::pull(&mut ae, &mut LocalTransport::new(&mut be)).unwrap();

        let (mut ar, mut br) = (a0, b0);
        let start = Round::start_pull(&mut ar, NodeId(1));
        let out = drive(&mut ar, &mut br, start).unwrap();
        assert!(matches!(out, RoundOutcome::Pull(PullOutcome::Propagated(_))));

        assert_eq!(ae.costs(), ar.costs(), "initiator costs diverged");
        assert_eq!(be.costs(), br.costs(), "responder costs diverged");
        assert_eq!(ae.fingerprint(), ar.fingerprint());
        assert_eq!(be.fingerprint(), br.fingerprint());
    }

    #[test]
    fn round_fingerprint_distinguishes_states() {
        let (mut a, _b) = seeded_pair(true);
        let (pull_round, _) = Round::start_pull(&mut a.clone(), NodeId(1));
        let (delta_round, _) = Round::start_delta(&mut a, NodeId(1), &GossipBudget::UNBOUNDED);
        let mut h1 = FnvHasher::new();
        pull_round.mc_fingerprint(&mut h1);
        let mut h2 = FnvHasher::new();
        delta_round.mc_fingerprint(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
