//! Paranoid mode: an always-available replica-level invariant auditor.
//!
//! The protocol's correctness rests on a small set of state invariants
//! (DESIGN §4, §7). The [`ReplicaAuditor`] re-derives each of them from
//! first principles against a replica's live state, so a test — or a
//! replica running with [`Replica::set_paranoid`] — can verify after *any*
//! protocol step that nothing has silently drifted:
//!
//! 1. **DBVV = Σ IVV** — the database version vector equals the
//!    component-wise sum of all regular item version vectors (the defining
//!    property of maintenance rules 1–3, §4.1).
//! 2. **Log structure** — the log vector's slot/pointer invariants hold
//!    (each origin's list is intact, `P(x)` pointers agree, §4.2).
//! 3. **m-monotonicity** — within each origin's log component, records are
//!    strictly increasing in `m` and retain at most one record per item.
//! 4. **Selection flags** — the `IsSelected` scratch flags are all clear
//!    between propagations (§6's O(m) set computation cleans up).
//! 5. **Aux structure** — the auxiliary log's invariants hold and every
//!    auxiliary log record belongs to an item with an auxiliary copy
//!    (§4.3–4.4).
//! 6. **Aux dominance** — while this replica has never declared a
//!    conflict, no auxiliary copy is *older* than the regular copy
//!    (out-of-bound copies are only ever adopted when strictly newer, and
//!    intra-node propagation discards them once the regular copy catches
//!    up — §4.4, §5.2). A declared conflict legitimately freezes auxiliary
//!    state, so the check is skipped from then on — and likewise after
//!    crash recovery, because conflict reports are ephemeral: a replica
//!    restored from a snapshot taken mid-conflict holds frozen auxiliary
//!    state with a reset conflict counter.
//!
//! When a paranoid replica's post-step audit finds a violation it panics
//! with the audit report **and** the structured protocol trace
//! ([`epidb_common::TraceRing`]), whose last event names the offending
//! step.

use std::fmt;

use epidb_vv::VvOrd;

use epidb_common::NodeId;

use crate::replica::Replica;

/// Which invariant a violation belongs to (stable names for counters and
/// assertions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditCheck {
    /// DBVV equals the component-wise sum of regular IVVs.
    DbvvSum,
    /// Log-vector structural invariants.
    LogStructure,
    /// Per-origin strict `m` monotonicity and latest-per-item retention.
    MMonotonicity,
    /// `IsSelected` flags clear between propagations.
    SelectionFlags,
    /// Auxiliary log structure and aux-log/aux-copy agreement.
    AuxStructure,
    /// Auxiliary copies never older than regular copies (conflict-free).
    AuxDominance,
}

impl AuditCheck {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            AuditCheck::DbvvSum => "dbvv-sum",
            AuditCheck::LogStructure => "log-structure",
            AuditCheck::MMonotonicity => "m-monotonicity",
            AuditCheck::SelectionFlags => "selection-flags",
            AuditCheck::AuxStructure => "aux-structure",
            AuditCheck::AuxDominance => "aux-dominance",
        }
    }

    /// All checks, in the order the auditor runs them.
    pub const ALL: [AuditCheck; 6] = [
        AuditCheck::DbvvSum,
        AuditCheck::LogStructure,
        AuditCheck::MMonotonicity,
        AuditCheck::SelectionFlags,
        AuditCheck::AuxStructure,
        AuditCheck::AuxDominance,
    ];
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation found by an audit.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// The invariant that failed.
    pub check: AuditCheck,
    /// Human-readable specifics (which item / origin / values).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check.name(), self.detail)
    }
}

/// The outcome of auditing one replica.
#[derive(Clone, Debug)]
pub struct ParanoidReport {
    /// The audited replica.
    pub node: NodeId,
    /// Every violation found (empty = all invariants hold).
    pub violations: Vec<AuditViolation>,
}

impl ParanoidReport {
    /// True iff no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one specific check.
    pub fn count(&self, check: AuditCheck) -> usize {
        self.violations.iter().filter(|v| v.check == check).count()
    }

    /// One-line-per-violation summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("{}: all invariants hold", self.node);
        }
        let lines: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
        format!("{}: {} violation(s)\n{}", self.node, self.violations.len(), lines.join("\n"))
    }
}

/// The auditor itself — a stateless bundle of checks over a [`Replica`].
pub struct ReplicaAuditor;

impl ReplicaAuditor {
    /// Run every check against `replica` and collect the violations.
    pub fn audit(replica: &Replica) -> ParanoidReport {
        let mut violations = Vec::new();

        // 1. DBVV = Σ IVV.
        let sum = replica.store.ivv_sum();
        if replica.dbvv.as_vector() != &sum {
            violations.push(AuditViolation {
                check: AuditCheck::DbvvSum,
                detail: format!("{} != sum of regular IVVs {}", replica.dbvv, sum),
            });
        }

        // 2. Log structural invariants.
        if let Err(e) = replica.log.check_invariants() {
            violations.push(AuditViolation { check: AuditCheck::LogStructure, detail: e });
        }

        // 3. Per-origin m-monotonicity and latest-per-item retention.
        for j in NodeId::all(replica.n_nodes()) {
            let mut prev_m: Option<u64> = None;
            let mut seen = std::collections::HashSet::new();
            for rec in replica.log.iter_component(j) {
                if let Some(p) = prev_m {
                    if rec.m <= p {
                        violations.push(AuditViolation {
                            check: AuditCheck::MMonotonicity,
                            detail: format!(
                                "log component {j}: record ({}, m={}) follows m={p}",
                                rec.item, rec.m
                            ),
                        });
                    }
                }
                prev_m = Some(rec.m);
                if !seen.insert(rec.item) {
                    violations.push(AuditViolation {
                        check: AuditCheck::MMonotonicity,
                        detail: format!(
                            "log component {j}: item {} retained more than once",
                            rec.item
                        ),
                    });
                }
            }
        }

        // 4. IsSelected flags all clear.
        if let Some(idx) = replica.is_selected.iter().position(|&f| f) {
            violations.push(AuditViolation {
                check: AuditCheck::SelectionFlags,
                detail: format!("IsSelected flag left set for item index {idx}"),
            });
        }

        // 5. Aux-log structure and aux-log/aux-copy agreement.
        if let Err(e) = replica.aux_log.check_invariants() {
            violations.push(AuditViolation { check: AuditCheck::AuxStructure, detail: e });
        }
        for rec in replica.aux_log.iter() {
            if !replica.aux_items.contains_key(&rec.item) {
                violations.push(AuditViolation {
                    check: AuditCheck::AuxStructure,
                    detail: format!(
                        "auxiliary log holds records for {} without an auxiliary copy",
                        rec.item
                    ),
                });
            }
        }

        // 6. Aux dominance — only meaningful while this replica has never
        // seen a conflict: a declared conflict can legitimately freeze an
        // auxiliary copy behind the regular one. Conflict detection is
        // ephemeral state, so a replica recovered from a snapshot may hold
        // frozen aux state with a zero counter — skip the check there too.
        if replica.costs.conflicts_detected == 0 && !replica.restored {
            for (&x, aux) in &replica.aux_items {
                let reg = &replica.store.get(x).expect("aux item exists in store").ivv;
                if reg.compare(&aux.ivv) == VvOrd::Dominates {
                    violations.push(AuditViolation {
                        check: AuditCheck::AuxDominance,
                        detail: format!(
                            "auxiliary copy of {x} (IVV {}) is older than the regular copy \
                             (IVV {}) with no conflict declared",
                            aux.ivv, reg
                        ),
                    });
                }
            }
        }

        ParanoidReport { node: replica.id, violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_common::{ItemId, NodeId};
    use epidb_store::UpdateOp;

    #[test]
    fn clean_replica_audits_clean() {
        let mut r = Replica::new(NodeId(0), 3, 8);
        r.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let report = ReplicaAuditor::audit(&r);
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.summary().contains("all invariants hold"));
    }

    #[test]
    fn dbvv_corruption_is_reported() {
        let mut r = Replica::new(NodeId(0), 3, 8);
        r.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        r.debug_corrupt_dbvv();
        let report = ReplicaAuditor::audit(&r);
        assert!(!report.is_clean());
        assert_eq!(report.count(AuditCheck::DbvvSum), 1);
        assert!(report.summary().contains("dbvv-sum"));
    }

    #[test]
    fn check_names_are_stable() {
        let names: Vec<&str> = AuditCheck::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "dbvv-sum",
                "log-structure",
                "m-monotonicity",
                "selection-flags",
                "aux-structure",
                "aux-dominance"
            ]
        );
    }
}
