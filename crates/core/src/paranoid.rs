//! Paranoid mode: an always-available replica-level invariant auditor.
//!
//! The protocol's correctness rests on a small set of state invariants
//! (DESIGN §4, §7). Each is implemented as a **pure, side-effect-free
//! predicate** `check_*(&Replica) -> Result<(), InvariantViolation>` that
//! re-derives the invariant from first principles against a replica's live
//! state. Two consumers share them:
//!
//! * **paranoid mode** ([`Replica::set_paranoid`]) runs all six after
//!   every protocol step via [`ReplicaAuditor::audit`] and panics with the
//!   collected report plus the structured protocol trace
//!   ([`epidb_common::TraceRing`]), whose last event names the offending
//!   step;
//! * the **model checker** (`epidb-mc`) evaluates them at every explored
//!   state and, on a violation, minimizes the event schedule that reached
//!   it — which is why the predicates must not panic or mutate.
//!
//! The invariants:
//!
//! 1. **DBVV = Σ IVV** — the database version vector equals the
//!    component-wise sum of all regular item version vectors (the defining
//!    property of maintenance rules 1–3, §4.1).
//! 2. **Log structure** — the log vector's slot/pointer invariants hold
//!    (each origin's list is intact, `P(x)` pointers agree, §4.2).
//! 3. **m-monotonicity** — within each origin's log component, records are
//!    strictly increasing in `m` and retain at most one record per item.
//! 4. **Selection flags** — the `IsSelected` scratch flags are all clear
//!    between propagations (§6's O(m) set computation cleans up).
//! 5. **Aux structure** — the auxiliary log's invariants hold and every
//!    auxiliary log record belongs to an item with an auxiliary copy
//!    (§4.3–4.4).
//! 6. **Aux dominance** — while this replica has never declared a
//!    conflict, no auxiliary copy is *older* than the regular copy
//!    (out-of-bound copies are only ever adopted when strictly newer, and
//!    intra-node propagation discards them once the regular copy catches
//!    up — §4.4, §5.2). A declared conflict legitimately freezes auxiliary
//!    state, so the check is skipped from then on — and likewise after
//!    crash recovery, because conflict reports are ephemeral: a replica
//!    restored from a snapshot taken mid-conflict holds frozen auxiliary
//!    state with a reset conflict counter.

use std::fmt;

use epidb_vv::VvOrd;

use epidb_common::{InvariantViolation, NodeId};

use crate::replica::Replica;

/// Which invariant a violation belongs to (stable names for counters and
/// assertions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditCheck {
    /// DBVV equals the component-wise sum of regular IVVs.
    DbvvSum,
    /// Log-vector structural invariants.
    LogStructure,
    /// Per-origin strict `m` monotonicity and latest-per-item retention.
    MMonotonicity,
    /// `IsSelected` flags clear between propagations.
    SelectionFlags,
    /// Auxiliary log structure and aux-log/aux-copy agreement.
    AuxStructure,
    /// Auxiliary copies never older than regular copies (conflict-free).
    AuxDominance,
}

impl AuditCheck {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            AuditCheck::DbvvSum => "dbvv-sum",
            AuditCheck::LogStructure => "log-structure",
            AuditCheck::MMonotonicity => "m-monotonicity",
            AuditCheck::SelectionFlags => "selection-flags",
            AuditCheck::AuxStructure => "aux-structure",
            AuditCheck::AuxDominance => "aux-dominance",
        }
    }

    /// All checks, in the order the auditor runs them.
    pub const ALL: [AuditCheck; 6] = [
        AuditCheck::DbvvSum,
        AuditCheck::LogStructure,
        AuditCheck::MMonotonicity,
        AuditCheck::SelectionFlags,
        AuditCheck::AuxStructure,
        AuditCheck::AuxDominance,
    ];

    /// Run this one check against `replica`, returning the first violation
    /// found (if any).
    pub fn run(self, replica: &Replica) -> Result<(), InvariantViolation> {
        match self {
            AuditCheck::DbvvSum => check_dbvv_sum(replica),
            AuditCheck::LogStructure => check_log_structure(replica),
            AuditCheck::MMonotonicity => check_m_monotonicity(replica),
            AuditCheck::SelectionFlags => check_selection_flags(replica),
            AuditCheck::AuxStructure => check_aux_structure(replica),
            AuditCheck::AuxDominance => check_aux_dominance(replica),
        }
    }
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn violation(replica: &Replica, check: AuditCheck, detail: String) -> InvariantViolation {
    InvariantViolation { node: replica.id, check: check.name(), detail }
}

/// Invariant 1: the DBVV equals the component-wise sum of all regular item
/// IVVs (§4.1, maintenance rules 1–3).
pub fn check_dbvv_sum(replica: &Replica) -> Result<(), InvariantViolation> {
    let sum = replica.store.ivv_sum();
    if replica.dbvv.as_vector() != &sum {
        return Err(violation(
            replica,
            AuditCheck::DbvvSum,
            format!("{} != sum of regular IVVs {}", replica.dbvv, sum),
        ));
    }
    Ok(())
}

/// Invariant 2: the log vector's slot/pointer structure is intact (§4.2).
pub fn check_log_structure(replica: &Replica) -> Result<(), InvariantViolation> {
    replica.log.check_invariants().map_err(|e| violation(replica, AuditCheck::LogStructure, e))
}

/// Invariant 3: within each origin's log component, records are strictly
/// increasing in `m` and retain at most one record per item.
pub fn check_m_monotonicity(replica: &Replica) -> Result<(), InvariantViolation> {
    for j in NodeId::all(replica.n_nodes()) {
        let mut prev_m: Option<u64> = None;
        let mut seen = std::collections::HashSet::new();
        for rec in replica.log.iter_component(j) {
            if let Some(p) = prev_m {
                if rec.m <= p {
                    return Err(violation(
                        replica,
                        AuditCheck::MMonotonicity,
                        format!(
                            "log component {j}: record ({}, m={}) follows m={p}",
                            rec.item, rec.m
                        ),
                    ));
                }
            }
            prev_m = Some(rec.m);
            if !seen.insert(rec.item) {
                return Err(violation(
                    replica,
                    AuditCheck::MMonotonicity,
                    format!("log component {j}: item {} retained more than once", rec.item),
                ));
            }
        }
    }
    Ok(())
}

/// Invariant 4: the `IsSelected` scratch flags are all clear between
/// propagations (§6).
pub fn check_selection_flags(replica: &Replica) -> Result<(), InvariantViolation> {
    if let Some(idx) = replica.is_selected.iter().position(|&f| f) {
        return Err(violation(
            replica,
            AuditCheck::SelectionFlags,
            format!("IsSelected flag left set for item index {idx}"),
        ));
    }
    Ok(())
}

/// Invariant 5: the auxiliary log's invariants hold and every auxiliary log
/// record belongs to an item with an auxiliary copy (§4.3–4.4).
pub fn check_aux_structure(replica: &Replica) -> Result<(), InvariantViolation> {
    replica
        .aux_log
        .check_invariants()
        .map_err(|e| violation(replica, AuditCheck::AuxStructure, e))?;
    for rec in replica.aux_log.iter() {
        if !replica.aux_items.contains_key(&rec.item) {
            return Err(violation(
                replica,
                AuditCheck::AuxStructure,
                format!("auxiliary log holds records for {} without an auxiliary copy", rec.item),
            ));
        }
    }
    Ok(())
}

/// Invariant 6: while this replica has never declared a conflict, no
/// auxiliary copy is older than the regular copy (§4.4, §5.2). Vacuously
/// true once a conflict was declared or after crash recovery — a declared
/// conflict legitimately freezes auxiliary state, and conflict reports are
/// ephemeral across restarts.
pub fn check_aux_dominance(replica: &Replica) -> Result<(), InvariantViolation> {
    if replica.costs.conflicts_detected != 0 || replica.restored {
        return Ok(());
    }
    for (&x, aux) in &replica.aux_items {
        let reg = &replica.store.get(x).expect("aux item exists in store").ivv;
        if reg.compare(&aux.ivv) == VvOrd::Dominates {
            return Err(violation(
                replica,
                AuditCheck::AuxDominance,
                format!(
                    "auxiliary copy of {x} (IVV {}) is older than the regular copy \
                     (IVV {}) with no conflict declared",
                    aux.ivv, reg
                ),
            ));
        }
    }
    Ok(())
}

/// One invariant violation found by an audit.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// The invariant that failed.
    pub check: AuditCheck,
    /// Human-readable specifics (which item / origin / values).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check.name(), self.detail)
    }
}

/// The outcome of auditing one replica.
#[derive(Clone, Debug)]
pub struct ParanoidReport {
    /// The audited replica.
    pub node: NodeId,
    /// Every violation found (empty = all invariants hold).
    pub violations: Vec<AuditViolation>,
}

impl ParanoidReport {
    /// True iff no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one specific check.
    pub fn count(&self, check: AuditCheck) -> usize {
        self.violations.iter().filter(|v| v.check == check).count()
    }

    /// One-line-per-violation summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("{}: all invariants hold", self.node);
        }
        let lines: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
        format!("{}: {} violation(s)\n{}", self.node, self.violations.len(), lines.join("\n"))
    }
}

/// The auditor itself — a stateless bundle of checks over a [`Replica`].
pub struct ReplicaAuditor;

impl ReplicaAuditor {
    /// Run every check against `replica` and collect the violations (the
    /// first violation of each check, in [`AuditCheck::ALL`] order).
    pub fn audit(replica: &Replica) -> ParanoidReport {
        let mut violations = Vec::new();
        for check in AuditCheck::ALL {
            if let Err(v) = check.run(replica) {
                violations.push(AuditViolation { check, detail: v.detail });
            }
        }
        ParanoidReport { node: replica.id, violations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_common::{ItemId, NodeId};
    use epidb_store::UpdateOp;

    #[test]
    fn clean_replica_audits_clean() {
        let mut r = Replica::new(NodeId(0), 3, 8);
        r.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        let report = ReplicaAuditor::audit(&r);
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.summary().contains("all invariants hold"));
    }

    #[test]
    fn dbvv_corruption_is_reported() {
        let mut r = Replica::new(NodeId(0), 3, 8);
        r.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        r.debug_corrupt_dbvv();
        let report = ReplicaAuditor::audit(&r);
        assert!(!report.is_clean());
        assert_eq!(report.count(AuditCheck::DbvvSum), 1);
        assert!(report.summary().contains("dbvv-sum"));
    }

    #[test]
    fn predicates_are_pure_and_typed() {
        let mut r = Replica::new(NodeId(1), 3, 8);
        r.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        for check in AuditCheck::ALL {
            assert!(check.run(&r).is_ok(), "{check} failed on a clean replica");
        }
        r.debug_corrupt_dbvv();
        let before = format!("{:?}", ReplicaAuditor::audit(&r).summary());
        let v = check_dbvv_sum(&r).unwrap_err();
        assert_eq!(v.node, NodeId(1));
        assert_eq!(v.check, "dbvv-sum");
        assert!(v.to_string().starts_with("n1: [dbvv-sum]"), "{v}");
        // Running a predicate must not mutate the replica.
        let after = format!("{:?}", ReplicaAuditor::audit(&r).summary());
        assert_eq!(before, after);
    }

    #[test]
    fn check_names_are_stable() {
        let names: Vec<&str> = AuditCheck::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "dbvv-sum",
                "log-structure",
                "m-monotonicity",
                "selection-flags",
                "aux-structure",
                "aux-dominance"
            ]
        );
    }
}
