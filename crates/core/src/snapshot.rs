//! Snapshot persistence: serialize a replica's durable state to bytes and
//! recover it.
//!
//! The epidemic model tolerates long outages — a recovering server simply
//! resumes anti-entropy from its last durable state and catches up (the
//! very property the Oracle comparison in §8.2 turns on). A snapshot
//! captures everything the protocol needs across a crash:
//!
//! * every regular item copy (value + IVV),
//! * the DBVV,
//! * the log vector (all retained records, in order),
//! * the auxiliary copies and the auxiliary log (pending out-of-bound
//!   updates carry re-doable operations and must survive).
//!
//! Ephemeral state is deliberately excluded: cost counters, pending
//! conflict reports (re-detected by the next propagation), the
//! `IsSelected` flags (always clear between propagations), and the
//! delta-mode op cache (an optimization, rebuilt warm over time).

use bytes::Bytes;
use epidb_common::{Error, ItemId, NodeId, Result};
use epidb_store::ItemValue;

use crate::codec::{
    get_dbvv, get_op, get_vv, put_dbvv, put_op, put_vv, Reader, Writer, CODEC_VERSION,
};
use crate::policy::ConflictPolicy;
use crate::replica::{AuxItem, Replica};

/// Magic prefix of snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"EPDB";

/// Collapse any failure during snapshot decoding into the non-retryable
/// [`Error::CorruptSnapshot`]. Unlike a corrupt *frame*, corrupt durable
/// state does not heal on retry: re-reading the same bytes reproduces the
/// same failure, so the retry machinery must not loop on it.
fn corrupt(e: Error) -> Error {
    match e {
        Error::CorruptSnapshot(_) => e,
        other => Error::CorruptSnapshot(other.to_string()),
    }
}

impl Replica {
    /// Serialize the replica's durable state.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(SNAPSHOT_MAGIC);
        w.u8(CODEC_VERSION);
        w.u16(self.id.0);
        w.u16(self.n_nodes() as u16);
        w.u32(self.n_items() as u32);
        w.u8(match self.policy {
            ConflictPolicy::Report => 0,
            ConflictPolicy::ResolveLww => 1,
        });
        put_dbvv(&mut w, &self.dbvv);

        // Regular copies. Values go through `Writer::value` (wire-identical
        // to `Writer::bytes`): large shared values become refcounted
        // segments instead of copies.
        for x in ItemId::all(self.n_items()) {
            let item = self.store.get(x).expect("dense items");
            w.value(&item.value.to_bytes());
            put_vv(&mut w, &item.ivv);
        }

        // Log vector, per origin, head-to-tail.
        for j in NodeId::all(self.n_nodes()) {
            w.u32(self.log.component_len(j) as u32);
            for rec in self.log.iter_component(j) {
                w.u32(rec.item.0);
                w.u64(rec.m);
            }
        }

        // Auxiliary copies (the BTreeMap iterates in item order, so the
        // output is deterministic by construction).
        w.u32(self.aux_items.len() as u32);
        for (x, item) in &self.aux_items {
            w.u32(x.0);
            w.value(&item.value.to_bytes());
            put_vv(&mut w, &item.ivv);
        }

        // Auxiliary log, arrival order.
        w.u32(self.aux_log.len() as u32);
        for rec in self.aux_log.iter() {
            w.u32(rec.item.0);
            put_vv(&mut w, &rec.vv);
            put_op(&mut w, &rec.op);
        }

        // Log retention and the coverage floor (§4.2 compaction state). The
        // floor is durable protocol state: losing it across a crash would
        // let a recovered replica serve tails it cannot prove complete.
        w.u32(self.log_retention as u32);
        for k in NodeId::all(self.n_nodes()) {
            w.u64(self.floor[k.index()]);
        }

        w.into_bytes()
    }

    /// Recover a replica from a snapshot. Every failure — bad magic,
    /// unsupported version, decode error, range check, violated invariant —
    /// surfaces as the non-retryable [`Error::CorruptSnapshot`].
    pub fn from_snapshot(buf: &[u8]) -> Result<Replica> {
        Replica::decode_snapshot(Reader::new(buf)).map_err(corrupt)
    }

    /// Recover a replica from a refcounted snapshot frame. Identical to
    /// [`Replica::from_snapshot`] except that item values larger than the
    /// inline threshold alias the frame (sub-views, refcount bumps) instead
    /// of being copied — recovering a large replica allocates no per-item
    /// value buffers.
    pub fn from_snapshot_shared(frame: &Bytes) -> Result<Replica> {
        Replica::decode_snapshot(Reader::shared(frame)).map_err(corrupt)
    }

    fn decode_snapshot(mut r: Reader<'_>) -> Result<Replica> {
        let magic = r.bytes()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(Error::CorruptSnapshot("bad magic".into()));
        }
        let version = r.u8()?;
        if version != CODEC_VERSION {
            return Err(Error::CorruptSnapshot(format!("unsupported version {version}")));
        }
        let id = NodeId(r.u16()?);
        let n_nodes = r.u16()? as usize;
        let n_items = r.u32()? as usize;
        let policy = match r.u8()? {
            0 => ConflictPolicy::Report,
            1 => ConflictPolicy::ResolveLww,
            p => return Err(Error::CorruptSnapshot(format!("unknown policy {p}"))),
        };
        if id.index() >= n_nodes {
            return Err(Error::UnknownNode(id));
        }

        let mut replica = Replica::with_policy(id, n_nodes, n_items, policy);
        replica.dbvv = get_dbvv(&mut r)?;
        if replica.dbvv.len() != n_nodes {
            return Err(Error::DimensionMismatch { left: n_nodes, right: replica.dbvv.len() });
        }

        for x in ItemId::all(n_items) {
            let value = ItemValue::from(r.value()?);
            let ivv = get_vv(&mut r)?;
            if ivv.len() != n_nodes {
                return Err(Error::DimensionMismatch { left: n_nodes, right: ivv.len() });
            }
            replica.store.adopt(x, value, ivv)?;
        }

        for j in NodeId::all(n_nodes) {
            let count = r.u32()? as usize;
            for _ in 0..count {
                let item = ItemId(r.u32()?);
                let m = r.u64()?;
                if item.index() >= n_items {
                    return Err(Error::UnknownItem(item));
                }
                replica.log.add_record(j, epidb_log::LogRecord { item, m });
            }
        }

        let aux_count = r.u32()? as usize;
        for _ in 0..aux_count {
            let x = ItemId(r.u32()?);
            let value = ItemValue::from(r.value()?);
            let ivv = get_vv(&mut r)?;
            if x.index() >= n_items {
                return Err(Error::UnknownItem(x));
            }
            replica.aux_items.insert(x, AuxItem { value, ivv });
        }

        let aux_log_count = r.u32()? as usize;
        for _ in 0..aux_log_count {
            let x = ItemId(r.u32()?);
            let vv = get_vv(&mut r)?;
            let op = get_op(&mut r)?;
            if x.index() >= n_items {
                return Err(Error::UnknownItem(x));
            }
            replica.aux_log.push(x, vv, op);
        }

        replica.log_retention = r.u32()? as usize;
        for k in NodeId::all(n_nodes) {
            replica.floor[k.index()] = r.u64()?;
        }

        r.finish()?;
        replica.restored = true;
        replica
            .check_invariants()
            .map_err(|e| Error::CorruptSnapshot(format!("corrupt state: {e}")))?;
        Ok(replica)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{oob_copy, pull};
    use epidb_store::UpdateOp;
    use epidb_vv::VvOrd;

    fn populated_replica() -> Replica {
        let mut a = Replica::new(NodeId(0), 3, 20);
        let mut b = Replica::new(NodeId(1), 3, 20);
        for i in 0..8u32 {
            a.update(ItemId(i), UpdateOp::set(vec![i as u8; 32])).unwrap();
        }
        b.update(ItemId(9), UpdateOp::set(&b"from-b"[..])).unwrap();
        pull(&mut b, &mut a).unwrap();
        // Give b some auxiliary state too.
        a.update(ItemId(0), UpdateOp::append(&b"+new"[..])).unwrap();
        oob_copy(&mut b, &mut a, ItemId(0)).unwrap();
        b.update(ItemId(0), UpdateOp::append(&b"+aux-edit"[..])).unwrap();
        b
    }

    fn assert_replicas_equal(a: &Replica, b: &Replica) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
        for x in ItemId::all(a.n_items()) {
            assert_eq!(a.read_regular(x).unwrap(), b.read_regular(x).unwrap());
            assert_eq!(a.item_ivv(x).unwrap(), b.item_ivv(x).unwrap());
            assert_eq!(a.read(x).unwrap(), b.read(x).unwrap());
        }
        assert_eq!(a.aux_item_count(), b.aux_item_count());
        assert_eq!(a.aux_log().len(), b.aux_log().len());
        for j in NodeId::all(a.n_nodes()) {
            let ra: Vec<_> = a.log().iter_component(j).collect();
            let rb: Vec<_> = b.log().iter_component(j).collect();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let original = populated_replica();
        let buf = original.to_snapshot();
        let restored = Replica::from_snapshot(&buf).unwrap();
        assert_replicas_equal(&original, &restored);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_replica_keeps_propagating() {
        let b = populated_replica();
        let buf = b.to_snapshot();
        drop(b); // the crash

        let mut restored = Replica::from_snapshot(&buf).unwrap();
        // A peer with newer data: recovery is just normal anti-entropy.
        let mut a = Replica::new(NodeId(0), 3, 20);
        for i in 0..8u32 {
            a.update(ItemId(i), UpdateOp::set(vec![i as u8; 32])).unwrap();
        }
        a.update(ItemId(0), UpdateOp::append(&b"+new"[..])).unwrap();
        a.update(ItemId(15), UpdateOp::set(&b"post-crash"[..])).unwrap();
        let out = pull(&mut restored, &mut a).unwrap();
        assert!(!out.copied().is_empty());
        assert_eq!(restored.read(ItemId(15)).unwrap().as_bytes(), b"post-crash");
        // The pending aux update survived the crash and replays.
        assert!(restored.read(ItemId(0)).unwrap().as_bytes().ends_with(b"+aux-edit"));
        restored.check_invariants().unwrap();
    }

    #[test]
    fn empty_replica_roundtrips() {
        let r = Replica::new(NodeId(2), 4, 5);
        let restored = Replica::from_snapshot(&r.to_snapshot()).unwrap();
        assert_replicas_equal(&r, &restored);
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        fn assert_corrupt(res: Result<Replica>) {
            let err = res.unwrap_err();
            assert!(
                matches!(err, Error::CorruptSnapshot(_)),
                "expected CorruptSnapshot, got {err:?}"
            );
            assert!(!err.is_retryable(), "corrupt durable state must not be retried");
        }
        let r = populated_replica();
        let buf = r.to_snapshot();
        // Bad magic.
        let mut bad = buf.clone();
        bad[4] = b'X';
        assert_corrupt(Replica::from_snapshot(&bad));
        // Truncated.
        assert_corrupt(Replica::from_snapshot(&buf[..buf.len() / 2]));
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert_corrupt(Replica::from_snapshot(&long));
        // Bad version.
        let mut badv = buf;
        badv[8] = 99;
        assert_corrupt(Replica::from_snapshot(&badv));
    }

    #[test]
    fn shared_restore_roundtrips_and_aliases_the_frame() {
        let mut original = populated_replica();
        // A value comfortably past the inline threshold, so the snapshot
        // encodes it as a shared segment and the shared restore can alias it.
        original.update(ItemId(3), UpdateOp::set(vec![0xAB; 4096])).unwrap();
        let frame = Bytes::from(original.to_snapshot());
        let restored = Replica::from_snapshot_shared(&frame).unwrap();
        assert_replicas_equal(&original, &restored);
        restored.check_invariants().unwrap();

        // The restored large value must be a sub-view of the frame, not a
        // copy: its backing pointer lies inside the frame's range.
        let value = restored.read_regular(ItemId(3)).unwrap();
        let v = value.as_bytes().as_ptr() as usize;
        let lo = frame.as_ptr() as usize;
        assert!(
            v >= lo && v + value.len() <= lo + frame.len(),
            "restored value was copied instead of aliased"
        );
    }

    #[test]
    fn retention_and_floor_survive() {
        let mut r = Replica::new(NodeId(0), 3, 8);
        r.set_log_retention(2);
        for i in 0..6u32 {
            r.update(ItemId(i), UpdateOp::set(vec![i as u8; 8])).unwrap();
        }
        assert_eq!(r.log().component_len(NodeId(0)), 2);
        assert_eq!(r.coverage_floor(), &[4, 0, 0]);
        let restored = Replica::from_snapshot(&r.to_snapshot()).unwrap();
        assert_eq!(restored.log_retention(), 2);
        assert_eq!(restored.coverage_floor(), &[4, 0, 0]);
        assert_replicas_equal(&r, &restored);
        restored.check_invariants().unwrap();
    }

    #[test]
    fn policy_survives() {
        let r = Replica::with_policy(NodeId(0), 2, 3, ConflictPolicy::ResolveLww);
        let restored = Replica::from_snapshot(&r.to_snapshot()).unwrap();
        assert_eq!(restored.policy(), ConflictPolicy::ResolveLww);
    }
}
