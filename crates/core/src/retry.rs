//! Retry policy for recipient-driven sync rounds.
//!
//! The paper's rounds are idempotent: re-shipping an already-dominated
//! item is a no-op by IVV comparison, and every exchange is initiated
//! fresh from the recipient's current DBVV. That makes "retry the whole
//! round" a safe and complete recovery strategy for every transient
//! transport failure — lost frames, corrupt frames, reset connections,
//! unreachable peers. This module provides the policy (bounded attempts,
//! exponential backoff, deterministic jitter, an optional per-round
//! deadline); the drivers in [`crate::engine`] provide the loop.

use std::time::{Duration, Instant};

use epidb_common::{Error, Result};

/// How a sync round responds to transient transport failure.
///
/// Backoff for attempt `k` (1-based, after the `k`-th failure) is
/// `base_backoff * 2^(k-1)` capped at `max_backoff`, then jittered
/// deterministically from `jitter_seed` — two runs with the same policy
/// and the same failures sleep identically, which keeps chaos runs
/// replayable by seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per round (1 = no retries).
    pub max_attempts: u32,
    /// Backoff after the first failure.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff pause.
    pub max_backoff: Duration,
    /// Give up retrying once a round has spent this long, even with
    /// attempts remaining. `None` = attempts are the only bound.
    pub round_deadline: Option<Duration>,
    /// Seed for the deterministic jitter applied to each backoff.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first error. The behaviour of
    /// every driver before this policy existed.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            round_deadline: None,
            jitter_seed: 0,
        }
    }

    /// `attempts` tries with no backoff pause — for simulated transports,
    /// where the fault process is driven by the harness, not by time.
    pub const fn attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            round_deadline: None,
            jitter_seed: 0,
        }
    }

    /// Whether `err` should be retried at all.
    pub fn retryable(&self, err: &Error) -> bool {
        self.max_attempts > 1 && err.is_retryable()
    }

    /// The pause before attempt `failed + 1`, where `failed` counts
    /// failures so far. Exponential in `failed`, capped, with
    /// deterministic ±25% jitter. `failed = 0` is tolerated (treated as
    /// the first failure) rather than relying on every caller to uphold
    /// the ≥ 1 convention — the subtraction below must never underflow.
    pub fn backoff(&self, failed: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base_backoff.saturating_mul(1u32 << (failed.max(1) - 1).min(16));
        let capped = exp.min(self.max_backoff.max(self.base_backoff));
        let nanos = capped.as_nanos();
        // splitmix64 of (seed, attempt) — stable across runs, different
        // across attempts, no shared state.
        let mut z =
            self.jitter_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(failed as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Scale into [0.75, 1.25) of the capped backoff, entirely in u128:
        // in u64 the product `(z % 512) * nanos` wraps once the capped
        // backoff exceeds ~2^55 ns (~417 days), collapsing a huge backoff
        // into a near-zero pause.
        let jittered = nanos / 4 * 3 + (z % 512) as u128 * nanos / 1024;
        let secs = jittered / 1_000_000_000;
        match u64::try_from(secs) {
            Ok(s) => Duration::new(s, (jittered % 1_000_000_000) as u32),
            // ≥ 1.0× jitter of a near-Duration::MAX backoff can exceed
            // what Duration represents; saturate.
            Err(_) => Duration::MAX,
        }
    }

    /// Whether a round that started at `start` has exhausted its deadline.
    pub fn deadline_exceeded(&self, start: Instant) -> bool {
        match self.round_deadline {
            Some(d) => start.elapsed() >= d,
            None => false,
        }
    }

    /// Poll `probe` until it returns true, pausing per
    /// [`RetryPolicy::backoff`] between probes (same exponential +
    /// deterministic jitter as sync-round retries — probing starts near
    /// `base_backoff` and decays toward `max_backoff`), for at most
    /// `deadline`. On timeout returns the typed
    /// [`Error::DeadlineExceeded`] naming `waiting_for`, so callers can
    /// distinguish "never converged" from transport failures instead of
    /// decoding a bare `false`.
    ///
    /// The final probe runs exactly at (or just past) the deadline, so a
    /// condition that becomes true during the last pause is still seen.
    pub fn poll_until(
        &self,
        waiting_for: &str,
        deadline: Duration,
        mut probe: impl FnMut() -> bool,
    ) -> Result<()> {
        let start = Instant::now();
        let mut failed = 0u32;
        loop {
            if probe() {
                return Ok(());
            }
            failed = failed.saturating_add(1);
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(Error::DeadlineExceeded {
                    waiting_for: waiting_for.to_string(),
                    after: deadline,
                });
            }
            let pause = self.backoff(failed).min(deadline - elapsed);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
    }
}

impl Default for RetryPolicy {
    /// A conservative live-network default: 4 attempts, 2 ms → 100 ms
    /// backoff, no deadline.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            round_deadline: None,
            jitter_seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retryable(&Error::Network("lost".into())));
        assert_eq!(p.backoff(1), Duration::ZERO);
    }

    #[test]
    fn only_transient_errors_retry() {
        let p = RetryPolicy::default();
        assert!(p.retryable(&Error::Network("lost".into())));
        assert!(p.retryable(&Error::CorruptFrame("crc".into())));
        assert!(!p.retryable(&Error::UnknownItem(epidb_common::ItemId(0))));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(16),
            round_deadline: None,
            jitter_seed: 7,
        };
        // Jitter keeps each pause within [0.75, 1.25) of the nominal value.
        let within = |d: Duration, nominal_ms: u64| {
            let n = Duration::from_millis(nominal_ms);
            d >= n * 3 / 4 && d < n * 5 / 4
        };
        assert!(within(p.backoff(1), 2));
        assert!(within(p.backoff(2), 4));
        assert!(within(p.backoff(3), 8));
        assert!(within(p.backoff(4), 16));
        assert!(within(p.backoff(5), 16), "capped at max_backoff");
    }

    #[test]
    fn backoff_zero_failures_is_guarded() {
        // Regression: `backoff(0)` used to compute `failed - 1` and
        // underflow (a debug-build panic). It now uses the first failure's
        // exponent: within jitter of `base_backoff`, never zero.
        let p = RetryPolicy::default();
        let zero = p.backoff(0);
        assert!(zero >= p.base_backoff * 3 / 4);
        assert!(zero < p.base_backoff * 5 / 4);
    }

    #[test]
    fn jitter_stays_in_range_at_max_backoff() {
        // The jitter scaling must keep every pause within [0.75, 1.25) of
        // the nominal capped backoff, across many seeds, at the cap where
        // the nanos arithmetic is largest.
        let cap = Duration::from_millis(100);
        for seed in 0..256u64 {
            let p = RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(2),
                max_backoff: cap,
                round_deadline: None,
                jitter_seed: seed,
            };
            // Failures 7+ saturate the exponential at max_backoff.
            for failed in 7..12 {
                let d = p.backoff(failed);
                assert!(d >= cap * 3 / 4, "seed {seed} failed {failed}: {d:?} below 0.75x");
                assert!(d < cap * 5 / 4, "seed {seed} failed {failed}: {d:?} at/above 1.25x");
            }
        }
    }

    #[test]
    fn giant_backoffs_do_not_wrap() {
        // Regression: the jitter product `(z % 512) * nanos` was computed
        // in u64 and wrapped once the capped backoff exceeded ~2^55 ns
        // (~417 days), collapsing the pause to nearly zero.
        let cap = Duration::from_secs(60 * 60 * 24 * 500); // 500 days
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: cap,
            max_backoff: cap,
            round_deadline: None,
            jitter_seed: 3,
        };
        let d = p.backoff(1);
        assert!(d >= cap * 3 / 4, "wrapped to {d:?}");
        assert!(d < cap * 5 / 4);
    }

    proptest::proptest! {
        /// The jittered pause stays within [0.75, 1.25) of the capped
        /// nominal backoff for arbitrary durations (far past the ~417-day
        /// u64 overflow point), seeds, and failure counts.
        #[test]
        fn backoff_jitter_stays_in_range(
            base_ns in 1u64..u64::MAX,
            cap_ns in 1u64..u64::MAX,
            seed in proptest::prelude::any::<u64>(),
            failed in 0u32..40,
        ) {
            let p = RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_nanos(base_ns),
                max_backoff: Duration::from_nanos(cap_ns),
                round_deadline: None,
                jitter_seed: seed,
            };
            // Recompute the nominal capped backoff the same way, then
            // check the bounds in exact u128 nanosecond arithmetic
            // (allowing the implementation's two integer truncations,
            // each worth < 4 ns, on the low side).
            let exp = p.base_backoff.saturating_mul(1u32 << (failed.max(1) - 1).min(16));
            let capped = exp.min(p.max_backoff.max(p.base_backoff));
            let n = capped.as_nanos();
            let d = p.backoff(failed).as_nanos();
            proptest::prop_assert!(d + 4 >= n * 3 / 4, "{d} ns below 0.75 x {n} ns");
            proptest::prop_assert!(d * 1024 < n * 1280, "{d} ns at/above 1.25 x {n} ns");
        }
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        let q = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        for k in 1..6 {
            assert_eq!(p.backoff(k), q.backoff(k));
        }
    }

    #[test]
    fn attempts_policy_is_pause_free() {
        let p = RetryPolicy::attempts(5);
        assert!(p.retryable(&Error::Network("lost".into())));
        for k in 1..5 {
            assert_eq!(p.backoff(k), Duration::ZERO);
        }
    }

    #[test]
    fn poll_until_sees_late_success_and_types_timeouts() {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut n = 0;
        p.poll_until("counter", Duration::from_secs(5), || {
            n += 1;
            n >= 3
        })
        .unwrap();
        assert_eq!(n, 3);

        let err = p.poll_until("quiescence", Duration::from_millis(2), || false).unwrap_err();
        match err {
            Error::DeadlineExceeded { waiting_for, after } => {
                assert_eq!(waiting_for, "quiescence");
                assert_eq!(after, Duration::from_millis(2));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn deadline_bounds_a_round() {
        let p = RetryPolicy { round_deadline: Some(Duration::ZERO), ..RetryPolicy::default() };
        assert!(p.deadline_exceeded(Instant::now()));
        let p = RetryPolicy::default();
        assert!(!p.deadline_exceeded(Instant::now()));
    }
}
