//! The replica state and the user-update path (§4, §5.3).

use std::collections::BTreeMap;

use epidb_common::trace::{OrdTag, TraceRing, TraceStep};
use epidb_common::{ConflictEvent, Costs, Error, ItemId, NodeId, Result};
use epidb_log::{AuxLog, LogRecord, LogVector};
use epidb_store::{ItemStore, ItemValue, UpdateOp};
use epidb_vv::{DbVersionVector, VersionVector};

use crate::opcache::OpCache;
use crate::policy::ConflictPolicy;

/// An auxiliary (out-of-bound) copy of one data item: its own value and its
/// own *auxiliary IVV* (§4.3), maintained in parallel with the regular copy.
#[derive(Clone, Debug)]
pub struct AuxItem {
    /// The auxiliary value — what the user sees and updates while the item
    /// is out-of-bound.
    pub value: ItemValue,
    /// The auxiliary IVV.
    pub ivv: VersionVector,
}

/// Counters for protocol outcomes that are expected to be rare; the tests
/// assert on them.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// A shipped item arrived whose IVV equaled the local one (possible
    /// only in post-conflict states; adopted as a no-op).
    pub equal_receipts: u64,
    /// A shipped item arrived strictly older than the local copy (possible
    /// only after an out-of-band conflict resolution; ignored). The paper
    /// notes this "cannot happen" in conflict-free operation (§5.1), and
    /// the test-suite asserts it stays zero there.
    pub stale_receipts: u64,
    /// Conflicts auto-resolved by the last-writer-wins policy.
    pub lww_resolutions: u64,
}

/// One replica of the database at a single server: the paper's complete
/// per-node state (§4) — regular item copies with IVVs, the DBVV, the log
/// vector, and the auxiliary structures for out-of-bound items.
#[derive(Clone, Debug)]
pub struct Replica {
    pub(crate) id: NodeId,
    pub(crate) store: ItemStore,
    pub(crate) dbvv: DbVersionVector,
    pub(crate) log: LogVector,
    /// Auxiliary copies, keyed by item; absent key = no out-of-bound copy.
    /// A `BTreeMap` so every state walk (snapshots, fingerprints, audits)
    /// sees a deterministic item order.
    pub(crate) aux_items: BTreeMap<ItemId, AuxItem>,
    pub(crate) aux_log: AuxLog,
    /// The `IsSelected` flags used to compute `S` in O(m) (§6). Kept
    /// all-false between propagation calls.
    pub(crate) is_selected: Vec<bool>,
    pub(crate) policy: ConflictPolicy,
    pub(crate) costs: Costs,
    pub(crate) conflicts: Vec<ConflictEvent>,
    pub(crate) counters: ProtocolCounters,
    /// Operation history for delta propagation (§2's update-record
    /// shipping mode). Disabled (empty, zero-cost) unless
    /// [`enable_delta`](Self::enable_delta) is called.
    pub(crate) op_cache: OpCache,
    /// Paranoid mode: when set, every protocol step ends with a full
    /// invariant audit ([`crate::paranoid::ReplicaAuditor`]), panicking
    /// with the protocol trace on any violation. Off (a single branch per
    /// step) by default.
    pub(crate) paranoid: bool,
    /// Structured protocol trace ring (disabled, zero-cost, by default;
    /// enabled together with paranoid mode or via
    /// [`enable_tracing`](Self::enable_tracing)).
    pub(crate) trace: TraceRing,
    /// Number of post-step audits run in paranoid mode.
    pub(crate) audits_run: u64,
    /// Set when this replica was recovered from a snapshot. Conflict
    /// reports are ephemeral (re-detected by the next propagation), so a
    /// restored replica may legitimately hold conflict-frozen auxiliary
    /// state with a zero conflict counter; the paranoid auditor uses this
    /// flag to avoid a false aux-dominance alarm in that window.
    pub(crate) restored: bool,
    /// Write-ahead journal sink (see [`crate::journal`]). `None` (a single
    /// branch per mutation) unless a durability layer attached one.
    pub(crate) sink: Option<crate::journal::SinkHandle>,
    /// Seeded-mutant switch for the model checker's self-test: when set,
    /// a conflicting (concurrent) copy received under
    /// [`ConflictPolicy::Report`] is **adopted** instead of refused —
    /// without the DBVV absorb — deliberately breaking DBVV maintenance
    /// rule 3. Never set outside `debug_break_conflict_adopt`.
    pub(crate) debug_adopt_conflicts: bool,
    /// Responder-side byte budget for one delta data frame: serving a
    /// `DeltaFetch` stops adding items once the accumulated frame reaches
    /// this size (always serving at least one item, for progress). The
    /// initiator re-requests the unserved suffix. Unbounded by default —
    /// a runtime that frames messages for a real wire sets this below the
    /// transport's frame limit via
    /// [`set_delta_frame_budget`](Self::set_delta_frame_budget).
    pub(crate) delta_frame_budget: u64,
    /// Per-origin log retention cap: each log component `L_ij` keeps at
    /// most this many records, evicting the oldest. `0` (the default) is
    /// unbounded — the paper's behaviour, where §4.2's one-record-per-item
    /// bound is the only limit. Bounding it trades log memory for tail
    /// coverage: once a record is evicted, tails below the coverage floor
    /// can no longer be served and pulls from far-behind peers degrade to
    /// digest-tree reconciliation ([`crate::recon`]).
    pub(crate) log_retention: usize,
    /// Per-origin coverage floor: `floor[k]` is the largest `m` whose
    /// record was evicted from `L_ik` (or adopted from a peer's floor
    /// during reconciliation). A tail `D_k` computed from a threshold
    /// `t < floor[k]` cannot be proven complete, so propagation refuses
    /// it with `NeedRecon` instead of shipping a lossy tail.
    pub(crate) floor: Vec<u64>,
}

impl Replica {
    /// A fresh replica for server `id` in a system of `n_nodes` servers
    /// replicating a database of `n_items` items. Conflicts are reported
    /// (the paper's behaviour: alert the administrator).
    pub fn new(id: NodeId, n_nodes: usize, n_items: usize) -> Replica {
        Replica::with_policy(id, n_nodes, n_items, ConflictPolicy::Report)
    }

    /// As [`new`](Self::new), with an explicit conflict policy.
    pub fn with_policy(
        id: NodeId,
        n_nodes: usize,
        n_items: usize,
        policy: ConflictPolicy,
    ) -> Replica {
        assert!(id.index() < n_nodes, "replica id out of range");
        Replica {
            id,
            store: ItemStore::new(n_nodes, n_items),
            dbvv: DbVersionVector::zero(n_nodes),
            log: LogVector::new(n_nodes, n_items),
            aux_items: BTreeMap::new(),
            aux_log: AuxLog::new(),
            is_selected: vec![false; n_items],
            policy,
            costs: Costs::ZERO,
            conflicts: Vec::new(),
            counters: ProtocolCounters::default(),
            op_cache: OpCache::disabled(),
            paranoid: false,
            trace: TraceRing::disabled(),
            audits_run: 0,
            restored: false,
            sink: None,
            debug_adopt_conflicts: false,
            delta_frame_budget: u64::MAX,
            log_retention: 0,
            floor: vec![0; n_nodes],
        }
    }

    /// Enable delta (update-record) propagation service at this replica:
    /// retain up to `budget_bytes` of recent operation payload so pulls via
    /// [`pull_delta`](crate::delta::pull_delta) can ship operation chains
    /// instead of whole values. Purely an optimization — replicas with and
    /// without the cache interoperate (cache misses fall back to
    /// whole-item shipping).
    pub fn enable_delta(&mut self, budget_bytes: usize) {
        self.op_cache = OpCache::new(budget_bytes);
    }

    /// The delta-mode operation cache (diagnostics).
    pub fn op_cache(&self) -> &OpCache {
        &self.op_cache
    }

    /// Bound one delta data frame to roughly `bytes` of encoded content
    /// (see the field docs on `delta_frame_budget`). A budget of
    /// `u64::MAX` (the default) restores unbounded frames.
    pub fn set_delta_frame_budget(&mut self, bytes: u64) {
        self.delta_frame_budget = bytes;
    }

    /// Bound each log component to at most `keep` records, evicting the
    /// oldest immediately and after every future append. `0` restores the
    /// unbounded default. Eviction raises the per-origin coverage floor
    /// (see [`coverage_floor`](Self::coverage_floor)): tails below the
    /// floor are refused and the puller falls back to digest-tree
    /// reconciliation. Like [`enable_delta`](Self::enable_delta) this is
    /// node configuration, not journaled state — a recovering runtime
    /// re-applies it (the floor itself is durable, in the snapshot).
    pub fn set_log_retention(&mut self, keep: usize) {
        self.log_retention = keep;
        if keep > 0 {
            for j in NodeId::all(self.n_nodes()) {
                self.enforce_log_retention(j);
            }
        }
    }

    /// The log retention cap (`0` = unbounded).
    pub fn log_retention(&self) -> usize {
        self.log_retention
    }

    /// The per-origin coverage floor: `floor[k]` is the largest origin-`k`
    /// sequence number whose log record this replica no longer retains.
    /// All-zero while retention is unbounded and no peer floor was adopted.
    pub fn coverage_floor(&self) -> &[u64] {
        &self.floor
    }

    /// Internal: prune component `j` down to the retention cap, raising
    /// the coverage floor past everything evicted. A no-op while retention
    /// is unbounded.
    #[inline]
    pub(crate) fn enforce_log_retention(&mut self, j: NodeId) {
        if self.log_retention == 0 {
            return;
        }
        if let Some(evicted) = self.log.prune_component(j, self.log_retention) {
            self.raise_floor(j, evicted);
        }
    }

    /// Internal: raise the coverage floor for origin `k` to at least `m`.
    #[inline]
    pub(crate) fn raise_floor(&mut self, k: NodeId, m: u64) {
        let e = &mut self.floor[k.index()];
        if m > *e {
            *e = m;
        }
    }

    /// This replica's server id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Re-identify this replica as `id` — the shard-handoff install step.
    ///
    /// A shard snapshot embeds the *source* node's id; the receiving node
    /// adopts the shipped state as its own replica, which only changes who
    /// answers for it, not any versioned state (DBVV, IVVs, and log
    /// records all name *origins* of updates, which are unchanged).
    ///
    /// # Panics
    /// Panics if `id` is outside the replica's fixed server set.
    pub fn rehome(&mut self, id: NodeId) {
        assert!(id.index() < self.store.n_nodes(), "replica id out of range");
        self.id = id;
    }

    /// Number of servers in the system.
    pub fn n_nodes(&self) -> usize {
        self.store.n_nodes()
    }

    /// Number of items in the database.
    pub fn n_items(&self) -> usize {
        self.store.n_items()
    }

    /// The replica's database version vector.
    pub fn dbvv(&self) -> &DbVersionVector {
        &self.dbvv
    }

    /// Apply a user update to item `x` (§5.3).
    ///
    /// If an auxiliary copy exists the update goes to it: the operation is
    /// applied to the auxiliary value, a re-doable record carrying the
    /// *pre-update* auxiliary IVV is appended to the auxiliary log, and the
    /// auxiliary IVV's own component is bumped. The DBVV and the log vector
    /// are **not** touched — out-of-bound state never participates in
    /// scheduled propagation directly.
    ///
    /// Otherwise the update goes to the regular copy: apply, bump
    /// `v_ii(x)`, bump `V_ii`, and append the log record `(x, V_ii)` to
    /// `L_ii`.
    pub fn update(&mut self, x: ItemId, op: UpdateOp) -> Result<()> {
        self.journal_mutation(|| crate::journal::Mutation::Update { item: x, op: op.clone() });
        if let Some(aux) = self.aux_items.get_mut(&x) {
            let pre_vv = aux.ivv.clone();
            op.apply(&mut aux.value);
            self.aux_log.push(x, pre_vv, op);
            aux.ivv.bump(self.id);
            let aux_len = self.aux_log.len() as u64;
            self.trace_record(TraceStep::AuxUpdate, Some(x), None, OrdTag::NoCompare, aux_len);
            self.post_step_audit("aux-update");
            return Ok(());
        }
        let pre_vv = if self.op_cache.is_enabled() {
            Some(self.store.get(x)?.ivv.clone())
        } else {
            self.check_item(x)?;
            None
        };
        self.store.apply_local_update(self.id, x, &op)?;
        let m = self.dbvv.record_local_update(self.id);
        self.log.add_record(self.id, LogRecord { item: x, m });
        self.enforce_log_retention(self.id);
        if let Some(pre_vv) = pre_vv {
            self.op_cache.record(x, pre_vv, op);
        }
        self.trace_record(TraceStep::LocalUpdate, Some(x), None, OrdTag::NoCompare, m);
        self.post_step_audit("local-update");
        Ok(())
    }

    /// The value a user reads at this replica: the auxiliary copy when one
    /// exists (it is never older than the regular copy), else the regular
    /// copy.
    pub fn read(&self, x: ItemId) -> Result<&ItemValue> {
        if let Some(aux) = self.aux_items.get(&x) {
            return Ok(&aux.value);
        }
        Ok(&self.store.get(x)?.value)
    }

    /// The regular copy's value (what scheduled propagation ships).
    pub fn read_regular(&self, x: ItemId) -> Result<&ItemValue> {
        Ok(&self.store.get(x)?.value)
    }

    /// The regular copy's IVV.
    pub fn item_ivv(&self, x: ItemId) -> Result<&VersionVector> {
        Ok(&self.store.get(x)?.ivv)
    }

    /// The auxiliary copy of `x`, if the item is currently out-of-bound
    /// here.
    pub fn aux_item(&self, x: ItemId) -> Option<&AuxItem> {
        self.aux_items.get(&x)
    }

    /// Number of items currently held out-of-bound.
    pub fn aux_item_count(&self) -> usize {
        self.aux_items.len()
    }

    /// The auxiliary log (diagnostics; its contents never travel).
    pub fn aux_log(&self) -> &AuxLog {
        &self.aux_log
    }

    /// The log vector (diagnostics and experiments).
    pub fn log(&self) -> &LogVector {
        &self.log
    }

    /// Cumulative protocol costs charged at this node.
    pub fn costs(&self) -> Costs {
        self.costs
    }

    /// Charge one outbound message to this node's cost counters. The
    /// in-process orchestration helpers (`pull`, `oob_copy`) do this
    /// automatically; custom transports (like `epidb-net`) call it at
    /// their send points.
    pub fn charge_message(&mut self, control_bytes: u64, payload_bytes: u64) {
        self.costs.charge_message(control_bytes, payload_bytes);
    }

    /// Charge one retried round attempt. Called by the engine's retry
    /// loop; custom recovery layers may call it too.
    pub fn note_retry(&mut self) {
        self.costs.retries += 1;
    }

    /// Charge one frame dropped by the integrity check — at whichever
    /// layer detected it (checked codec, framed transport, or the engine
    /// observing a peer's in-band report).
    pub fn note_corrupt_frame(&mut self) {
        self.costs.corrupt_frames_dropped += 1;
    }

    /// Rare-outcome counters.
    pub fn counters(&self) -> ProtocolCounters {
        self.counters
    }

    /// Conflicts declared at this node so far (the paper's "alert the
    /// system administrator"); `drain` to acknowledge them.
    pub fn conflicts(&self) -> &[ConflictEvent] {
        &self.conflicts
    }

    /// Remove and return all pending conflict reports.
    pub fn drain_conflicts(&mut self) -> Vec<ConflictEvent> {
        std::mem::take(&mut self.conflicts)
    }

    /// The conflict policy in force.
    pub fn policy(&self) -> ConflictPolicy {
        self.policy
    }

    /// Turn paranoid mode on or off. While on, every protocol step ends
    /// with a full invariant audit (see [`crate::paranoid`]); a violation
    /// panics with the audit report and the protocol trace, whose last
    /// event names the offending step. Enabling paranoid mode also enables
    /// tracing. Off, both cost a single branch per step.
    pub fn set_paranoid(&mut self, on: bool) {
        self.paranoid = on;
        if on {
            self.trace.enable();
        }
    }

    /// Whether paranoid mode is on.
    pub fn is_paranoid(&self) -> bool {
        self.paranoid
    }

    /// Enable protocol tracing alone (without per-step audits), retaining
    /// up to `capacity` events.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = TraceRing::with_capacity(capacity);
    }

    /// The protocol trace ring (empty unless tracing or paranoid mode was
    /// enabled).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Number of paranoid post-step audits this replica has run.
    pub fn audits_run(&self) -> u64 {
        self.audits_run
    }

    /// True if this replica was recovered from a snapshot (conflict
    /// reports are ephemeral, so some invariants are vacuous post-restore;
    /// see [`crate::paranoid::check_aux_dominance`]).
    pub fn is_restored(&self) -> bool {
        self.restored
    }

    /// Audit this replica's invariants right now, regardless of the
    /// paranoid flag, and return the findings without panicking.
    pub fn audit(&self) -> crate::paranoid::ParanoidReport {
        crate::paranoid::ReplicaAuditor::audit(self)
    }

    /// Test hook: corrupt the DBVV by counting a local update that never
    /// happened (breaks DBVV = Σ IVV). Public so integration tests can
    /// prove the auditor catches real corruption; never call it otherwise.
    #[doc(hidden)]
    pub fn debug_corrupt_dbvv(&mut self) {
        let _ = self.dbvv.record_local_update(self.id);
    }

    /// Test hook: seed the protocol **mutant** the model checker's
    /// self-test must catch. With the switch on, a concurrent copy
    /// received under [`ConflictPolicy::Report`] is adopted instead of
    /// refused, *without* the DBVV absorb — a plausible-looking conflict
    /// rule that silently breaks DBVV maintenance rule 3 (§4.1). The bug
    /// only fires on a genuine conflicting interleaving (two concurrent
    /// updates plus a propagation that delivers one onto the other), so a
    /// checker must explore several events deep to expose it. Never call
    /// it outside checker self-tests.
    #[doc(hidden)]
    pub fn debug_break_conflict_adopt(&mut self, on: bool) {
        self.debug_adopt_conflicts = on;
    }

    /// Internal: record one trace event (single branch when disabled).
    #[inline]
    pub(crate) fn trace_record(
        &mut self,
        step: TraceStep,
        item: Option<ItemId>,
        peer: Option<NodeId>,
        ord: OrdTag,
        detail: u64,
    ) {
        if self.trace.is_enabled() {
            let dbvv_total = self.dbvv.total();
            self.trace.record(self.id, step, item, peer, ord, detail, dbvv_total);
        }
    }

    /// Internal: the paranoid post-step hook. A single branch when
    /// paranoid mode is off; otherwise audits everything and panics with
    /// the trace dump on the first violation, naming the step that
    /// produced it.
    #[inline]
    pub(crate) fn post_step_audit(&mut self, step: &'static str) {
        if !self.paranoid {
            return;
        }
        self.audits_run += 1;
        let report = crate::paranoid::ReplicaAuditor::audit(self);
        if !report.is_clean() {
            panic!(
                "paranoid: invariant violation at {} after step `{step}`\n{}\n{}",
                self.id,
                report.summary(),
                self.trace.dump()
            );
        }
    }

    /// Validate the replica's global invariants. Cheap enough for tests,
    /// not meant for the hot path:
    ///
    /// 1. The DBVV equals the component-wise sum of all regular IVVs (the
    ///    defining property of maintenance rules 1–3, §4.1).
    /// 2. The log vector's structural invariants hold and no component
    ///    holds a record newer than the corresponding DBVV entry.
    /// 3. The `IsSelected` flags are all clear between propagations.
    /// 4. The auxiliary log's structural invariants hold, and every item
    ///    with auxiliary log records has an auxiliary copy.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let sum = self.store.ivv_sum();
        if self.dbvv.as_vector() != &sum {
            return Err(format!("DBVV {} != sum of IVVs {} at {}", self.dbvv, sum, self.id));
        }
        self.log.check_invariants()?;
        if self.floor.len() != self.n_nodes() {
            return Err(format!(
                "coverage floor has {} entries for {} servers",
                self.floor.len(),
                self.n_nodes()
            ));
        }
        if self.log_retention > 0 {
            for j in NodeId::all(self.n_nodes()) {
                if self.log.component_len(j) > self.log_retention {
                    return Err(format!(
                        "log component {} holds {} records over the retention cap {}",
                        j,
                        self.log.component_len(j),
                        self.log_retention
                    ));
                }
            }
        }
        if self.is_selected.iter().any(|&f| f) {
            return Err("IsSelected flag left set between propagations".into());
        }
        self.aux_log.check_invariants()?;
        for rec in self.aux_log.iter() {
            if !self.aux_items.contains_key(&rec.item) {
                return Err(format!(
                    "auxiliary log holds records for {} without an auxiliary copy",
                    rec.item
                ));
            }
        }
        Ok(())
    }

    /// The stricter invariant that holds only in *cluster-wide*
    /// conflict-free operation, on top of
    /// [`check_invariants`](Self::check_invariants): every logged record
    /// is covered by the
    /// DBVV (`m <= V_ij`). A refused conflicting item anywhere in the
    /// cluster legitimately breaks this — the DBVV lags records of items
    /// adopted in the same round, and the lag spreads through forwarded
    /// tails — so callers should apply it only when no conflict has been
    /// declared at any replica.
    pub fn check_invariants_clean(&self) -> std::result::Result<(), String> {
        self.check_invariants()?;
        for j in NodeId::all(self.n_nodes()) {
            if self.log.max_m(j) > self.dbvv.get(j) {
                return Err(format!(
                    "log component {} has record m={} beyond DBVV entry {}",
                    j,
                    self.log.max_m(j),
                    self.dbvv.get(j)
                ));
            }
            if self.floor[j.index()] > self.dbvv.get(j) {
                return Err(format!(
                    "coverage floor for {} is {} beyond DBVV entry {}",
                    j,
                    self.floor[j.index()],
                    self.dbvv.get(j)
                ));
            }
        }
        Ok(())
    }

    /// Internal: record a conflict event (and charge the counter).
    pub(crate) fn report_conflict(&mut self, ev: ConflictEvent) {
        self.costs.conflicts_detected += 1;
        self.conflicts.push(ev);
    }

    /// Internal: bounds-check an item id.
    pub(crate) fn check_item(&self, x: ItemId) -> Result<()> {
        if x.index() >= self.n_items() {
            return Err(Error::UnknownItem(x));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica() -> Replica {
        Replica::new(NodeId(0), 3, 4)
    }

    #[test]
    fn fresh_replica_passes_invariants() {
        let r = replica();
        r.check_invariants().unwrap();
        assert_eq!(r.dbvv().total(), 0);
        assert_eq!(r.aux_item_count(), 0);
    }

    #[test]
    fn regular_update_bumps_ivv_dbvv_and_logs() {
        let mut r = replica();
        r.update(ItemId(2), UpdateOp::set(&b"v1"[..])).unwrap();
        r.update(ItemId(2), UpdateOp::append(&b"+"[..])).unwrap();
        r.update(ItemId(0), UpdateOp::set(&b"w"[..])).unwrap();

        assert_eq!(r.read(ItemId(2)).unwrap().as_bytes(), b"v1+");
        assert_eq!(r.item_ivv(ItemId(2)).unwrap().get(NodeId(0)), 2);
        assert_eq!(r.dbvv().get(NodeId(0)), 3);
        // Log retains only the latest record per item.
        assert_eq!(r.log().component_len(NodeId(0)), 2);
        assert_eq!(
            r.log().retained(NodeId(0), ItemId(2)).unwrap(),
            LogRecord { item: ItemId(2), m: 2 }
        );
        assert_eq!(
            r.log().retained(NodeId(0), ItemId(0)).unwrap(),
            LogRecord { item: ItemId(0), m: 3 }
        );
        r.check_invariants().unwrap();
    }

    #[test]
    fn update_to_unknown_item_errors() {
        let mut r = replica();
        assert!(r.update(ItemId(99), UpdateOp::set(&b"x"[..])).is_err());
    }

    #[test]
    fn aux_update_goes_to_aux_structures_only() {
        let mut r = replica();
        // Install an auxiliary copy by hand (out-of-bound machinery is
        // exercised in the oob module; here we test the update path).
        r.aux_items.insert(
            ItemId(1),
            AuxItem {
                value: ItemValue::from_slice(b"remote"),
                ivv: VersionVector::from_entries(vec![0, 2, 0]),
            },
        );
        r.update(ItemId(1), UpdateOp::append(&b"!"[..])).unwrap();

        // User sees the auxiliary value.
        assert_eq!(r.read(ItemId(1)).unwrap().as_bytes(), b"remote!");
        // Regular copy untouched; DBVV and log vector untouched.
        assert_eq!(r.read_regular(ItemId(1)).unwrap().as_bytes(), b"");
        assert_eq!(r.dbvv().total(), 0);
        assert_eq!(r.log().total_len(), 0);
        // Aux IVV bumped; aux log holds the pre-update vv and the op.
        let aux = r.aux_item(ItemId(1)).unwrap();
        assert_eq!(aux.ivv.get(NodeId(0)), 1);
        assert_eq!(aux.ivv.get(NodeId(1)), 2);
        let rec = r.aux_log().earliest(ItemId(1)).unwrap();
        assert_eq!(rec.vv, VersionVector::from_entries(vec![0, 2, 0]));
        assert_eq!(rec.op, UpdateOp::append(&b"!"[..]));
        r.check_invariants().unwrap();
    }

    #[test]
    fn read_prefers_aux() {
        let mut r = replica();
        r.update(ItemId(0), UpdateOp::set(&b"regular"[..])).unwrap();
        r.aux_items.insert(
            ItemId(0),
            AuxItem {
                value: ItemValue::from_slice(b"aux"),
                ivv: VersionVector::from_entries(vec![1, 1, 0]),
            },
        );
        assert_eq!(r.read(ItemId(0)).unwrap().as_bytes(), b"aux");
        assert_eq!(r.read_regular(ItemId(0)).unwrap().as_bytes(), b"regular");
    }

    #[test]
    fn drain_conflicts_empties() {
        let mut r = replica();
        r.report_conflict(ConflictEvent {
            item: ItemId(0),
            detected_at: NodeId(0),
            peer: None,
            site: epidb_common::ConflictSite::IntraNode,
            offending: None,
        });
        assert_eq!(r.conflicts().len(), 1);
        assert_eq!(r.costs().conflicts_detected, 1);
        assert_eq!(r.drain_conflicts().len(), 1);
        assert!(r.conflicts().is_empty());
    }

    #[test]
    #[should_panic(expected = "replica id out of range")]
    fn id_must_be_within_n_nodes() {
        let _ = Replica::new(NodeId(3), 3, 1);
    }
}
