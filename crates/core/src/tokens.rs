//! Per-item update tokens — the paper's pessimistic option (§2): "there is
//! a unique token associated with every data item, and a replica is
//! required to acquire a token before performing any updates."
//!
//! The token manager is deliberately a separate, orthogonal component: the
//! propagation protocol itself is agnostic to the consistency level (§2),
//! and the simulator composes the two to run conflict-free (pessimistic)
//! or conflict-prone (optimistic) workloads.

use epidb_common::{Error, ItemId, NodeId, Result};

/// Tracks which node currently holds each item's update token.
#[derive(Clone, Debug)]
pub struct TokenManager {
    holders: Vec<NodeId>,
}

impl TokenManager {
    /// All tokens initially held by `initial_holder`.
    pub fn new(n_items: usize, initial_holder: NodeId) -> TokenManager {
        TokenManager { holders: vec![initial_holder; n_items] }
    }

    /// Tokens assigned per item by `f` (e.g. partitioned ownership).
    pub fn with_assignment(n_items: usize, f: impl Fn(ItemId) -> NodeId) -> TokenManager {
        TokenManager { holders: (0..n_items).map(|i| f(ItemId::from_index(i))).collect() }
    }

    /// Number of items managed.
    pub fn n_items(&self) -> usize {
        self.holders.len()
    }

    /// The node currently holding `x`'s token.
    pub fn holder(&self, x: ItemId) -> Result<NodeId> {
        self.holders.get(x.index()).copied().ok_or(Error::UnknownItem(x))
    }

    /// True if `node` may update `x`.
    pub fn may_update(&self, x: ItemId, node: NodeId) -> bool {
        self.holders.get(x.index()).copied() == Some(node)
    }

    /// Require that `node` holds `x`'s token.
    pub fn check(&self, x: ItemId, node: NodeId) -> Result<()> {
        let holder = self.holder(x)?;
        if holder == node {
            Ok(())
        } else {
            Err(Error::TokenNotHeld { item: x, holder })
        }
    }

    /// Transfer `x`'s token to `to`.
    ///
    /// In a real deployment the transfer rides the same channels as
    /// out-of-bound copying (the new holder obtains the newest copy along
    /// with the token); the simulator models that by pairing `transfer`
    /// with an out-of-bound copy.
    pub fn transfer(&mut self, x: ItemId, to: NodeId) -> Result<()> {
        let slot = self.holders.get_mut(x.index()).ok_or(Error::UnknownItem(x))?;
        *slot = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_holder_owns_everything() {
        let t = TokenManager::new(3, NodeId(1));
        for x in ItemId::all(3) {
            assert_eq!(t.holder(x).unwrap(), NodeId(1));
            assert!(t.may_update(x, NodeId(1)));
            assert!(!t.may_update(x, NodeId(0)));
        }
    }

    #[test]
    fn with_assignment_partitions() {
        let t = TokenManager::with_assignment(4, |x| NodeId((x.0 % 2) as u16));
        assert_eq!(t.holder(ItemId(0)).unwrap(), NodeId(0));
        assert_eq!(t.holder(ItemId(1)).unwrap(), NodeId(1));
        assert_eq!(t.holder(ItemId(2)).unwrap(), NodeId(0));
    }

    #[test]
    fn check_reports_holder() {
        let t = TokenManager::new(1, NodeId(0));
        assert!(t.check(ItemId(0), NodeId(0)).is_ok());
        assert_eq!(
            t.check(ItemId(0), NodeId(1)),
            Err(Error::TokenNotHeld { item: ItemId(0), holder: NodeId(0) })
        );
    }

    #[test]
    fn transfer_moves_token() {
        let mut t = TokenManager::new(2, NodeId(0));
        t.transfer(ItemId(1), NodeId(1)).unwrap();
        assert_eq!(t.holder(ItemId(1)).unwrap(), NodeId(1));
        assert_eq!(t.holder(ItemId(0)).unwrap(), NodeId(0));
        assert!(t.transfer(ItemId(9), NodeId(1)).is_err());
    }

    #[test]
    fn unknown_item_errors() {
        let t = TokenManager::new(1, NodeId(0));
        assert!(t.holder(ItemId(5)).is_err());
        assert!(!t.may_update(ItemId(5), NodeId(0)));
    }
}
