//! Messages exchanged by the protocol, with wire-size accounting.
//!
//! The protocol is a two-message pull (§5.1): the recipient sends its DBVV;
//! the source replies either "you are current" or with a *tail vector* `D`
//! (per-origin log-record tails) plus the set `S` of data items those
//! records refer to, each item carrying its IVV. Out-of-bound copying (§5.2)
//! is a one-item request/reply.

use bytes::Bytes;
use epidb_common::costs::wire;
use epidb_common::ItemId;
use epidb_log::LogRecord;
use epidb_vv::{DbVersionVector, VersionVector};

/// One data item shipped during propagation: the member of `S` together
/// with its IVV (the source "includes its IVV with every data item in S").
#[derive(Clone, Debug)]
pub struct ShippedItem {
    /// The item's id.
    pub item: ItemId,
    /// The source's (regular) IVV for the item.
    pub ivv: VersionVector,
    /// The source's (regular) value — whole-item copying (§2). A
    /// refcounted view of the store's buffer, produced by
    /// [`epidb_store::ItemValue::share`]: building this message never
    /// copies value bytes.
    pub value: Bytes,
}

impl ShippedItem {
    /// Control bytes this entry adds to the message (id + IVV); the value
    /// is payload.
    pub fn control_bytes(&self) -> u64 {
        wire::ITEM_ID + wire::vv(self.ivv.len())
    }
}

/// The source's reply when propagation is required: the tail vector `D`
/// (component `k` holds records of `k`-originated updates the recipient
/// missed, in the order `k` performed them) and the item set `S`.
#[derive(Clone, Debug, Default)]
pub struct PropagationPayload {
    /// `D`: one (possibly empty) tail per origin server.
    pub tails: Vec<Vec<LogRecord>>,
    /// `S`: the items referred to by records in `D`, with IVVs and values.
    pub items: Vec<ShippedItem>,
}

impl PropagationPayload {
    /// Total records across all tails.
    pub fn record_count(&self) -> usize {
        self.tails.iter().map(Vec::len).sum()
    }

    /// Control bytes: log records + per-item id and IVV.
    pub fn control_bytes(&self) -> u64 {
        self.record_count() as u64 * wire::LOG_RECORD
            + self.items.iter().map(ShippedItem::control_bytes).sum::<u64>()
    }

    /// Payload bytes: the item values being copied.
    pub fn payload_bytes(&self) -> u64 {
        self.items.iter().map(|s| s.value.len() as u64).sum()
    }
}

/// The source's reply to a propagation request.
#[derive(Clone, Debug)]
pub enum PropagationResponse {
    /// The recipient's DBVV dominates or equals the source's: nothing to do.
    /// This is the paper's constant-time "identical (or newer) replica"
    /// detection.
    YouAreCurrent,
    /// Updates to propagate.
    Payload(PropagationPayload),
}

impl PropagationResponse {
    /// Control bytes of the response message (excluding the envelope).
    pub fn control_bytes(&self) -> u64 {
        match self {
            PropagationResponse::YouAreCurrent => 0,
            PropagationResponse::Payload(p) => p.control_bytes(),
        }
    }

    /// Payload bytes of the response message.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            PropagationResponse::YouAreCurrent => 0,
            PropagationResponse::Payload(p) => p.payload_bytes(),
        }
    }
}

/// Request message of the two-message pull: the recipient's DBVV.
pub fn request_bytes(dbvv: &DbVersionVector) -> u64 {
    wire::MSG_HEADER + wire::vv(dbvv.len())
}

/// Reply to an out-of-bound request for one item (§5.2): the source's
/// auxiliary copy if it has one, else its regular copy, with the matching
/// IVV. No log records travel.
#[derive(Clone, Debug)]
pub struct OobReply {
    /// The requested item.
    pub item: ItemId,
    /// IVV of the returned copy (auxiliary or regular).
    pub ivv: VersionVector,
    /// Value of the returned copy — a refcounted view, like
    /// [`ShippedItem::value`].
    pub value: Bytes,
    /// Whether the source answered from its auxiliary copy (an
    /// optimization: the auxiliary copy is never older than the regular
    /// one).
    pub from_aux: bool,
}

impl OobReply {
    /// Control bytes (id + IVV + flag byte).
    pub fn control_bytes(&self) -> u64 {
        wire::ITEM_ID + wire::vv(self.ivv.len()) + 1
    }
}

/// Bytes of an out-of-bound request (just the item id).
pub fn oob_request_bytes() -> u64 {
    wire::MSG_HEADER + wire::ITEM_ID
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_byte_accounting() {
        let n = 4;
        let payload = PropagationPayload {
            tails: vec![
                vec![LogRecord { item: ItemId(0), m: 1 }, LogRecord { item: ItemId(1), m: 2 }],
                vec![],
                vec![LogRecord { item: ItemId(1), m: 1 }],
                vec![],
            ],
            items: vec![
                ShippedItem {
                    item: ItemId(0),
                    ivv: VersionVector::zero(n),
                    value: Bytes::from_static(b"0123456789"),
                },
                ShippedItem {
                    item: ItemId(1),
                    ivv: VersionVector::zero(n),
                    value: Bytes::from_static(b"abc"),
                },
            ],
        };
        assert_eq!(payload.record_count(), 3);
        assert_eq!(payload.control_bytes(), 3 * 12 + 2 * (4 + 32));
        assert_eq!(payload.payload_bytes(), 13);
        let resp = PropagationResponse::Payload(payload);
        assert!(resp.control_bytes() > 0);
        assert_eq!(resp.payload_bytes(), 13);
    }

    #[test]
    fn you_are_current_is_constant_size() {
        let resp = PropagationResponse::YouAreCurrent;
        assert_eq!(resp.control_bytes(), 0);
        assert_eq!(resp.payload_bytes(), 0);
    }

    #[test]
    fn request_scales_with_n_only() {
        let small = DbVersionVector::zero(2);
        let large = DbVersionVector::zero(64);
        assert_eq!(request_bytes(&small), 16 + 16);
        assert_eq!(request_bytes(&large), 16 + 512);
    }

    #[test]
    fn oob_reply_control_bytes() {
        let r = OobReply {
            item: ItemId(1),
            ivv: VersionVector::zero(3),
            value: Bytes::from_static(b"v"),
            from_aux: true,
        };
        assert_eq!(r.control_bytes(), 4 + 24 + 1);
        assert_eq!(oob_request_bytes(), 20);
    }
}
