//! Messages exchanged by the protocol, with wire-size accounting.
//!
//! The protocol is a two-message pull (§5.1): the recipient sends its DBVV;
//! the source replies either "you are current" or with a *tail vector* `D`
//! (per-origin log-record tails) plus the set `S` of data items those
//! records refer to, each item carrying its IVV. Out-of-bound copying (§5.2)
//! is a one-item request/reply.

use bytes::Bytes;
use epidb_common::costs::wire;
use epidb_common::{ItemId, NodeId};
use epidb_log::LogRecord;
use epidb_vv::{DbVersionVector, VersionVector};

/// One data item shipped during propagation: the member of `S` together
/// with its IVV (the source "includes its IVV with every data item in S").
#[derive(Clone, Debug)]
pub struct ShippedItem {
    /// The item's id.
    pub item: ItemId,
    /// The source's (regular) IVV for the item.
    pub ivv: VersionVector,
    /// The source's (regular) value — whole-item copying (§2). A
    /// refcounted view of the store's buffer, produced by
    /// [`epidb_store::ItemValue::share`]: building this message never
    /// copies value bytes.
    pub value: Bytes,
}

impl ShippedItem {
    /// Control bytes this entry adds to the message (id + IVV); the value
    /// is payload.
    pub fn control_bytes(&self) -> u64 {
        wire::ITEM_ID + wire::vv(self.ivv.len())
    }
}

/// The source's reply when propagation is required: the tail vector `D`
/// (component `k` holds records of `k`-originated updates the recipient
/// missed, in the order `k` performed them) and the item set `S`.
#[derive(Clone, Debug, Default)]
pub struct PropagationPayload {
    /// `D`: one (possibly empty) tail per origin server.
    pub tails: Vec<Vec<LogRecord>>,
    /// `S`: the items referred to by records in `D`, with IVVs and values.
    pub items: Vec<ShippedItem>,
}

impl PropagationPayload {
    /// Total records across all tails.
    pub fn record_count(&self) -> usize {
        self.tails.iter().map(Vec::len).sum()
    }

    /// Control bytes: log records + per-item id and IVV.
    pub fn control_bytes(&self) -> u64 {
        self.record_count() as u64 * wire::LOG_RECORD
            + self.items.iter().map(ShippedItem::control_bytes).sum::<u64>()
    }

    /// Payload bytes: the item values being copied.
    pub fn payload_bytes(&self) -> u64 {
        self.items.iter().map(|s| s.value.len() as u64).sum()
    }
}

/// The source's reply to a propagation request.
#[derive(Clone, Debug)]
pub enum PropagationResponse {
    /// The recipient's DBVV dominates or equals the source's: nothing to do.
    /// This is the paper's constant-time "identical (or newer) replica"
    /// detection.
    YouAreCurrent,
    /// Updates to propagate.
    Payload(PropagationPayload),
    /// The source's retention-pruned log cannot cover the recipient's
    /// DBVV gap; the recipient must degrade to set reconciliation.
    NeedRecon,
}

impl PropagationResponse {
    /// Control bytes of the response message (excluding the envelope).
    pub fn control_bytes(&self) -> u64 {
        match self {
            PropagationResponse::YouAreCurrent | PropagationResponse::NeedRecon => 0,
            PropagationResponse::Payload(p) => p.control_bytes(),
        }
    }

    /// Payload bytes of the response message.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            PropagationResponse::YouAreCurrent | PropagationResponse::NeedRecon => 0,
            PropagationResponse::Payload(p) => p.payload_bytes(),
        }
    }
}

/// Request message of the two-message pull: the recipient's DBVV.
pub fn request_bytes(dbvv: &DbVersionVector) -> u64 {
    wire::MSG_HEADER + wire::vv(dbvv.len())
}

/// Reply to an out-of-bound request for one item (§5.2): the source's
/// auxiliary copy if it has one, else its regular copy, with the matching
/// IVV. No log records travel.
#[derive(Clone, Debug)]
pub struct OobReply {
    /// The requested item.
    pub item: ItemId,
    /// IVV of the returned copy (auxiliary or regular).
    pub ivv: VersionVector,
    /// Value of the returned copy — a refcounted view, like
    /// [`ShippedItem::value`].
    pub value: Bytes,
    /// Whether the source answered from its auxiliary copy (an
    /// optimization: the auxiliary copy is never older than the regular
    /// one).
    pub from_aux: bool,
}

impl OobReply {
    /// Control bytes (id + IVV + flag byte).
    pub fn control_bytes(&self) -> u64 {
        wire::ITEM_ID + wire::vv(self.ivv.len()) + 1
    }
}

/// Bytes of an out-of-bound request (just the item id).
pub fn oob_request_bytes() -> u64 {
    wire::MSG_HEADER + wire::ITEM_ID
}

/// One item shipped by set reconciliation or a whole-database pull: the
/// value and IVV (as in [`ShippedItem`]) plus the source's *retained* log
/// records for the item, so an adopting recipient rebuilds the same log
/// state a tail-covered pull would have produced.
#[derive(Clone, Debug)]
pub struct ReconItem {
    /// The item's id.
    pub item: ItemId,
    /// The source's (regular) IVV for the item.
    pub ivv: VersionVector,
    /// The source's (regular) value — a refcounted view, never a copy.
    pub value: Bytes,
    /// The source's retained `(origin, m)` log records for this item,
    /// in ascending origin order.
    pub records: Vec<(NodeId, u64)>,
}

impl ReconItem {
    /// Control bytes (id + IVV + shipped records); the value is payload.
    pub fn control_bytes(&self) -> u64 {
        wire::ITEM_ID + wire::vv(self.ivv.len()) + self.records.len() as u64 * wire::RECON_RECORD
    }
}

/// Reply to one reconciliation descent step: child digests for the
/// ranges still being narrowed, full items for the differing leaves the
/// recipient asked to fetch, and the source's coverage floor (so the
/// recipient does not re-serve evicted history to third parties).
#[derive(Clone, Debug, Default)]
pub struct ReconReply {
    /// `(start, end, digest)` triples — the two child digests of every
    /// range the recipient probed (a width-1 range yields its own leaf
    /// digest).
    pub digests: Vec<(u32, u32, u64)>,
    /// The items fetched this step.
    pub items: Vec<ReconItem>,
    /// The source's per-origin coverage floor.
    pub floor: Vec<u64>,
    /// The source's DBVV total at serve time — the cut stamp. Digests in
    /// different replies of one descent are only comparable when their
    /// cuts match; a change means the source mutated mid-descent and the
    /// recipient must fall back to the atomic whole-database pull, or its
    /// DBVV could absorb a *non-prefix* subset of an origin's updates that
    /// tail-covered pulls can never repair.
    pub cut: u64,
}

impl ReconReply {
    /// Control bytes: digest nodes + per-item control + the floor vector
    /// + the cut stamp.
    pub fn control_bytes(&self) -> u64 {
        self.digests.len() as u64 * wire::RECON_DIGEST
            + self.items.iter().map(ReconItem::control_bytes).sum::<u64>()
            + wire::vv(self.floor.len())
            + 8
    }

    /// Payload bytes: the item values being copied.
    pub fn payload_bytes(&self) -> u64 {
        self.items.iter().map(|s| s.value.len() as u64).sum()
    }
}

/// Reply to a whole-database pull — the genuine O(N) bottom rung of the
/// degradation ladder: every item with its IVV, value, and retained
/// records, plus the source's coverage floor.
#[derive(Clone, Debug, Default)]
pub struct FullPullReply {
    /// All items, in id order.
    pub items: Vec<ReconItem>,
    /// The source's per-origin coverage floor.
    pub floor: Vec<u64>,
}

impl FullPullReply {
    /// Control bytes: per-item control + the floor vector.
    pub fn control_bytes(&self) -> u64 {
        self.items.iter().map(ReconItem::control_bytes).sum::<u64>() + wire::vv(self.floor.len())
    }

    /// Payload bytes: the item values being copied.
    pub fn payload_bytes(&self) -> u64 {
        self.items.iter().map(|s| s.value.len() as u64).sum()
    }
}

/// Bytes of one reconciliation descent request: the probed ranges plus
/// the leaf fetch list.
pub fn recon_request_bytes(ranges: usize, fetch: usize) -> u64 {
    wire::MSG_HEADER + ranges as u64 * wire::RECON_RANGE + fetch as u64 * wire::ITEM_ID
}

/// Bytes of a whole-database pull request (header only).
pub fn full_pull_request_bytes() -> u64 {
    wire::MSG_HEADER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_byte_accounting() {
        let n = 4;
        let payload = PropagationPayload {
            tails: vec![
                vec![LogRecord { item: ItemId(0), m: 1 }, LogRecord { item: ItemId(1), m: 2 }],
                vec![],
                vec![LogRecord { item: ItemId(1), m: 1 }],
                vec![],
            ],
            items: vec![
                ShippedItem {
                    item: ItemId(0),
                    ivv: VersionVector::zero(n),
                    value: Bytes::from_static(b"0123456789"),
                },
                ShippedItem {
                    item: ItemId(1),
                    ivv: VersionVector::zero(n),
                    value: Bytes::from_static(b"abc"),
                },
            ],
        };
        assert_eq!(payload.record_count(), 3);
        assert_eq!(payload.control_bytes(), 3 * 12 + 2 * (4 + 32));
        assert_eq!(payload.payload_bytes(), 13);
        let resp = PropagationResponse::Payload(payload);
        assert!(resp.control_bytes() > 0);
        assert_eq!(resp.payload_bytes(), 13);
    }

    #[test]
    fn you_are_current_is_constant_size() {
        let resp = PropagationResponse::YouAreCurrent;
        assert_eq!(resp.control_bytes(), 0);
        assert_eq!(resp.payload_bytes(), 0);
    }

    #[test]
    fn request_scales_with_n_only() {
        let small = DbVersionVector::zero(2);
        let large = DbVersionVector::zero(64);
        assert_eq!(request_bytes(&small), 16 + 16);
        assert_eq!(request_bytes(&large), 16 + 512);
    }

    #[test]
    fn recon_reply_byte_accounting() {
        let reply = ReconReply {
            digests: vec![(0, 4, 7), (4, 8, 9)],
            items: vec![ReconItem {
                item: ItemId(3),
                ivv: VersionVector::zero(3),
                value: Bytes::from_static(b"hello"),
                records: vec![(NodeId(0), 4), (NodeId(2), 1)],
            }],
            floor: vec![0, 0, 0],
            cut: 9,
        };
        // 2 digests · 16 + (id 4 + ivv 24 + 2 records · 10) + floor 24 + cut 8.
        assert_eq!(reply.control_bytes(), 2 * 16 + (4 + 24 + 20) + 24 + 8);
        assert_eq!(reply.payload_bytes(), 5);
        assert_eq!(recon_request_bytes(2, 1), 16 + 2 * 8 + 4);
        assert_eq!(full_pull_request_bytes(), 16);
    }

    #[test]
    fn full_pull_reply_byte_accounting() {
        let reply = FullPullReply {
            items: vec![
                ReconItem {
                    item: ItemId(0),
                    ivv: VersionVector::zero(2),
                    value: Bytes::from_static(b"ab"),
                    records: vec![(NodeId(1), 2)],
                },
                ReconItem {
                    item: ItemId(1),
                    ivv: VersionVector::zero(2),
                    value: Bytes::new(),
                    records: vec![],
                },
            ],
            floor: vec![3, 0],
        };
        assert_eq!(reply.control_bytes(), (4 + 16 + 10) + (4 + 16) + 16);
        assert_eq!(reply.payload_bytes(), 2);
    }

    #[test]
    fn need_recon_is_constant_size() {
        let resp = PropagationResponse::NeedRecon;
        assert_eq!(resp.control_bytes(), 0);
        assert_eq!(resp.payload_bytes(), 0);
    }

    #[test]
    fn oob_reply_control_bytes() {
        let r = OobReply {
            item: ItemId(1),
            ivv: VersionVector::zero(3),
            value: Bytes::from_static(b"v"),
            from_aux: true,
        };
        assert_eq!(r.control_bytes(), 4 + 24 + 1);
        assert_eq!(oob_request_bytes(), 20);
    }
}
