//! Sharded partial replication: shard-map routing, per-shard replicas,
//! and the shard-handoff primitive.
//!
//! The paper's per-database structures — the DBVV, the log vector, the
//! auxiliary vectors — all scale with the *whole* item space, so a node
//! replicating one database pays for every item in it. This module
//! partitions the item space into contiguous, equal-width *shards*, each
//! replicated by its own *replica group*: a node instantiates, journals,
//! and gossips only the shards it owns, running one full instance of the
//! paper's protocol (with all its §2.1 correctness criteria) per owned
//! shard. The design follows Sutra & Shapiro's observation that genuine
//! partial replication needs per-partition metadata rather than one
//! global vector: every shard carries its own DBVV and log vector, sized
//! to the shard's items, and a node's storage/gossip cost is the sum
//! over its *owned* shards only.
//!
//! Routing rides the same envelope mechanism as multi-database servers:
//! a [`ProtocolRequest::Shard`] envelope names the shard, and
//! [`Engine::handle_sharded`] dispatches to the owning replica. A
//! request for a shard this node does not serve is refused with the
//! typed, non-retryable [`Error::NotServedHere`], carrying the node's
//! shard-map entry so the caller can redirect; a request for a shard
//! that is mid-handoff is refused with the retryable
//! [`Error::ShardMoving`].
//!
//! # Shard handoff
//!
//! A shard moves between groups by *snapshot-ship + tail catch-up*:
//!
//! 1. every source-group node freezes the shard ([`ShardedNode::freeze_shard`]);
//!    reads and writes now refuse with [`Error::ShardMoving`] — the
//!    cutover window is closed to new work, so the shipped state is final;
//! 2. one source node serializes the frozen replica
//!    ([`ShardedNode::shard_snapshot`]) — typically its last durable
//!    checkpoint — plus the tail of journal records written since;
//! 3. each target node installs snapshot + tail
//!    ([`ShardedNode::install_shard`]), which re-homes the replica,
//!    replays the tail through the ordinary recovery path, and verifies
//!    the §2.1 invariants before the shard goes live;
//! 4. the shard map is reassigned ([`ShardMap::reassign`]) everywhere,
//!    source nodes drop their copies ([`ShardedNode::remove_shard`]),
//!    and targets reopen the window ([`ShardedNode::complete_handoff`]).

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use epidb_common::{Costs, Error, ItemId, NodeId, Result, RouteTarget, ShardId};
use epidb_store::{ItemValue, UpdateOp};

use crate::engine::{Engine, ProtocolRequest, ProtocolResponse, ShardTransport, Transport};
use crate::journal::Mutation;
use crate::oob::OobOutcome;
use crate::policy::ConflictPolicy;
use crate::replica::Replica;

/// The placement map: item-key → shard id → replica-group membership.
///
/// Shards are contiguous, equal-width slices of the global item space
/// (`items_per_shard` items each); shard `s` covers global items
/// `[s * items_per_shard, (s + 1) * items_per_shard)`. Every node holds a
/// copy of the map (it is small — one owner list per shard) and uses it
/// both to route its own requests and to populate the `owners` field of
/// [`Error::NotServedHere`] refusals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    items_per_shard: usize,
    /// Owner lists, indexed by shard id.
    groups: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Build a map of `groups.len()` shards, each `items_per_shard` items
    /// wide, with `groups[s]` the replica group of shard `s`.
    ///
    /// # Panics
    /// Panics if `items_per_shard` is zero, there are no shards, or any
    /// owner list is empty (an orphaned shard is a placement bug, not a
    /// runtime condition).
    pub fn new(items_per_shard: usize, groups: Vec<Vec<NodeId>>) -> ShardMap {
        assert!(items_per_shard > 0, "a shard must hold at least one item");
        assert!(!groups.is_empty(), "a shard map needs at least one shard");
        for (s, owners) in groups.iter().enumerate() {
            assert!(!owners.is_empty(), "shard s{s} has no owners");
        }
        ShardMap { items_per_shard, groups }
    }

    /// Number of shards in the map.
    pub fn n_shards(&self) -> usize {
        self.groups.len()
    }

    /// Items carried by each shard.
    pub fn items_per_shard(&self) -> usize {
        self.items_per_shard
    }

    /// Total items across all shards (the global item universe).
    pub fn n_items(&self) -> usize {
        self.items_per_shard * self.groups.len()
    }

    /// The shard a global item lives on, or [`Error::UnknownItem`] for an
    /// item outside the universe.
    pub fn shard_of(&self, item: ItemId) -> Result<ShardId> {
        let s = item.index() / self.items_per_shard;
        if s >= self.groups.len() {
            return Err(Error::UnknownItem(item));
        }
        Ok(ShardId::from_index(s))
    }

    /// Translate a global item id to its shard-local id.
    pub fn local_item(&self, item: ItemId) -> ItemId {
        ItemId::from_index(item.index() % self.items_per_shard)
    }

    /// Translate a shard-local item id back to the global id.
    pub fn global_item(&self, shard: ShardId, local: ItemId) -> ItemId {
        ItemId::from_index(shard.index() * self.items_per_shard + local.index())
    }

    /// The replica group serving `shard` (empty slice for an out-of-range
    /// shard id, which no node serves).
    pub fn owners(&self, shard: ShardId) -> &[NodeId] {
        self.groups.get(shard.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `node` is a member of `shard`'s replica group.
    pub fn owns(&self, node: NodeId, shard: ShardId) -> bool {
        self.owners(shard).contains(&node)
    }

    /// Shards whose replica group contains `node`.
    pub fn owned_by(&self, node: NodeId) -> Vec<ShardId> {
        ShardId::all(self.n_shards()).filter(|&s| self.owns(node, s)).collect()
    }

    /// Repoint `shard` at a new replica group — the map-update step of a
    /// handoff. Panics on an empty owner list, as in [`ShardMap::new`].
    pub fn reassign(&mut self, shard: ShardId, owners: Vec<NodeId>) {
        assert!(!owners.is_empty(), "shard {shard} would have no owners");
        self.groups[shard.index()] = owners;
    }
}

/// A node in a sharded deployment: one [`Replica`] per *owned* shard,
/// plus the shard map that routes everything else away.
///
/// Each owned shard is a complete, independent instance of the paper's
/// protocol: its own DBVV and log vector (sized to the shard's items),
/// its own auxiliary structures, its own cost and trace accounting, and —
/// when attached via `epidb-durable` — its own WAL/snapshot directory.
/// The node-level [`ShardedNode::costs`] is the sum over owned shards
/// plus the meta-costs of cross-group exchanges, so what a node pays is
/// exactly what it owns.
///
/// `Clone` is derived for the model checker (`epidb-mc`), which forks
/// whole-system states during exploration; journal sinks are per-shard
/// [`Replica`] state and clone as shared handles, so a durable node should
/// not be cloned (the checker only clones sink-free nodes).
#[derive(Clone)]
pub struct ShardedNode {
    pub(crate) id: NodeId,
    pub(crate) n_nodes: usize,
    pub(crate) map: ShardMap,
    pub(crate) shards: BTreeMap<ShardId, Replica>,
    /// Shards currently frozen for handoff: present here ⇒ reads, writes,
    /// and routed requests refuse with the retryable [`Error::ShardMoving`].
    pub(crate) moving: BTreeSet<ShardId>,
    /// Costs of node-level exchanges that precede shard dispatch
    /// (cross-group OOB requests), kept apart so per-shard accounting
    /// stays exact.
    pub(crate) meta_costs: Costs,
    pub(crate) policy: ConflictPolicy,
}

impl ShardedNode {
    /// Build the node `id` of an `n_nodes`-server deployment placed by
    /// `map`, instantiating a replica for every shard the map assigns to
    /// this node. Version vectors are dimensioned for the *global* server
    /// set, so ids stay consistent when a shard migrates between groups.
    pub fn new(id: NodeId, n_nodes: usize, map: ShardMap, policy: ConflictPolicy) -> ShardedNode {
        assert!(id.index() < n_nodes, "node id out of range");
        let shards = map
            .owned_by(id)
            .into_iter()
            .map(|s| (s, Replica::with_policy(id, n_nodes, map.items_per_shard(), policy)))
            .collect();
        ShardedNode {
            id,
            n_nodes,
            map,
            shards,
            moving: BTreeSet::new(),
            meta_costs: Costs::default(),
            policy,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of servers in the deployment.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The node's view of the placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Repoint one shard's replica group in this node's map copy.
    pub fn reassign(&mut self, shard: ShardId, owners: Vec<NodeId>) {
        self.map.reassign(shard, owners);
    }

    /// Shards this node currently holds state for, in id order.
    pub fn owned_shards(&self) -> Vec<ShardId> {
        self.shards.keys().copied().collect()
    }

    /// Whether `shard` is currently frozen for handoff here.
    pub fn is_moving(&self, shard: ShardId) -> bool {
        self.moving.contains(&shard)
    }

    /// Routing decision for `shard`, shared by reads, writes, and
    /// [`Engine::handle_sharded`]: mid-handoff shards refuse retryably,
    /// unowned shards refuse with a redirect.
    fn route_check(&self, shard: ShardId) -> Result<()> {
        if self.moving.contains(&shard) {
            return Err(Error::ShardMoving(shard));
        }
        if self.shards.contains_key(&shard) {
            return Ok(());
        }
        if self.map.owns(self.id, shard) {
            // The map says this shard is ours but its state has not been
            // installed yet: the receiving half of a cutover window.
            return Err(Error::ShardMoving(shard));
        }
        Err(Error::NotServedHere {
            target: RouteTarget::Shard(shard),
            owners: self.map.owners(shard).to_vec(),
        })
    }

    /// The serving replica for `shard`, after routing checks.
    pub fn shard(&self, shard: ShardId) -> Result<&Replica> {
        self.route_check(shard)?;
        Ok(self.shards.get(&shard).expect("routed"))
    }

    /// Mutable access to the serving replica for `shard`, after routing
    /// checks.
    pub fn shard_mut(&mut self, shard: ShardId) -> Result<&mut Replica> {
        self.route_check(shard)?;
        Ok(self.shards.get_mut(&shard).expect("routed"))
    }

    /// Raw access to a shard's replica state, bypassing routing refusals.
    /// For operators and harnesses (audits, durability attachment, gossip
    /// loops that have already routed) — not for request paths.
    pub fn shard_state(&self, shard: ShardId) -> Option<&Replica> {
        self.shards.get(&shard)
    }

    /// Raw mutable access; see [`ShardedNode::shard_state`].
    pub fn shard_state_mut(&mut self, shard: ShardId) -> Option<&mut Replica> {
        self.shards.get_mut(&shard)
    }

    /// Apply a user update to a (globally addressed) item, routing to the
    /// owning shard.
    pub fn update(&mut self, item: ItemId, op: UpdateOp) -> Result<()> {
        let shard = self.map.shard_of(item)?;
        let local = self.map.local_item(item);
        self.shard_mut(shard)?.update(local, op)
    }

    /// Read the user-visible value of a (globally addressed) item.
    pub fn read(&self, item: ItemId) -> Result<&ItemValue> {
        let shard = self.map.shard_of(item)?;
        let local = self.map.local_item(item);
        self.shard(shard)?.read(local)
    }

    /// Cumulative costs at this node: the sum over owned shards plus the
    /// node-level meta-costs — and nothing for the shards it doesn't own.
    pub fn costs(&self) -> Costs {
        self.shards.values().map(Replica::costs).fold(self.meta_costs, |a, b| a + b)
    }

    /// One shard's cost counters (routing-checked).
    pub fn shard_costs(&self, shard: ShardId) -> Result<Costs> {
        Ok(self.shard(shard)?.costs())
    }

    /// Enable paranoid post-step auditing on every owned shard.
    pub fn set_paranoid(&mut self, on: bool) {
        for r in self.shards.values_mut() {
            r.set_paranoid(on);
        }
    }

    /// Enable delta propagation (an op cache of `budget_bytes`) on every
    /// owned shard.
    pub fn enable_delta(&mut self, budget_bytes: usize) {
        for r in self.shards.values_mut() {
            r.enable_delta(budget_bytes);
        }
    }

    /// Bound log-vector retention to `keep` records per (origin, item)
    /// component on every owned shard, raising coverage floors as pruning
    /// proceeds. Pulls against compacted shards may degrade to recon.
    pub fn set_log_retention(&mut self, keep: usize) {
        for r in self.shards.values_mut() {
            r.set_log_retention(keep);
        }
    }

    /// Total paranoid audits run across owned shards.
    pub fn audits_run(&self) -> u64 {
        self.shards.values().map(Replica::audits_run).sum()
    }

    /// Conflicts declared across owned shards.
    pub fn conflicts_declared(&self) -> usize {
        self.shards.values().map(|r| r.conflicts().len()).sum()
    }

    /// Check the §2.1 structural invariants on every owned shard.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (s, r) in &self.shards {
            r.check_invariants().map_err(|e| format!("shard {s}: {e}"))?;
        }
        Ok(())
    }

    /// As [`ShardedNode::check_invariants`], plus the conflict-free
    /// strengthening, per shard.
    pub fn check_invariants_clean(&self) -> std::result::Result<(), String> {
        for (s, r) in &self.shards {
            r.check_invariants_clean().map_err(|e| format!("shard {s}: {e}"))?;
        }
        Ok(())
    }

    // --- handoff primitives -------------------------------------------------

    /// Close the cutover window for `shard`: all subsequent reads, writes,
    /// and routed requests refuse with [`Error::ShardMoving`] until the
    /// handoff completes. Errors with [`Error::NotServedHere`] if this
    /// node holds no state for the shard.
    pub fn freeze_shard(&mut self, shard: ShardId) -> Result<()> {
        if !self.shards.contains_key(&shard) {
            return Err(Error::NotServedHere {
                target: RouteTarget::Shard(shard),
                owners: self.map.owners(shard).to_vec(),
            });
        }
        self.moving.insert(shard);
        Ok(())
    }

    /// Serialize one shard's replica for shipping. Deliberately *not*
    /// routing-checked: the handoff machinery snapshots a frozen shard.
    pub fn shard_snapshot(&self, shard: ShardId) -> Result<Vec<u8>> {
        self.shards.get(&shard).map(Replica::to_snapshot).ok_or_else(|| Error::NotServedHere {
            target: RouteTarget::Shard(shard),
            owners: self.map.owners(shard).to_vec(),
        })
    }

    /// Install a shipped shard: decode the snapshot, re-home it to this
    /// node, replay the journal tail through the ordinary recovery path,
    /// and verify the §2.1 invariants before the shard goes live. The
    /// shard stays closed ([`Error::ShardMoving`]) until
    /// [`ShardedNode::complete_handoff`].
    pub fn install_shard(
        &mut self,
        shard: ShardId,
        snapshot: &[u8],
        tail: &[Mutation],
    ) -> Result<()> {
        let mut replica = Replica::from_snapshot(snapshot)?;
        replica.rehome(self.id);
        for m in tail {
            replica.replay_mutation(m.clone())?;
        }
        replica.check_invariants().map_err(Error::CorruptSnapshot)?;
        self.shards.insert(shard, replica);
        self.moving.insert(shard);
        Ok(())
    }

    /// Join `shard`'s replica group with *empty* state — how a brand-new
    /// member bootstraps when no snapshot is shipped to it: the empty
    /// replica is installed behind the cutover window
    /// ([`Error::ShardMoving`] until [`ShardedNode::complete_handoff`])
    /// and catches up by ordinary anti-entropy once the window opens.
    pub fn bootstrap_shard(&mut self, shard: ShardId) {
        let replica =
            Replica::with_policy(self.id, self.n_nodes, self.map.items_per_shard(), self.policy);
        self.shards.insert(shard, replica);
        self.moving.insert(shard);
    }

    /// Replace (or create) this node's replica for `shard` with an
    /// already-built one — the recovery path: a durability layer that
    /// recovered per-shard state from disk installs it here. Bypasses the
    /// cutover machinery; the replica must already be homed to this node.
    pub fn adopt_shard(&mut self, shard: ShardId, replica: Replica) {
        assert_eq!(replica.id(), self.id, "adopted shard replica must be homed here");
        self.shards.insert(shard, replica);
    }

    /// Drop this node's copy of `shard` (the source side of a completed
    /// handoff) and reopen the window.
    pub fn remove_shard(&mut self, shard: ShardId) {
        self.shards.remove(&shard);
        self.moving.remove(&shard);
    }

    /// Reopen the cutover window for `shard` (the target side, once the
    /// map has been reassigned).
    pub fn complete_handoff(&mut self, shard: ShardId) {
        self.moving.remove(&shard);
    }

    /// Abort an in-flight handoff: reopen the cutover window closed by
    /// [`ShardedNode::freeze_shard`] so this node serves the shard again.
    ///
    /// Without this, a failed [`ShardedNode::install_shard`] on the target
    /// wedged the handoff forever — the source had already frozen the
    /// shard and had no path back to serving it short of completing a
    /// handoff that could no longer complete. Errors with
    /// [`Error::NotServedHere`] if this node holds no state for the shard
    /// (an abort cannot conjure a replica; a target whose install failed
    /// has nothing to serve and simply stays out of the group).
    pub fn abort_handoff(&mut self, shard: ShardId) -> Result<()> {
        if !self.shards.contains_key(&shard) {
            return Err(Error::NotServedHere {
                target: RouteTarget::Shard(shard),
                owners: self.map.owners(shard).to_vec(),
            });
        }
        self.moving.remove(&shard);
        Ok(())
    }
}

/// The outcome of a sharded OOB resolution ([`Engine::oob_sharded`]).
#[derive(Debug)]
pub enum ShardedOob {
    /// The item's shard is owned here: the copy was exchanged and the
    /// local auxiliary structures updated, exactly as in §5.2.
    Applied(OobOutcome),
    /// The item lives on an unowned shard: the copy was fetched
    /// cross-group via the shard map and returned to the caller, but no
    /// local replica state exists to adopt it into.
    Fetched {
        /// The remote copy's value.
        value: Bytes,
        /// Whether the serving node answered from its auxiliary copy.
        from_aux: bool,
    },
}

impl Engine {
    /// Serve one already-decoded request at a sharded node. This is the
    /// single point where received shard envelopes meet replica state:
    /// `Shard` envelopes route through the map (mid-handoff shards refuse
    /// retryably, unowned shards refuse with a redirect), and anything
    /// unrouted is rejected — a sharded node serves nothing outside a
    /// shard. Refusals return *before* any response is charged, matching
    /// [`Engine::handle`]'s accounting discipline.
    pub fn handle_sharded(
        node: &mut ShardedNode,
        req: ProtocolRequest,
    ) -> Result<ProtocolResponse> {
        match req {
            ProtocolRequest::Shard { shard, req } => {
                let replica = node.shard_mut(shard)?;
                let resp = Engine::handle(replica, *req)?;
                Ok(ProtocolResponse::Shard { shard, resp: Box::new(resp) })
            }
            other => Err(Error::Network(format!(
                "sharded dispatch needs shard routing, got {} request",
                other.kind()
            ))),
        }
    }

    /// Resolve an out-of-bound copy of a (globally addressed) item at a
    /// sharded node, against a transport to `transport.peer()`.
    ///
    /// When the item's shard is owned here this is the §5.2 exchange on
    /// that shard's replica (the peer must serve the shard too). When it
    /// is not — the cross-group case the shard map exists for — the copy
    /// is fetched from the remote group and returned without touching
    /// local state; the caller picks a peer from
    /// [`ShardMap::owners`]. Cross-group requests are charged to the
    /// node's meta-costs.
    pub fn oob_sharded<T: Transport>(
        node: &mut ShardedNode,
        transport: &mut T,
        item: ItemId,
    ) -> Result<ShardedOob> {
        let shard = node.map.shard_of(item)?;
        let local = node.map.local_item(item);
        if node.route_check(shard).is_ok() {
            let mut shard_transport = ShardTransport::new(transport, shard);
            let replica = node.shards.get_mut(&shard).expect("routed");
            return Ok(ShardedOob::Applied(Engine::oob(replica, &mut shard_transport, local)?));
        }
        if node.map.owns(node.id, shard) {
            // Owned but mid-handoff: surface the window, don't fetch around it.
            return Err(Error::ShardMoving(shard));
        }
        let req = ProtocolRequest::Shard {
            shard,
            req: Box::new(ProtocolRequest::Oob { from: node.id, item: local }),
        };
        node.meta_costs.charge_message(req.control_bytes(), req.payload_bytes());
        match transport.exchange(req)? {
            ProtocolResponse::Shard { resp, .. } => match *resp {
                ProtocolResponse::Oob(reply) => {
                    Ok(ShardedOob::Fetched { value: reply.value, from_aux: reply.from_aux })
                }
                other => Err(Error::Network(format!(
                    "cross-group oob: unexpected {} response",
                    other.kind()
                ))),
            },
            ProtocolResponse::Refused(e) => Err(e),
            other => Err(Error::Network(format!(
                "cross-group oob: unexpected {} response",
                other.kind()
            ))),
        }
    }
}

/// The in-process transport to a sharded node: an exchange is a direct
/// call to [`Engine::handle_sharded`] on the serving node. Used by the
/// simulator and by tests; real runtimes put channels or sockets here.
pub struct LocalShardedTransport<'a> {
    serving: &'a mut ShardedNode,
}

impl<'a> LocalShardedTransport<'a> {
    /// Wrap the serving node of an in-process exchange.
    pub fn new(serving: &'a mut ShardedNode) -> LocalShardedTransport<'a> {
        LocalShardedTransport { serving }
    }
}

impl Transport for LocalShardedTransport<'_> {
    fn peer(&self) -> NodeId {
        self.serving.id
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        Engine::handle_sharded(self.serving, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LocalTransport;
    use crate::propagation::PullOutcome;
    use crate::retry::RetryPolicy;

    /// 4 nodes, 2 groups × 2 nodes, 2 shards × 4 items.
    fn two_group_map() -> ShardMap {
        ShardMap::new(4, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
    }

    fn node(id: u16) -> ShardedNode {
        ShardedNode::new(NodeId(id), 4, two_group_map(), ConflictPolicy::Report)
    }

    fn pull_shard(recipient: &mut ShardedNode, source: &mut ShardedNode, shard: ShardId) {
        let replica = recipient.shard_state_mut(shard).expect("owned");
        let mut local = LocalShardedTransport::new(source);
        let mut transport = ShardTransport::new(&mut local, shard);
        Engine::pull(replica, &mut transport).unwrap();
    }

    #[test]
    fn map_routes_items_to_shards() {
        let map = two_group_map();
        assert_eq!(map.n_shards(), 2);
        assert_eq!(map.n_items(), 8);
        assert_eq!(map.shard_of(ItemId(0)).unwrap(), ShardId(0));
        assert_eq!(map.shard_of(ItemId(3)).unwrap(), ShardId(0));
        assert_eq!(map.shard_of(ItemId(4)).unwrap(), ShardId(1));
        assert!(matches!(map.shard_of(ItemId(8)), Err(Error::UnknownItem(_))));
        assert_eq!(map.local_item(ItemId(6)), ItemId(2));
        assert_eq!(map.global_item(ShardId(1), ItemId(2)), ItemId(6));
        assert_eq!(map.owned_by(NodeId(2)), vec![ShardId(1)]);
        assert!(map.owns(NodeId(0), ShardId(0)));
        assert!(!map.owns(NodeId(0), ShardId(1)));
    }

    #[test]
    fn node_instantiates_only_owned_shards() {
        let n0 = node(0);
        assert_eq!(n0.owned_shards(), vec![ShardId(0)]);
        assert!(n0.shard_state(ShardId(1)).is_none());
        // Owned shards are sized to the shard, not the universe.
        assert_eq!(n0.shard_state(ShardId(0)).unwrap().n_items(), 4);
    }

    #[test]
    fn requests_for_unowned_shards_redirect() {
        let mut n0 = node(0);
        match n0.update(ItemId(5), UpdateOp::set(&b"x"[..])) {
            Err(Error::NotServedHere { target, owners }) => {
                assert_eq!(target, RouteTarget::Shard(ShardId(1)));
                assert_eq!(owners, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected redirect, got {other:?}"),
        }
        // Same refusal through the engine's envelope path — and uncharged.
        let before = n0.costs();
        let req = ProtocolRequest::Shard {
            shard: ShardId(1),
            req: Box::new(ProtocolRequest::Oob { from: NodeId(2), item: ItemId(0) }),
        };
        assert!(matches!(Engine::handle_sharded(&mut n0, req), Err(Error::NotServedHere { .. })));
        assert_eq!(n0.costs(), before, "refusals must not be charged");
    }

    #[test]
    fn bare_requests_are_rejected_at_sharded_nodes() {
        let mut n0 = node(0);
        let req = ProtocolRequest::Oob { from: NodeId(1), item: ItemId(0) };
        assert!(matches!(Engine::handle_sharded(&mut n0, req), Err(Error::Network(_))));
    }

    #[test]
    fn owned_shards_gossip_and_converge_per_shard() {
        let mut n0 = node(0);
        let mut n1 = node(1);
        n0.set_paranoid(true);
        n1.set_paranoid(true);
        n0.update(ItemId(1), UpdateOp::set(&b"alpha"[..])).unwrap();
        n0.update(ItemId(3), UpdateOp::set(&b"beta"[..])).unwrap();
        pull_shard(&mut n1, &mut n0, ShardId(0));
        assert_eq!(n1.read(ItemId(1)).unwrap().as_bytes(), b"alpha");
        assert_eq!(n1.read(ItemId(3)).unwrap().as_bytes(), b"beta");
        n0.check_invariants_clean().unwrap();
        n1.check_invariants_clean().unwrap();
        assert!(n1.audits_run() > 0, "paranoid audits must run per shard");
    }

    #[test]
    fn cross_group_oob_fetches_via_shard_map() {
        let mut n0 = node(0);
        let mut n2 = node(2);
        // Item 5 lives on shard 1, owned by group {n2, n3}.
        n2.update(ItemId(5), UpdateOp::set(&b"remote"[..])).unwrap();
        let before = n2.costs();
        let fetched = {
            let mut transport = LocalShardedTransport::new(&mut n2);
            Engine::oob_sharded(&mut n0, &mut transport, ItemId(5)).unwrap()
        };
        match fetched {
            ShardedOob::Fetched { value, .. } => assert_eq!(&value[..], b"remote"),
            other => panic!("expected a cross-group fetch, got {other:?}"),
        }
        // The requester pays meta-costs; the serving group's shard pays
        // for its reply — both sides account the exchange.
        assert!(n0.costs().messages_sent > 0);
        assert!(n2.costs().messages_sent > before.messages_sent);
    }

    #[test]
    fn oob_on_owned_shard_applies_locally() {
        let mut n0 = node(0);
        let mut n1 = node(1);
        n1.update(ItemId(2), UpdateOp::set(&b"hot"[..])).unwrap();
        let out = {
            let mut transport = LocalShardedTransport::new(&mut n1);
            Engine::oob_sharded(&mut n0, &mut transport, ItemId(2)).unwrap()
        };
        assert!(matches!(out, ShardedOob::Applied(OobOutcome::Adopted { .. })));
        assert_eq!(n0.read(ItemId(2)).unwrap().as_bytes(), b"hot");
    }

    #[test]
    fn handoff_ships_snapshot_plus_tail_and_preserves_invariants() {
        let mut n0 = node(0);
        let mut n1 = node(1);
        let mut n2 = node(2);
        n0.set_paranoid(true);
        n2.set_paranoid(true);
        n0.update(ItemId(0), UpdateOp::set(&b"pre"[..])).unwrap();
        pull_shard(&mut n1, &mut n0, ShardId(0));

        // Simulate the durable flow: a snapshot taken *before* the last
        // updates, with the rest arriving as a journal tail.
        let snapshot = n0.shard_snapshot(ShardId(0)).unwrap();
        n0.update(ItemId(1), UpdateOp::set(&b"tail"[..])).unwrap();
        let tail = vec![Mutation::Update { item: ItemId(1), op: UpdateOp::set(&b"tail"[..]) }];

        // Freeze the source group: the cutover window refuses retryably.
        n0.freeze_shard(ShardId(0)).unwrap();
        n1.freeze_shard(ShardId(0)).unwrap();
        match n0.update(ItemId(0), UpdateOp::set(&b"late"[..])) {
            Err(e @ Error::ShardMoving(_)) => assert!(e.is_retryable()),
            other => panic!("expected a retryable cutover refusal, got {other:?}"),
        }
        assert!(matches!(n0.read(ItemId(0)), Err(Error::ShardMoving(_))));

        // Install at the target, re-homed and tail-replayed.
        n2.install_shard(ShardId(0), &snapshot, &tail).unwrap();
        assert!(matches!(n2.read(ItemId(0)), Err(Error::ShardMoving(_))), "window still closed");

        // Reassign the map everywhere and complete.
        for n in [&mut n0, &mut n1, &mut n2] {
            n.reassign(ShardId(0), vec![NodeId(2), NodeId(3)]);
        }
        n0.remove_shard(ShardId(0));
        n1.remove_shard(ShardId(0));
        n2.complete_handoff(ShardId(0));

        // The moved shard serves reads with the full history, §2.1 intact.
        assert_eq!(n2.read(ItemId(0)).unwrap().as_bytes(), b"pre");
        assert_eq!(n2.read(ItemId(1)).unwrap().as_bytes(), b"tail");
        n2.check_invariants_clean().unwrap();
        assert_eq!(n2.shard_state(ShardId(0)).unwrap().id(), NodeId(2), "re-homed");

        // The old owners now redirect to the new group.
        match n0.read(ItemId(0)) {
            Err(Error::NotServedHere { owners, .. }) => {
                assert_eq!(owners, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected redirect after handoff, got {other:?}"),
        }

        // And the moved replica keeps gossiping in its new group: n3 can
        // pull the full shard from n2.
        let mut n3 = node(3);
        n3.reassign(ShardId(0), vec![NodeId(2), NodeId(3)]);
        // n3 was built before the reassignment, so it has no shard-0
        // state; bootstrap it empty, behind the cutover window.
        n3.bootstrap_shard(ShardId(0));
        assert!(matches!(n3.read(ItemId(0)), Err(Error::ShardMoving(_))), "window closed");
        n3.complete_handoff(ShardId(0));
        pull_shard(&mut n3, &mut n2, ShardId(0));
        assert_eq!(n3.read(ItemId(0)).unwrap().as_bytes(), b"pre");
        assert_eq!(n3.read(ItemId(1)).unwrap().as_bytes(), b"tail");
        n3.check_invariants_clean().unwrap();
    }

    #[test]
    fn failed_install_aborts_and_source_serves_again() {
        // Regression: a failed `install_shard` on the target used to wedge
        // the handoff forever — the source had frozen the shard and had no
        // abort path back to serving it.
        let mut n0 = node(0);
        let mut n2 = node(2);
        n0.update(ItemId(0), UpdateOp::set(&b"survives"[..])).unwrap();

        let snapshot = n0.shard_snapshot(ShardId(0)).unwrap();
        n0.freeze_shard(ShardId(0)).unwrap();
        assert!(matches!(n0.read(ItemId(0)), Err(Error::ShardMoving(_))), "window closed");

        // The shipped snapshot is truncated in flight; the install fails
        // and must leave the target without shard-0 state.
        let corrupt = &snapshot[..snapshot.len() - 8];
        assert!(n2.install_shard(ShardId(0), corrupt, &[]).is_err());
        assert!(n2.shard_state(ShardId(0)).is_none());

        // The source aborts the handoff and serves again, state intact.
        n0.abort_handoff(ShardId(0)).unwrap();
        assert!(!n0.is_moving(ShardId(0)));
        assert_eq!(n0.read(ItemId(0)).unwrap().as_bytes(), b"survives");
        n0.update(ItemId(1), UpdateOp::set(&b"post-abort"[..])).unwrap();
        n0.check_invariants_clean().unwrap();

        // A node without state for the shard cannot "abort" into serving
        // it: the failed target redirects instead.
        match n2.abort_handoff(ShardId(0)) {
            Err(Error::NotServedHere { .. }) => {}
            other => panic!("expected NotServedHere, got {other:?}"),
        }
    }

    #[test]
    fn sharded_pull_costs_match_unsharded_equivalent() {
        // The shard envelope is cost-transparent, so a per-shard pull
        // charges exactly what the same pull on a standalone replica of
        // the shard's size charges.
        let mut n0 = node(0);
        let mut n1 = node(1);
        n0.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        pull_shard(&mut n1, &mut n0, ShardId(0));

        let mut a = Replica::with_policy(NodeId(0), 4, 4, ConflictPolicy::Report);
        let mut b = Replica::with_policy(NodeId(1), 4, 4, ConflictPolicy::Report);
        a.update(ItemId(1), UpdateOp::set(&b"v"[..])).unwrap();
        Engine::pull(&mut b, &mut LocalTransport::new(&mut a)).unwrap();

        assert_eq!(n1.costs(), b.costs(), "recipient side");
        assert_eq!(n0.costs(), a.costs(), "source side");
    }

    #[test]
    fn delta_gossip_works_per_shard() {
        let mut n0 = node(0);
        let mut n1 = node(1);
        n0.enable_delta(1 << 20);
        n1.enable_delta(1 << 20);
        n0.update(ItemId(0), UpdateOp::set(&b"seed"[..])).unwrap();
        pull_shard(&mut n1, &mut n0, ShardId(0));
        n0.update(ItemId(0), UpdateOp::append(&b"+d"[..])).unwrap();
        let out = {
            let replica = n1.shard_state_mut(ShardId(0)).unwrap();
            let mut local = LocalShardedTransport::new(&mut n0);
            let mut transport = ShardTransport::new(&mut local, ShardId(0));
            Engine::pull_delta_with(replica, &mut transport, &RetryPolicy::none()).unwrap()
        };
        assert!(matches!(out, PullOutcome::Propagated(_)));
        assert_eq!(n1.read(ItemId(0)).unwrap().as_bytes(), b"seed+d");
    }
}
