//! Mutation journaling: the hook layer a durability subsystem plugs into.
//!
//! A [`Replica`] mutates durable state through exactly four entry points:
//! a local user [`update`](Replica::update), an accepted whole-item
//! propagation ([`accept_propagation`](Replica::accept_propagation)), an
//! applied delta exchange ([`apply_delta`](Replica::apply_delta)), and an
//! adopted out-of-bound reply ([`accept_oob`](Replica::accept_oob)).
//! Everything else — intra-node replay, LWW resolution, tail appending —
//! happens *inside* those calls and is deterministic given their inputs.
//!
//! Each entry point therefore journals one [`Mutation`] (the owned form of
//! its inputs) to an attached [`MutationSink`] *before* touching state:
//! write-ahead order, so a crash between the journal write and the
//! in-memory application replays the mutation on recovery. Replaying a
//! journal is just calling the same entry points again
//! ([`Replica::replay_mutation`]); a replayed mutation that fails, fails
//! exactly as the original did (deterministic partial application), so
//! errors during replay are reported but not fatal.
//!
//! Cloning a `Mutation` is cheap where it matters: item values inside
//! payloads are refcounted [`bytes::Bytes`], so journaling never copies
//! payload bytes.
//!
//! What is *not* journaled, deliberately: cost counters, conflict reports,
//! traces, paranoid audits (all ephemeral); `serve_*` calls (they mutate
//! no durable state); and configuration (`enable_delta`, `set_paranoid`),
//! which the owning runtime re-applies after recovery.

use std::fmt;
use std::sync::Arc;

use epidb_common::{ItemId, NodeId, Result};
use epidb_log::LogRecord;
use epidb_store::UpdateOp;

use crate::codec::{
    get_delta_payload, get_floor, get_log_record, get_oob_reply, get_op, get_payload,
    get_recon_item, put_delta_payload, put_floor, put_log_record, put_oob_reply, put_op,
    put_payload, put_recon_item, Reader, Writer,
};
use crate::delta::{DeltaPayload, OfferEvaluation};
use crate::messages::{OobReply, PropagationPayload, ReconItem};
use crate::replica::Replica;

/// One durable mutation of a replica: the owned inputs of one of the four
/// state-changing entry points, sufficient to re-apply it during recovery.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// A local user update (§5.3).
    Update {
        /// The updated item.
        item: ItemId,
        /// The operation applied.
        op: UpdateOp,
    },
    /// An accepted whole-item propagation (message 2 of the §5.1 pull).
    Propagation {
        /// The source server.
        from: NodeId,
        /// The payload as received.
        payload: PropagationPayload,
    },
    /// An applied delta exchange (message 4 plus the surviving evaluation
    /// of message 2 — tails and refusals — so replay needs no re-offer).
    Delta {
        /// The source server.
        from: NodeId,
        /// The data message as received.
        payload: DeltaPayload,
        /// The tail vector from the offer.
        tails: Vec<Vec<LogRecord>>,
        /// Items refused at offer-evaluation time (sorted).
        refused: Vec<ItemId>,
    },
    /// An accepted out-of-bound reply (§5.2).
    Oob {
        /// The serving server.
        from: NodeId,
        /// The reply as received.
        reply: OobReply,
    },
    /// Items adopted (and the floor learned) from a set-reconciliation
    /// descent or whole-database pull.
    Recon {
        /// The source server.
        from: NodeId,
        /// The items shipped in the step being journaled.
        items: Vec<ReconItem>,
        /// The source's per-origin coverage floor.
        floor: Vec<u64>,
    },
}

const MUT_UPDATE: u8 = 0;
const MUT_PROPAGATION: u8 = 1;
const MUT_DELTA: u8 = 2;
const MUT_OOB: u8 = 3;
const MUT_RECON: u8 = 4;

/// Encode a mutation into `w` (the body of one WAL record; framing and
/// integrity are the journal owner's concern).
pub fn put_mutation(w: &mut Writer, m: &Mutation) {
    match m {
        Mutation::Update { item, op } => {
            w.u8(MUT_UPDATE);
            w.u32(item.0);
            put_op(w, op);
        }
        Mutation::Propagation { from, payload } => {
            w.u8(MUT_PROPAGATION);
            w.u16(from.0);
            put_payload(w, payload);
        }
        Mutation::Delta { from, payload, tails, refused } => {
            w.u8(MUT_DELTA);
            w.u16(from.0);
            put_delta_payload(w, payload);
            w.u16(tails.len() as u16);
            for tail in tails {
                w.u32(tail.len() as u32);
                for rec in tail {
                    put_log_record(w, rec);
                }
            }
            w.u32(refused.len() as u32);
            for x in refused {
                w.u32(x.0);
            }
        }
        Mutation::Oob { from, reply } => {
            w.u8(MUT_OOB);
            w.u16(from.0);
            put_oob_reply(w, reply);
        }
        Mutation::Recon { from, items, floor } => {
            w.u8(MUT_RECON);
            w.u16(from.0);
            w.u32(items.len() as u32);
            for item in items {
                put_recon_item(w, item);
            }
            put_floor(w, floor);
        }
    }
}

/// Decode a mutation encoded by [`put_mutation`].
pub fn get_mutation(r: &mut Reader<'_>) -> Result<Mutation> {
    match r.u8()? {
        MUT_UPDATE => Ok(Mutation::Update { item: ItemId(r.u32()?), op: get_op(r)? }),
        MUT_PROPAGATION => {
            Ok(Mutation::Propagation { from: NodeId(r.u16()?), payload: get_payload(r)? })
        }
        MUT_DELTA => {
            let from = NodeId(r.u16()?);
            let payload = get_delta_payload(r)?;
            let n_tails = r.u16()? as usize;
            let mut tails = Vec::with_capacity(n_tails.min(4096));
            for _ in 0..n_tails {
                let count = r.u32()? as usize;
                let mut tail = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    tail.push(get_log_record(r)?);
                }
                tails.push(tail);
            }
            let n_refused = r.u32()? as usize;
            let mut refused = Vec::with_capacity(n_refused.min(4096));
            for _ in 0..n_refused {
                refused.push(ItemId(r.u32()?));
            }
            Ok(Mutation::Delta { from, payload, tails, refused })
        }
        MUT_OOB => Ok(Mutation::Oob { from: NodeId(r.u16()?), reply: get_oob_reply(r)? }),
        MUT_RECON => {
            let from = NodeId(r.u16()?);
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(get_recon_item(r)?);
            }
            let floor = get_floor(r)?;
            Ok(Mutation::Recon { from, items, floor })
        }
        t => Err(epidb_common::Error::CorruptSnapshot(format!("unknown mutation tag {t}"))),
    }
}

/// A destination for journaled mutations — implemented by the durability
/// layer (`epidb-durable`'s write-ahead log) and by test doubles.
///
/// `record` is called with the replica lock held, *before* the mutation is
/// applied in memory. Implementations decide their own durability level
/// (buffered append vs. fsync per record).
pub trait MutationSink: Send + Sync {
    /// Persist one mutation.
    fn record(&self, m: &Mutation);
}

/// A cloneable, debuggable handle to a shared [`MutationSink`].
///
/// Cloning a [`Replica`] clones the handle, so the clone journals to the
/// *same* sink — runtimes that clone replicas for inspection (e.g. at
/// shutdown) should detach the sink first if they intend to mutate the
/// clone.
#[derive(Clone)]
pub struct SinkHandle(Arc<dyn MutationSink>);

impl SinkHandle {
    /// Wrap a sink.
    pub fn new(sink: Arc<dyn MutationSink>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Forward one mutation.
    pub fn record(&self, m: &Mutation) {
        self.0.record(m);
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

impl Replica {
    /// Attach (or detach, with `None`) the mutation sink. Attach only
    /// *after* recovery replay is complete, or the replay itself would be
    /// re-journaled.
    pub fn set_mutation_sink(&mut self, sink: Option<SinkHandle>) {
        self.sink = sink;
    }

    /// Whether a mutation sink is currently attached.
    pub fn has_mutation_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Internal: journal one mutation if a sink is attached. The closure
    /// keeps the owned-`Mutation` construction (clones) off the no-sink
    /// path.
    #[inline]
    pub(crate) fn journal_mutation(&self, make: impl FnOnce() -> Mutation) {
        if let Some(sink) = &self.sink {
            sink.record(&make());
        }
    }

    /// Internal: run `f` with the sink detached — used by composite
    /// operations (`apply_delta`'s whole-item fallback) so their inner
    /// entry-point calls do not journal a second record, and by replay.
    pub(crate) fn with_sink_suspended<T>(&mut self, f: impl FnOnce(&mut Replica) -> T) -> T {
        let sink = self.sink.take();
        let out = f(self);
        self.sink = sink;
        out
    }

    /// Re-apply a journaled mutation during recovery, by calling the same
    /// entry point that produced it (with journaling suspended).
    ///
    /// Errors are the original call's errors: a mutation that failed live
    /// fails identically on replay, so callers treat errors as outcomes to
    /// note, not corruption.
    pub fn replay_mutation(&mut self, m: Mutation) -> Result<()> {
        self.with_sink_suspended(|r| match m {
            Mutation::Update { item, op } => r.update(item, op),
            Mutation::Propagation { from, payload } => {
                r.accept_propagation(from, payload).map(|_| ())
            }
            Mutation::Delta { from, payload, tails, refused } => r
                .apply_delta(from, payload, OfferEvaluation::from_parts(tails, refused))
                .map(|_| ()),
            Mutation::Oob { from, reply } => r.accept_oob(from, reply).map(|_| ()),
            Mutation::Recon { from, items, floor } => {
                r.apply_recon_items(from, items, &floor).map(|_| ())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;
    use crate::{oob_copy, pull, pull_delta};
    use epidb_vv::VvOrd;

    /// Test sink: collects mutations in memory.
    #[derive(Default)]
    struct Collector(Mutex<Vec<Mutation>>);

    impl MutationSink for Collector {
        fn record(&self, m: &Mutation) {
            self.0.lock().unwrap().push(m.clone());
        }
    }

    fn attach(r: &mut Replica) -> Arc<Collector> {
        let sink = Arc::new(Collector::default());
        r.set_mutation_sink(Some(SinkHandle::new(sink.clone())));
        sink
    }

    fn drain(sink: &Collector) -> Vec<Mutation> {
        std::mem::take(&mut sink.0.lock().unwrap())
    }

    fn assert_same_durable_state(a: &Replica, b: &Replica) {
        assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
        for x in ItemId::all(a.n_items()) {
            assert_eq!(a.read(x).unwrap(), b.read(x).unwrap());
            assert_eq!(a.read_regular(x).unwrap(), b.read_regular(x).unwrap());
            assert_eq!(a.item_ivv(x).unwrap(), b.item_ivv(x).unwrap());
        }
        assert_eq!(a.aux_item_count(), b.aux_item_count());
        assert_eq!(a.aux_log().len(), b.aux_log().len());
        for j in NodeId::all(a.n_nodes()) {
            let ra: Vec<_> = a.log().iter_component(j).collect();
            let rb: Vec<_> = b.log().iter_component(j).collect();
            assert_eq!(ra, rb);
        }
    }

    /// The core journal contract: replaying a replica's journal onto a
    /// fresh replica reproduces its durable state, across every mutation
    /// kind (update, pull, delta pull, OOB, aux update + replay).
    #[test]
    fn journal_replay_reproduces_state() {
        let mut a = Replica::new(NodeId(0), 2, 10);
        let mut b = Replica::new(NodeId(1), 2, 10);
        a.enable_delta(1 << 16);
        b.enable_delta(1 << 16);
        let sink = attach(&mut b);

        a.update(ItemId(0), UpdateOp::set(vec![7u8; 600])).unwrap();
        a.update(ItemId(1), UpdateOp::set(&b"one"[..])).unwrap();
        pull(&mut b, &mut a).unwrap();
        b.update(ItemId(2), UpdateOp::set(&b"local"[..])).unwrap();
        a.update(ItemId(0), UpdateOp::append(&b"+edit"[..])).unwrap();
        pull_delta(&mut b, &mut a).unwrap();
        a.update(ItemId(3), UpdateOp::set(&b"oob"[..])).unwrap();
        oob_copy(&mut b, &mut a, ItemId(3)).unwrap();
        b.update(ItemId(3), UpdateOp::append(&b"+aux"[..])).unwrap();
        pull(&mut b, &mut a).unwrap(); // replays the aux edit (Fig. 4)

        let journal = drain(&sink);
        assert!(journal.len() >= 6, "every entry point journaled, got {}", journal.len());

        let mut fresh = Replica::new(NodeId(1), 2, 10);
        fresh.enable_delta(1 << 16);
        for m in journal {
            fresh.replay_mutation(m).unwrap();
        }
        assert_same_durable_state(&b, &fresh);
        fresh.check_invariants().unwrap();
    }

    /// Composite operations journal exactly one record: a delta pull whose
    /// items come back as whole-value fallbacks must not also journal the
    /// inner `accept_propagation` calls.
    #[test]
    fn delta_whole_fallback_journals_once() {
        let mut a = Replica::new(NodeId(0), 2, 4);
        let mut b = Replica::new(NodeId(1), 2, 4);
        b.enable_delta(1 << 16); // source has no cache → Whole fallback
        let sink = attach(&mut b);
        a.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
        pull_delta(&mut b, &mut a).unwrap();
        let journal = drain(&sink);
        assert_eq!(journal.len(), 1);
        assert!(matches!(journal[0], Mutation::Delta { .. }));
    }

    /// Mutations survive the wire format.
    #[test]
    fn mutation_codec_roundtrips() {
        let mut a = Replica::new(NodeId(0), 3, 8);
        let mut b = Replica::new(NodeId(1), 3, 8);
        a.enable_delta(1 << 16);
        b.enable_delta(1 << 16);
        let sink = attach(&mut b);
        a.update(ItemId(0), UpdateOp::set(vec![1u8; 300])).unwrap();
        pull(&mut b, &mut a).unwrap();
        b.update(ItemId(1), UpdateOp::write_range(2, &b"xy"[..])).unwrap();
        a.update(ItemId(0), UpdateOp::append(&b"z"[..])).unwrap();
        pull_delta(&mut b, &mut a).unwrap();
        a.update(ItemId(2), UpdateOp::set(&b"q"[..])).unwrap();
        oob_copy(&mut b, &mut a, ItemId(2)).unwrap();

        let journal = drain(&sink);
        let mut fresh = Replica::new(NodeId(1), 3, 8);
        fresh.enable_delta(1 << 16);
        for m in journal {
            let mut w = Writer::new();
            put_mutation(&mut w, &m);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            let decoded = get_mutation(&mut r).unwrap();
            r.finish().unwrap();
            fresh.replay_mutation(decoded).unwrap();
        }
        assert_same_durable_state(&b, &fresh);
    }

    /// A cloned replica shares the sink (documented hazard — this pins the
    /// behaviour so a change is deliberate).
    #[test]
    fn clone_shares_sink() {
        let mut r = Replica::new(NodeId(0), 2, 2);
        let sink = attach(&mut r);
        let mut clone = r.clone();
        clone.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
        assert_eq!(drain(&sink).len(), 1);
    }
}
