//! The WAL header record: the first frame of every WAL generation, tagged
//! so it can never be confused with a [`Mutation`](epidb_core::Mutation)
//! record (whose tags are small integers).
//!
//! The header journals the *configuration* a recovering node would
//! otherwise have to be handed out-of-band: the conflict policy and the
//! delta op-cache budget. With it, recovery is config-free — a node that
//! crashed before its first checkpoint (no snapshot, only a WAL) still
//! comes back with the policy its mutations were journaled under, and a
//! recovered replica re-enables its delta cache at the budget it ran with.

use bytes::Bytes;
use epidb_common::{Error, Result};
use epidb_core::codec::{Reader, Writer};
use epidb_core::ConflictPolicy;

/// First byte of a header frame body. Mutation records start with their
/// mutation tag (0–3) and group-commit records with
/// [`GROUP_RECORD_TAG`](crate::group::GROUP_RECORD_TAG); `0xEE` collides
/// with neither.
pub(crate) const WAL_HEADER_TAG: u8 = 0xEE;

/// Header layout version.
const WAL_HEADER_VERSION: u8 = 1;

/// The journaled per-WAL configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalHeader {
    /// Conflict policy the replica ran (and its mutations assume).
    pub policy: ConflictPolicy,
    /// Delta op-cache budget in bytes (0 = delta mode off).
    pub delta_budget: u64,
}

/// Whether a CRC-verified WAL frame body is a header record.
pub(crate) fn is_header(body: &[u8]) -> bool {
    body.first() == Some(&WAL_HEADER_TAG)
}

/// Encode a header into a frame body.
pub(crate) fn encode_header(h: &WalHeader) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(WAL_HEADER_TAG);
    w.u8(WAL_HEADER_VERSION);
    w.u8(match h.policy {
        ConflictPolicy::Report => 0,
        ConflictPolicy::ResolveLww => 1,
    });
    w.u64(h.delta_budget);
    w.into_bytes()
}

/// Decode a header frame body (CRC already verified by the frame scan, so
/// failures here are corruption, not torn writes).
pub(crate) fn decode_header(body: &Bytes) -> Result<WalHeader> {
    let corrupt = |what: String| Error::CorruptSnapshot(format!("WAL header: {what}"));
    let mut r = Reader::shared(body);
    let tag = r.u8().map_err(|e| corrupt(e.to_string()))?;
    if tag != WAL_HEADER_TAG {
        return Err(corrupt(format!("bad tag {tag:#x}")));
    }
    let version = r.u8().map_err(|e| corrupt(e.to_string()))?;
    if version != WAL_HEADER_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let policy = match r.u8().map_err(|e| corrupt(e.to_string()))? {
        0 => ConflictPolicy::Report,
        1 => ConflictPolicy::ResolveLww,
        p => return Err(corrupt(format!("unknown policy {p}"))),
    };
    let delta_budget = r.u64().map_err(|e| corrupt(e.to_string()))?;
    if r.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(WalHeader { policy, delta_budget })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        for (policy, budget) in
            [(ConflictPolicy::Report, 0u64), (ConflictPolicy::ResolveLww, 1 << 20)]
        {
            let h = WalHeader { policy, delta_budget: budget };
            let body = Bytes::from(encode_header(&h));
            assert!(is_header(&body));
            assert_eq!(decode_header(&body).unwrap(), h);
        }
    }

    #[test]
    fn mutation_tags_are_not_headers() {
        for tag in 0..4u8 {
            assert!(!is_header(&[tag, 1, 2, 3]));
        }
    }

    #[test]
    fn bad_header_is_corrupt_not_torn() {
        let mut body =
            encode_header(&WalHeader { policy: ConflictPolicy::Report, delta_budget: 0 });
        body[2] = 9; // unknown policy
        let err = decode_header(&Bytes::from(body)).unwrap_err();
        assert!(matches!(err, Error::CorruptSnapshot(_)));
        assert!(!err.is_retryable());
    }
}
