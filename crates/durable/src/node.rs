//! Per-node durability: WAL appending, checkpointing, and recovery.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use epidb_common::{Error, NodeId, Result, ShardId};
use epidb_core::codec::{Reader, Writer};
use epidb_core::journal::{get_mutation, put_mutation};
use epidb_core::{ConflictPolicy, Mutation, MutationSink, Replica, ShardedNode, SinkHandle};

use crate::frames::{read_frames, write_frame};
use crate::header::{decode_header, encode_header, is_header, WalHeader};

/// Durability settings for a cluster runtime.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory; each node gets a `node-<id>` subdirectory.
    pub dir: PathBuf,
    /// Checkpoint (roll the WAL into a snapshot) after this many WAL
    /// records. `0` disables the record-count trigger.
    pub checkpoint_every: u64,
    /// Checkpoint once the current WAL holds this many bytes. `0`
    /// disables the byte trigger. Record-count and byte triggers compose:
    /// whichever fires first rolls the WAL — bytes bound recovery-replay
    /// *time* where record counts cannot (one record can be huge).
    pub checkpoint_bytes: u64,
    /// Snapshot generations retained after a checkpoint (minimum 1, the
    /// newest). Older generations are pruned only after the newer
    /// snapshot and its fresh WAL are fully fsynced, so `N > 1` keeps a
    /// bit-rot fallback: recovery walks back to the newest generation
    /// that still passes its checks and replays every retained WAL from
    /// there forward.
    pub retain_generations: usize,
    /// Fsync the WAL after every appended record. Off, records are
    /// buffered by the OS (still crash-consistent thanks to the torn-tail
    /// rule, but the tail may be lost on power failure).
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Config rooted at `dir` with moderate defaults (checkpoint every 64
    /// records, no byte trigger, one retained generation, no per-record
    /// fsync).
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 64,
            checkpoint_bytes: 0,
            retain_generations: 1,
            fsync: false,
        }
    }

    /// The per-node state directory.
    pub fn node_dir(&self, id: NodeId) -> PathBuf {
        self.dir.join(format!("node-{}", id.0))
    }

    /// The derived config for one shard of a sharded deployment: same
    /// knobs, rooted at `<dir>/shard-<id>`. Each shard a node owns gets
    /// its own WAL/snapshot directory (`<dir>/shard-<s>/node-<n>/`), so
    /// per-shard journals checkpoint, recover, and hand off independently.
    pub fn shard_config(&self, shard: ShardId) -> DurabilityConfig {
        DurabilityConfig { dir: self.dir.join(format!("shard-{}", shard.0)), ..self.clone() }
    }
}

/// What recovery found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation recovered into (and now being appended to).
    pub generation: u64,
    /// Whether a snapshot file was loaded (false = started from scratch).
    pub snapshot_loaded: bool,
    /// The generation of the snapshot that was loaded (0 when none). Can
    /// trail `generation` when recovery fell back past a corrupt newer
    /// snapshot and replayed the surviving WALs forward.
    pub snapshot_generation: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes discarded from the WAL tail (torn-write truncation).
    pub wal_bytes_truncated: u64,
    /// Replayed mutations that returned an error (deterministic replays of
    /// calls that failed identically when live; noted, not fatal).
    pub replay_errors: u64,
}

pub(crate) fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Network(format!("durable {what} {}: {e}", path.display()))
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.epdb"))
}

pub(crate) fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// List the generations of files in `dir` matching `prefix-<gen>.<ext>`.
pub(crate) fn list_generations(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))? {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(rest) = name.strip_prefix(prefix).and_then(|r| r.strip_prefix('-')) {
            if let Some(gen) = rest.strip_suffix(ext).and_then(|g| g.parse::<u64>().ok()) {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    // Durability of creates/renames/deletes requires syncing the directory
    // itself on POSIX systems.
    File::open(dir).and_then(|d| d.sync_all()).map_err(|e| io_err("fsync dir", dir, e))
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory.
pub(crate) fn atomic_write(dir: &Path, path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
    fsync_dir(dir)
}

struct Inner {
    dir: PathBuf,
    fsync: bool,
    checkpoint_every: u64,
    checkpoint_bytes: u64,
    retain_generations: usize,
    generation: u64,
    wal: File,
    /// Records appended to the current WAL since the last checkpoint.
    wal_records: u64,
    /// Bytes in the current WAL (frames, including the header record).
    wal_bytes: u64,
    /// The encoded header frame written at the head of every fresh WAL.
    header_frame: Vec<u8>,
}

/// The durable backing of one replica: an open WAL plus the checkpoint
/// machinery. Implements [`MutationSink`], so an `Arc<NodeDurability>`
/// plugs straight into [`Replica::set_mutation_sink`] (via
/// [`NodeDurability::attach`]).
pub struct NodeDurability {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for NodeDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("NodeDurability")
            .field("dir", &inner.dir)
            .field("generation", &inner.generation)
            .field("wal_records", &inner.wal_records)
            .finish()
    }
}

impl NodeDurability {
    /// Open the durable state for node `id` under `cfg.dir`, recovering a
    /// replica from disk: newest valid snapshot generation, plus a
    /// torn-tail-tolerant replay of that generation's WAL. First start
    /// (empty directory) yields a fresh replica.
    ///
    /// The returned replica has **no sink attached** (so the recovery
    /// itself is not re-journaled); call [`NodeDurability::attach`] once
    /// any runtime reconfiguration (delta cache, paranoid mode) is done.
    pub fn open(
        cfg: &DurabilityConfig,
        id: NodeId,
        n_nodes: usize,
        n_items: usize,
        policy: ConflictPolicy,
    ) -> Result<(Arc<NodeDurability>, Replica, RecoveryReport)> {
        NodeDurability::open_with(cfg, id, n_nodes, n_items, policy, 0)
    }

    /// As [`NodeDurability::open`], with a delta op-cache budget. `policy`
    /// and `delta_budget` are *fresh-start defaults*: every WAL generation
    /// starts with a header record journaling the pair, and when a header
    /// is recovered it overrides the arguments — recovery is config-free
    /// (the disk says what configuration the journaled mutations assume).
    /// The returned replica already has its delta cache enabled per the
    /// effective budget.
    pub fn open_with(
        cfg: &DurabilityConfig,
        id: NodeId,
        n_nodes: usize,
        n_items: usize,
        policy: ConflictPolicy,
        delta_budget: usize,
    ) -> Result<(Arc<NodeDurability>, Replica, RecoveryReport)> {
        let dir = cfg.node_dir(id);
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;

        let snap_gens = list_generations(&dir, "snap", ".epdb")?;
        let wal_gens = list_generations(&dir, "wal", ".log")?;

        // Newest snapshot that passes every check wins; a corrupt newest
        // generation (e.g. bit rot, or a rename that never became durable)
        // falls back to an older one, which checkpointing retains per
        // `retain_generations` and deletes only after its successors are
        // safely in place.
        let mut report = RecoveryReport::default();
        let mut replica = None;
        let mut last_snap_err = None;
        for &gen in snap_gens.iter().rev() {
            match load_snapshot(&snap_path(&dir, gen)) {
                Ok(r) => {
                    report.generation = gen;
                    report.snapshot_loaded = true;
                    report.snapshot_generation = gen;
                    replica = Some(r);
                    break;
                }
                Err(e) => last_snap_err = Some(e),
            }
        }
        if replica.is_none() {
            if let Some(e) = last_snap_err {
                // Snapshots existed but none loads: refusing loudly beats
                // silently restarting empty and re-serving stale
                // anti-entropy as if the node were new.
                return Err(e);
            }
        }

        // Scan every WAL from the recovered generation forward (snapshot
        // `g` includes everything up to the end of WAL `g-1`, so WALs
        // `g..` hold exactly the mutations past the snapshot — possibly
        // several generations of them when a newer snapshot was lost and
        // recovery fell back). On a fresh start the scan begins at the
        // oldest retained WAL.
        let replay_from = if report.snapshot_loaded {
            report.generation
        } else {
            wal_gens.first().copied().unwrap_or(0)
        };
        let resume_gen =
            report.generation.max(wal_gens.last().copied().unwrap_or(report.generation));
        let mut header: Option<WalHeader> = None;
        let mut replay: Vec<Bytes> = Vec::new();
        let mut final_scan: Option<(PathBuf, usize, usize, u64)> = None;
        for &gen in wal_gens.iter().filter(|&&g| g >= replay_from) {
            let wal_file = wal_path(&dir, gen);
            let raw = fs::read(&wal_file).map_err(|e| io_err("read", &wal_file, e))?;
            let buf = Bytes::from(raw);
            let scan = read_frames(&buf);
            report.wal_bytes_truncated += scan.torn_bytes as u64;
            let mut records = 0u64;
            for body in &scan.bodies {
                if is_header(body) {
                    // The newest generation's header wins (it is what the
                    // resumed WAL was journaled under).
                    header = Some(decode_header(body)?);
                } else {
                    replay.push(body.clone());
                    records += 1;
                }
            }
            if gen == resume_gen {
                final_scan = Some((wal_file, scan.valid_len, scan.torn_bytes, records));
            }
        }

        // Construct (or validate) the replica now that any journaled
        // header is known: a fresh start adopts the journaled policy.
        let effective_policy = match (&replica, header) {
            (None, Some(h)) => h.policy,
            _ => policy,
        };
        let mut replica = match replica {
            Some(r) => r,
            None => {
                report.generation = resume_gen;
                Replica::with_policy(id, n_nodes, n_items, effective_policy)
            }
        };
        if replica.id() != id || replica.n_nodes() != n_nodes || replica.n_items() != n_items {
            return Err(Error::CorruptSnapshot(format!(
                "recovered state is for node {} ({} nodes, {} items), expected node {id} \
                 ({n_nodes} nodes, {n_items} items)",
                replica.id(),
                replica.n_nodes(),
                replica.n_items(),
            )));
        }

        for body in &replay {
            let mut r = Reader::shared(body);
            let m = decode_wal_record(&mut r, body)?;
            if replica.replay_mutation(m).is_err() {
                report.replay_errors += 1;
            }
            report.wal_records_replayed += 1;
        }
        report.generation = resume_gen;

        // Truncate the resumed WAL's torn tail so appends extend the valid
        // prefix. Older generations are left as-is: their torn bytes (if
        // any) are already counted and the files are pruned at the next
        // checkpoint.
        let resumed_wal = wal_path(&dir, resume_gen);
        let (mut wal_bytes, mut wal_records) = (0u64, 0u64);
        if let Some((path, valid_len, torn, records)) = final_scan {
            if torn > 0 {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open", &path, e))?;
                f.set_len(valid_len as u64).map_err(|e| io_err("truncate", &path, e))?;
                f.sync_all().map_err(|e| io_err("fsync", &path, e))?;
            }
            wal_bytes = valid_len as u64;
            wal_records = records;
        }

        // The effective configuration: journaled header wins, arguments
        // are the fresh-start default. It seeds the header of this and
        // every future generation of this WAL.
        let effective = header
            .unwrap_or(WalHeader { policy: effective_policy, delta_budget: delta_budget as u64 });
        if effective.delta_budget > 0 {
            replica.enable_delta(effective.delta_budget as usize);
        }
        let header_frame = write_frame(&encode_header(&effective));

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&resumed_wal)
            .map_err(|e| io_err("open", &resumed_wal, e))?;
        if wal_bytes == 0 {
            // Fresh (or fully torn) WAL: write the header record first and
            // make it durable before any mutation can land behind it.
            (&wal).write_all(&header_frame).map_err(|e| io_err("write", &resumed_wal, e))?;
            wal.sync_data().map_err(|e| io_err("fsync", &resumed_wal, e))?;
            wal_bytes = header_frame.len() as u64;
        }

        let durability = Arc::new(NodeDurability {
            inner: Mutex::new(Inner {
                dir,
                fsync: cfg.fsync,
                checkpoint_every: cfg.checkpoint_every,
                checkpoint_bytes: cfg.checkpoint_bytes,
                retain_generations: cfg.retain_generations.max(1),
                generation: resume_gen,
                wal,
                wal_records,
                wal_bytes,
                header_frame,
            }),
        });
        replica.check_invariants().map_err(Error::CorruptSnapshot)?;
        Ok((durability, replica, report))
    }

    /// Attach this durability layer as the replica's mutation sink.
    pub fn attach(self: &Arc<Self>, replica: &mut Replica) {
        replica.set_mutation_sink(Some(SinkHandle::new(self.clone())));
    }

    /// The current snapshot/WAL generation.
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().generation
    }

    /// Records in the current WAL (since the last checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.inner.lock().unwrap().wal_records
    }

    /// Checkpoint if the WAL has reached the configured record count or
    /// byte size (whichever trigger fires first; see
    /// [`DurabilityConfig::checkpoint_bytes`]). Callers invoke this
    /// *after* a batch of operations, while still holding whatever lock
    /// guards `replica` — never from inside the sink (the replica is
    /// mid-mutation there).
    pub fn maybe_checkpoint(&self, replica: &Replica) -> Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let by_records = inner.checkpoint_every > 0 && inner.wal_records >= inner.checkpoint_every;
        let by_bytes = inner.checkpoint_bytes > 0 && inner.wal_bytes >= inner.checkpoint_bytes;
        if !by_records && !by_bytes {
            return Ok(false);
        }
        inner.checkpoint(replica)?;
        Ok(true)
    }

    /// Checkpoint unconditionally: roll the WAL into a new snapshot
    /// generation.
    pub fn checkpoint(&self, replica: &Replica) -> Result<()> {
        self.inner.lock().unwrap().checkpoint(replica)
    }

    /// Read the current generation's WAL records after the first `skip` —
    /// the *tail* a shard handoff ships on top of a snapshot taken when
    /// the WAL held `skip` records (see [`NodeDurability::wal_records`]).
    /// Torn trailing bytes are ignored, exactly as in recovery.
    pub fn read_wal_tail(&self, skip: u64) -> Result<Vec<Mutation>> {
        let (path, records) = {
            let inner = self.inner.lock().unwrap();
            (wal_path(&inner.dir, inner.generation), inner.wal_records)
        };
        if skip > records {
            return Err(Error::Network(format!(
                "durable: WAL tail skip {skip} exceeds {records} records"
            )));
        }
        let raw = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let buf = Bytes::from(raw);
        let scan = read_frames(&buf);
        let mut tail = Vec::new();
        // `skip` counts *mutation* records (the unit `wal_records`
        // reports); the header record is configuration, not state.
        for body in scan.bodies.iter().filter(|b| !is_header(b)).skip(skip as usize) {
            let mut r = Reader::shared(body);
            tail.push(decode_wal_record(&mut r, body)?);
        }
        Ok(tail)
    }
}

/// Per-shard durability for one sharded node: one [`NodeDurability`] (its
/// own WAL/snapshot directory) per owned shard.
pub struct ShardedDurability {
    shards: std::collections::BTreeMap<ShardId, Arc<NodeDurability>>,
}

impl ShardedDurability {
    /// Open (or recover) durable state for every shard `node` owns,
    /// attach each shard's sink, and return the per-shard recovery
    /// reports. Shards whose directories don't exist yet start fresh;
    /// recovered shard replicas replace the node's empty ones.
    ///
    /// Attachment happens after each shard's replay, so recovery is never
    /// re-journaled — the same discipline as [`NodeDurability::open`].
    pub fn open(
        cfg: &DurabilityConfig,
        node: &mut ShardedNode,
        policy: ConflictPolicy,
    ) -> Result<(ShardedDurability, std::collections::BTreeMap<ShardId, RecoveryReport>)> {
        let mut shards = std::collections::BTreeMap::new();
        let mut reports = std::collections::BTreeMap::new();
        let items_per_shard = node.map().items_per_shard();
        let n_nodes = node.n_nodes();
        for shard in node.owned_shards() {
            let shard_cfg = cfg.shard_config(shard);
            let (durability, mut replica, report) =
                NodeDurability::open(&shard_cfg, node.id(), n_nodes, items_per_shard, policy)?;
            durability.attach(&mut replica);
            node.adopt_shard(shard, replica);
            shards.insert(shard, durability);
            reports.insert(shard, report);
        }
        Ok((ShardedDurability { shards }, reports))
    }

    /// The durability layer of one owned shard.
    pub fn shard(&self, shard: ShardId) -> Option<&Arc<NodeDurability>> {
        self.shards.get(&shard)
    }

    /// Checkpoint any owned shard whose WAL has reached the configured
    /// record count. Returns the shards checkpointed.
    pub fn maybe_checkpoint(&self, node: &ShardedNode) -> Result<Vec<ShardId>> {
        let mut rolled = Vec::new();
        for (shard, durability) in &self.shards {
            if let Some(replica) = node.shard_state(*shard) {
                if durability.maybe_checkpoint(replica)? {
                    rolled.push(*shard);
                }
            }
        }
        Ok(rolled)
    }

    /// Drop a shard's durability handle (after a handoff away from this
    /// node). The on-disk directory is left for the operator to reap.
    pub fn detach_shard(&mut self, shard: ShardId) {
        self.shards.remove(&shard);
    }

    /// Attach durability for a shard that just arrived via handoff.
    pub fn attach_shard(&mut self, shard: ShardId, durability: Arc<NodeDurability>) {
        self.shards.insert(shard, durability);
    }
}

impl Inner {
    fn checkpoint(&mut self, replica: &Replica) -> Result<()> {
        let next = self.generation + 1;
        let snap = snap_path(&self.dir, next);
        atomic_write(&self.dir, &snap, &write_frame(&replica.to_snapshot()))?;

        // Fresh WAL for the new generation — header first, durable before
        // the old generations go away.
        let new_wal_path = wal_path(&self.dir, next);
        let new_wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&new_wal_path)
            .map_err(|e| io_err("open", &new_wal_path, e))?;
        (&new_wal).write_all(&self.header_frame).map_err(|e| io_err("write", &new_wal_path, e))?;
        new_wal.sync_all().map_err(|e| io_err("fsync", &new_wal_path, e))?;
        fsync_dir(&self.dir)?;

        self.generation = next;
        self.wal = new_wal;
        self.wal_records = 0;
        self.wal_bytes = self.header_frame.len() as u64;

        // Prune generations beyond the retention window — only now, with
        // the newer snapshot and its WAL fully fsynced (a crash before
        // these deletes just leaves extra files; recovery prefers the
        // newest valid snapshot). Retaining N > 1 generations keeps
        // `snap-<g>` *and* `wal-<g>` for each retained `g`: recovering
        // from snapshot `g` needs every WAL from `g` forward.
        let keep_from = next.saturating_sub(self.retain_generations.max(1) as u64 - 1);
        for gen in list_generations(&self.dir, "snap", ".epdb")? {
            if gen < keep_from {
                let _ = fs::remove_file(snap_path(&self.dir, gen));
            }
        }
        for gen in list_generations(&self.dir, "wal", ".log")? {
            if gen < keep_from {
                let _ = fs::remove_file(wal_path(&self.dir, gen));
            }
        }
        Ok(())
    }

    fn append(&mut self, m: &Mutation) {
        let mut w = Writer::new();
        put_mutation(&mut w, m);
        let frame = write_frame(&w.into_bytes());
        // The sink API cannot report errors, and dropping a record would
        // silently break the write-ahead contract: fail loudly instead, as
        // a real server losing its disk would.
        self.wal.write_all(&frame).expect("durable: WAL append failed");
        if self.fsync {
            self.wal.sync_data().expect("durable: WAL fsync failed");
        }
        self.wal_records += 1;
        self.wal_bytes += frame.len() as u64;
    }
}

impl MutationSink for NodeDurability {
    fn record(&self, m: &Mutation) {
        self.inner.lock().unwrap().append(m);
    }
}

/// Build the replica a crash-and-recover of `live` would produce — the
/// model checker's crash semantics, grounded against this crate's real
/// disk recovery.
///
/// Because every state change is journaled *before* it applies (see
/// [`epidb_core::journal`]), the WAL always covers the full in-memory
/// durable state: recovery (snapshot + WAL replay) reconstructs exactly
/// what [`Replica::to_snapshot`] captures right now. A crash therefore
/// loses only the ephemeral remainder — cost counters, pending conflict
/// reports, the op cache, traces — plus any runtime-only configuration
/// the operator reapplies on restart.
///
/// The twin restarts with a cold op cache, re-enabled at `delta_budget`
/// (matching the journaled WAL-header config). Real recovery is cold too:
/// [`NodeDurability::open_with`] replays the WAL *before* enabling the
/// delta cache, so replayed updates cache nothing. A cold cache only
/// degrades delta rounds to whole-item shipping — it cannot change
/// protocol correctness, which is what the checker verifies. The
/// `crash_twin_matches_disk_recovery` tests pin exact state equality (by
/// [`Replica::fingerprint`]) against a real crash-and-reopen, both from a
/// checkpoint and from pure WAL replay (where only the `restored` marker
/// legitimately differs — replay rebuilds state without a snapshot load).
pub fn crash_recovered_twin(live: &Replica, delta_budget: usize) -> Result<Replica> {
    let mut twin = Replica::from_snapshot(&live.to_snapshot())?;
    if delta_budget > 0 {
        twin.enable_delta(delta_budget);
    }
    Ok(twin)
}

/// Load and fully validate a snapshot file (CRC frame + snapshot decode).
pub(crate) fn load_snapshot(path: &Path) -> Result<Replica> {
    let raw = fs::read(path).map_err(|e| io_err("read", path, e))?;
    let buf = Bytes::from(raw);
    let scan = read_frames(&buf);
    if scan.bodies.len() != 1 || scan.torn_bytes != 0 {
        return Err(Error::CorruptSnapshot(format!(
            "{}: expected one intact frame, found {} frame(s) and {} torn byte(s)",
            path.display(),
            scan.bodies.len(),
            scan.torn_bytes
        )));
    }
    Replica::from_snapshot_shared(&scan.bodies[0])
}

/// Decode one CRC-verified WAL frame body. The CRC already passed, so a
/// decode failure here is corruption, not a torn write.
fn decode_wal_record(r: &mut Reader<'_>, body: &Bytes) -> Result<Mutation> {
    let m = get_mutation(r)
        .map_err(|e| Error::CorruptSnapshot(format!("WAL record ({} bytes): {e}", body.len())))?;
    if r.remaining() != 0 {
        return Err(Error::CorruptSnapshot(format!(
            "WAL record: {} trailing bytes after mutation",
            r.remaining()
        )));
    }
    Ok(m)
}
