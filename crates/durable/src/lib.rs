//! On-disk durability for epidb replicas.
//!
//! The paper's operational model assumes a server can disappear for a long
//! time and "simply resume anti-entropy from its last durable state". This
//! crate makes that literal: a per-node directory holding
//!
//! * a **write-ahead log** (`wal-<gen>.log`) — an append-only file of
//!   CRC-framed [`Mutation`](epidb_core::Mutation) records, one per
//!   durable state change, written *before* the in-memory application
//!   (see [`epidb_core::journal`]);
//! * a **snapshot** (`snap-<gen>.epdb`) — the replica's full durable state
//!   ([`Replica::to_snapshot`](epidb_core::Replica::to_snapshot)) wrapped
//!   in the same CRC frame, written temp-file → fsync → atomic rename.
//!
//! A **checkpoint** rolls the WAL into a new snapshot generation: write
//! `snap-<g+1>`, start an empty `wal-<g+1>`, then delete the old
//! generation. Every step is crash-safe — a crash at any point leaves
//! either the old generation intact or both generations on disk, and
//! recovery picks the newest one that passes its checks.
//!
//! **Recovery** ([`NodeDurability::open`]) = newest valid snapshot + replay
//! of that generation's WAL. The WAL tail is read tolerantly: a frame with
//! a short header, short body, or CRC mismatch is a *torn tail* — the file
//! is truncated to the last valid frame and recovery proceeds with the
//! clean prefix (truncating the WAL at **any** byte offset yields a valid
//! prefix, never a panic). A frame whose CRC verifies but whose body does
//! not decode cannot be a torn write; that is real corruption and surfaces
//! as the non-retryable
//! [`Error::CorruptSnapshot`](epidb_common::Error::CorruptSnapshot).
//!
//! Two extensions on the base layer:
//!
//! * every WAL generation opens with a **header record** ([`WalHeader`]):
//!   the conflict policy and delta budget are journaled, so recovery is
//!   config-free;
//! * [`GroupWal`] multiplexes every stream (database/shard) of a node
//!   into **one shared WAL** behind a commit queue — one fsync per
//!   *batch* instead of per record (group commit), with
//!   [`GroupWal::wait_durable`] as the acknowledgement gate.

#![warn(missing_docs)]

mod frames;
mod group;
mod header;
mod node;
pub mod testdir;

pub use frames::{read_frames, write_frame, FrameScan, WAL_FRAME_HEADER};
pub use group::{GroupCommitStats, GroupRecoveryReport, GroupWal, StreamSpec};
pub use header::WalHeader;
pub use node::{
    crash_recovered_twin, DurabilityConfig, NodeDurability, RecoveryReport, ShardedDurability,
};
