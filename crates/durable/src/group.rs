//! Group commit: one shared write-ahead log per node, batched fsyncs.
//!
//! [`NodeDurability`](crate::NodeDurability) journals one replica to one
//! WAL and fsyncs inline — correct, but a node hosting many
//! databases/shards pays one fsync *per mutation per journal*. `GroupWal`
//! interleaves every stream (database, shard) of a node into a single WAL
//! file behind a commit queue: appenders enqueue encoded records and
//! return immediately; a dedicated committer thread drains the queue,
//! writes the whole batch with one `write`, and issues **one fsync per
//! batch**. A response is released only after [`GroupWal::wait_durable`]
//! observes the record's batch land, so the write-ahead guarantee is the
//! same as the per-replica WAL — only the fsyncs are amortized.
//!
//! Record framing reuses the per-replica WAL format (`len | crc32 | body`,
//! torn-tail rule); bodies are demultiplexed by a leading
//! [`GROUP_RECORD_TAG`] byte and a `stream` index, so one generation scan
//! recovers every stream. Checkpoints snapshot *all* streams
//! (`snap-<g>-<k>.epdb`) and roll the shared WAL together; retention and
//! the journaled [`WalHeader`] work exactly as in the per-replica layer.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use bytes::Bytes;
use epidb_common::{Error, NodeId, Result};
use epidb_core::codec::{Reader, Writer};
use epidb_core::journal::{get_mutation, put_mutation};
use epidb_core::{ConflictPolicy, Mutation, MutationSink, Replica, SinkHandle};

use crate::frames::{read_frames, write_frame};
use crate::header::{decode_header, encode_header, is_header, WalHeader};
use crate::node::{
    atomic_write, fsync_dir, io_err, list_generations, load_snapshot, wal_path, DurabilityConfig,
};

/// First byte of a group WAL record body: distinguishes multiplexed
/// records (tag + stream index + mutation) from bare mutation records
/// (tags 0–3) and the header record (`0xEE`).
pub(crate) const GROUP_RECORD_TAG: u8 = 0xD7;

/// One stream of a group WAL: the shape of the replica journaled under
/// that stream index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// The node this replica acts as.
    pub id: NodeId,
    /// Server-set size the replica's version vectors are dimensioned for.
    pub n_nodes: usize,
    /// Item universe size.
    pub n_items: usize,
}

/// Commit-path counters, for observing the fsync amortization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Mutation records made durable (written out by the committer).
    pub records: u64,
    /// Committer batches (one `write` each).
    pub batches: u64,
    /// `fsync` calls issued (one per batch when fsync is on; the
    /// group-commit win is `fsyncs / records` ≪ 1).
    pub fsyncs: u64,
}

/// What group recovery found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupRecoveryReport {
    /// The generation recovered into (and now being appended to).
    pub generation: u64,
    /// Stream snapshots loaded (0 = fresh start; otherwise one per
    /// stream — checkpoints write all streams or none).
    pub snapshots_loaded: usize,
    /// WAL records replayed across all streams.
    pub wal_records_replayed: u64,
    /// Bytes discarded from the WAL tail (torn-write truncation).
    pub wal_bytes_truncated: u64,
    /// Replayed mutations that returned an error (noted, not fatal).
    pub replay_errors: u64,
}

fn group_snap_path(dir: &Path, generation: u64, stream: usize) -> PathBuf {
    dir.join(format!("snap-{generation}-{stream}.epdb"))
}

/// Parse `snap-<gen>-<stream>.epdb`.
fn parse_group_snap(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".epdb")?;
    let (gen, stream) = rest.split_once('-')?;
    Some((gen.parse().ok()?, stream.parse().ok()?))
}

/// Map of generation -> (stream -> snapshot path) found in `dir`.
fn list_group_snaps(dir: &Path) -> Result<BTreeMap<u64, BTreeMap<usize, PathBuf>>> {
    let mut map: BTreeMap<u64, BTreeMap<usize, PathBuf>> = BTreeMap::new();
    for entry in fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))? {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((gen, stream)) = parse_group_snap(name) {
            map.entry(gen).or_default().insert(stream, entry.path());
        }
    }
    Ok(map)
}

struct GroupState {
    /// The current generation's WAL. `Arc` so the committer can write
    /// outside the state lock; `None` only after [`GroupWal::close`].
    wal: Option<Arc<File>>,
    /// Encoded frames enqueued but not yet handed to the committer.
    pending: Vec<u8>,
    /// Records inside `pending`.
    pending_records: u64,
    /// Sequence number of the last enqueued record.
    appended_seq: u64,
    /// Sequence number through which records are durable.
    durable_seq: u64,
    /// A batch is out being written/fsynced by the committer.
    committing: bool,
    generation: u64,
    /// Mutation records in the current generation (durable + in flight).
    wal_records: u64,
    /// Bytes in the current generation (frames, incl. header + pending).
    wal_bytes: u64,
    running: bool,
    header_frame: Vec<u8>,
}

struct Shared {
    dir: PathBuf,
    fsync: bool,
    checkpoint_every: u64,
    checkpoint_bytes: u64,
    retain_generations: usize,
    n_streams: usize,
    state: Mutex<GroupState>,
    /// Wakes the committer when records are enqueued (or on close).
    work: Condvar,
    /// Wakes `wait_durable` callers when a batch lands.
    durable: Condvar,
    records: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
}

/// The shared per-node group-commit WAL. One instance serves every
/// stream (database/shard replica) of a node; see the module docs.
pub struct GroupWal {
    shared: Arc<Shared>,
    committer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for GroupWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock().unwrap();
        f.debug_struct("GroupWal")
            .field("dir", &self.shared.dir)
            .field("generation", &st.generation)
            .field("wal_records", &st.wal_records)
            .finish()
    }
}

/// The per-stream [`MutationSink`]: encodes a multiplexed record and
/// enqueues it on the shared commit queue. `record` returns before the
/// record is durable — callers gate acknowledgements on
/// [`GroupWal::wait_durable`].
struct GroupSink {
    shared: Arc<Shared>,
    stream: u32,
}

impl MutationSink for GroupSink {
    fn record(&self, m: &Mutation) {
        let mut w = Writer::new();
        w.u8(GROUP_RECORD_TAG);
        w.u32(self.stream);
        put_mutation(&mut w, m);
        let frame = write_frame(&w.into_bytes());
        let mut st = self.shared.state.lock().unwrap();
        // The sink API cannot report errors; losing a record would break
        // the write-ahead contract silently, so fail loudly (same policy
        // as the per-replica WAL append).
        assert!(st.running && st.wal.is_some(), "durable: group WAL is closed");
        st.pending.extend_from_slice(&frame);
        st.pending_records += 1;
        st.appended_seq += 1;
        st.wal_records += 1;
        st.wal_bytes += frame.len() as u64;
        drop(st);
        self.shared.work.notify_one();
    }
}

fn committer_loop(shared: &Shared) {
    loop {
        let (file, buf, through_seq, n_records) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.pending.is_empty() {
                    break;
                }
                if !st.running {
                    return; // closed and drained
                }
                st = shared.work.wait(st).unwrap();
            }
            let buf = std::mem::take(&mut st.pending);
            let n = std::mem::replace(&mut st.pending_records, 0);
            let file = st.wal.clone().expect("durable: group WAL file missing");
            st.committing = true;
            (file, buf, st.appended_seq, n)
        };
        // Everything enqueued while the previous batch was being written
        // lands here in ONE write and (at most) ONE fsync: that
        // coalescing is the whole point of group commit.
        (&*file).write_all(&buf).expect("durable: group WAL append failed");
        if shared.fsync {
            file.sync_data().expect("durable: group WAL fsync failed");
            shared.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        shared.records.fetch_add(n_records, Ordering::Relaxed);
        shared.batches.fetch_add(1, Ordering::Relaxed);
        let mut st = shared.state.lock().unwrap();
        st.durable_seq = st.durable_seq.max(through_seq);
        st.committing = false;
        drop(st);
        shared.durable.notify_all();
    }
}

impl GroupWal {
    /// Open (or recover) the shared WAL under `dir` for the given streams.
    /// Knobs (`fsync`, checkpoint triggers, retention) come from `cfg`;
    /// `cfg.dir` is ignored in favor of the explicit group directory.
    ///
    /// Recovery mirrors [`NodeDurability::open_with`](crate::NodeDurability::open_with)
    /// (newest fully-valid snapshot generation, forward replay of every
    /// retained WAL, torn-tail truncation of the resumed WAL, journaled
    /// header overriding `policy`/`delta_budget`), except that one WAL
    /// scan demultiplexes records into all streams and a generation is
    /// valid only if *every* stream's snapshot loads.
    ///
    /// The returned replicas have **no sinks attached**; call
    /// [`GroupWal::attach`] per stream once runtime reconfiguration is
    /// done.
    pub fn open(
        cfg: &DurabilityConfig,
        dir: impl Into<PathBuf>,
        streams: &[StreamSpec],
        policy: ConflictPolicy,
        delta_budget: usize,
    ) -> Result<(Arc<GroupWal>, Vec<Replica>, GroupRecoveryReport)> {
        assert!(!streams.is_empty(), "durable: group WAL needs at least one stream");
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;

        // Newest generation whose snapshots ALL load and match their
        // specs wins; partial generations (a crash mid-checkpoint) and
        // corrupt ones fall back to older retained generations.
        let snap_map = list_group_snaps(&dir)?;
        let mut report = GroupRecoveryReport::default();
        let mut recovered: Option<Vec<Replica>> = None;
        let mut last_snap_err = None;
        for (&gen, by_stream) in snap_map.iter().rev() {
            match load_generation(by_stream, streams) {
                Ok(replicas) => {
                    report.generation = gen;
                    report.snapshots_loaded = replicas.len();
                    recovered = Some(replicas);
                    break;
                }
                Err(e) => last_snap_err = Some(e),
            }
        }
        if recovered.is_none() {
            if let Some(e) = last_snap_err {
                // Snapshots existed but no generation is whole: refuse
                // loudly rather than restart empty.
                return Err(e);
            }
        }

        let wal_gens = list_generations(&dir, "wal", ".log")?;
        let replay_from = if recovered.is_some() {
            report.generation
        } else {
            wal_gens.first().copied().unwrap_or(0)
        };
        let resume_gen =
            report.generation.max(wal_gens.last().copied().unwrap_or(report.generation));
        let mut header: Option<WalHeader> = None;
        let mut replay: Vec<Bytes> = Vec::new();
        let mut final_scan: Option<(PathBuf, usize, usize, u64)> = None;
        for &gen in wal_gens.iter().filter(|&&g| g >= replay_from) {
            let wal_file = wal_path(&dir, gen);
            let raw = fs::read(&wal_file).map_err(|e| io_err("read", &wal_file, e))?;
            let buf = Bytes::from(raw);
            let scan = read_frames(&buf);
            report.wal_bytes_truncated += scan.torn_bytes as u64;
            let mut records = 0u64;
            for body in &scan.bodies {
                if is_header(body) {
                    header = Some(decode_header(body)?);
                } else {
                    replay.push(body.clone());
                    records += 1;
                }
            }
            if gen == resume_gen {
                final_scan = Some((wal_file, scan.valid_len, scan.torn_bytes, records));
            }
        }

        let effective_policy = match (&recovered, header) {
            (None, Some(h)) => h.policy,
            _ => policy,
        };
        let mut replicas = match recovered {
            Some(r) => r,
            None => {
                report.generation = resume_gen;
                streams
                    .iter()
                    .map(|s| Replica::with_policy(s.id, s.n_nodes, s.n_items, effective_policy))
                    .collect()
            }
        };

        for body in &replay {
            let (stream, m) = decode_group_record(body, streams.len())?;
            if replicas[stream].replay_mutation(m).is_err() {
                report.replay_errors += 1;
            }
            report.wal_records_replayed += 1;
        }
        report.generation = resume_gen;

        let resumed_wal = wal_path(&dir, resume_gen);
        let (mut wal_bytes, mut wal_records) = (0u64, 0u64);
        if let Some((path, valid_len, torn, records)) = final_scan {
            if torn > 0 {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err("open", &path, e))?;
                f.set_len(valid_len as u64).map_err(|e| io_err("truncate", &path, e))?;
                f.sync_all().map_err(|e| io_err("fsync", &path, e))?;
            }
            wal_bytes = valid_len as u64;
            wal_records = records;
        }

        let effective = header
            .unwrap_or(WalHeader { policy: effective_policy, delta_budget: delta_budget as u64 });
        if effective.delta_budget > 0 {
            for r in &mut replicas {
                r.enable_delta(effective.delta_budget as usize);
            }
        }
        let header_frame = write_frame(&encode_header(&effective));

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&resumed_wal)
            .map_err(|e| io_err("open", &resumed_wal, e))?;
        if wal_bytes == 0 {
            (&wal).write_all(&header_frame).map_err(|e| io_err("write", &resumed_wal, e))?;
            wal.sync_data().map_err(|e| io_err("fsync", &resumed_wal, e))?;
            wal_bytes = header_frame.len() as u64;
        }

        for r in &replicas {
            r.check_invariants().map_err(Error::CorruptSnapshot)?;
        }

        let shared = Arc::new(Shared {
            dir,
            fsync: cfg.fsync,
            checkpoint_every: cfg.checkpoint_every,
            checkpoint_bytes: cfg.checkpoint_bytes,
            retain_generations: cfg.retain_generations.max(1),
            n_streams: streams.len(),
            state: Mutex::new(GroupState {
                wal: Some(Arc::new(wal)),
                pending: Vec::new(),
                pending_records: 0,
                appended_seq: 0,
                durable_seq: 0,
                committing: false,
                generation: resume_gen,
                wal_records,
                wal_bytes,
                running: true,
                header_frame,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            records: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        });
        let committer = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("epidb-group-commit".into())
                .spawn(move || committer_loop(&shared))
                .expect("durable: spawn group committer")
        };
        let wal = Arc::new(GroupWal { shared, committer: Mutex::new(Some(committer)) });
        Ok((wal, replicas, report))
    }

    /// Attach stream `stream`'s sink to its replica. Call after recovery
    /// and any runtime reconfiguration, with the same index the replica
    /// had in the `streams` slice passed to [`GroupWal::open`].
    pub fn attach(self: &Arc<Self>, stream: usize, replica: &mut Replica) {
        assert!(stream < self.shared.n_streams, "durable: stream {stream} out of range");
        replica.set_mutation_sink(Some(SinkHandle::new(Arc::new(GroupSink {
            shared: self.shared.clone(),
            stream: stream as u32,
        }))));
    }

    /// Block until every record enqueued before this call is durable
    /// (written, and fsynced when fsync is on). This is the
    /// acknowledgement gate: a mutation's response may be released only
    /// after `wait_durable` returns, which preserves acked-implies-durable
    /// while letting the committer batch fsyncs across concurrent writers.
    pub fn wait_durable(&self) {
        let mut st = self.shared.state.lock().unwrap();
        let target = st.appended_seq;
        while st.durable_seq < target {
            st = self.shared.durable.wait(st).unwrap();
        }
    }

    /// Commit-path counters (monotonic since open).
    pub fn stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            records: self.shared.records.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            fsyncs: self.shared.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// The current snapshot/WAL generation.
    pub fn generation(&self) -> u64 {
        self.shared.state.lock().unwrap().generation
    }

    /// Mutation records in the current WAL generation (incl. enqueued).
    pub fn wal_records(&self) -> u64 {
        self.shared.state.lock().unwrap().wal_records
    }

    /// Checkpoint if the shared WAL has reached the configured record
    /// count or byte size. Same caller contract as
    /// [`GroupWal::checkpoint`].
    pub fn maybe_checkpoint(&self, replicas: &[&Replica]) -> Result<bool> {
        let st = self.shared.state.lock().unwrap();
        let by_records =
            self.shared.checkpoint_every > 0 && st.wal_records >= self.shared.checkpoint_every;
        let by_bytes =
            self.shared.checkpoint_bytes > 0 && st.wal_bytes >= self.shared.checkpoint_bytes;
        if !by_records && !by_bytes {
            return Ok(false);
        }
        self.checkpoint_locked(st, replicas)?;
        Ok(true)
    }

    /// Checkpoint unconditionally: drain the commit queue, snapshot every
    /// stream, roll the shared WAL, prune per retention.
    ///
    /// `replicas` must be the group's streams **in stream order**, and the
    /// caller must hold whatever locks guard them (so no new records can
    /// be enqueued mid-checkpoint) — the same discipline as
    /// [`NodeDurability::checkpoint`](crate::NodeDurability::checkpoint),
    /// widened to all streams at once.
    pub fn checkpoint(&self, replicas: &[&Replica]) -> Result<()> {
        let st = self.shared.state.lock().unwrap();
        self.checkpoint_locked(st, replicas)
    }

    fn checkpoint_locked(
        &self,
        mut st: MutexGuard<'_, GroupState>,
        replicas: &[&Replica],
    ) -> Result<()> {
        assert_eq!(
            replicas.len(),
            self.shared.n_streams,
            "durable: checkpoint needs every stream's replica"
        );
        // Drain: let an in-flight batch land, then flush the remaining
        // queue ourselves so the old generation's WAL is complete before
        // the snapshots that supersede it are taken.
        while st.committing {
            st = self.shared.durable.wait(st).unwrap();
        }
        let old_path = wal_path(&self.shared.dir, st.generation);
        if !st.pending.is_empty() {
            let buf = std::mem::take(&mut st.pending);
            let n = std::mem::replace(&mut st.pending_records, 0);
            let file = st.wal.clone().expect("durable: group WAL file missing");
            (&*file).write_all(&buf).map_err(|e| io_err("write", &old_path, e))?;
            if self.shared.fsync {
                file.sync_data().map_err(|e| io_err("fsync", &old_path, e))?;
                self.shared.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            self.shared.records.fetch_add(n, Ordering::Relaxed);
            self.shared.batches.fetch_add(1, Ordering::Relaxed);
        }
        st.durable_seq = st.appended_seq;
        self.shared.durable.notify_all();

        let next = st.generation + 1;
        for (stream, replica) in replicas.iter().enumerate() {
            let snap = group_snap_path(&self.shared.dir, next, stream);
            atomic_write(&self.shared.dir, &snap, &write_frame(&replica.to_snapshot()))?;
        }

        let new_wal_path = wal_path(&self.shared.dir, next);
        let new_wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&new_wal_path)
            .map_err(|e| io_err("open", &new_wal_path, e))?;
        (&new_wal).write_all(&st.header_frame).map_err(|e| io_err("write", &new_wal_path, e))?;
        new_wal.sync_all().map_err(|e| io_err("fsync", &new_wal_path, e))?;
        fsync_dir(&self.shared.dir)?;

        st.generation = next;
        st.wal = Some(Arc::new(new_wal));
        st.wal_records = 0;
        st.wal_bytes = st.header_frame.len() as u64;

        // Prune only now, with the newer generation fully fsynced (same
        // retention rule as the per-replica WAL).
        let keep_from = next.saturating_sub(self.shared.retain_generations.max(1) as u64 - 1);
        let snap_map = list_group_snaps(&self.shared.dir)?;
        for (&gen, by_stream) in &snap_map {
            if gen < keep_from {
                for path in by_stream.values() {
                    let _ = fs::remove_file(path);
                }
            }
        }
        for gen in list_generations(&self.shared.dir, "wal", ".log")? {
            if gen < keep_from {
                let _ = fs::remove_file(wal_path(&self.shared.dir, gen));
            }
        }
        Ok(())
    }

    /// Flush the queue and stop the committer. Idempotent; called by
    /// `Drop`. Records enqueued before `close` are written (and fsynced,
    /// if configured) before the committer exits; enqueueing after is a
    /// contract violation and panics.
    pub fn close(&self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.running = false;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.committer.lock().unwrap().take() {
            let _ = h.join();
        }
        self.shared.state.lock().unwrap().wal = None;
    }
}

impl Drop for GroupWal {
    fn drop(&mut self) {
        self.close();
    }
}

/// Load one full generation: every stream's snapshot must be present,
/// load cleanly, and match its spec.
fn load_generation(
    by_stream: &BTreeMap<usize, PathBuf>,
    streams: &[StreamSpec],
) -> Result<Vec<Replica>> {
    let mut replicas = Vec::with_capacity(streams.len());
    for (stream, spec) in streams.iter().enumerate() {
        let Some(path) = by_stream.get(&stream) else {
            return Err(Error::CorruptSnapshot(format!(
                "group snapshot generation is missing stream {stream}"
            )));
        };
        let replica = load_snapshot(path)?;
        if replica.id() != spec.id
            || replica.n_nodes() != spec.n_nodes
            || replica.n_items() != spec.n_items
        {
            return Err(Error::CorruptSnapshot(format!(
                "stream {stream} snapshot is for node {} ({} nodes, {} items), expected node {} \
                 ({} nodes, {} items)",
                replica.id(),
                replica.n_nodes(),
                replica.n_items(),
                spec.id,
                spec.n_nodes,
                spec.n_items,
            )));
        }
        replicas.push(replica);
    }
    Ok(replicas)
}

/// Decode one CRC-verified group record body: tag, stream index, mutation.
fn decode_group_record(body: &Bytes, n_streams: usize) -> Result<(usize, Mutation)> {
    let corrupt = |what: String| {
        Error::CorruptSnapshot(format!("group WAL record ({} bytes): {what}", body.len()))
    };
    let mut r = Reader::shared(body);
    let tag = r.u8().map_err(|e| corrupt(e.to_string()))?;
    if tag != GROUP_RECORD_TAG {
        return Err(corrupt(format!("bad tag {tag:#x}")));
    }
    let stream = r.u32().map_err(|e| corrupt(e.to_string()))? as usize;
    if stream >= n_streams {
        return Err(corrupt(format!("stream {stream} out of range ({n_streams} streams)")));
    }
    let m = get_mutation(&mut r).map_err(|e| corrupt(e.to_string()))?;
    if r.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes after mutation", r.remaining())));
    }
    Ok((stream, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdir::TempDir;
    use epidb_common::ItemId;
    use epidb_store::UpdateOp;
    use epidb_vv::VvOrd;

    const N_NODES: usize = 3;

    fn specs() -> Vec<StreamSpec> {
        vec![
            StreamSpec { id: NodeId(0), n_nodes: N_NODES, n_items: 8 },
            StreamSpec { id: NodeId(0), n_nodes: N_NODES, n_items: 4 },
        ]
    }

    fn open(cfg: &DurabilityConfig) -> (Arc<GroupWal>, Vec<Replica>, GroupRecoveryReport) {
        let (wal, mut replicas, report) =
            GroupWal::open(cfg, cfg.dir.join("group"), &specs(), ConflictPolicy::Report, 1 << 16)
                .unwrap();
        for (k, r) in replicas.iter_mut().enumerate() {
            wal.attach(k, r);
        }
        (wal, replicas, report)
    }

    fn assert_same_state(a: &Replica, b: &Replica) {
        assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
        for x in ItemId::all(a.n_items()) {
            assert_eq!(a.read(x).unwrap(), b.read(x).unwrap());
        }
    }

    #[test]
    fn interleaved_streams_recover_independently() {
        let tmp = TempDir::new("group-wal");
        let mut cfg = DurabilityConfig::new(tmp.path());
        cfg.checkpoint_every = 0; // no checkpoint: pure WAL replay
        cfg.fsync = true;
        let (wal, mut replicas, report) = open(&cfg);
        assert_eq!(report.snapshots_loaded, 0);
        for i in 0..6u64 {
            let stream = (i % 2) as usize;
            let item = ItemId((i / 2) as u32);
            replicas[stream].update(item, UpdateOp::set(format!("v{i}").into_bytes())).unwrap();
            wal.wait_durable();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 6);
        assert!(stats.batches <= stats.records);
        assert!(stats.fsyncs <= stats.batches);
        drop(wal);

        let (_wal2, recovered, report) = open(&cfg);
        assert_eq!(report.wal_records_replayed, 6);
        assert_eq!(report.replay_errors, 0);
        assert_same_state(&recovered[0], &replicas[0]);
        assert_same_state(&recovered[1], &replicas[1]);
    }

    #[test]
    fn checkpoint_rolls_all_streams_and_replays_tail() {
        let tmp = TempDir::new("group-ckpt");
        let mut cfg = DurabilityConfig::new(tmp.path());
        cfg.checkpoint_every = 0;
        cfg.retain_generations = 2;
        let (wal, mut replicas, _) = open(&cfg);
        replicas[0].update(ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
        replicas[1].update(ItemId(1), UpdateOp::set(&b"b"[..])).unwrap();
        wal.wait_durable();
        {
            let refs: Vec<&Replica> = replicas.iter().collect();
            wal.checkpoint(&refs).unwrap();
        }
        assert_eq!(wal.generation(), 1);
        // Post-checkpoint mutations land in the new generation's WAL.
        replicas[0].update(ItemId(2), UpdateOp::set(&b"c"[..])).unwrap();
        wal.wait_durable();
        drop(wal);

        let (_wal2, recovered, report) = open(&cfg);
        assert_eq!(report.generation, 1);
        assert_eq!(report.snapshots_loaded, 2);
        assert_eq!(report.wal_records_replayed, 1);
        assert_same_state(&recovered[0], &replicas[0]);
        assert_same_state(&recovered[1], &replicas[1]);
    }

    #[test]
    fn torn_tail_recovers_clean_prefix() {
        let tmp = TempDir::new("group-torn");
        let mut cfg = DurabilityConfig::new(tmp.path());
        cfg.checkpoint_every = 0;
        let (wal, mut replicas, _) = open(&cfg);
        replicas[0].update(ItemId(0), UpdateOp::set(&b"keep"[..])).unwrap();
        replicas[1].update(ItemId(0), UpdateOp::set(&b"torn"[..])).unwrap();
        wal.wait_durable();
        drop(wal);

        // Tear mid-record: shave bytes off the WAL tail.
        let path = wal_path(&cfg.dir.join("group"), 0);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (_wal2, recovered, report) = open(&cfg);
        assert_eq!(report.wal_records_replayed, 1);
        assert!(report.wal_bytes_truncated > 0);
        assert_same_state(&recovered[0], &replicas[0]);
        // Stream 1's torn record is gone: back to the initial value.
        let fresh = Replica::with_policy(NodeId(0), N_NODES, 4, ConflictPolicy::Report);
        assert_eq!(recovered[1].read(ItemId(0)).unwrap(), fresh.read(ItemId(0)).unwrap());
    }

    #[test]
    fn byte_trigger_checkpoints_via_maybe() {
        let tmp = TempDir::new("group-bytes");
        let mut cfg = DurabilityConfig::new(tmp.path());
        cfg.checkpoint_every = 0;
        cfg.checkpoint_bytes = 64;
        let (wal, mut replicas, _) = open(&cfg);
        replicas[0].update(ItemId(0), UpdateOp::set(vec![7u8; 200])).unwrap();
        wal.wait_durable();
        let refs: Vec<&Replica> = replicas.iter().collect();
        assert!(wal.maybe_checkpoint(&refs).unwrap());
        assert_eq!(wal.generation(), 1);
        assert!(!wal.maybe_checkpoint(&refs).unwrap());
    }
}
