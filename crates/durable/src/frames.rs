//! The on-disk frame format shared by the WAL and the snapshot file:
//! `len: u32 LE | crc: u32 LE | body`, the PR 4 checked-envelope layout.
//!
//! Framing decides what a reader may trust. Length and CRC checks classify
//! every possible tail state of an append-only file: a frame that fails
//! them is a torn write (clean truncation point); a frame that passes them
//! but fails to decode is genuine corruption (typed error, never silent).

use bytes::Bytes;
use epidb_core::codec::crc32;

/// Bytes of frame header preceding each body (`len` + `crc`).
pub const WAL_FRAME_HEADER: usize = 8;

/// Upper bound on a single frame body; anything larger is treated as a
/// torn/garbage length rather than an allocation request.
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// Frame `body` for appending to a WAL or snapshot file.
pub fn write_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_FRAME_HEADER + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// The result of scanning a frame sequence from byte 0.
#[derive(Debug)]
pub struct FrameScan {
    /// Every frame body that passed its length and CRC checks, in order.
    /// Sub-views of the scanned buffer (refcount bumps, not copies).
    pub bodies: Vec<Bytes>,
    /// Byte length of the valid prefix; everything past it is a torn tail.
    pub valid_len: usize,
    /// Bytes past the valid prefix (0 for a cleanly closed file).
    pub torn_bytes: usize,
}

/// Scan `buf` as a sequence of frames, stopping at the first frame that
/// fails its length or CRC check (the torn-tail rule). Never errors and
/// never panics: any truncation of a valid file produces a valid prefix.
pub fn read_frames(buf: &Bytes) -> FrameScan {
    let mut bodies = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = buf.len() - pos;
        if rest < WAL_FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_BODY || rest - WAL_FRAME_HEADER < len {
            break; // torn or garbage length
        }
        let body_start = pos + WAL_FRAME_HEADER;
        let body = &buf[body_start..body_start + len];
        if crc32(body) != crc {
            break; // torn or corrupt body
        }
        bodies.push(buf.slice(body_start..body_start + len));
        pos = body_start + len;
    }
    FrameScan { bodies, valid_len: pos, torn_bytes: buf.len() - pos }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_every_truncation_is_a_valid_prefix() {
        let mut file = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize * 7]).collect();
        let mut frame_ends = vec![0usize];
        for p in &payloads {
            file.extend_from_slice(&write_frame(p));
            frame_ends.push(file.len());
        }

        // Full file: all frames back, no torn bytes.
        let scan = read_frames(&Bytes::from(file.clone()));
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, file.len());
        assert_eq!(scan.bodies.len(), payloads.len());
        for (body, p) in scan.bodies.iter().zip(&payloads) {
            assert_eq!(&body[..], &p[..]);
        }

        // Every possible truncation point: the scan recovers exactly the
        // frames wholly contained in the prefix.
        for cut in 0..=file.len() {
            let scan = read_frames(&Bytes::from(file[..cut].to_vec()));
            let complete = frame_ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(scan.bodies.len(), complete, "cut at {cut}");
            assert_eq!(scan.valid_len, frame_ends[complete], "cut at {cut}");
            assert_eq!(scan.torn_bytes, cut - frame_ends[complete]);
        }
    }

    #[test]
    fn corrupt_interior_frame_truncates_there() {
        let mut file = Vec::new();
        for i in 0..3u8 {
            file.extend_from_slice(&write_frame(&[i; 16]));
        }
        let first_end = WAL_FRAME_HEADER + 16;
        file[first_end + WAL_FRAME_HEADER + 3] ^= 0xFF; // flip a bit in frame 2's body
        let scan = read_frames(&Bytes::from(file));
        assert_eq!(scan.bodies.len(), 1);
        assert_eq!(scan.valid_len, first_end);
    }

    #[test]
    fn garbage_length_does_not_allocate_or_panic() {
        let mut file = write_frame(b"ok");
        file.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        file.extend_from_slice(&[0xAA; 12]);
        let scan = read_frames(&Bytes::from(file));
        assert_eq!(scan.bodies.len(), 1);
    }
}
