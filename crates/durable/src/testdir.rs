//! Throwaway on-disk directories for tests and harnesses (no external
//! tempfile crate in this build environment).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A freshly created unique directory under the system temp dir. The
/// caller owns cleanup; [`TempDir`] does it automatically.
pub fn fresh_dir(label: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("epidb-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A unique temp directory removed on drop.
#[derive(Debug)]
pub struct TempDir(PathBuf);

impl TempDir {
    /// Create a fresh directory labelled `label`.
    pub fn new(label: &str) -> TempDir {
        TempDir(fresh_dir(label))
    }

    /// The directory path.
    pub fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
