//! Grounds the model checker's crash semantics against real disk
//! recovery: `crash_recovered_twin` (pure in-memory snapshot round-trip)
//! must produce the same replica state — by canonical fingerprint — that
//! `NodeDurability::open` reconstructs from the WAL/snapshot files after
//! an actual crash.

use std::sync::Arc;

use epidb_common::{ItemId, NodeId};
use epidb_core::{oob_copy, pull, pull_delta, ConflictPolicy, Replica};
use epidb_durable::testdir::TempDir;
use epidb_durable::{crash_recovered_twin, DurabilityConfig, NodeDurability};
use epidb_store::UpdateOp;

const N_NODES: usize = 3;
const N_ITEMS: usize = 12;
const DELTA_BUDGET: usize = 1 << 16;

fn open(cfg: &DurabilityConfig, id: NodeId) -> (Arc<NodeDurability>, Replica) {
    let (d, mut r, _) =
        NodeDurability::open_with(cfg, id, N_NODES, N_ITEMS, ConflictPolicy::Report, DELTA_BUDGET)
            .unwrap();
    d.attach(&mut r);
    (d, r)
}

/// Every mutation kind the WAL journals: whole-item pulls, delta pulls,
/// local updates, OOB adoption, and auxiliary updates.
fn mixed_workload(node: &mut Replica) {
    let mut peer = Replica::new(NodeId(0), N_NODES, N_ITEMS);
    peer.enable_delta(DELTA_BUDGET);
    peer.update(ItemId(0), UpdateOp::set(vec![1u8; 400])).unwrap();
    peer.update(ItemId(1), UpdateOp::set(&b"one"[..])).unwrap();
    pull(node, &mut peer).unwrap();
    node.update(ItemId(2), UpdateOp::set(&b"mine"[..])).unwrap();
    peer.update(ItemId(0), UpdateOp::append(&b"+edit"[..])).unwrap();
    pull_delta(node, &mut peer).unwrap();
    peer.update(ItemId(3), UpdateOp::set(&b"oob-val"[..])).unwrap();
    oob_copy(node, &mut peer, ItemId(3)).unwrap();
    node.update(ItemId(3), UpdateOp::append(&b"+aux"[..])).unwrap();
}

#[test]
fn crash_twin_matches_disk_recovery() {
    let tmp = TempDir::new("crash-twin");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node) = open(&cfg, NodeId(1));
    mixed_workload(&mut node);
    // Checkpoint so the recovered op cache is cold, matching the twin's
    // deliberate approximation (see `crash_recovered_twin`'s docs).
    d.checkpoint(&node).unwrap();

    let twin = crash_recovered_twin(&node, DELTA_BUDGET).unwrap();
    drop(d);
    drop(node); // the crash

    let (_d2, recovered) = open(&cfg, NodeId(1));
    assert_eq!(
        twin.fingerprint(),
        recovered.fingerprint(),
        "crash twin diverged from real disk recovery"
    );
    assert!(twin.is_restored() && recovered.is_restored());
    recovered.check_invariants().unwrap();
}

#[test]
fn crash_twin_loses_exactly_the_ephemeral_state() {
    let tmp = TempDir::new("crash-twin-ephemeral");
    let cfg = DurabilityConfig::new(tmp.path());
    let (_d, mut node) = open(&cfg, NodeId(1));
    mixed_workload(&mut node);

    let twin = crash_recovered_twin(&node, DELTA_BUDGET).unwrap();
    // Durable content is intact...
    for x in ItemId::all(N_ITEMS) {
        assert_eq!(node.read(x).unwrap(), twin.read(x).unwrap());
        assert_eq!(node.item_ivv(x).unwrap(), twin.item_ivv(x).unwrap());
    }
    assert_eq!(node.aux_item_count(), twin.aux_item_count());
    // ...while ephemeral accounting reset.
    assert_eq!(twin.costs().messages_sent, 0);
    assert!(twin.op_cache().is_empty());
    assert!(twin.op_cache().is_enabled(), "config is reapplied on restart");
}

#[test]
fn crash_twin_matches_wal_replay_recovery() {
    // No checkpoint: real recovery is pure WAL replay. It is still
    // cache-cold (`open_with` enables the delta cache only after replay),
    // so the twin must match it exactly too.
    let tmp = TempDir::new("crash-twin-replay");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node) = open(&cfg, NodeId(1));
    mixed_workload(&mut node);

    let twin = crash_recovered_twin(&node, DELTA_BUDGET).unwrap();
    drop(d);
    drop(node);

    let (_d2, recovered) = open(&cfg, NodeId(1));
    assert!(recovered.op_cache().is_empty(), "replayed updates cache nothing");
    // Pure WAL replay rebuilds state through the normal update path rather
    // than a snapshot load, so `restored` is false there and true on the
    // twin — the one (deliberate) fingerprint divergence. Everything else
    // must agree: identical durable bytes, and identical fingerprints once
    // the recovered node passes through the same snapshot round-trip.
    assert!(twin.is_restored() && !recovered.is_restored());
    assert_eq!(twin.to_snapshot(), recovered.to_snapshot());
    let renormalized = crash_recovered_twin(&recovered, DELTA_BUDGET).unwrap();
    assert_eq!(twin.fingerprint(), renormalized.fingerprint());
}
