//! Crash-recovery tests for the durability layer: WAL replay, checkpoint
//! rotation, torn-tail truncation at every byte offset, and corruption
//! fallback.

use std::fs;
use std::sync::Arc;

use epidb_common::{Error, ItemId, NodeId};
use epidb_core::{oob_copy, pull, pull_delta, ConflictPolicy, Replica};
use epidb_durable::testdir::TempDir;
use epidb_durable::{DurabilityConfig, NodeDurability};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;

const N_NODES: usize = 3;
const N_ITEMS: usize = 12;

fn open(
    cfg: &DurabilityConfig,
    id: NodeId,
) -> (Arc<NodeDurability>, Replica, epidb_durable::RecoveryReport) {
    let (d, mut r, report) =
        NodeDurability::open(cfg, id, N_NODES, N_ITEMS, ConflictPolicy::Report).unwrap();
    r.enable_delta(1 << 16);
    r.set_paranoid(true);
    d.attach(&mut r);
    (d, r, report)
}

fn assert_same_state(a: &Replica, b: &Replica) {
    assert_eq!(a.dbvv().compare(b.dbvv()), VvOrd::Equal);
    for x in ItemId::all(a.n_items()) {
        assert_eq!(a.read(x).unwrap(), b.read(x).unwrap());
        assert_eq!(a.item_ivv(x).unwrap(), b.item_ivv(x).unwrap());
    }
    assert_eq!(a.aux_item_count(), b.aux_item_count());
    assert_eq!(a.aux_log().len(), b.aux_log().len());
}

/// Drive a peer and the durable node through every mutation kind; return
/// the peer for later comparison.
fn mixed_workload(node: &mut Replica) -> Replica {
    let mut peer = Replica::new(NodeId(0), N_NODES, N_ITEMS);
    peer.enable_delta(1 << 16);
    peer.update(ItemId(0), UpdateOp::set(vec![1u8; 400])).unwrap();
    peer.update(ItemId(1), UpdateOp::set(&b"one"[..])).unwrap();
    pull(node, &mut peer).unwrap();
    node.update(ItemId(2), UpdateOp::set(&b"mine"[..])).unwrap();
    peer.update(ItemId(0), UpdateOp::append(&b"+edit"[..])).unwrap();
    pull_delta(node, &mut peer).unwrap();
    peer.update(ItemId(3), UpdateOp::set(&b"oob-val"[..])).unwrap();
    oob_copy(node, &mut peer, ItemId(3)).unwrap();
    node.update(ItemId(3), UpdateOp::append(&b"+aux"[..])).unwrap();
    peer
}

#[test]
fn wal_replay_recovers_every_mutation_kind() {
    let tmp = TempDir::new("wal-replay");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node, report) = open(&cfg, NodeId(1));
    assert_eq!(report, epidb_durable::RecoveryReport::default());
    let _peer = mixed_workload(&mut node);
    assert_eq!(d.wal_records(), 5, "one record per entry-point call");
    drop(d); // crash: in-memory replica is simply gone

    let (_d2, recovered, report) = open(&cfg, NodeId(1));
    assert!(!report.snapshot_loaded, "no checkpoint ran; pure WAL replay");
    assert_eq!(report.wal_records_replayed, 5);
    assert_eq!(report.replay_errors, 0);
    assert_eq!(report.wal_bytes_truncated, 0);
    assert_same_state(&node, &recovered);
    recovered.check_invariants().unwrap();
}

#[test]
fn recon_pull_and_coverage_floor_survive_crash_recovery() {
    // A compacted peer forces the durable node down the degradation
    // ladder (NeedRecon → digest descent); the committed reconciliation
    // journals as one `Mutation::Recon` frame carrying the adopted items,
    // their retained records, and the inherited coverage floor — all of
    // which must replay to the identical state after a crash.
    let tmp = TempDir::new("recon-replay");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node, _) = open(&cfg, NodeId(1));

    let mut peer = Replica::new(NodeId(0), N_NODES, N_ITEMS);
    for x in 0..6u32 {
        peer.update(ItemId(x), UpdateOp::set(vec![x as u8; 32])).unwrap();
    }
    pull(&mut node, &mut peer).unwrap();
    node.update(ItemId(2), UpdateOp::set(&b"mine"[..])).unwrap();

    // The peer compacts its log and moves on — its floor climbs past the
    // node's coverage, so a plain pull must reconcile instead.
    peer.set_log_retention(1);
    for x in [0u32, 4] {
        peer.update(ItemId(x), UpdateOp::append(&b"+late"[..])).unwrap();
        peer.update(ItemId(x), UpdateOp::append(&b"+later"[..])).unwrap();
    }
    assert!(peer.coverage_floor()[0] > 0, "compaction raised the peer's floor");
    let wal_before = d.wal_records();
    let out = pull(&mut node, &mut peer).unwrap();
    assert!(matches!(out, epidb_core::PullOutcome::Propagated(_)));
    assert!(node.coverage_floor()[0] >= peer.coverage_floor()[0] - 1);
    assert!(d.wal_records() > wal_before, "the reconciliation was journaled");
    drop(d); // crash

    let (_d2, recovered, report) = open(&cfg, NodeId(1));
    assert_eq!(report.replay_errors, 0);
    assert_same_state(&node, &recovered);
    assert_eq!(node.coverage_floor(), recovered.coverage_floor(), "floor replayed");
    for k in NodeId::all(N_NODES) {
        for x in ItemId::all(N_ITEMS) {
            assert_eq!(
                node.log().retained(k, x),
                recovered.log().retained(k, x),
                "retained record for origin {k:?} item {x:?} replayed"
            );
        }
    }
    recovered.check_invariants().unwrap();
}

#[test]
fn checkpoint_rotates_generations_and_recovery_uses_snapshot() {
    let tmp = TempDir::new("checkpoint");
    let cfg = DurabilityConfig { checkpoint_every: 4, ..DurabilityConfig::new(tmp.path()) };
    let (d, mut node, _) = open(&cfg, NodeId(1));
    let mut peer = mixed_workload(&mut node);
    assert!(d.maybe_checkpoint(&node).unwrap(), "past the record threshold");
    assert_eq!(d.generation(), 1);
    assert_eq!(d.wal_records(), 0);

    // Post-checkpoint mutations land in the new WAL generation.
    peer.update(ItemId(5), UpdateOp::set(&b"after-ckpt"[..])).unwrap();
    pull(&mut node, &mut peer).unwrap();

    // Old generation files are gone; new ones exist.
    let node_dir = cfg.node_dir(NodeId(1));
    let names: Vec<String> = fs::read_dir(&node_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.contains(&"snap-1.epdb".to_string()), "{names:?}");
    assert!(names.contains(&"wal-1.log".to_string()), "{names:?}");
    assert!(!names.contains(&"wal-0.log".to_string()), "{names:?}");

    drop(d);
    let (_d2, recovered, report) = open(&cfg, NodeId(1));
    assert!(report.snapshot_loaded);
    assert_eq!(report.generation, 1);
    assert_eq!(report.wal_records_replayed, 1);
    assert_same_state(&node, &recovered);
}

/// The acceptance criterion: truncate the WAL at every byte offset; each
/// cut must recover a clean valid prefix — no panic, no error, no silently
/// wrong state — and the recovered replica must pass full invariants.
#[test]
fn torn_wal_tail_recovers_a_valid_prefix_at_every_byte_offset() {
    let tmp = TempDir::new("torn-tail");
    let cfg = DurabilityConfig::new(tmp.path());
    let (_d, mut node, _) = open(&cfg, NodeId(1));
    let _peer = mixed_workload(&mut node);

    let wal_file = cfg.node_dir(NodeId(1)).join("wal-0.log");
    let full = fs::read(&wal_file).unwrap();
    assert!(full.len() > 100, "workload should produce a non-trivial WAL");

    // Ground truth: the byte offset at which each frame ends.
    let scan = epidb_durable::read_frames(&bytes::Bytes::from(full.clone()));
    assert_eq!(scan.torn_bytes, 0);
    let mut frame_ends = vec![0u64];
    let mut pos = 0u64;
    for body in &scan.bodies {
        pos += epidb_durable::WAL_FRAME_HEADER as u64 + body.len() as u64;
        frame_ends.push(pos);
    }

    for cut in 0..=full.len() {
        let case = TempDir::new("torn-cut");
        let case_cfg = DurabilityConfig::new(case.path());
        let node_dir = case_cfg.node_dir(NodeId(1));
        fs::create_dir_all(&node_dir).unwrap();
        fs::write(node_dir.join("wal-0.log"), &full[..cut]).unwrap();

        let (_d, recovered, report) = open(&case_cfg, NodeId(1));
        recovered.check_invariants().unwrap();
        // Exactly the frames wholly inside the cut are replayed; the rest
        // is truncated as a torn tail. The first frame is the header
        // record (configuration, not state), so replayed mutations lag
        // the complete-frame count by one.
        let complete = frame_ends.iter().filter(|&&e| e <= cut as u64).count() as u64 - 1;
        assert_eq!(report.wal_records_replayed, complete.saturating_sub(1), "cut at {cut}");
        assert_eq!(report.replay_errors, 0, "cut at {cut}");
        assert_eq!(
            report.wal_bytes_truncated,
            cut as u64 - frame_ends[complete as usize],
            "cut at {cut}"
        );
    }
    assert_eq!(scan.bodies.len(), 6, "the header plus one frame per entry-point call");
}

#[test]
fn torn_tail_is_truncated_once_and_appends_continue() {
    let tmp = TempDir::new("torn-append");
    let cfg = DurabilityConfig::new(tmp.path());
    let (_d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"a"[..])).unwrap();
    node.update(ItemId(1), UpdateOp::set(&b"b"[..])).unwrap();
    drop(_d);

    // Tear the tail: chop 3 bytes off the last frame.
    let wal_file = cfg.node_dir(NodeId(1)).join("wal-0.log");
    let full = fs::read(&wal_file).unwrap();
    fs::write(&wal_file, &full[..full.len() - 3]).unwrap();

    let (_d2, mut recovered, report) = open(&cfg, NodeId(1));
    assert_eq!(report.wal_records_replayed, 1);
    assert!(report.wal_bytes_truncated > 0);
    assert_eq!(recovered.read(ItemId(0)).unwrap().as_bytes(), b"a");
    assert_eq!(recovered.read(ItemId(1)).unwrap().as_bytes(), b"");

    // New mutations append cleanly after the truncation point.
    recovered.update(ItemId(2), UpdateOp::set(&b"c"[..])).unwrap();
    drop(_d2);
    let (_d3, again, report) = open(&cfg, NodeId(1));
    assert_eq!(report.wal_records_replayed, 2);
    assert_eq!(report.wal_bytes_truncated, 0);
    assert_eq!(again.read(ItemId(2)).unwrap().as_bytes(), b"c");
}

#[test]
fn corrupt_wal_interior_with_valid_crc_is_a_typed_error() {
    let tmp = TempDir::new("wal-decode");
    let cfg = DurabilityConfig::new(tmp.path());
    let (_d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"x"[..])).unwrap();
    drop(_d);

    // Craft a frame whose CRC verifies but whose body is not a mutation:
    // that cannot be a torn write, so it must be typed corruption.
    let wal_file = cfg.node_dir(NodeId(1)).join("wal-0.log");
    let mut full = fs::read(&wal_file).unwrap();
    full.extend_from_slice(&epidb_durable::write_frame(&[0xEE; 10]));
    fs::write(&wal_file, &full).unwrap();

    let err = NodeDurability::open(&cfg, NodeId(1), N_NODES, N_ITEMS, ConflictPolicy::Report)
        .unwrap_err();
    assert!(matches!(err, Error::CorruptSnapshot(_)), "got {err:?}");
    assert!(!err.is_retryable());
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
    let tmp = TempDir::new("snap-fallback");
    let cfg = DurabilityConfig { checkpoint_every: 1, ..DurabilityConfig::new(tmp.path()) };
    let (d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"gen1"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    node.update(ItemId(1), UpdateOp::set(&b"gen2"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    assert_eq!(d.generation(), 2);
    drop(d);

    // Keep a stale copy of generation 1 around (as a crash mid-rotation
    // would), then corrupt generation 2.
    let node_dir = cfg.node_dir(NodeId(1));
    let snap2 = node_dir.join("snap-2.epdb");
    let gen2 = fs::read(&snap2).unwrap();
    fs::write(node_dir.join("snap-1.epdb"), {
        // Re-create gen 1 content by recovering to gen 2 state minus the
        // second update is impossible; instead snapshot the current state
        // into gen 1's slot — the point is fallback order, not content.
        gen2.clone()
    })
    .unwrap();
    let mut broken = gen2;
    let mid = broken.len() / 2;
    broken[mid] ^= 0xFF;
    fs::write(&snap2, &broken).unwrap();

    let (_d2, recovered, report) = open(&cfg, NodeId(1));
    assert!(report.snapshot_loaded);
    assert_eq!(report.snapshot_generation, 1, "fell back past the corrupt newest snapshot");
    assert_eq!(report.generation, 2, "but resumed appending to the newest WAL generation");
    assert_eq!(recovered.read(ItemId(0)).unwrap().as_bytes(), b"gen1");
}

#[test]
fn all_snapshots_corrupt_is_a_typed_error_not_a_silent_fresh_start() {
    let tmp = TempDir::new("snap-all-bad");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    drop(d);

    let snap = cfg.node_dir(NodeId(1)).join("snap-1.epdb");
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&snap, &bytes).unwrap();

    let err = NodeDurability::open(&cfg, NodeId(1), N_NODES, N_ITEMS, ConflictPolicy::Report)
        .unwrap_err();
    assert!(matches!(err, Error::CorruptSnapshot(_)), "got {err:?}");
}

#[test]
fn recovered_state_for_wrong_topology_is_rejected() {
    let tmp = TempDir::new("topology");
    let cfg = DurabilityConfig::new(tmp.path());
    let (d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    drop(d);

    let err = NodeDurability::open(&cfg, NodeId(1), N_NODES + 1, N_ITEMS, ConflictPolicy::Report)
        .unwrap_err();
    assert!(matches!(err, Error::CorruptSnapshot(_)), "got {err:?}");
}

#[test]
fn retained_generations_survive_loss_of_the_newest_snapshot() {
    let tmp = TempDir::new("retain");
    let cfg = DurabilityConfig { retain_generations: 2, ..DurabilityConfig::new(tmp.path()) };
    let (d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(&b"one"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    node.update(ItemId(1), UpdateOp::set(&b"two"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    node.update(ItemId(2), UpdateOp::set(&b"three"[..])).unwrap();
    d.checkpoint(&node).unwrap();
    node.update(ItemId(3), UpdateOp::set(&b"tail"[..])).unwrap();
    drop(d);

    // Retention keeps generations 2 and 3 (and their WALs); 1 is pruned.
    let node_dir = cfg.node_dir(NodeId(1));
    assert!(!node_dir.join("snap-1.epdb").exists());
    assert!(node_dir.join("snap-2.epdb").exists() && node_dir.join("wal-2.log").exists());
    assert!(node_dir.join("snap-3.epdb").exists() && node_dir.join("wal-3.log").exists());

    // Lose the newest snapshot entirely: recovery falls back to gen 2 and
    // replays WALs 2 and 3 forward to the identical state.
    fs::remove_file(node_dir.join("snap-3.epdb")).unwrap();
    let (_d2, recovered, report) = open(&cfg, NodeId(1));
    assert_eq!(report.snapshot_generation, 2);
    assert_eq!(report.generation, 3);
    assert_eq!(report.wal_records_replayed, 2, "wal-2's record plus wal-3's");
    assert_same_state(&node, &recovered);
}

#[test]
fn byte_trigger_checkpoints_before_record_trigger() {
    let tmp = TempDir::new("bytes-trigger");
    let cfg = DurabilityConfig {
        checkpoint_every: 1_000_000,
        checkpoint_bytes: 256,
        ..DurabilityConfig::new(tmp.path())
    };
    let (d, mut node, _) = open(&cfg, NodeId(1));
    node.update(ItemId(0), UpdateOp::set(vec![9u8; 512])).unwrap();
    assert!(d.maybe_checkpoint(&node).unwrap(), "512-byte record crosses the 256-byte bound");
    assert_eq!(d.generation(), 1);
    node.update(ItemId(1), UpdateOp::set(&b"small"[..])).unwrap();
    assert!(!d.maybe_checkpoint(&node).unwrap(), "small record stays under both triggers");
}

#[test]
fn journaled_header_makes_recovery_config_free() {
    let tmp = TempDir::new("header");
    let cfg = DurabilityConfig::new(tmp.path());
    {
        let (d, mut node, _) = NodeDurability::open_with(
            &cfg,
            NodeId(1),
            N_NODES,
            N_ITEMS,
            ConflictPolicy::ResolveLww,
            1 << 16,
        )
        .unwrap();
        assert!(node.op_cache().is_enabled());
        d.attach(&mut node);
        node.update(ItemId(0), UpdateOp::set(&b"v"[..])).unwrap();
    }
    // Reopen with *different* arguments: the journaled header wins, so the
    // node comes back LWW with its delta cache enabled — no snapshot was
    // ever taken, yet no out-of-band configuration is needed.
    let (_d2, recovered, report) =
        NodeDurability::open(&cfg, NodeId(1), N_NODES, N_ITEMS, ConflictPolicy::Report).unwrap();
    assert!(!report.snapshot_loaded);
    assert_eq!(report.wal_records_replayed, 1);
    assert_eq!(recovered.policy(), ConflictPolicy::ResolveLww);
    assert!(recovered.op_cache().is_enabled());
}

#[test]
fn fsync_mode_roundtrips() {
    let tmp = TempDir::new("fsync");
    let cfg = DurabilityConfig { fsync: true, ..DurabilityConfig::new(tmp.path()) };
    let (_d, mut node, _) = open(&cfg, NodeId(2));
    node.update(ItemId(4), UpdateOp::set(&b"synced"[..])).unwrap();
    drop(_d);
    let (_d2, recovered, _) = open(&cfg, NodeId(2));
    assert_eq!(recovered.read(ItemId(4)).unwrap().as_bytes(), b"synced");
}
