//! Torn-batch recovery for the group-commit WAL.
//!
//! Group commit batches many streams' records into single write+fsync
//! rounds, so a crash can tear the shared WAL *inside* a batch — between
//! any two frames, or mid-frame. Write-ahead must survive the batching:
//! truncating the WAL at **every byte offset** has to recover exactly the
//! clean prefix of the interleaved record stream, demultiplexed to the
//! right replicas, matching a twin world that applied just those
//! mutations and never crashed.

use bytes::Bytes;
use epidb_common::{ItemId, NodeId};
use epidb_core::{ConflictPolicy, Replica};
use epidb_durable::testdir::TempDir;
use epidb_durable::{read_frames, DurabilityConfig, GroupWal, StreamSpec};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;

const N_NODES: usize = 2;
const N_ITEMS: usize = 8;

fn specs() -> Vec<StreamSpec> {
    (0..N_NODES)
        .map(|i| StreamSpec { id: NodeId::from_index(i), n_nodes: N_NODES, n_items: N_ITEMS })
        .collect()
}

fn quiet_cfg(dir: std::path::PathBuf) -> DurabilityConfig {
    let mut cfg = DurabilityConfig::new(dir);
    // No checkpoints: every record stays in wal-0, so the torn tail is
    // the whole history.
    cfg.checkpoint_every = u64::MAX;
    cfg
}

/// The interleaved schedule: streams alternate, values alternate between
/// inline-small and shared-payload-large, every record a distinct state.
fn schedule() -> Vec<(usize, ItemId, Vec<u8>)> {
    (0..10u32)
        .map(|i| {
            let len = if i % 3 == 0 { 100 } else { 6 };
            (i as usize % 2, ItemId(i / 2), vec![0x40 + i as u8; len])
        })
        .collect()
}

/// Twin world: fresh replicas that apply the first `prefix` schedule
/// entries directly, no durability, no crash.
fn twin_world(prefix: usize) -> Vec<Replica> {
    let mut twins: Vec<Replica> = (0..N_NODES)
        .map(|i| {
            Replica::with_policy(NodeId::from_index(i), N_NODES, N_ITEMS, ConflictPolicy::Report)
        })
        .collect();
    for (stream, item, value) in schedule().into_iter().take(prefix) {
        twins[stream].update(item, UpdateOp::set(value)).unwrap();
    }
    twins
}

fn assert_matches_twin(recovered: &[Replica], twins: &[Replica], context: &str) {
    for (k, (got, want)) in recovered.iter().zip(twins).enumerate() {
        got.check_invariants().unwrap();
        assert_eq!(
            got.dbvv().compare(want.dbvv()),
            VvOrd::Equal,
            "{context}: stream {k} DBVV diverges from twin"
        );
        for item in 0..N_ITEMS as u32 {
            assert_eq!(
                got.read(ItemId(item)).unwrap().as_bytes(),
                want.read(ItemId(item)).unwrap().as_bytes(),
                "{context}: stream {k} item {item} diverges from twin"
            );
        }
    }
}

/// Run the whole schedule through a group WAL and return the resulting
/// WAL bytes (flushed by `close`).
fn journaled_wal_bytes(dir: &std::path::Path) -> Vec<u8> {
    let cfg = quiet_cfg(dir.to_path_buf());
    let (wal, mut replicas, _report) =
        GroupWal::open(&cfg, dir, &specs(), ConflictPolicy::Report, 0).unwrap();
    for (k, replica) in replicas.iter_mut().enumerate() {
        wal.attach(k, replica);
    }
    for (stream, item, value) in schedule() {
        replicas[stream].update(item, UpdateOp::set(value)).unwrap();
    }
    wal.close();
    std::fs::read(dir.join("wal-0.log")).unwrap()
}

#[test]
fn torn_batch_recovers_the_clean_prefix_at_every_byte_offset() {
    let tmp = TempDir::new("group-torn");
    let full = journaled_wal_bytes(&tmp.path().join("origin"));

    // Frame boundaries of the intact WAL: the header frame, then one
    // record frame per schedule entry, no torn tail.
    let scan = read_frames(&Bytes::from(full.clone()));
    assert_eq!(scan.bodies.len(), 1 + schedule().len(), "header + one frame per mutation");
    assert_eq!(scan.torn_bytes, 0);

    for cut in 0..=full.len() {
        let dir = tmp.path().join(format!("cut-{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-0.log"), &full[..cut]).unwrap();

        // The clean prefix this cut leaves behind: complete record frames
        // only (the header, when complete, carries no mutation).
        let prefix_scan = read_frames(&Bytes::from(full[..cut].to_vec()));
        let records = prefix_scan.bodies.len().saturating_sub(1);

        let cfg = quiet_cfg(dir.clone());
        let (wal, recovered, report) =
            GroupWal::open(&cfg, &dir, &specs(), ConflictPolicy::Report, 0).unwrap();
        assert_eq!(
            report.wal_records_replayed, records as u64,
            "cut {cut}: replay count != clean prefix"
        );
        assert_eq!(report.replay_errors, 0, "cut {cut}: replay errors");
        assert_matches_twin(&recovered, &twin_world(records), &format!("cut {cut}"));
        wal.close();
    }
}

#[test]
fn acked_batches_survive_a_crash_before_close() {
    // `wait_durable` is the acknowledgement gate: once it returns, the
    // covering batch has been written (and fsynced when enabled). Copy
    // the WAL bytes at that instant — a crash with the process still
    // alive, nothing flushed by shutdown — and recovery must hold every
    // acknowledged mutation.
    let tmp = TempDir::new("group-acked");
    let dir = tmp.path().join("live");
    let cfg = quiet_cfg(dir.clone());
    let (wal, mut replicas, _report) =
        GroupWal::open(&cfg, &dir, &specs(), ConflictPolicy::Report, 0).unwrap();
    for (k, replica) in replicas.iter_mut().enumerate() {
        wal.attach(k, replica);
    }
    for (stream, item, value) in schedule() {
        replicas[stream].update(item, UpdateOp::set(value)).unwrap();
    }
    wal.wait_durable();
    // The "crash": the WAL handle is still open, close() never runs.
    let crash_copy = std::fs::read(dir.join("wal-0.log")).unwrap();

    let crash_dir = tmp.path().join("crash");
    std::fs::create_dir_all(&crash_dir).unwrap();
    std::fs::write(crash_dir.join("wal-0.log"), &crash_copy).unwrap();
    let crash_cfg = quiet_cfg(crash_dir.clone());
    let (recovered_wal, recovered, report) =
        GroupWal::open(&crash_cfg, &crash_dir, &specs(), ConflictPolicy::Report, 0).unwrap();
    assert_eq!(report.wal_records_replayed, schedule().len() as u64);
    assert_matches_twin(&recovered, &twin_world(schedule().len()), "post-ack crash");
    recovered_wal.close();
    wal.close();
}
