//! Property test: crash-restart recovery is invisible to convergence.
//!
//! Two worlds run the same random multi-node schedule of updates, whole
//! pulls, delta pulls, and out-of-bound fetches (single-writer per item,
//! paranoid audits on):
//!
//! * the **durable world**, where every replica journals to an on-disk
//!   WAL with snapshot checkpoints, and the schedule injects crash-restart
//!   points (drop the replica + WAL handle, recover from disk) and forced
//!   checkpoints at random positions;
//! * the **twin world** of plain in-memory replicas that never crash.
//!
//! After the schedule, both worlds run full-mesh anti-entropy until
//! quiescent and must agree on the final value of every item — crashing
//! and recovering must never lose an acknowledged write or invent state.

use std::sync::Arc;

use epidb_common::{ItemId, NodeId};
use epidb_core::{oob_copy, pull, pull_delta, ConflictPolicy, Replica};
use epidb_durable::testdir::TempDir;
use epidb_durable::{DurabilityConfig, NodeDurability};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use proptest::prelude::*;

const N_NODES: usize = 3;
const N_ITEMS: usize = 9;
const DELTA_BUDGET: usize = 1 << 16;
const MAX_SWEEPS: usize = 16;

#[derive(Clone, Debug)]
enum Op {
    /// Single-writer update: the owner of `slot` writes `[byte; len]`.
    Update { owner: usize, slot: usize, byte: u8, large: bool },
    /// Whole-item pull, `r` from `s` (remapped so r != s).
    Pull { r: usize, s: usize },
    /// Delta pull, `r` from `s`.
    PullDelta { r: usize, s: usize },
    /// Out-of-bound fetch of the item owned by `owner` at `slot`.
    Oob { r: usize, owner: usize, slot: usize },
    /// Durable world only: force a checkpoint now (snapshot + WAL roll).
    Checkpoint { node: usize },
    /// Durable world only: crash the node and recover it from disk.
    CrashRestart { node: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slots = N_ITEMS.div_ceil(N_NODES);
    prop_oneof![
        4 => (0..N_NODES, 0..slots, any::<u8>(), any::<bool>())
            .prop_map(|(owner, slot, byte, large)| Op::Update { owner, slot, byte, large }),
        3 => (0..N_NODES, 0..N_NODES).prop_map(|(r, s)| Op::Pull { r, s }),
        3 => (0..N_NODES, 0..N_NODES).prop_map(|(r, s)| Op::PullDelta { r, s }),
        2 => (0..N_NODES, 0..N_NODES, 0..slots)
            .prop_map(|(r, owner, slot)| Op::Oob { r, owner, slot }),
        1 => (0..N_NODES).prop_map(|node| Op::Checkpoint { node }),
        2 => (0..N_NODES).prop_map(|node| Op::CrashRestart { node }),
    ]
}

/// The durable world: each node is a replica journaling to its own WAL.
struct DurableWorld {
    cfg: DurabilityConfig,
    nodes: Vec<(Arc<NodeDurability>, Replica)>,
}

impl DurableWorld {
    fn open_node(cfg: &DurabilityConfig, id: NodeId) -> (Arc<NodeDurability>, Replica) {
        let (durability, mut replica, _report) =
            NodeDurability::open(cfg, id, N_NODES, N_ITEMS, ConflictPolicy::Report)
                .expect("durable open");
        replica.enable_delta(DELTA_BUDGET);
        replica.set_paranoid(true);
        durability.attach(&mut replica);
        (durability, replica)
    }

    fn new(dir: &TempDir) -> DurableWorld {
        let mut cfg = DurabilityConfig::new(dir.path().clone());
        // A small threshold so automatic checkpoints also fire mid-schedule.
        cfg.checkpoint_every = 7;
        let nodes =
            (0..N_NODES).map(|i| DurableWorld::open_node(&cfg, NodeId::from_index(i))).collect();
        DurableWorld { cfg, nodes }
    }

    fn crash_restart(&mut self, node: usize) {
        // Drop the in-memory replica and the WAL handle, then recover
        // purely from what reached the disk.
        let placeholder = Replica::new(NodeId::from_index(node), N_NODES, N_ITEMS);
        let _ = std::mem::replace(&mut self.nodes[node].1, placeholder);
        self.nodes[node] = DurableWorld::open_node(&self.cfg, NodeId::from_index(node));
    }

    fn checkpoint_all_due(&mut self, node: usize) {
        let (d, r) = &self.nodes[node];
        d.checkpoint(r).expect("forced checkpoint");
    }

    /// Two distinct replicas by index, for pull/oob pairs.
    fn pair(&mut self, r: usize, s: usize) -> (&mut Replica, &mut Replica) {
        assert_ne!(r, s);
        let (lo, hi) = if r < s { (r, s) } else { (s, r) };
        let (left, right) = self.nodes.split_at_mut(hi);
        let (a, b) = (&mut left[lo].1, &mut right[0].1);
        if r < s {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn maybe_checkpoint(&self, node: usize) {
        let (d, r) = &self.nodes[node];
        d.maybe_checkpoint(r).expect("auto checkpoint");
    }
}

fn distinct(r: usize, s: usize) -> (usize, usize) {
    if r == s {
        (r, (s + 1) % N_NODES)
    } else {
        (r, s)
    }
}

fn owned_item(owner: usize, slot: usize) -> Option<ItemId> {
    let item = owner + slot * N_NODES;
    (item < N_ITEMS).then_some(ItemId(item as u32))
}

fn value_of(byte: u8, large: bool) -> Vec<u8> {
    // Large values travel as shared payload segments; small ones inline.
    vec![byte; if large { 192 } else { 5 }]
}

fn converge(replicas: &mut [Replica]) -> bool {
    for _ in 0..MAX_SWEEPS {
        for r in 0..replicas.len() {
            for s in 0..replicas.len() {
                if r == s {
                    continue;
                }
                let (lo, hi) = if r < s { (r, s) } else { (s, r) };
                let (left, right) = replicas.split_at_mut(hi);
                let (a, b) = if r < s {
                    (&mut left[lo], &mut right[0])
                } else {
                    (&mut right[0], &mut left[lo])
                };
                pull(a, b).expect("convergence pull");
            }
        }
        let reference = replicas[0].dbvv().clone();
        if replicas
            .iter()
            .all(|r| r.aux_item_count() == 0 && r.dbvv().compare(&reference) == VvOrd::Equal)
        {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recovered_world_matches_never_crashed_twin(
        schedule in prop::collection::vec(op_strategy(), 1..48)
    ) {
        let tmp = TempDir::new("crash-prop");
        let mut durable = DurableWorld::new(&tmp);
        let mut twin: Vec<Replica> = (0..N_NODES)
            .map(|i| {
                let mut r = Replica::new(NodeId::from_index(i), N_NODES, N_ITEMS);
                r.enable_delta(DELTA_BUDGET);
                r.set_paranoid(true);
                r
            })
            .collect();

        for op in &schedule {
            match *op {
                Op::Update { owner, slot, byte, large } => {
                    let Some(item) = owned_item(owner, slot) else { continue };
                    let value = value_of(byte, large);
                    durable.nodes[owner].1.update(item, UpdateOp::set(value.clone())).unwrap();
                    durable.maybe_checkpoint(owner);
                    twin[owner].update(item, UpdateOp::set(value)).unwrap();
                }
                Op::Pull { r, s } => {
                    let (r, s) = distinct(r, s);
                    let (dst, src) = durable.pair(r, s);
                    pull(dst, src).unwrap();
                    durable.maybe_checkpoint(r);
                    let (lo, hi) = if r < s { (r, s) } else { (s, r) };
                    let (left, right) = twin.split_at_mut(hi);
                    let (a, b) = if r < s {
                        (&mut left[lo], &mut right[0])
                    } else {
                        (&mut right[0], &mut left[lo])
                    };
                    pull(a, b).unwrap();
                }
                Op::PullDelta { r, s } => {
                    let (r, s) = distinct(r, s);
                    let (dst, src) = durable.pair(r, s);
                    pull_delta(dst, src).unwrap();
                    durable.maybe_checkpoint(r);
                    let (lo, hi) = if r < s { (r, s) } else { (s, r) };
                    let (left, right) = twin.split_at_mut(hi);
                    let (a, b) = if r < s {
                        (&mut left[lo], &mut right[0])
                    } else {
                        (&mut right[0], &mut left[lo])
                    };
                    pull_delta(a, b).unwrap();
                }
                Op::Oob { r, owner, slot } => {
                    let Some(item) = owned_item(owner, slot) else { continue };
                    let (r, s) = distinct(r, owner);
                    let (dst, src) = durable.pair(r, s);
                    oob_copy(dst, src, item).unwrap();
                    durable.maybe_checkpoint(r);
                    let (lo, hi) = if r < s { (r, s) } else { (s, r) };
                    let (left, right) = twin.split_at_mut(hi);
                    let (a, b) = if r < s {
                        (&mut left[lo], &mut right[0])
                    } else {
                        (&mut right[0], &mut left[lo])
                    };
                    oob_copy(a, b, item).unwrap();
                }
                Op::Checkpoint { node } => durable.checkpoint_all_due(node),
                Op::CrashRestart { node } => durable.crash_restart(node),
            }
        }

        // Both worlds converge by full-mesh anti-entropy...
        let mut durable_final: Vec<Replica> = durable
            .nodes
            .iter()
            .map(|(_, r)| {
                let mut c = r.clone();
                c.set_mutation_sink(None);
                c
            })
            .collect();
        prop_assert!(converge(&mut durable_final), "durable world did not converge");
        prop_assert!(converge(&mut twin), "twin world did not converge");

        // ...and must agree item by item: recovery lost nothing acknowledged
        // and invented nothing.
        for item in 0..N_ITEMS {
            let want = twin[0].read(ItemId(item as u32)).unwrap().as_bytes().to_vec();
            for (node, r) in durable_final.iter().enumerate() {
                let got = r.read(ItemId(item as u32)).unwrap().as_bytes().to_vec();
                prop_assert_eq!(
                    &got, &want,
                    "durable node {} disagrees with twin on item {}", node, item
                );
            }
        }
        for r in durable_final.iter().chain(twin.iter()) {
            r.check_invariants().unwrap();
        }
    }
}
