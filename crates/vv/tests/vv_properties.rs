//! Property-based tests for the version-vector algebra.
//!
//! Domination must be a strict partial order, comparison must be
//! antisymmetric under `flip`, and `merge_max` must be the least upper bound
//! — these are the algebraic facts the paper's Theorem 3 corollaries rest on.

use epidb_common::NodeId;
use epidb_vv::{DbVersionVector, VersionVector, VvOrd};
use proptest::prelude::*;

const DIM: usize = 6;

fn arb_vv() -> impl Strategy<Value = VersionVector> {
    prop::collection::vec(0u64..32, DIM).prop_map(VersionVector::from_entries)
}

proptest! {
    #[test]
    fn compare_is_antisymmetric(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.compare(&b), b.compare(&a).flip());
    }

    #[test]
    fn compare_reflexive(a in arb_vv()) {
        prop_assert_eq!(a.compare(&a), VvOrd::Equal);
    }

    #[test]
    fn domination_is_transitive(a in arb_vv(), b in arb_vv(), c in arb_vv()) {
        if a.compare(&b) == VvOrd::Dominates && b.compare(&c) == VvOrd::Dominates {
            prop_assert_eq!(a.compare(&c), VvOrd::Dominates);
        }
    }

    #[test]
    fn equality_matches_componentwise(a in arb_vv(), b in arb_vv()) {
        prop_assert_eq!(a.compare(&b) == VvOrd::Equal, a.entries() == b.entries());
    }

    #[test]
    fn merge_max_is_least_upper_bound(a in arb_vv(), b in arb_vv()) {
        let mut m = a.clone();
        m.merge_max(&b).unwrap();
        // Upper bound of both.
        prop_assert!(m.dominates_or_equal(&a));
        prop_assert!(m.dominates_or_equal(&b));
        // Least: every entry comes from a or b.
        for i in 0..DIM {
            let n = NodeId::from_index(i);
            prop_assert_eq!(m.get(n), a.get(n).max(b.get(n)));
        }
    }

    #[test]
    fn merge_max_is_idempotent_commutative(a in arb_vv(), b in arb_vv()) {
        let mut ab = a.clone();
        ab.merge_max(&b).unwrap();
        let mut ba = b.clone();
        ba.merge_max(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let mut abb = ab.clone();
        abb.merge_max(&b).unwrap();
        prop_assert_eq!(&abb, &ab);
    }

    #[test]
    fn concurrent_iff_offending_pair_exists(a in arb_vv(), b in arb_vv()) {
        let conflict = a.compare(&b) == VvOrd::Concurrent;
        prop_assert_eq!(conflict, a.offending_pair(&b).is_some());
        if let Some((k, l)) = a.offending_pair(&b) {
            // k: where self < other; l: where self > other.
            prop_assert!(a.get(k) < b.get(k));
            prop_assert!(a.get(l) > b.get(l));
        }
    }

    #[test]
    fn total_is_monotone_under_merge(a in arb_vv(), b in arb_vv()) {
        let mut m = a.clone();
        m.merge_max(&b).unwrap();
        prop_assert!(m.total() >= a.total());
        prop_assert!(m.total() >= b.total());
    }

    /// DBVV rule 3 must add exactly the number of "extra" updates the
    /// incoming copy has seen (the intuition paragraph under rule 3 in
    /// §4.1), so the DBVV total advances by the IVV total difference.
    #[test]
    fn dbvv_rule3_adds_exact_difference(local in arb_vv(), extra in prop::collection::vec(0u64..8, DIM)) {
        let mut remote = local.clone();
        for (i, e) in extra.iter().enumerate() {
            let n = NodeId::from_index(i);
            remote.set(n, remote.get(n) + e);
        }
        let mut dbvv = DbVersionVector::zero(DIM);
        let before = dbvv.total();
        dbvv.absorb_item_copy(&local, &remote).unwrap();
        prop_assert_eq!(dbvv.total() - before, remote.total() - local.total());
    }
}
