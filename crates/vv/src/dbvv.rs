//! The database version vector (DBVV) — §4.1, the paper's key device.
//!
//! A DBVV is associated with an entire database *replica*. Its component
//! `V_ij` records the total number of updates performed by server `j`, to
//! any item, that are reflected at replica `i`. Comparing two DBVVs answers
//! in O(n) — constant in the number of data items — whether any update
//! propagation between the replicas is needed at all.
//!
//! Maintenance rules (§4.1):
//! 1. Initially all components are 0.
//! 2. When node `i` performs an update to any (regular) data item,
//!    `V_ii := V_ii + 1`.
//! 3. When node `i` copies item `x` from node `j` (having verified `x_j` is
//!    newer), `V_il := V_il + (v_jl(x) − v_il(x))` for every `l`.
//!
//! These rules preserve the workspace's central testable invariant:
//! **a replica's DBVV equals the component-wise sum of the IVVs of all its
//! regular item copies** (auxiliary/out-of-bound state never touches the
//! DBVV, §5.2–§5.3).

use std::fmt;

use epidb_common::{NodeId, Result};

use crate::vector::{VersionVector, VvOrd};

/// Version vector over an entire database replica.
///
/// Wraps [`VersionVector`] but exposes only the DBVV maintenance rules, so
/// protocol code cannot accidentally apply IVV rules (like `merge_max`) to a
/// DBVV — the two are maintained differently (rule 3 is *additive*, not a
/// max-merge).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DbVersionVector {
    inner: VersionVector,
}

impl DbVersionVector {
    /// All-zero DBVV for `n` servers (rule 1).
    pub fn zero(n: usize) -> DbVersionVector {
        DbVersionVector { inner: VersionVector::zero(n) }
    }

    /// Number of servers.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if the DBVV covers zero servers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `V_ij`: updates by `j` reflected in this replica.
    #[inline]
    pub fn get(&self, j: NodeId) -> u64 {
        self.inner.get(j)
    }

    /// Rule 2: node `i` performed a local update; returns the new `V_ii` —
    /// the update's database-wide sequence number at `i`, which is exactly
    /// the `m` stored in the log record `(x, m)` (§4.2).
    #[inline]
    pub fn record_local_update(&mut self, i: NodeId) -> u64 {
        self.inner.bump(i)
    }

    /// Rule 3: node `i` adopted a copy of some item whose local IVV was
    /// `local_ivv` and whose incoming IVV is `remote_ivv`
    /// (`V_il += v_jl(x) − v_il(x)`).
    ///
    /// The protocol only copies when the remote IVV dominates, so every
    /// per-component difference is non-negative; this is debug-asserted.
    pub fn absorb_item_copy(
        &mut self,
        local_ivv: &VersionVector,
        remote_ivv: &VersionVector,
    ) -> Result<()> {
        if local_ivv.len() != remote_ivv.len() || local_ivv.len() != self.inner.len() {
            return Err(epidb_common::Error::DimensionMismatch {
                left: self.inner.len(),
                right: remote_ivv.len(),
            });
        }
        debug_assert!(
            remote_ivv.dominates_or_equal(local_ivv),
            "rule 3 applied to a non-dominating copy"
        );
        for l in 0..self.inner.len() {
            let l = NodeId::from_index(l);
            let extra = remote_ivv.get(l) - local_ivv.get(l);
            if extra > 0 {
                self.inner.set(l, self.inner.get(l) + extra);
            }
        }
        Ok(())
    }

    /// Compare two DBVVs (the constant-time "is propagation needed?" check,
    /// charged as `n` entry comparisons).
    pub fn compare_counted(&self, other: &DbVersionVector, cmps: &mut u64) -> VvOrd {
        self.inner.compare_counted(&other.inner, cmps)
    }

    /// Compare two DBVVs without cost accounting.
    pub fn compare(&self, other: &DbVersionVector) -> VvOrd {
        self.inner.compare(&other.inner)
    }

    /// Total updates (all origins) reflected at this replica.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// Read access to the underlying vector (wire encoding, invariants).
    pub fn as_vector(&self) -> &VersionVector {
        &self.inner
    }

    /// Build from an explicit vector (tests, wire decoding).
    pub fn from_vector(v: VersionVector) -> DbVersionVector {
        DbVersionVector { inner: v }
    }
}

impl fmt::Display for DbVersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DBVV{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let v = DbVersionVector::zero(3);
        assert_eq!(v.total(), 0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn rule2_returns_sequence_numbers() {
        let mut v = DbVersionVector::zero(2);
        assert_eq!(v.record_local_update(NodeId(0)), 1);
        assert_eq!(v.record_local_update(NodeId(0)), 2);
        assert_eq!(v.record_local_update(NodeId(1)), 1);
        assert_eq!(v.get(NodeId(0)), 2);
        assert_eq!(v.get(NodeId(1)), 1);
    }

    #[test]
    fn rule3_adds_componentwise_difference() {
        let mut dbvv = DbVersionVector::zero(3);
        dbvv.record_local_update(NodeId(0)); // V = <1,0,0>

        // Local copy of x has seen 1 update from n1; remote has seen 3 from
        // n1 and 2 from n2.
        let local = VersionVector::from_entries(vec![0, 1, 0]);
        let remote = VersionVector::from_entries(vec![0, 3, 2]);
        dbvv.absorb_item_copy(&local, &remote).unwrap();
        assert_eq!(dbvv.get(NodeId(0)), 1);
        assert_eq!(dbvv.get(NodeId(1)), 2); // 0 + (3-1)
        assert_eq!(dbvv.get(NodeId(2)), 2); // 0 + (2-0)
        assert_eq!(dbvv.total(), 5);
    }

    #[test]
    fn rule3_rejects_dimension_mismatch() {
        let mut dbvv = DbVersionVector::zero(2);
        let local = VersionVector::zero(2);
        let remote = VersionVector::zero(3);
        assert!(dbvv.absorb_item_copy(&local, &remote).is_err());
    }

    #[test]
    fn compare_detects_identical_replicas_in_n_entry_cmps() {
        let mut a = DbVersionVector::zero(4);
        let mut b = DbVersionVector::zero(4);
        a.record_local_update(NodeId(0));
        b.record_local_update(NodeId(0));
        let mut cmps = 0;
        assert_eq!(a.compare_counted(&b, &mut cmps), VvOrd::Equal);
        assert_eq!(cmps, 4); // n, independent of item count
    }

    #[test]
    fn compare_detects_concurrent_databases() {
        let mut a = DbVersionVector::zero(2);
        let mut b = DbVersionVector::zero(2);
        a.record_local_update(NodeId(0));
        b.record_local_update(NodeId(1));
        assert_eq!(a.compare(&b), VvOrd::Concurrent);
    }

    #[test]
    fn display_formats() {
        let mut v = DbVersionVector::zero(2);
        v.record_local_update(NodeId(1));
        assert_eq!(v.to_string(), "DBVV<0,1>");
    }
}
