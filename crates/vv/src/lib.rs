#![warn(missing_docs)]

//! Version vectors — the foundation of the paper's protocol.
//!
//! Two flavours are provided:
//!
//! * [`VersionVector`] — the classic per-data-item version vector (IVV) of
//!   Parker et al., as reviewed in §3 of the paper: entry `v_ij(x)` counts
//!   the updates originally performed by server `j` and reflected in server
//!   `i`'s copy of item `x`.
//! * [`DbVersionVector`] — the paper's contribution (§4.1): a version vector
//!   associated with an entire *database* replica, whose entry `V_ij` counts
//!   the updates performed by server `j` *to any item* and reflected at `i`.
//!
//! Comparing two vectors yields a [`VvOrd`]: equality, domination in either
//! direction, or mutual inconsistency (`Concurrent`) — corollaries 1–4 of
//! the paper's Theorem 3.

pub mod dbvv;
pub mod vector;

pub use dbvv::DbVersionVector;
pub use vector::{VersionVector, VvOrd, VV_INLINE_CAP};
