//! The per-item version vector (IVV) and its comparison algebra (§3).

use std::fmt;
use std::hash::{Hash, Hasher};

use epidb_common::{Error, NodeId, Result};

/// Outcome of comparing two version vectors.
///
/// These are exactly the four mutually exclusive cases of the paper's
/// Theorem 3 corollaries: identical copies, one copy strictly newer
/// (its vector *dominates*), or inconsistent copies (*concurrent* vectors —
/// each reflects an update the other misses).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VvOrd {
    /// Component-wise identical vectors: the copies are identical.
    Equal,
    /// `self` dominates `other`: `self`'s copy is strictly newer.
    Dominates,
    /// `other` dominates `self`: `self`'s copy is strictly older.
    DominatedBy,
    /// Mutually inconsistent vectors: the copies conflict.
    Concurrent,
}

impl VvOrd {
    /// The comparison seen from the other side.
    pub fn flip(self) -> VvOrd {
        match self {
            VvOrd::Dominates => VvOrd::DominatedBy,
            VvOrd::DominatedBy => VvOrd::Dominates,
            other => other,
        }
    }

    /// True for `Equal` or `Dominates`.
    pub fn dominates_or_equal(self) -> bool {
        matches!(self, VvOrd::Equal | VvOrd::Dominates)
    }
}

impl fmt::Display for VvOrd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VvOrd::Equal => "equal",
            VvOrd::Dominates => "dominates",
            VvOrd::DominatedBy => "dominated-by",
            VvOrd::Concurrent => "concurrent",
        };
        f.write_str(s)
    }
}

/// Vectors up to this many servers are stored inline (no heap allocation).
///
/// Gossip protocols ship a version vector per item; with typical cluster
/// sizes well under this bound, decoding, cloning, and merging vectors
/// must not allocate — the small-message fast path depends on it.
pub const VV_INLINE_CAP: usize = 8;

/// Storage for a vector's entries: inline for small server counts, heap
/// beyond. Both representations expose the same dense `[u64]` slice; no
/// observable behavior depends on which one is in use.
#[derive(Clone, Debug)]
enum Entries {
    Inline { len: u8, buf: [u64; VV_INLINE_CAP] },
    Heap(Vec<u64>),
}

/// A version vector over a fixed set of `n` servers.
///
/// Entry `j` counts the updates originally performed by server `j` that are
/// reflected in the associated replica (Theorem 3). The server set is fixed
/// (§2), so the vector is a dense array — stored inline (allocation-free)
/// for up to [`VV_INLINE_CAP`] servers, on the heap beyond.
#[derive(Clone)]
pub struct VersionVector {
    entries: Entries,
}

impl Default for VersionVector {
    fn default() -> VersionVector {
        VersionVector { entries: Entries::Inline { len: 0, buf: [0; VV_INLINE_CAP] } }
    }
}

impl VersionVector {
    /// An all-zero vector for a system of `n` servers (maintenance rule:
    /// "upon initialization, every component is 0").
    pub fn zero(n: usize) -> VersionVector {
        if n <= VV_INLINE_CAP {
            VersionVector { entries: Entries::Inline { len: n as u8, buf: [0; VV_INLINE_CAP] } }
        } else {
            VersionVector { entries: Entries::Heap(vec![0; n]) }
        }
    }

    /// Build from explicit entries (mainly for tests and tools).
    pub fn from_entries(entries: Vec<u64>) -> VersionVector {
        if entries.len() <= VV_INLINE_CAP {
            VersionVector::from_slice(&entries)
        } else {
            VersionVector { entries: Entries::Heap(entries) }
        }
    }

    /// Build from a slice of entries. Allocation-free for up to
    /// [`VV_INLINE_CAP`] servers — the constructor decoders use.
    pub fn from_slice(entries: &[u64]) -> VersionVector {
        if entries.len() <= VV_INLINE_CAP {
            let mut buf = [0; VV_INLINE_CAP];
            buf[..entries.len()].copy_from_slice(entries);
            VersionVector { entries: Entries::Inline { len: entries.len() as u8, buf } }
        } else {
            VersionVector { entries: Entries::Heap(entries.to_vec()) }
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        match &self.entries {
            Entries::Inline { len, buf } => &buf[..*len as usize],
            Entries::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.entries {
            Entries::Inline { len, buf } => &mut buf[..*len as usize],
            Entries::Heap(v) => v,
        }
    }

    /// Number of servers this vector covers.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.entries {
            Entries::Inline { len, .. } => *len as usize,
            Entries::Heap(v) => v.len(),
        }
    }

    /// True if the vector covers zero servers (degenerate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry for server `j`: how many of `j`'s updates this replica reflects.
    #[inline]
    pub fn get(&self, j: NodeId) -> u64 {
        self.as_slice()[j.index()]
    }

    /// Set entry for server `j` (used by log/replay machinery; ordinary
    /// protocol code uses [`bump`](Self::bump) and
    /// [`merge_max`](Self::merge_max)).
    #[inline]
    pub fn set(&mut self, j: NodeId, v: u64) {
        self.as_mut_slice()[j.index()] = v;
    }

    /// Record one more local update by server `i`
    /// (`v_ii(x) := v_ii(x) + 1`), returning the new entry value — the
    /// update's sequence number at `i`.
    #[inline]
    pub fn bump(&mut self, i: NodeId) -> u64 {
        let e = &mut self.as_mut_slice()[i.index()];
        *e += 1;
        *e
    }

    /// Component-wise maximum with `other`
    /// (`v_ik := max(v_ik, v_jk)` for all `k`) — the rule applied when a
    /// replica obtains missing updates (§3).
    pub fn merge_max(&mut self, other: &VersionVector) -> Result<()> {
        self.check_dims(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            if *b > *a {
                *a = *b;
            }
        }
        Ok(())
    }

    /// Compare against `other`, charging `n` entry comparisons to `cmps`.
    ///
    /// Every caller in the workspace that models protocol overhead passes
    /// its comparison counter here, so the experiments count exactly the
    /// work the paper's complexity analysis charges.
    pub fn compare_counted(&self, other: &VersionVector, cmps: &mut u64) -> VvOrd {
        *cmps += self.len() as u64;
        self.compare(other)
    }

    /// Compare against `other`.
    ///
    /// # Panics
    /// Panics if the vectors have different dimensions; vectors of one
    /// database instance always share the fixed server count.
    pub fn compare(&self, other: &VersionVector) -> VvOrd {
        assert_eq!(self.len(), other.len(), "comparing version vectors of different dimensions");
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
            if less && greater {
                return VvOrd::Concurrent;
            }
        }
        match (less, greater) {
            (false, false) => VvOrd::Equal,
            (false, true) => VvOrd::Dominates,
            (true, false) => VvOrd::DominatedBy,
            (true, true) => unreachable!("early-returned above"),
        }
    }

    /// True iff `self` dominates or equals `other`.
    pub fn dominates_or_equal(&self, other: &VersionVector) -> bool {
        self.compare(other).dominates_or_equal()
    }

    /// For two *concurrent* vectors, pinpoint a pair of origin servers whose
    /// updates are mutually missing — the paper's footnote 3: if the vectors
    /// conflict in components `k` and `l`, nodes `k` and `l` hold the
    /// offending updates. Returns `None` when the vectors do not conflict.
    pub fn offending_pair(&self, other: &VersionVector) -> Option<(NodeId, NodeId)> {
        let mut below = None; // a component where self < other
        let mut above = None; // a component where self > other
        for (idx, (a, b)) in self.as_slice().iter().zip(other.as_slice()).enumerate() {
            if a < b && below.is_none() {
                below = Some(NodeId::from_index(idx));
            } else if a > b && above.is_none() {
                above = Some(NodeId::from_index(idx));
            }
            if let (Some(k), Some(l)) = (below, above) {
                return Some((k, l));
            }
        }
        None
    }

    /// Sum of all entries: the total number of updates (across all origins)
    /// reflected in the replica.
    pub fn total(&self) -> u64 {
        self.as_slice().iter().sum()
    }

    /// Iterate `(origin, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.as_slice().iter().enumerate().map(|(i, &v)| (NodeId::from_index(i), v))
    }

    /// Raw entries, in server order.
    #[inline]
    pub fn entries(&self) -> &[u64] {
        self.as_slice()
    }

    fn check_dims(&self, other: &VersionVector) -> Result<()> {
        if self.len() != other.len() {
            return Err(Error::DimensionMismatch { left: self.len(), right: other.len() });
        }
        Ok(())
    }
}

/// Equality is over the entry slice: the storage representation (inline vs
/// heap) is never observable.
impl PartialEq for VersionVector {
    fn eq(&self, other: &VersionVector) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for VersionVector {}

/// Hashes the entry slice, so equal vectors hash equal across
/// representations.
impl Hash for VersionVector {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionVector").field("entries", &self.as_slice()).finish()
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use std::collections::hash_map::DefaultHasher;

    use super::*;

    fn vv(entries: &[u64]) -> VersionVector {
        VersionVector::from_entries(entries.to_vec())
    }

    #[test]
    fn zero_is_all_zeroes() {
        let v = VersionVector::zero(4);
        assert_eq!(v.entries(), &[0, 0, 0, 0]);
        assert_eq!(v.total(), 0);
    }

    #[test]
    fn bump_returns_sequence_number() {
        let mut v = VersionVector::zero(3);
        assert_eq!(v.bump(NodeId(1)), 1);
        assert_eq!(v.bump(NodeId(1)), 2);
        assert_eq!(v.get(NodeId(1)), 2);
        assert_eq!(v.get(NodeId(0)), 0);
    }

    #[test]
    fn compare_equal() {
        assert_eq!(vv(&[1, 2]).compare(&vv(&[1, 2])), VvOrd::Equal);
    }

    #[test]
    fn compare_dominates() {
        assert_eq!(vv(&[2, 2]).compare(&vv(&[1, 2])), VvOrd::Dominates);
        assert_eq!(vv(&[1, 2]).compare(&vv(&[2, 2])), VvOrd::DominatedBy);
    }

    #[test]
    fn compare_concurrent() {
        assert_eq!(vv(&[2, 1]).compare(&vv(&[1, 2])), VvOrd::Concurrent);
    }

    #[test]
    fn compare_counted_charges_n() {
        let mut c = 0;
        let _ = vv(&[1, 2, 3]).compare_counted(&vv(&[1, 2, 3]), &mut c);
        assert_eq!(c, 3);
    }

    #[test]
    fn merge_max_takes_componentwise_max() {
        let mut a = vv(&[3, 1, 0]);
        a.merge_max(&vv(&[1, 4, 0])).unwrap();
        assert_eq!(a.entries(), &[3, 4, 0]);
    }

    #[test]
    fn merge_max_rejects_dimension_mismatch() {
        let mut a = vv(&[1]);
        assert!(matches!(
            a.merge_max(&vv(&[1, 2])),
            Err(Error::DimensionMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn flip_swaps_direction() {
        assert_eq!(VvOrd::Dominates.flip(), VvOrd::DominatedBy);
        assert_eq!(VvOrd::DominatedBy.flip(), VvOrd::Dominates);
        assert_eq!(VvOrd::Equal.flip(), VvOrd::Equal);
        assert_eq!(VvOrd::Concurrent.flip(), VvOrd::Concurrent);
    }

    #[test]
    fn offending_pair_pinpoints_origins() {
        // self ahead at n0, behind at n2.
        let a = vv(&[5, 3, 1]);
        let b = vv(&[2, 3, 4]);
        let (k, l) = a.offending_pair(&b).unwrap();
        // k is where self < other (n2), l where self > other (n0).
        assert_eq!((k, l), (NodeId(2), NodeId(0)));
        assert!(a.compare(&b) == VvOrd::Concurrent);
        assert!(vv(&[1, 1]).offending_pair(&vv(&[1, 1])).is_none());
        assert!(vv(&[2, 1]).offending_pair(&vv(&[1, 1])).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(vv(&[1, 0, 7]).to_string(), "<1,0,7>");
        assert_eq!(VvOrd::Concurrent.to_string(), "concurrent");
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn compare_panics_on_dim_mismatch() {
        let _ = vv(&[1]).compare(&vv(&[1, 2]));
    }

    // --- inline vs heap representation (small-message fast path) ---

    fn hash_of(v: &VersionVector) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn representations_agree_at_the_inline_boundary() {
        // n = VV_INLINE_CAP is inline, n = VV_INLINE_CAP + 1 is heap; both
        // behave identically through the whole API.
        for n in [VV_INLINE_CAP, VV_INLINE_CAP + 1] {
            let mut v = VersionVector::zero(n);
            assert_eq!(v.len(), n);
            assert!(!v.is_empty());
            v.bump(NodeId(0));
            v.set(NodeId::from_index(n - 1), 9);
            assert_eq!(v.get(NodeId(0)), 1);
            assert_eq!(v.total(), 10);
            let entries: Vec<u64> = v.entries().to_vec();
            let rebuilt = VersionVector::from_entries(entries.clone());
            assert_eq!(rebuilt, v);
            assert_eq!(VersionVector::from_slice(&entries), v);
            assert_eq!(hash_of(&rebuilt), hash_of(&v));
            assert_eq!(v.compare(&rebuilt), VvOrd::Equal);
            let mut m = VersionVector::zero(n);
            m.merge_max(&v).unwrap();
            assert_eq!(m, v);
        }
    }

    #[test]
    fn equality_and_hash_ignore_representation() {
        // Same entries via from_slice (inline) and from_entries of a Vec
        // with spare capacity (heap path is length-based, so both are
        // inline here) — and a genuinely heap pair above the cap.
        let small_a = VersionVector::from_slice(&[1, 2, 3]);
        let small_b = VersionVector::from_entries(vec![1, 2, 3]);
        assert_eq!(small_a, small_b);
        assert_eq!(hash_of(&small_a), hash_of(&small_b));

        let big = vec![7u64; VV_INLINE_CAP + 4];
        let heap_a = VersionVector::from_slice(&big);
        let heap_b = VersionVector::from_entries(big);
        assert_eq!(heap_a, heap_b);
        assert_eq!(hash_of(&heap_a), hash_of(&heap_b));
    }

    #[test]
    fn default_is_empty() {
        let v = VersionVector::default();
        assert!(v.is_empty());
        assert_eq!(v.entries(), &[] as &[u64]);
    }
}
