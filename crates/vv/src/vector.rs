//! The per-item version vector (IVV) and its comparison algebra (§3).

use std::fmt;

use epidb_common::{Error, NodeId, Result};

/// Outcome of comparing two version vectors.
///
/// These are exactly the four mutually exclusive cases of the paper's
/// Theorem 3 corollaries: identical copies, one copy strictly newer
/// (its vector *dominates*), or inconsistent copies (*concurrent* vectors —
/// each reflects an update the other misses).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VvOrd {
    /// Component-wise identical vectors: the copies are identical.
    Equal,
    /// `self` dominates `other`: `self`'s copy is strictly newer.
    Dominates,
    /// `other` dominates `self`: `self`'s copy is strictly older.
    DominatedBy,
    /// Mutually inconsistent vectors: the copies conflict.
    Concurrent,
}

impl VvOrd {
    /// The comparison seen from the other side.
    pub fn flip(self) -> VvOrd {
        match self {
            VvOrd::Dominates => VvOrd::DominatedBy,
            VvOrd::DominatedBy => VvOrd::Dominates,
            other => other,
        }
    }

    /// True for `Equal` or `Dominates`.
    pub fn dominates_or_equal(self) -> bool {
        matches!(self, VvOrd::Equal | VvOrd::Dominates)
    }
}

impl fmt::Display for VvOrd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VvOrd::Equal => "equal",
            VvOrd::Dominates => "dominates",
            VvOrd::DominatedBy => "dominated-by",
            VvOrd::Concurrent => "concurrent",
        };
        f.write_str(s)
    }
}

/// A version vector over a fixed set of `n` servers.
///
/// Entry `j` counts the updates originally performed by server `j` that are
/// reflected in the associated replica (Theorem 3). The server set is fixed
/// (§2), so the vector is a dense array.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct VersionVector {
    entries: Vec<u64>,
}

impl VersionVector {
    /// An all-zero vector for a system of `n` servers (maintenance rule:
    /// "upon initialization, every component is 0").
    pub fn zero(n: usize) -> VersionVector {
        VersionVector { entries: vec![0; n] }
    }

    /// Build from explicit entries (mainly for tests and tools).
    pub fn from_entries(entries: Vec<u64>) -> VersionVector {
        VersionVector { entries }
    }

    /// Number of servers this vector covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector covers zero servers (degenerate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for server `j`: how many of `j`'s updates this replica reflects.
    #[inline]
    pub fn get(&self, j: NodeId) -> u64 {
        self.entries[j.index()]
    }

    /// Set entry for server `j` (used by log/replay machinery; ordinary
    /// protocol code uses [`bump`](Self::bump) and
    /// [`merge_max`](Self::merge_max)).
    #[inline]
    pub fn set(&mut self, j: NodeId, v: u64) {
        self.entries[j.index()] = v;
    }

    /// Record one more local update by server `i`
    /// (`v_ii(x) := v_ii(x) + 1`), returning the new entry value — the
    /// update's sequence number at `i`.
    #[inline]
    pub fn bump(&mut self, i: NodeId) -> u64 {
        let e = &mut self.entries[i.index()];
        *e += 1;
        *e
    }

    /// Component-wise maximum with `other`
    /// (`v_ik := max(v_ik, v_jk)` for all `k`) — the rule applied when a
    /// replica obtains missing updates (§3).
    pub fn merge_max(&mut self, other: &VersionVector) -> Result<()> {
        self.check_dims(other)?;
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            if *b > *a {
                *a = *b;
            }
        }
        Ok(())
    }

    /// Compare against `other`, charging `n` entry comparisons to `cmps`.
    ///
    /// Every caller in the workspace that models protocol overhead passes
    /// its comparison counter here, so the experiments count exactly the
    /// work the paper's complexity analysis charges.
    pub fn compare_counted(&self, other: &VersionVector, cmps: &mut u64) -> VvOrd {
        *cmps += self.entries.len() as u64;
        self.compare(other)
    }

    /// Compare against `other`.
    ///
    /// # Panics
    /// Panics if the vectors have different dimensions; vectors of one
    /// database instance always share the fixed server count.
    pub fn compare(&self, other: &VersionVector) -> VvOrd {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "comparing version vectors of different dimensions"
        );
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.entries.iter().zip(&other.entries) {
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
            if less && greater {
                return VvOrd::Concurrent;
            }
        }
        match (less, greater) {
            (false, false) => VvOrd::Equal,
            (false, true) => VvOrd::Dominates,
            (true, false) => VvOrd::DominatedBy,
            (true, true) => unreachable!("early-returned above"),
        }
    }

    /// True iff `self` dominates or equals `other`.
    pub fn dominates_or_equal(&self, other: &VersionVector) -> bool {
        self.compare(other).dominates_or_equal()
    }

    /// For two *concurrent* vectors, pinpoint a pair of origin servers whose
    /// updates are mutually missing — the paper's footnote 3: if the vectors
    /// conflict in components `k` and `l`, nodes `k` and `l` hold the
    /// offending updates. Returns `None` when the vectors do not conflict.
    pub fn offending_pair(&self, other: &VersionVector) -> Option<(NodeId, NodeId)> {
        let mut below = None; // a component where self < other
        let mut above = None; // a component where self > other
        for (idx, (a, b)) in self.entries.iter().zip(&other.entries).enumerate() {
            if a < b && below.is_none() {
                below = Some(NodeId::from_index(idx));
            } else if a > b && above.is_none() {
                above = Some(NodeId::from_index(idx));
            }
            if let (Some(k), Some(l)) = (below, above) {
                return Some((k, l));
            }
        }
        None
    }

    /// Sum of all entries: the total number of updates (across all origins)
    /// reflected in the replica.
    pub fn total(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Iterate `(origin, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().enumerate().map(|(i, &v)| (NodeId::from_index(i), v))
    }

    /// Raw entries, in server order.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    fn check_dims(&self, other: &VersionVector) -> Result<()> {
        if self.entries.len() != other.entries.len() {
            return Err(Error::DimensionMismatch {
                left: self.entries.len(),
                right: other.entries.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(entries: &[u64]) -> VersionVector {
        VersionVector::from_entries(entries.to_vec())
    }

    #[test]
    fn zero_is_all_zeroes() {
        let v = VersionVector::zero(4);
        assert_eq!(v.entries(), &[0, 0, 0, 0]);
        assert_eq!(v.total(), 0);
    }

    #[test]
    fn bump_returns_sequence_number() {
        let mut v = VersionVector::zero(3);
        assert_eq!(v.bump(NodeId(1)), 1);
        assert_eq!(v.bump(NodeId(1)), 2);
        assert_eq!(v.get(NodeId(1)), 2);
        assert_eq!(v.get(NodeId(0)), 0);
    }

    #[test]
    fn compare_equal() {
        assert_eq!(vv(&[1, 2]).compare(&vv(&[1, 2])), VvOrd::Equal);
    }

    #[test]
    fn compare_dominates() {
        assert_eq!(vv(&[2, 2]).compare(&vv(&[1, 2])), VvOrd::Dominates);
        assert_eq!(vv(&[1, 2]).compare(&vv(&[2, 2])), VvOrd::DominatedBy);
    }

    #[test]
    fn compare_concurrent() {
        assert_eq!(vv(&[2, 1]).compare(&vv(&[1, 2])), VvOrd::Concurrent);
    }

    #[test]
    fn compare_counted_charges_n() {
        let mut c = 0;
        let _ = vv(&[1, 2, 3]).compare_counted(&vv(&[1, 2, 3]), &mut c);
        assert_eq!(c, 3);
    }

    #[test]
    fn merge_max_takes_componentwise_max() {
        let mut a = vv(&[3, 1, 0]);
        a.merge_max(&vv(&[1, 4, 0])).unwrap();
        assert_eq!(a.entries(), &[3, 4, 0]);
    }

    #[test]
    fn merge_max_rejects_dimension_mismatch() {
        let mut a = vv(&[1]);
        assert!(matches!(
            a.merge_max(&vv(&[1, 2])),
            Err(Error::DimensionMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn flip_swaps_direction() {
        assert_eq!(VvOrd::Dominates.flip(), VvOrd::DominatedBy);
        assert_eq!(VvOrd::DominatedBy.flip(), VvOrd::Dominates);
        assert_eq!(VvOrd::Equal.flip(), VvOrd::Equal);
        assert_eq!(VvOrd::Concurrent.flip(), VvOrd::Concurrent);
    }

    #[test]
    fn offending_pair_pinpoints_origins() {
        // self ahead at n0, behind at n2.
        let a = vv(&[5, 3, 1]);
        let b = vv(&[2, 3, 4]);
        let (k, l) = a.offending_pair(&b).unwrap();
        // k is where self < other (n2), l where self > other (n0).
        assert_eq!((k, l), (NodeId(2), NodeId(0)));
        assert!(a.compare(&b) == VvOrd::Concurrent);
        assert!(vv(&[1, 1]).offending_pair(&vv(&[1, 1])).is_none());
        assert!(vv(&[2, 1]).offending_pair(&vv(&[1, 1])).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(vv(&[1, 0, 7]).to_string(), "<1,0,7>");
        assert_eq!(VvOrd::Concurrent.to_string(), "concurrent");
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn compare_panics_on_dim_mismatch() {
        let _ = vv(&[1]).compare(&vv(&[1, 2]));
    }
}
