//! Transport plumbing shared by the threaded and TCP runtimes: the
//! mutex-guarded [`ReplicaHost`].
//!
//! Fault injection lives in `epidb-core` now — [`ChaosTransport`]
//! (composable over any [`Transport`](epidb_core::Transport), driven by a
//! seed-deterministic [`FaultPlan`]) replaced the loss-and-latency-only
//! `FaultInjector` that used to live here.
//!
//! [`ChaosTransport`]: epidb_core::ChaosTransport
//! [`FaultPlan`]: epidb_core::FaultPlan

use epidb_core::{Replica, ReplicaHost};
use parking_lot::Mutex;

/// A [`ReplicaHost`] over a mutex-guarded replica: each protocol step
/// locks, runs, and unlocks, so no lock is ever held across a blocking
/// network exchange (which would deadlock mutually-pulling nodes).
pub struct MutexHost<'a>(pub &'a Mutex<Replica>);

impl ReplicaHost for MutexHost<'_> {
    fn with<R>(&mut self, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(&mut self.0.lock())
    }
}
