//! Transport plumbing shared by the threaded and TCP runtimes: the
//! mutex-guarded [`ReplicaHost`] and the fault-injection wrapper.

use std::time::Duration;

use epidb_common::{Error, Result};
use epidb_core::{ProtocolRequest, ProtocolResponse, Replica, ReplicaHost, Transport};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;

/// A [`ReplicaHost`] over a mutex-guarded replica: each protocol step
/// locks, runs, and unlocks, so no lock is ever held across a blocking
/// network exchange (which would deadlock mutually-pulling nodes).
pub struct MutexHost<'a>(pub &'a Mutex<Replica>);

impl ReplicaHost for MutexHost<'_> {
    fn with<R>(&mut self, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(&mut self.0.lock())
    }
}

/// Wraps any transport with message loss and fixed latency, applied
/// independently to the request and the response leg of every exchange —
/// the same fault model for channels and sockets.
///
/// A lost response still executed at the responder (and was charged
/// there), exactly like a datagram dropped on the return path.
pub struct FaultInjector<'a, T: Transport> {
    inner: T,
    rng: &'a mut StdRng,
    loss_probability: f64,
    latency: Duration,
}

impl<'a, T: Transport> FaultInjector<'a, T> {
    /// Wrap `inner` with the given loss probability and per-leg latency.
    pub fn new(
        inner: T,
        rng: &'a mut StdRng,
        loss_probability: f64,
        latency: Duration,
    ) -> FaultInjector<'a, T> {
        FaultInjector { inner, rng, loss_probability, latency }
    }

    fn lose(&mut self) -> bool {
        self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability)
    }

    fn delay(&self) {
        if self.latency > Duration::ZERO {
            std::thread::sleep(self.latency);
        }
    }
}

impl<T: Transport> Transport for FaultInjector<'_, T> {
    fn peer(&self) -> epidb_common::NodeId {
        self.inner.peer()
    }

    fn exchange(&mut self, req: ProtocolRequest) -> Result<ProtocolResponse> {
        if self.lose() {
            return Err(Error::Network("request dropped in transit".into()));
        }
        self.delay();
        let resp = self.inner.exchange(req)?;
        if self.lose() {
            return Err(Error::Network("response dropped in transit".into()));
        }
        self.delay();
        Ok(resp)
    }
}
