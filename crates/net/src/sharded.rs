//! Live runtimes for *sharded* deployments: the per-shard protocol of
//! [`epidb_core::shard`] over the same two fabrics the unsharded runtimes
//! use — crossbeam channels ([`ShardedThreadedCluster`]) and framed
//! localhost sockets ([`ShardedTcpCluster`]).
//!
//! Each node runs one server loop executing
//! [`Engine::handle_sharded`] (so every incoming exchange routes through
//! the shard map: unowned shards refuse with the typed, non-retryable
//! [`Error::NotServedHere`], mid-handoff shards with the retryable
//! [`Error::ShardMoving`]) and one gossip loop that iterates its *owned*
//! shards each tick, pulling every shard from a random co-owner in that
//! shard's replica group. A node therefore pays gossip costs only for the
//! shards it owns — the partial-replication property the shard map
//! exists to provide — and each shard converges within its group by the
//! ordinary §2.1 anti-entropy argument, independently of every other
//! shard.
//!
//! Over channels the typed refusals travel natively (the reply channel
//! carries `Result<ProtocolResponse>`); over TCP they ride in-band as
//! [`ProtocolResponse::Refused`](epidb_core::ProtocolResponse::Refused)
//! frames and are re-raised by the transport — either way the initiator
//! observes the same [`Error`] with the same retryability.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use epidb_common::{Costs, Error, ItemId, NodeId, Result, ShardId};
use epidb_core::codec::{decode_request_checked, encode_response_to, Writer};
use epidb_core::{
    ChaosLink, ChaosTransport, ConflictPolicy, Engine, FaultPlan, GossipBudget, PullOutcome,
    Replica, ReplicaHost, RetryPolicy, ShardMap, ShardTransport, ShardedNode, ShardedOob,
};
use epidb_store::UpdateOp;
use epidb_vv::VvOrd;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::NetMessage;
use crate::runtime::ChannelTransport;
use crate::tcp::{read_frame_into, refusal_or_error, write_frame, TcpSocketOptions, TcpTransport};

/// Tuning and fault-injection knobs shared by both sharded runtimes.
/// (The channel runtime ignores `socket`; the TCP runtime ignores
/// `exchange_timeout`.)
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// How often each node walks its owned shards and pulls each from a
    /// random co-owner.
    pub gossip_interval: Duration,
    /// Seed for peer selection and per-link chaos.
    pub seed: u64,
    /// Op-cache budget per shard replica; when non-zero, gossip runs in
    /// delta mode.
    pub delta_budget: usize,
    /// Run every shard replica in paranoid mode (per-step §2.1 audits).
    pub paranoid: bool,
    /// Full fault mix for gossip links (`None` = clean links).
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy the gossip loop applies within each anti-entropy
    /// round (between rounds, the next tick is the retry).
    pub retry: RetryPolicy,
    /// How long a channel exchange waits for the peer's reply.
    pub exchange_timeout: Duration,
    /// Socket timeouts and connect retry schedule (TCP runtime).
    pub socket: TcpSocketOptions,
    /// Maximum wanted items per `DeltaFetch` frame in delta gossip rounds.
    pub max_frame_items: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            gossip_interval: Duration::from_millis(5),
            seed: 0x5AAD,
            delta_budget: 0,
            paranoid: false,
            fault_plan: None,
            retry: RetryPolicy::none(),
            exchange_timeout: Duration::from_millis(500),
            socket: TcpSocketOptions::default(),
            max_frame_items: usize::MAX,
        }
    }
}

impl ShardedConfig {
    fn effective_plan(&self) -> FaultPlan {
        self.fault_plan.clone().unwrap_or(FaultPlan::lossy(0.0))
    }
}

/// Build one node of a sharded deployment, configured per the cluster
/// knobs.
fn build_node(id: NodeId, n_nodes: usize, map: &ShardMap, cfg: &ShardedConfig) -> ShardedNode {
    let mut node = ShardedNode::new(id, n_nodes, map.clone(), ConflictPolicy::Report);
    if cfg.delta_budget > 0 {
        node.enable_delta(cfg.delta_budget);
    }
    node.set_paranoid(cfg.paranoid);
    node
}

/// A [`ReplicaHost`] projecting one owned shard out of a locked
/// [`ShardedNode`]: the lock is taken per engine callback, never across a
/// network exchange (the same discipline as
/// [`MutexHost`](crate::transport::MutexHost)).
struct ShardHost<'a> {
    node: &'a Mutex<ShardedNode>,
    shard: ShardId,
}

impl ReplicaHost for ShardHost<'_> {
    fn with<R>(&mut self, f: impl FnOnce(&mut Replica) -> R) -> R {
        let mut node = self.node.lock();
        f(node.shard_state_mut(self.shard).expect("gossip runs on owned shards"))
    }
}

/// Wait until, for every shard, all alive owners hold equal shard DBVVs
/// and no auxiliary state — the sharded quiescence criterion. Shared by
/// both runtimes via a probe closure.
fn quiesce_with(
    map: &ShardMap,
    gossip_interval: Duration,
    timeout: Duration,
    probe: impl Fn(NodeId, ShardId) -> Option<(epidb_vv::DbVersionVector, usize)>,
) -> bool {
    // Probe pacing via the shared RetryPolicy backoff; the bool form keeps
    // both sharded runtimes' public `quiesce` signatures.
    crate::runtime::quiesce_policy(gossip_interval)
        .poll_until("sharded quiescence", timeout, || {
            ShardId::all(map.n_shards()).all(|shard| {
                let states: Vec<_> =
                    map.owners(shard).iter().filter_map(|&n| probe(n, shard)).collect();
                match states.split_first() {
                    None => true, // every owner crashed: nothing to compare
                    Some(((reference, aux0), rest)) => {
                        *aux0 == 0
                            && rest
                                .iter()
                                .all(|(vv, aux)| *aux == 0 && vv.compare(reference) == VvOrd::Equal)
                    }
                }
            })
        })
        .is_ok()
}

// ---------------------------------------------------------------------------
// Channel runtime
// ---------------------------------------------------------------------------

struct ShardedShared {
    node: Mutex<ShardedNode>,
    alive: AtomicBool,
}

/// A sharded cluster over crossbeam channels: one server thread and one
/// gossip thread per node, as in [`ThreadedCluster`](crate::ThreadedCluster),
/// but each node serves and gossips only the shards its map entry assigns
/// to it.
pub struct ShardedThreadedCluster {
    nodes: Vec<Arc<ShardedShared>>,
    senders: Vec<Sender<NetMessage>>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    map: ShardMap,
    config: ShardedConfig,
}

impl ShardedThreadedCluster {
    /// Spawn `n_nodes` sharded node threads placed by `map`.
    pub fn spawn(map: ShardMap, n_nodes: usize, config: ShardedConfig) -> ShardedThreadedCluster {
        assert!(n_nodes >= 2, "a cluster needs at least two nodes");
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<ShardedShared>> = (0..n_nodes)
            .map(|i| {
                Arc::new(ShardedShared {
                    node: Mutex::new(build_node(NodeId::from_index(i), n_nodes, &map, &config)),
                    alive: AtomicBool::new(true),
                })
            })
            .collect();
        let channels: Vec<(Sender<NetMessage>, Receiver<NetMessage>)> =
            (0..n_nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NetMessage>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let mut handles = Vec::new();
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let shared = nodes[i].clone();
            handles.push(std::thread::spawn(move || serve_loop_sharded(shared, rx)));
            let shared = nodes[i].clone();
            let run = running.clone();
            let peer_senders = senders.clone();
            let me = NodeId::from_index(i);
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || {
                gossip_loop_sharded(me, shared, peer_senders, run, cfg)
            }));
        }
        ShardedThreadedCluster { nodes, senders, running, handles, map, config }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The placement map the cluster was spawned with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<ShardedShared>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// Apply a user update at `node` (globally addressed item, routed
    /// through the node's shard map).
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        self.checked(node)?.node.lock().update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        Ok(self.checked(node)?.node.lock().read(item)?.as_bytes().to_vec())
    }

    /// Run a closure over a locked node — inspection for tests and
    /// harnesses (costs, invariants, owned shards).
    pub fn with_node<T>(&self, node: NodeId, f: impl FnOnce(&ShardedNode) -> T) -> T {
        f(&self.nodes[node.index()].node.lock())
    }

    /// A node's cumulative costs: the sum over its owned shards plus its
    /// cross-group meta-costs.
    pub fn node_costs(&self, node: NodeId) -> Costs {
        self.with_node(node, ShardedNode::costs)
    }

    /// One whole pull of `shard` right now (`recipient` from `source`),
    /// bypassing the gossip schedule — deterministic schedules for tests.
    pub fn pull_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut channel = ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout,
        };
        let mut transport = ShardTransport::new(&mut channel, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull(&mut host, &mut transport)
    }

    /// As [`pull_shard_now`](Self::pull_shard_now), in delta mode.
    pub fn pull_delta_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut channel = ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout,
        };
        let mut transport = ShardTransport::new(&mut channel, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_delta(&mut host, &mut transport)
    }

    /// As [`pull_shard_now`](Self::pull_shard_now), via digest-tree set
    /// reconciliation — the cold-start rung below whole-pull.
    pub fn pull_recon_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut channel = ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout,
        };
        let mut transport = ShardTransport::new(&mut channel, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_recon(&mut host, &mut transport)
    }

    /// Bound log retention to `keep` records per component on every shard
    /// `node` owns.
    pub fn set_log_retention(&self, node: NodeId, keep: usize) -> Result<()> {
        let node = self.checked(node)?;
        node.node.lock().set_log_retention(keep);
        Ok(())
    }

    /// One whole pull of `shard` through a caller-owned [`ChaosLink`] —
    /// the chaos-soak entry point.
    pub fn pull_shard_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let channel = ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout,
        };
        let mut chaos = ChaosTransport::new(channel, link);
        let mut transport = ShardTransport::new(&mut chaos, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_with(&mut host, &mut transport, policy)
    }

    /// Resolve an out-of-bound copy of a globally addressed item at
    /// `recipient`, served by `source` — within-group it adopts into the
    /// owned shard (§5.2); cross-group it fetches via the shard map.
    /// Drive from harness threads one exchange at a time: the recipient's
    /// node lock is held across the exchange.
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<ShardedOob> {
        assert_ne!(recipient, source, "a node cannot fetch from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = ChannelTransport {
            peer: source,
            sender: &self.senders[source.index()],
            timeout: self.config.exchange_timeout,
        };
        Engine::oob_sharded(&mut node.node.lock(), &mut transport, item)
    }

    /// Crash a node: it silently drops requests and stops gossiping (the
    /// in-memory state survives, as in the undurable runtimes).
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node; anti-entropy brings its shards back up to
    /// date.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Wait until every shard's alive owners hold equal shard DBVVs and
    /// no auxiliary state, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        quiesce_with(&self.map, self.config.gossip_interval, timeout, |n, shard| {
            let shared = &self.nodes[n.index()];
            if !shared.alive.load(Ordering::SeqCst) {
                return None;
            }
            let node = shared.node.lock();
            node.shard_state(shard).map(|r| (r.dbvv().clone(), r.aux_item_count()))
        })
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        for s in &self.senders {
            let _ = s.send(NetMessage::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Stop all threads. Inspect final state with
    /// [`with_node`](Self::with_node) *before* shutting down.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for ShardedThreadedCluster {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The server side of a sharded node: every incoming request routes
/// through [`Engine::handle_sharded`]. A crashed node silently drops
/// requests (the initiator times out).
fn serve_loop_sharded(shared: Arc<ShardedShared>, rx: Receiver<NetMessage>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            NetMessage::Shutdown => return,
            NetMessage::Request { req, reply } => {
                if !shared.alive.load(Ordering::SeqCst) {
                    continue;
                }
                let result = Engine::handle_sharded(&mut shared.node.lock(), req);
                let _ = reply.send(result);
            }
        }
    }
}

/// The initiator side: each tick, walk the owned shards and pull every
/// one from a random co-owner in its replica group. A node with no
/// co-owned shards (singleton groups) simply idles.
fn gossip_loop_sharded(
    me: NodeId,
    shared: Arc<ShardedShared>,
    senders: Vec<Sender<NetMessage>>,
    running: Arc<AtomicBool>,
    cfg: ShardedConfig,
) {
    let n = senders.len();
    let budget = GossipBudget::per_frame(cfg.max_frame_items);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9));
    // One persistent chaos link per peer, deterministic in (seed, me, peer)
    // — the same link discipline as the unsharded runtimes.
    let plan = cfg.effective_plan();
    let mut links: Vec<ChaosLink> = (0..n)
        .map(|peer| {
            let link_seed = cfg
                .seed
                .wrapping_add(((me.index() * n + peer) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ChaosLink::new(link_seed, plan.clone())
        })
        .collect();
    while running.load(Ordering::SeqCst) {
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !shared.alive.load(Ordering::SeqCst) {
            continue;
        }
        // Snapshot the gossip plan under the lock, then exchange without it.
        let rounds = gossip_rounds(&shared.node, me, &mut rng);
        for (shard, peer) in rounds {
            let channel = ChannelTransport {
                peer,
                sender: &senders[peer.index()],
                timeout: cfg.exchange_timeout,
            };
            let mut chaos = ChaosTransport::new(channel, &mut links[peer.index()]);
            let mut transport = ShardTransport::new(&mut chaos, shard);
            let mut host = ShardHost { node: &shared.node, shard };
            // Faults, refusals, and crashed peers exhaust the in-round
            // retry policy and surface as errors; gossip then just retries
            // on the next tick.
            let _ = if cfg.delta_budget > 0 {
                Engine::pull_delta_budgeted(&mut host, &mut transport, &cfg.retry, &budget)
            } else {
                Engine::pull_with(&mut host, &mut transport, &cfg.retry)
            };
        }
    }
}

/// One tick's gossip plan for `me`: for each owned, non-moving shard,
/// a random co-owner from that shard's replica group (per the node's
/// *current* map copy, so a reassignment redirects gossip immediately).
fn gossip_rounds(
    node: &Mutex<ShardedNode>,
    me: NodeId,
    rng: &mut StdRng,
) -> Vec<(ShardId, NodeId)> {
    let node = node.lock();
    let mut rounds = Vec::new();
    for shard in node.owned_shards() {
        if node.is_moving(shard) {
            continue;
        }
        let peers: Vec<NodeId> =
            node.map().owners(shard).iter().copied().filter(|&p| p != me).collect();
        if peers.is_empty() {
            continue;
        }
        rounds.push((shard, peers[rng.gen_range(0..peers.len())]));
    }
    rounds
}

// ---------------------------------------------------------------------------
// TCP runtime
// ---------------------------------------------------------------------------

/// A sharded cluster over localhost TCP: the same per-owned-shard gossip
/// as [`ShardedThreadedCluster`], with every exchange a CRC-framed
/// request/response pair on a real socket. Typed routing refusals cross
/// the wire as [`ProtocolResponse::Refused`](epidb_core::ProtocolResponse::Refused)
/// frames.
pub struct ShardedTcpCluster {
    nodes: Vec<Arc<ShardedShared>>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    map: ShardMap,
    config: ShardedConfig,
}

impl ShardedTcpCluster {
    /// Bind `n_nodes` listeners on localhost and start per-shard gossip.
    pub fn spawn(
        map: ShardMap,
        n_nodes: usize,
        config: ShardedConfig,
    ) -> Result<ShardedTcpCluster> {
        assert!(n_nodes >= 2, "a cluster needs at least two nodes");
        let running = Arc::new(AtomicBool::new(true));
        let nodes: Vec<Arc<ShardedShared>> = (0..n_nodes)
            .map(|i| {
                Arc::new(ShardedShared {
                    node: Mutex::new(build_node(NodeId::from_index(i), n_nodes, &map, &config)),
                    alive: AtomicBool::new(true),
                })
            })
            .collect();
        let listeners: Vec<TcpListener> = (0..n_nodes)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("bind: {e}")))?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()
            .map_err(|e| Error::Network(format!("local_addr: {e}")))?;
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let shared = nodes[i].clone();
            let run = running.clone();
            let socket = config.socket;
            handles.push(std::thread::spawn(move || {
                server_loop_sharded(listener, shared, run, socket)
            }));
            let shared = nodes[i].clone();
            let run = running.clone();
            let peer_addrs = addrs.clone();
            let me = NodeId::from_index(i);
            let cfg = config.clone();
            handles.push(std::thread::spawn(move || {
                tcp_gossip_loop_sharded(me, shared, peer_addrs, run, cfg)
            }));
        }
        Ok(ShardedTcpCluster { nodes, addrs, running, handles, map, config })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The placement map the cluster was spawned with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The socket address a node's server listens on.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// A fresh [`TcpTransport`] to `peer`'s server, with the cluster's
    /// socket options.
    pub fn transport_to(&self, peer: NodeId) -> TcpTransport {
        TcpTransport::with_options(peer, self.addr(peer), self.config.socket)
    }

    fn checked(&self, node: NodeId) -> Result<&Arc<ShardedShared>> {
        let n = self.nodes.get(node.index()).ok_or(Error::UnknownNode(node))?;
        if !n.alive.load(Ordering::SeqCst) {
            return Err(Error::NodeDown(node));
        }
        Ok(n)
    }

    /// Apply a user update at `node`.
    pub fn update(&self, node: NodeId, item: ItemId, op: UpdateOp) -> Result<()> {
        self.checked(node)?.node.lock().update(item, op)
    }

    /// Read the user-visible value at `node`.
    pub fn read(&self, node: NodeId, item: ItemId) -> Result<Vec<u8>> {
        Ok(self.checked(node)?.node.lock().read(item)?.as_bytes().to_vec())
    }

    /// Run a closure over a locked node.
    pub fn with_node<T>(&self, node: NodeId, f: impl FnOnce(&ShardedNode) -> T) -> T {
        f(&self.nodes[node.index()].node.lock())
    }

    /// A node's cumulative costs (owned shards + cross-group meta).
    pub fn node_costs(&self, node: NodeId) -> Costs {
        self.with_node(node, ShardedNode::costs)
    }

    /// One whole pull of `shard` right now, bypassing the gossip schedule.
    pub fn pull_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut tcp = self.transport_to(source);
        let mut transport = ShardTransport::new(&mut tcp, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull(&mut host, &mut transport)
    }

    /// As [`pull_shard_now`](Self::pull_shard_now), in delta mode.
    pub fn pull_delta_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut tcp = self.transport_to(source);
        let mut transport = ShardTransport::new(&mut tcp, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_delta(&mut host, &mut transport)
    }

    /// As [`pull_shard_now`](Self::pull_shard_now), via digest-tree set
    /// reconciliation — the cold-start rung below whole-pull.
    pub fn pull_recon_shard_now(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut tcp = self.transport_to(source);
        let mut transport = ShardTransport::new(&mut tcp, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_recon(&mut host, &mut transport)
    }

    /// Bound log retention to `keep` records per component on every shard
    /// `node` owns.
    pub fn set_log_retention(&self, node: NodeId, keep: usize) -> Result<()> {
        let node = self.checked(node)?;
        node.node.lock().set_log_retention(keep);
        Ok(())
    }

    /// One whole pull of `shard` through a caller-owned [`ChaosLink`].
    pub fn pull_shard_now_chaos(
        &self,
        recipient: NodeId,
        source: NodeId,
        shard: ShardId,
        link: &mut ChaosLink,
        policy: &RetryPolicy,
    ) -> Result<PullOutcome> {
        assert_ne!(recipient, source, "a node cannot pull from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut chaos = ChaosTransport::new(self.transport_to(source), link);
        let mut transport = ShardTransport::new(&mut chaos, shard);
        let mut host = ShardHost { node: &node.node, shard };
        Engine::pull_with(&mut host, &mut transport, policy)
    }

    /// Out-of-bound resolution of a globally addressed item over TCP;
    /// cross-group fetches route via the shard map. Drive from harness
    /// threads one exchange at a time (the recipient's node lock is held
    /// across the exchange).
    pub fn oob_fetch(&self, recipient: NodeId, source: NodeId, item: ItemId) -> Result<ShardedOob> {
        assert_ne!(recipient, source, "a node cannot fetch from itself");
        self.checked(source)?;
        let node = self.checked(recipient)?;
        let mut transport = self.transport_to(source);
        Engine::oob_sharded(&mut node.node.lock(), &mut transport, item)
    }

    /// Crash a node: it refuses connections and stops gossiping; the
    /// in-memory state survives for revival.
    pub fn crash(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(false, Ordering::SeqCst);
    }

    /// Revive a crashed node.
    pub fn revive(&self, node: NodeId) {
        self.nodes[node.index()].alive.store(true, Ordering::SeqCst);
    }

    /// Wait until every shard's alive owners hold equal shard DBVVs and
    /// no auxiliary state, or the deadline passes.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        quiesce_with(&self.map, self.config.gossip_interval, timeout, |n, shard| {
            let shared = &self.nodes[n.index()];
            if !shared.alive.load(Ordering::SeqCst) {
                return None;
            }
            let node = shared.node.lock();
            node.shard_state(shard).map(|r| (r.dbvv().clone(), r.aux_item_count()))
        })
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        for addr in &self.addrs {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Stop all threads. Inspect final state with
    /// [`with_node`](Self::with_node) *before* shutting down.
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for ShardedTcpCluster {
    fn drop(&mut self) {
        if self.running.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn server_loop_sharded(
    listener: TcpListener,
    node: Arc<ShardedShared>,
    running: Arc<AtomicBool>,
    socket: TcpSocketOptions,
) {
    while running.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if !running.load(Ordering::SeqCst) {
            return;
        }
        let node = node.clone();
        let run = running.clone();
        std::thread::spawn(move || serve_conn_sharded(stream, node, run, socket));
    }
}

/// Serve one connection at a sharded node: request frame →
/// [`Engine::handle_sharded`] → response frame, with typed routing
/// refusals emitted in-band as `Refused` frames.
fn serve_conn_sharded(
    mut stream: TcpStream,
    node: Arc<ShardedShared>,
    running: Arc<AtomicBool>,
    socket: TcpSocketOptions,
) {
    let _ = stream.set_read_timeout(Some(socket.read_timeout));
    let _ = stream.set_write_timeout(Some(socket.write_timeout));
    let mut body = Vec::new();
    let mut writer = Writer::new();
    loop {
        if !running.load(Ordering::SeqCst) || !node.alive.load(Ordering::SeqCst) {
            return;
        }
        if read_frame_into(&mut stream, &mut body).is_err() {
            return;
        }
        if !node.alive.load(Ordering::SeqCst) {
            return; // crashed between frames: silently drop
        }
        let resp = match decode_request_checked(&body) {
            Ok(req) => {
                Engine::handle_sharded(&mut node.node.lock(), req).unwrap_or_else(refusal_or_error)
            }
            Err(e) => epidb_core::ProtocolResponse::Error(format!("bad request: {e}")),
        };
        encode_response_to(&resp, &mut writer);
        if write_frame(&mut stream, &writer).is_err() {
            return;
        }
    }
}

fn tcp_gossip_loop_sharded(
    me: NodeId,
    shared: Arc<ShardedShared>,
    addrs: Vec<SocketAddr>,
    running: Arc<AtomicBool>,
    cfg: ShardedConfig,
) {
    let n = addrs.len();
    let budget = GossipBudget::per_frame(cfg.max_frame_items);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (me.index() as u64).wrapping_mul(0x51_7C_C1));
    let plan = cfg.effective_plan();
    let mut links: Vec<ChaosLink> = (0..n)
        .map(|peer| {
            let link_seed = cfg
                .seed
                .wrapping_add(((me.index() * n + peer) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            ChaosLink::new(link_seed, plan.clone())
        })
        .collect();
    while running.load(Ordering::SeqCst) {
        let wake = Instant::now() + cfg.gossip_interval;
        while Instant::now() < wake {
            if !running.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep((wake - Instant::now()).min(Duration::from_millis(20)));
        }
        if !shared.alive.load(Ordering::SeqCst) {
            continue;
        }
        let rounds = gossip_rounds(&shared.node, me, &mut rng);
        for (shard, peer) in rounds {
            let tcp = TcpTransport::with_options(peer, addrs[peer.index()], cfg.socket);
            let mut chaos = ChaosTransport::new(tcp, &mut links[peer.index()]);
            let mut transport = ShardTransport::new(&mut chaos, shard);
            let mut host = ShardHost { node: &shared.node, shard };
            let _ = if cfg.delta_budget > 0 {
                Engine::pull_delta_budgeted(&mut host, &mut transport, &cfg.retry, &budget)
            } else {
                Engine::pull_with(&mut host, &mut transport, &cfg.retry)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidb_common::RouteTarget;
    use epidb_core::{ProtocolRequest, Transport};

    /// 4 nodes, 2 groups × 2 nodes, 2 shards × 8 items.
    fn two_group_map() -> ShardMap {
        ShardMap::new(8, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]])
    }

    fn fast_config() -> ShardedConfig {
        ShardedConfig { gossip_interval: Duration::from_millis(1), ..ShardedConfig::default() }
    }

    fn quiet_config() -> ShardedConfig {
        ShardedConfig { gossip_interval: Duration::from_secs(60), ..ShardedConfig::default() }
    }

    #[test]
    fn sharded_cluster_converges_per_group_over_channels() {
        let cluster = ShardedThreadedCluster::spawn(
            two_group_map(),
            4,
            ShardedConfig { paranoid: true, ..fast_config() },
        );
        // Writes land at an owner of each item's shard.
        cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"left"[..])).unwrap();
        cluster.update(NodeId(2), ItemId(9), UpdateOp::set(&b"right"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(20)), "no sharded quiescence");
        assert_eq!(cluster.read(NodeId(1), ItemId(1)).unwrap(), b"left");
        assert_eq!(cluster.read(NodeId(3), ItemId(9)).unwrap(), b"right");
        // Partial replication: each node holds only its own group's shard
        // and pays costs only there.
        for n in 0..4u16 {
            cluster.with_node(NodeId(n), |node| {
                assert_eq!(node.owned_shards().len(), 1);
                node.check_invariants_clean().unwrap();
                assert!(node.audits_run() > 0, "paranoid audits must run");
            });
        }
        // Cross-group reads redirect with the owning group.
        match cluster.read(NodeId(0), ItemId(9)) {
            Err(Error::NotServedHere { owners, .. }) => {
                assert_eq!(owners, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected redirect, got {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn sharded_cluster_converges_per_group_over_tcp() {
        let cluster = ShardedTcpCluster::spawn(
            two_group_map(),
            4,
            ShardedConfig { paranoid: true, ..fast_config() },
        )
        .unwrap();
        cluster.update(NodeId(1), ItemId(3), UpdateOp::set(&b"alpha"[..])).unwrap();
        cluster.update(NodeId(3), ItemId(12), UpdateOp::set(&b"beta"[..])).unwrap();
        assert!(cluster.quiesce(Duration::from_secs(30)), "no sharded quiescence over TCP");
        assert_eq!(cluster.read(NodeId(0), ItemId(3)).unwrap(), b"alpha");
        assert_eq!(cluster.read(NodeId(2), ItemId(12)).unwrap(), b"beta");
        for n in 0..4u16 {
            cluster.with_node(NodeId(n), |node| node.check_invariants_clean().unwrap());
        }
        cluster.shutdown();
    }

    #[test]
    fn typed_refusals_survive_the_tcp_wire() {
        let cluster = ShardedTcpCluster::spawn(two_group_map(), 4, quiet_config()).unwrap();
        // Ask node 0 (group {n0, n1}, shard s0) for shard s1.
        let mut transport = cluster.transport_to(NodeId(0));
        let req = ProtocolRequest::Shard {
            shard: ShardId(1),
            req: Box::new(ProtocolRequest::Oob { from: NodeId(2), item: ItemId(0) }),
        };
        match transport.exchange(req) {
            Err(Error::NotServedHere { target, owners }) => {
                assert_eq!(target, RouteTarget::Shard(ShardId(1)));
                assert_eq!(owners, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("expected a typed redirect over TCP, got {other:?}"),
        }
        // The refusal was never charged at the refusing server.
        assert_eq!(cluster.node_costs(NodeId(0)), Costs::default());
        cluster.shutdown();
    }

    #[test]
    fn cross_group_oob_over_both_fabrics() {
        let threaded = ShardedThreadedCluster::spawn(two_group_map(), 4, quiet_config());
        threaded.update(NodeId(2), ItemId(9), UpdateOp::set(&b"chan"[..])).unwrap();
        match threaded.oob_fetch(NodeId(0), NodeId(2), ItemId(9)).unwrap() {
            ShardedOob::Fetched { value, .. } => assert_eq!(&value[..], b"chan"),
            other => panic!("expected a cross-group fetch, got {other:?}"),
        }
        threaded.shutdown();

        let tcp = ShardedTcpCluster::spawn(two_group_map(), 4, quiet_config()).unwrap();
        tcp.update(NodeId(3), ItemId(10), UpdateOp::set(&b"wire"[..])).unwrap();
        match tcp.oob_fetch(NodeId(1), NodeId(3), ItemId(10)).unwrap() {
            ShardedOob::Fetched { value, .. } => assert_eq!(&value[..], b"wire"),
            other => panic!("expected a cross-group fetch, got {other:?}"),
        }
        tcp.shutdown();
    }

    #[test]
    fn scheduled_shard_pulls_are_deterministic_across_fabrics() {
        // The same fixed schedule on both fabrics charges identical costs
        // — the transport-parity property, at the sharded layer.
        let run = |costs_of: &dyn Fn() -> (Costs, Costs)| costs_of();
        let threaded = {
            let cluster = ShardedThreadedCluster::spawn(two_group_map(), 4, quiet_config());
            cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"x"[..])).unwrap();
            cluster.pull_shard_now(NodeId(1), NodeId(0), ShardId(0)).unwrap();
            let out = run(&|| (cluster.node_costs(NodeId(0)), cluster.node_costs(NodeId(1))));
            cluster.shutdown();
            out
        };
        let tcp = {
            let cluster = ShardedTcpCluster::spawn(two_group_map(), 4, quiet_config()).unwrap();
            cluster.update(NodeId(0), ItemId(1), UpdateOp::set(&b"x"[..])).unwrap();
            cluster.pull_shard_now(NodeId(1), NodeId(0), ShardId(0)).unwrap();
            let out = run(&|| (cluster.node_costs(NodeId(0)), cluster.node_costs(NodeId(1))));
            cluster.shutdown();
            out
        };
        assert_eq!(threaded, tcp, "per-node costs must match across fabrics");
    }

    #[test]
    fn delta_gossip_converges_per_shard_over_channels() {
        let cluster = ShardedThreadedCluster::spawn(
            two_group_map(),
            4,
            ShardedConfig { delta_budget: 1 << 20, ..fast_config() },
        );
        for i in 0..4u32 {
            cluster.update(NodeId(0), ItemId(i), UpdateOp::set(vec![i as u8; 16])).unwrap();
            cluster.update(NodeId(2), ItemId(8 + i), UpdateOp::set(vec![i as u8; 16])).unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(20)), "no delta quiescence");
        for i in 0..4u32 {
            assert_eq!(cluster.read(NodeId(1), ItemId(i)).unwrap(), vec![i as u8; 16]);
            assert_eq!(cluster.read(NodeId(3), ItemId(8 + i)).unwrap(), vec![i as u8; 16]);
        }
        cluster.shutdown();
    }
}
