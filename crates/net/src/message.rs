//! Messages carried by the threaded runtime.

use epidb_common::NodeId;
use epidb_core::{OobReply, PropagationResponse};
use epidb_vv::DbVersionVector;

/// A network message between replica threads.
///
/// The protocol's two-message pull (§5.1) maps to
/// [`PullRequest`](NetMessage::PullRequest) /
/// [`PullResponse`](NetMessage::PullResponse); out-of-bound copying (§5.2)
/// to the OOB pair.
#[derive(Debug)]
pub enum NetMessage {
    /// Recipient `from` asks the destination to run `SendPropagation`
    /// against this DBVV.
    PullRequest {
        /// The requesting (recipient) node.
        from: NodeId,
        /// The recipient's database version vector.
        dbvv: DbVersionVector,
    },
    /// The source's reply: "you are current" or the tail vector + items.
    PullResponse {
        /// The replying (source) node.
        from: NodeId,
        /// The propagation decision/payload.
        response: PropagationResponse,
    },
    /// `from` asks for the destination's newest copy of one item.
    OobRequest {
        /// The requesting node.
        from: NodeId,
        /// The wanted item.
        item: epidb_common::ItemId,
    },
    /// Reply to an out-of-bound request.
    OobResponse {
        /// The replying node.
        from: NodeId,
        /// The item copy and its IVV.
        reply: OobReply,
    },
    /// Stop the receiving thread.
    Shutdown,
}

/// An addressed message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub msg: NetMessage,
}
