//! Messages carried by the threaded runtime's channels.
//!
//! The channels carry exactly the engine's request/response enums
//! ([`ProtocolRequest`] / [`ProtocolResponse`]) plus a reply channel — the
//! channel transport's analogue of a connected socket.

use crossbeam::channel::Sender;
use epidb_common::Result;
use epidb_core::{ProtocolRequest, ProtocolResponse};

/// A network message between replica threads.
#[derive(Debug)]
pub enum NetMessage {
    /// One protocol exchange: the request plus the channel the response
    /// (or the responder's error) travels back on.
    Request {
        /// The engine request to execute.
        req: ProtocolRequest,
        /// Where the initiator awaits the response.
        reply: Sender<Result<ProtocolResponse>>,
    },
    /// Stop the receiving server thread.
    Shutdown,
}
