#![warn(missing_docs)]

//! `epidb-net` — live runtimes for `epidb` replicas.
//!
//! The experiment suite (`epidb-sim`) measures protocol overhead in a
//! deterministic single-process simulation; this crate complements it with
//! two *live* runtimes: [`ThreadedCluster`] (one OS thread pair per
//! replica, exchanges over crossbeam channels) and [`TcpCluster`] (the
//! same protocol over framed localhost sockets). Both are thin adapters
//! over the transport-agnostic engine in `epidb-core`: every pull, delta,
//! and out-of-bound exchange is a [`ProtocolRequest`](epidb_core::ProtocolRequest)
//! executed by [`Engine::handle`](epidb_core::Engine::handle) at the
//! responder, so cost accounting, tracing, and paranoid audits behave
//! identically under channels, sockets, and in-process calls.
//!
//! The runtimes inject the failures the protocol is designed to survive —
//! via the seed-deterministic [`ChaosTransport`](epidb_core::ChaosTransport)
//! and its [`FaultPlan`](epidb_core::FaultPlan): message loss, duplication,
//! reordering, corruption, latency, partitions, mid-exchange resets — plus
//! node crashes/recoveries at the cluster level.
//!
//! ```
//! use epidb_net::{ClusterConfig, ThreadedCluster};
//! use epidb_common::{ItemId, NodeId};
//! use epidb_store::UpdateOp;
//! use std::time::Duration;
//!
//! let cluster = ThreadedCluster::spawn(3, 100, ClusterConfig {
//!     gossip_interval: Duration::from_millis(2),
//!     ..ClusterConfig::default()
//! });
//! cluster.update(NodeId(0), ItemId(7), UpdateOp::set(&b"hello"[..])).unwrap();
//! assert!(cluster.quiesce(Duration::from_secs(10)));
//! assert_eq!(cluster.read(NodeId(2), ItemId(7)).unwrap(), b"hello");
//! cluster.shutdown();
//! ```

pub mod async_tcp;
pub mod message;
pub mod runtime;
pub mod sharded;
pub mod tcp;
pub mod transport;

pub use async_tcp::{
    AsyncServer, AsyncTcpCluster, AsyncTcpConfig, FrameService, ShardedFrameService,
};
pub use message::NetMessage;
pub use runtime::{ClusterConfig, ThreadedCluster};
pub use sharded::{ShardedConfig, ShardedTcpCluster, ShardedThreadedCluster};
pub use tcp::{TcpCluster, TcpConfig, TcpSocketOptions, TcpTransport};
pub use transport::MutexHost;
