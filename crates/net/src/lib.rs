#![warn(missing_docs)]

//! `epidb-net` — a multi-threaded runtime for `epidb` replicas.
//!
//! The experiment suite (`epidb-sim`) measures protocol overhead in a
//! deterministic single-process simulation; this crate complements it with
//! a *live* runtime: each replica runs on its own OS thread, servicing user
//! operations locally and gossiping asynchronously over crossbeam channels
//! — the paper's deployment picture (user operations at a single server,
//! anti-entropy "at a convenient time", §1–§2).
//!
//! The runtime injects the failures the protocol is designed to survive:
//! message loss, added latency, and node crashes/recoveries.
//!
//! ```
//! use epidb_net::{ClusterConfig, ThreadedCluster};
//! use epidb_common::{ItemId, NodeId};
//! use epidb_store::UpdateOp;
//! use std::time::Duration;
//!
//! let cluster = ThreadedCluster::spawn(3, 100, ClusterConfig {
//!     gossip_interval: Duration::from_millis(2),
//!     ..ClusterConfig::default()
//! });
//! cluster.update(NodeId(0), ItemId(7), UpdateOp::set(&b"hello"[..])).unwrap();
//! assert!(cluster.quiesce(Duration::from_secs(10)));
//! assert_eq!(cluster.read(NodeId(2), ItemId(7)).unwrap(), b"hello");
//! cluster.shutdown();
//! ```

pub mod message;
pub mod runtime;
pub mod tcp;

pub use message::NetMessage;
pub use runtime::{ClusterConfig, ThreadedCluster};
pub use tcp::{TcpCluster, TcpConfig};
